/**
 * @file
 * Microbenchmarks (google-benchmark) of the synchronization layer:
 * policy stepping, controller injection, and whole-cluster quantum
 * throughput as a function of node count — including the Fig. 5
 * effect (per-quantum synchronization overhead).
 */

#include <benchmark/benchmark.h>

#include "core/quantum_policy.hh"
#include "engine/sequential_engine.hh"
#include "engine/threaded_engine.hh"
#include "engine/worker_pool.hh"
#include "harness/experiment.hh"
#include "net/network_controller.hh"
#include "workloads/workload.hh"

using namespace aqsim;

namespace
{

void
BM_AdaptivePolicyStep(benchmark::State &state)
{
    core::AdaptiveQuantumPolicy policy({});
    std::uint64_t np = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(policy.next(np));
        np = (np + 1) % 3;
    }
}
BENCHMARK(BM_AdaptivePolicyStep);

class NullScheduler : public net::DeliveryScheduler
{
  public:
    Tick
    place(const net::PacketPtr &pkt, net::DeliveryKind &kind) override
    {
        kind = net::DeliveryKind::OnTime;
        return pkt->idealArrival;
    }
};

void
BM_ControllerInject(benchmark::State &state)
{
    stats::Group root("bench");
    net::NetworkController controller(16, {}, root);
    NullScheduler scheduler;
    controller.setScheduler(&scheduler);
    Tick t = 0;
    for (auto _ : state) {
        auto pkt = net::makePacket(0, 1, 1500, t);
        pkt->departTick = t;
        controller.inject(pkt);
        ++t;
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ControllerInject);

/**
 * End-to-end cluster-simulation throughput: simulated microseconds
 * per host second, as a function of node count, for a fixed quantum.
 * Demonstrates the engine itself scales to 64-node clusters.
 */
void
BM_ClusterQuantaThroughput(benchmark::State &state)
{
    const auto nodes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto workload = workloads::makeWorkload("burst", nodes, 0.05);
        auto policy = core::parsePolicy("fixed:10us");
        auto params = harness::defaultCluster(nodes, 1);
        engine::SequentialEngine engine;
        auto result = engine.run(params, *workload, *policy);
        benchmark::DoNotOptimize(result.simTicks);
        state.counters["quanta"] =
            static_cast<double>(result.quanta);
    }
}
BENCHMARK(BM_ClusterQuantaThroughput)
    ->Arg(2)
    ->Arg(8)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

/**
 * Raw quantum-gate round trip through the worker pool: release K
 * workers, no work, wait for all arrivals. This is the per-quantum
 * synchronization floor of the ThreadedEngine (the Fig. 5 cost on the
 * host side), and the direct before/after number for the
 * sense-reversing barrier rewrite.
 */
void
BM_WorkerPoolQuantumGate(benchmark::State &state)
{
    const auto workers = static_cast<std::size_t>(state.range(0));
    engine::WorkerPool pool(workers, [](std::size_t, Tick) {});
    Tick qe = 0;
    for (auto _ : state)
        pool.runQuantum(++qe);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WorkerPoolQuantumGate)->Arg(1)->Arg(2)->Arg(4);

/**
 * End-to-end ThreadedEngine throughput: exercises the real gate,
 * shard loop and mailbox swap-buffer path (unlike the sequential
 * variant above, whose barrier cost is modeled, not executed).
 */
void
BM_ThreadedClusterQuantaThroughput(benchmark::State &state)
{
    const auto nodes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto workload = workloads::makeWorkload("burst", nodes, 0.05);
        auto policy = core::parsePolicy("fixed:10us");
        auto params = harness::defaultCluster(nodes, 1);
        engine::ThreadedEngine engine;
        auto result = engine.run(params, *workload, *policy);
        benchmark::DoNotOptimize(result.simTicks);
        state.counters["quanta"] =
            static_cast<double>(result.quanta);
    }
}
BENCHMARK(BM_ThreadedClusterQuantaThroughput)
    ->Arg(2)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

/** Policy comparison at constant workload: runtime of the harness. */
void
BM_RunUnderPolicy(benchmark::State &state)
{
    const char *specs[] = {"fixed:1us", "fixed:100us",
                           "dyn:1.03:0.02:1us:1000us"};
    const char *spec = specs[state.range(0)];
    for (auto _ : state) {
        auto workload = workloads::makeWorkload("pingpong", 2, 0.3);
        auto policy = core::parsePolicy(spec);
        auto params = harness::defaultCluster(2, 1);
        engine::SequentialEngine engine;
        auto result = engine.run(params, *workload, *policy);
        benchmark::DoNotOptimize(result.hostNs);
    }
    state.SetLabel(spec);
}
BENCHMARK(BM_RunUnderPolicy)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

} // namespace
