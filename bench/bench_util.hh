/** Shared helpers for the figure-reproduction benches. */

#ifndef AQSIM_BENCH_BENCH_UTIL_HH
#define AQSIM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "base/args.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"

namespace aqsim::bench
{

/** Standard bench options: --scale, --seed, --csv, --nodes. */
struct BenchOptions
{
    double scale = 1.0;
    std::uint64_t seed = 1;
    bool csv = false;
    bool verbose = false;

    static BenchOptions
    parse(int argc, char **argv,
          std::vector<std::string> extra_allowed = {})
    {
        std::vector<std::string> allowed{"scale", "seed", "csv",
                                         "verbose"};
        for (auto &name : extra_allowed)
            allowed.push_back(name);
        Args args(argc, argv, allowed);
        BenchOptions options;
        options.scale = args.getDouble("scale", options.scale);
        options.seed = static_cast<std::uint64_t>(
            args.getInt("seed", static_cast<std::int64_t>(1)));
        options.csv = args.getBool("csv", false);
        options.verbose = args.getBool("verbose", false);
        return options;
    }
};

/** Print a titled table as text or CSV. */
inline void
emit(const harness::Table &table, const std::string &title, bool csv)
{
    if (csv) {
        table.printCsv(std::cout);
    } else {
        std::cout << "\n== " << title << " ==\n";
        table.print(std::cout);
    }
}

} // namespace aqsim::bench

#endif // AQSIM_BENCH_BENCH_UTIL_HH
