/**
 * @file
 * Reproduces paper Figure 6: NAS accuracy (left) and speedup (right)
 * for 2-, 4- and 8-node clusters.
 *
 * For every cluster size, the five NAS skeletons (EP, IS, CG, MG, LU)
 * run under each configuration: fixed quanta of 10/100/1000 us and the
 * two adaptive settings (dyn 1k 1.03:0.02 and dyn 1k 1.05:0.02), all
 * against the 1 us deterministic ground truth.
 *
 * As in the paper: per-benchmark MOPS are aggregated with a harmonic
 * mean; the accuracy error is the relative deviation of that aggregate
 * from the ground truth's; the speedup is total host wall-clock (sum
 * over the five benchmarks) of the ground truth over the config.
 *
 * Expected shape (see EXPERIMENTS.md): error grows with quantum and
 * with node count (fixed 1000 us is catastrophic at 8 nodes), the
 * adaptive configs stay within a few percent while reaching a large
 * fraction of the fixed-1000 us speedup.
 */

#include <map>

#include "bench_util.hh"
#include "workloads/workload.hh"

using namespace aqsim;
using namespace aqsim::harness;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv);
    Harness harness(options.scale, options.seed);
    const auto nas = workloads::nasWorkloadNames();
    const std::vector<std::size_t> node_counts{2, 4, 8};
    auto configs = paperConfigs();

    Table accuracy({"config", "n=2", "n=4", "n=8"});
    Table speed({"config", "n=2", "n=4", "n=8"});

    // metric[config][nodes] = (harmonic-mean MOPS, total host ns).
    for (const auto &config : configs) {
        std::vector<std::string> acc_row{config.label};
        std::vector<std::string> speed_row{config.label};
        for (std::size_t nodes : node_counts) {
            std::vector<double> gt_mops, run_mops;
            double gt_host = 0.0, run_host = 0.0;
            for (const auto &workload : nas) {
                const auto &gt = harness.groundTruth(workload, nodes);
                auto run = harness.run(workload, nodes, config.spec);
                gt_mops.push_back(gt.metric);
                run_mops.push_back(run.metric);
                gt_host += gt.hostNs;
                run_host += run.hostNs;
                if (options.verbose)
                    std::fprintf(stderr, "%s\n",
                                 run.summary().c_str());
            }
            const double gt_agg = harmonicMean(gt_mops);
            const double run_agg = harmonicMean(run_mops);
            const double error =
                std::abs(run_agg - gt_agg) / gt_agg;
            const double speedup = gt_host / run_host;
            acc_row.push_back(fmtPercent(error));
            speed_row.push_back(fmtSpeedup(speedup));
        }
        accuracy.addRow(acc_row);
        speed.addRow(speed_row);
    }

    bench::emit(accuracy,
                "Figure 6 (left): NAS accuracy error vs. 1us ground "
                "truth (harmonic-mean MOPS)",
                options.csv);
    bench::emit(speed,
                "Figure 6 (right): NAS simulation speedup vs. 1us "
                "ground truth",
                options.csv);
    return 0;
}
