/**
 * @file
 * Ablation studies of the adaptive-quantum design choices called out
 * in DESIGN.md:
 *
 *  1. Increase/decrease factor sweep — the paper's claim that "the
 *     best configurations grow the quantum in very small increments
 *     but decrease it very quickly" (Section 3).
 *  2. Policy-shape comparison — Algorithm 1 vs. a threshold variant
 *     (tolerate a few packets) vs. a symmetric AIMD-style variant
 *     (what the design degrades to without the fast collapse).
 *  3. Modeled optimistic (checkpoint/rollback) synchronization — the
 *     paper's Section 3 argument for why an optimistic PDES approach
 *     is unaffordable for full-system simulators: every straggler
 *     would trigger a checkpoint restore costing tens of seconds.
 *  4. Switch-model ablation — perfect vs. store-and-forward switch.
 */

#include <cmath>

#include "bench_util.hh"
#include "engine/sequential_engine.hh"
#include "net/topology.hh"
#include "workloads/workload.hh"

using namespace aqsim;
using namespace aqsim::harness;

namespace
{

void
sweepIncDec(Harness &harness, bool csv)
{
    Table table({"inc", "dec", "accuracy error", "speedup"});
    const double incs[] = {1.01, 1.03, 1.05, 1.10, 1.30};
    const double decs[] = {0.9, 0.5, 0.1, 0.02};
    for (double inc : incs) {
        for (double dec : decs) {
            char spec[96];
            std::snprintf(spec, sizeof(spec),
                          "dyn:%g:%g:1us:1000us", inc, dec);
            auto run = harness.run("burst", 8, spec);
            table.addRow({fmtDouble(inc, 2), fmtDouble(dec, 2),
                          fmtPercent(harness.error(run)),
                          fmtSpeedup(harness.speedup(run))});
        }
    }
    aqsim::bench::emit(table,
                       "Ablation 1: increase/decrease factor sweep "
                       "(burst workload, 8 nodes)",
                       csv);
}

void
comparePolicyShapes(Harness &harness, bool csv)
{
    Table table({"policy", "workload", "accuracy error", "speedup"});
    const char *policies[] = {
        "dyn:1.03:0.02:1us:1000us", // Algorithm 1
        "threshold:1.03:0.02:4",    // tolerate sparse packets
        "symmetric:1.03",           // no fast collapse
        "fixed:10us",
        "fixed:1000us",
    };
    for (const char *workload : {"nas.cg", "namd"}) {
        for (const char *spec : policies) {
            auto run = harness.run(workload, 8, spec);
            table.addRow({run.policy, workload,
                          fmtPercent(harness.error(run)),
                          fmtSpeedup(harness.speedup(run))});
        }
    }
    aqsim::bench::emit(table,
                       "Ablation 2: policy shape comparison (8 nodes)",
                       csv);
}

void
optimisticModel(Harness &harness, bool csv)
{
    // Model the paper's Section 3 argument. An optimistic simulator
    // runs without barriers (host time = busy work only, no quantum
    // overhead — the best possible case) but must roll back on every
    // straggler. Checkpoint restore for a full-system node:
    // "A single checkpointing-rollback phase for a node can easily
    // last in the order of 30-40 seconds".
    const double rollback_ns = 30e9;
    Table table({"approach", "host time (s)", "vs. ground truth"});
    for (const char *workload : {"nas.cg", "namd"}) {
        const auto &gt = harness.groundTruth(workload, 8);
        // Straggler frequency proxy: what a generous 1000us window
        // observes (optimistic execution is unsynchronized, so its
        // conflict rate is at least this).
        auto coarse = harness.run(workload, 8, "fixed:1000us");
        // Optimistic: no synchronization overhead at all ...
        const double optimistic_work =
            gt.hostNs * 0.3; // generously assume barriers were 70%
        // ... but every straggler is a rollback.
        const double optimistic_total =
            optimistic_work +
            static_cast<double>(coarse.stragglers) * rollback_ns;
        auto dyn = harness.run(workload, 8,
                               "dyn:1.03:0.02:1us:1000us");

        char gt_s[32], opt_s[32], dyn_s[32];
        std::snprintf(gt_s, sizeof(gt_s), "%.2f", gt.hostNs * 1e-9);
        std::snprintf(opt_s, sizeof(opt_s), "%.2f",
                      optimistic_total * 1e-9);
        std::snprintf(dyn_s, sizeof(dyn_s), "%.2f",
                      dyn.hostNs * 1e-9);
        table.addRow({std::string(workload) + " conservative 1us",
                      gt_s, "1.0x"});
        table.addRow(
            {std::string(workload) + " optimistic (modeled)", opt_s,
             fmtSpeedup(gt.hostNs / optimistic_total)});
        table.addRow({std::string(workload) + " adaptive quantum",
                      dyn_s, fmtSpeedup(gt.hostNs / dyn.hostNs)});
    }
    aqsim::bench::emit(
        table,
        "Ablation 3: modeled optimistic (checkpoint/rollback) "
        "synchronization, 30s per rollback",
        csv);
}

void
switchModels(double scale, std::uint64_t seed, bool csv)
{
    Table table(
        {"switch", "workload", "sim time (ms)", "stragglers"});
    for (const char *workload : {"nas.is", "namd"}) {
        for (bool store_and_forward : {false, true}) {
            auto wl = workloads::makeWorkload(workload, 8, scale);
            auto policy =
                core::parsePolicy("dyn:1.03:0.02:1us:1000us");
            auto params = defaultCluster(8, seed);
            if (store_and_forward)
                params.network.switchModel =
                    std::make_shared<net::StoreAndForwardSwitch>(
                        8, 10.0, 500);
            engine::SequentialEngine engine;
            auto run = engine.run(params, *wl, *policy);
            table.addRow(
                {store_and_forward ? "store-and-forward" : "perfect",
                 workload,
                 fmtDouble(static_cast<double>(run.simTicks) * 1e-6,
                           3),
                 std::to_string(run.stragglers)});
        }
    }
    aqsim::bench::emit(table, "Ablation 4: switch timing model", csv);
}

void
topologies(double scale, std::uint64_t seed, bool csv)
{
    // The adaptive policy needs no topology-specific tuning: the
    // packet count it reacts to is topology-independent, while the
    // safe minimum quantum (T) grows with the one-hop latency.
    Table table({"topology", "diameter", "sim time (ms)",
                 "accuracy error", "speedup"});
    for (const char *name : {"star", "ring", "torus", "tree"}) {
        net::TopologyParams topo;
        topo.kind = net::parseTopology(name);
        topo.hopLatency = 300;
        topo.radix = 4; // two leaf switches at 8 nodes

        auto run_policy = [&](const char *spec) {
            auto wl = workloads::makeWorkload("nas.cg", 8, scale);
            auto policy = core::parsePolicy(spec);
            auto params = defaultCluster(8, seed);
            params.network.switchModel =
                std::make_shared<net::TopologySwitch>(8, topo);
            engine::SequentialEngine engine;
            return engine.run(params, *wl, *policy);
        };
        auto gt = run_policy("fixed:1us");
        auto dyn = run_policy("dyn:1.03:0.02:1us:1000us");
        net::TopologySwitch probe(8, topo);
        table.addRow(
            {name, std::to_string(probe.diameter()),
             fmtDouble(static_cast<double>(dyn.simTicks) * 1e-6, 3),
             fmtPercent(engine::accuracyError(dyn, gt)),
             fmtSpeedup(engine::speedup(dyn, gt))});
    }
    aqsim::bench::emit(table,
                       "Ablation 5: adaptive sync across topologies "
                       "(nas.cg, 8 nodes, 300ns hops)",
                       csv);
}

void
samplingCpu(double scale, std::uint64_t seed, bool csv)
{
    // The paper's future work: "combine this technique with
    // 'sampling' of the individual node simulators to take further
    // advantage of another accuracy/speed tradeoff."
    Table table({"node simulator", "detail", "host time (s)",
                 "metric vs detailed"});
    double detailed_metric = 0.0;
    for (double detail : {1.0, 0.5, 0.1, 0.02}) {
        auto wl = workloads::makeWorkload("nas.ep", 8, scale);
        auto policy = core::parsePolicy("dyn:1.05:0.02:1us:1000us");
        auto params = defaultCluster(8, seed);
        if (detail < 1.0) {
            params.samplingCpu = true;
            params.sampling.detailFraction = detail;
            params.sampling.timingNoise = 0.03;
        }
        engine::SequentialEngine engine;
        auto run = engine.run(params, *wl, *policy);
        if (detail == 1.0)
            detailed_metric = run.metric;
        char host_s[32];
        std::snprintf(host_s, sizeof(host_s), "%.2f",
                      run.hostNs * 1e-9);
        table.addRow({detail == 1.0 ? "detailed" : "sampling",
                      fmtPercent(detail), host_s,
                      fmtPercent(std::abs(run.metric -
                                          detailed_metric) /
                                 detailed_metric)});
    }
    aqsim::bench::emit(
        table,
        "Ablation 6: adaptive sync + node-simulator sampling (the "
        "paper's future-work combination; nas.ep, 8 nodes)",
        csv);
}

void
noiseSensitivity(double scale, std::uint64_t seed, bool csv)
{
    // How host-speed heterogeneity (the source of node skew) drives
    // straggler rate and accuracy error at a coarse fixed quantum.
    Table table({"host noise sigma", "stragglers", "accuracy error"});
    for (double sigma : {0.0, 0.1, 0.25, 0.5}) {
        auto run_with = [&](const char *spec) {
            auto wl = workloads::makeWorkload("nas.cg", 8, scale);
            auto policy = core::parsePolicy(spec);
            auto params = defaultCluster(8, seed);
            engine::EngineOptions options;
            options.host.noiseSigma = sigma;
            engine::SequentialEngine engine(options);
            return engine.run(params, *wl, *policy);
        };
        auto gt = run_with("fixed:1us");
        auto coarse = run_with("fixed:300us");
        table.addRow({fmtDouble(sigma, 2),
                      fmtPercent(coarse.stragglerFraction()),
                      fmtPercent(engine::accuracyError(coarse, gt))});
    }
    aqsim::bench::emit(table,
                       "Ablation 7: host-speed heterogeneity vs. "
                       "accuracy at fixed 300us (nas.cg, 8 nodes)",
                       csv);
}

void
stragglerPolicies(double scale, std::uint64_t seed, bool csv)
{
    // The paper's Section 3 choice: deliver stragglers immediately
    // ("the only possibility we have") vs. the simpler alternative of
    // deferring them to the next quantum boundary.
    Table table({"straggler policy", "workload", "sim-time ratio",
                 "accuracy error"});
    for (const char *workload : {"nas.is", "namd"}) {
        auto run_with = [&](engine::StragglerPolicy sp,
                            const char *spec) {
            auto wl = workloads::makeWorkload(workload, 8, scale);
            auto policy = core::parsePolicy(spec);
            auto params = defaultCluster(8, seed);
            engine::EngineOptions options;
            options.stragglerPolicy = sp;
            engine::SequentialEngine engine(options);
            return engine.run(params, *wl, *policy);
        };
        auto gt = run_with(engine::StragglerPolicy::DeliverNow,
                           "fixed:1us");
        for (auto sp : {engine::StragglerPolicy::DeliverNow,
                        engine::StragglerPolicy::DeferToNextQuantum}) {
            auto run = run_with(sp, "fixed:100us");
            table.addRow(
                {sp == engine::StragglerPolicy::DeliverNow
                     ? "deliver now (paper)"
                     : "defer to next quantum",
                 workload,
                 fmtRatio(engine::simTimeRatio(run, gt)),
                 fmtPercent(engine::accuracyError(run, gt))});
        }
    }
    aqsim::bench::emit(table,
                       "Ablation 8: straggler handling at fixed "
                       "100us (8 nodes)",
                       csv);
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = aqsim::bench::BenchOptions::parse(argc, argv);
    Harness harness(options.scale * 0.5, options.seed);
    sweepIncDec(harness, options.csv);
    comparePolicyShapes(harness, options.csv);
    optimisticModel(harness, options.csv);
    switchModels(options.scale * 0.5, options.seed, options.csv);
    topologies(options.scale * 0.5, options.seed, options.csv);
    samplingCpu(options.scale * 0.5, options.seed, options.csv);
    noiseSensitivity(options.scale * 0.25, options.seed, options.csv);
    stragglerPolicies(options.scale * 0.5, options.seed, options.csv);
    return 0;
}
