/**
 * @file
 * Reproduces paper Figure 8: the Pareto optimality curve of the
 * speed/accuracy tradeoff on 8-node clusters.
 *
 * Every (configuration x {NAS aggregate, NAMD}) pair becomes a point
 * (accuracy error, speedup); the bench prints all points, marks the
 * Pareto-optimal ones, and renders the plane as an ASCII chart
 * (speedup on a log axis, as in the paper).
 *
 * Expected shape: all adaptive configurations lie on or very near the
 * Pareto front, while coarse fixed quanta buy their speed with
 * unacceptable error.
 */

#include <algorithm>
#include <cmath>

#include "bench_util.hh"
#include "harness/pareto.hh"
#include "workloads/workload.hh"

using namespace aqsim;
using namespace aqsim::harness;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv, {"nodes"});
    Args args(argc, argv, {"scale", "seed", "csv", "verbose", "nodes"});
    const auto nodes =
        static_cast<std::size_t>(args.getInt("nodes", 8));

    Harness harness(options.scale, options.seed);
    const auto nas = workloads::nasWorkloadNames();

    std::vector<TradeoffPoint> points;
    for (const auto &config : paperConfigs()) {
        // NAS aggregate point.
        std::vector<double> gt_mops, run_mops;
        double gt_host = 0.0, run_host = 0.0;
        for (const auto &workload : nas) {
            const auto &gt = harness.groundTruth(workload, nodes);
            auto run = harness.run(workload, nodes, config.spec);
            gt_mops.push_back(gt.metric);
            run_mops.push_back(run.metric);
            gt_host += gt.hostNs;
            run_host += run.hostNs;
        }
        const double gt_agg = harmonicMean(gt_mops);
        const double nas_err =
            std::abs(harmonicMean(run_mops) - gt_agg) / gt_agg;
        points.push_back(
            {"NAS " + config.label, nas_err, gt_host / run_host});

        // NAMD point.
        auto namd = harness.run("namd", nodes, config.spec);
        points.push_back({"NAMD " + config.label,
                          harness.error(namd),
                          harness.speedup(namd)});
    }

    auto front = paretoFront(points);

    Table table({"point", "accuracy error", "speedup", "pareto"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const bool optimal = isParetoOptimal(points, i);
        table.addRow({points[i].label, fmtPercent(points[i].error),
                      fmtSpeedup(points[i].speedup),
                      optimal ? "*" : ""});
    }
    bench::emit(table,
                "Figure 8: speed vs. accuracy tradeoff, " +
                    std::to_string(nodes) + " nodes (* = Pareto "
                    "optimal)",
                options.csv);

    if (!options.csv) {
        // ASCII rendering of the tradeoff plane (log-y speedup).
        std::cout << "\nTradeoff plane (x: accuracy error %, y: "
                     "speedup, log scale; o=fixed a=adaptive "
                     "A/O=on the Pareto front):\n";
        constexpr std::size_t width = 64, height = 16;
        double max_err = 0.01;
        double max_speed = 2.0;
        for (const auto &p : points) {
            max_err = std::max(max_err, p.error);
            max_speed = std::max(max_speed, p.speedup);
        }
        std::vector<std::string> rows(height,
                                      std::string(width, ' '));
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto &p = points[i];
            const auto col = static_cast<std::size_t>(
                p.error / max_err * static_cast<double>(width - 1));
            const double frac =
                std::log10(std::max(1.0, p.speedup)) /
                std::log10(max_speed);
            const auto row = height - 1 -
                             static_cast<std::size_t>(
                                 frac * static_cast<double>(height - 1));
            const bool adaptive =
                p.label.find("dyn") != std::string::npos;
            char glyph = adaptive ? 'a' : 'o';
            if (isParetoOptimal(points, i))
                glyph = adaptive ? 'A' : 'O';
            rows[row][col] = glyph;
        }
        for (std::size_t r = 0; r < height; ++r) {
            const double frac = static_cast<double>(height - 1 - r) /
                                static_cast<double>(height - 1);
            std::printf("%7.1fx |%s\n",
                        std::pow(10.0, frac * std::log10(max_speed)),
                        rows[r].c_str());
        }
        std::printf("         +%s\n          error: 0%% .. %.0f%%\n",
                    std::string(width, '-').c_str(), max_err * 100.0);
    }
    return 0;
}
