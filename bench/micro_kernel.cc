/**
 * @file
 * Microbenchmarks (google-benchmark) of the simulation kernel: event
 * queue throughput, coroutine switching, RNG, statistics sampling.
 */

#include <benchmark/benchmark.h>

#include "base/random.hh"
#include "sim/event_queue.hh"
#include "sim/process.hh"
#include "stats/histogram.hh"

using namespace aqsim;

namespace
{

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const auto batch = static_cast<std::uint64_t>(state.range(0));
    sim::EventQueue q;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        for (std::uint64_t i = 0; i < batch; ++i)
            q.schedule(q.now() + 1 + (i * 7919) % 1000,
                       [&sink] { ++sink; });
        while (q.runOne()) {}
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * batch));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(64)->Arg(1024)->Arg(16384);

void
BM_EventQueueCancel(benchmark::State &state)
{
    sim::EventQueue q;
    for (auto _ : state) {
        auto id = q.schedule(q.now() + 100, [] {});
        benchmark::DoNotOptimize(q.deschedule(id));
    }
}
BENCHMARK(BM_EventQueueCancel);

/**
 * Timeout-style churn: schedule a window of events, cancel half, run
 * the rest. Exercises O(1) generation-counted cancellation plus the
 * lazy stale-entry pruning in the heap — the NIC/MPI timeout pattern.
 */
void
BM_EventQueueCancelChurn(benchmark::State &state)
{
    constexpr int window = 256;
    sim::EventQueue q;
    std::vector<sim::EventQueue::EventId> ids;
    ids.reserve(window);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        ids.clear();
        for (int i = 0; i < window; ++i)
            ids.push_back(q.schedule(q.now() + 1 + (i * 31) % 97,
                                     [&sink] { ++sink; }));
        for (int i = 0; i < window; i += 2)
            q.deschedule(ids[static_cast<std::size_t>(i)]);
        while (q.runOne()) {}
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * window);
}
BENCHMARK(BM_EventQueueCancelChurn);

sim::Process
delayLoop(sim::EventQueue &q, std::size_t hops)
{
    for (std::size_t i = 0; i < hops; ++i)
        co_await sim::DelayAwaitable(q, 1);
}

void
BM_CoroutineDelayChain(benchmark::State &state)
{
    const auto hops = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        sim::EventQueue q;
        auto p = delayLoop(q, hops);
        p.start();
        while (q.runOne()) {}
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(hops));
}
BENCHMARK(BM_CoroutineDelayChain)->Arg(100)->Arg(1000);

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngLognormal(benchmark::State &state)
{
    Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.lognormalMean(1.0, 0.2));
}
BENCHMARK(BM_RngLognormal);

void
BM_HistogramSample(benchmark::State &state)
{
    stats::Group g("bench");
    auto &h = g.add<stats::Histogram>("h", "", 0.0, 1000.0, 64);
    Rng rng(7);
    for (auto _ : state)
        h.sample(rng.uniform(0.0, 1100.0));
}
BENCHMARK(BM_HistogramSample);

void
BM_Log2DistSample(benchmark::State &state)
{
    stats::Group g("bench");
    auto &d = g.add<stats::Log2Distribution>("d", "");
    Rng rng(7);
    for (auto _ : state)
        d.sample(rng.next() & 0xffffff);
}
BENCHMARK(BM_Log2DistSample);

} // namespace
