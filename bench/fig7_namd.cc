/**
 * @file
 * Reproduces paper Figure 7: NAMD accuracy (left) and speedup (right)
 * for 2-, 4- and 8-node clusters, same configurations as Figure 6.
 *
 * NAMD self-reports wall-clock time, so the accuracy error is the
 * relative deviation of simulated completion time from the 1 us
 * ground truth. Expected shape: errors noticeably larger than NAS for
 * the coarse fixed quanta (paper: ~20% at 1000 us) but under ~6% for
 * the adaptive configs; speedups comparable to NAS.
 */

#include "bench_util.hh"

using namespace aqsim;
using namespace aqsim::harness;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv);
    Harness harness(options.scale, options.seed);
    const std::vector<std::size_t> node_counts{2, 4, 8};
    auto configs = paperConfigs();

    Table accuracy({"config", "n=2", "n=4", "n=8"});
    Table speed({"config", "n=2", "n=4", "n=8"});

    for (const auto &config : configs) {
        std::vector<std::string> acc_row{config.label};
        std::vector<std::string> speed_row{config.label};
        for (std::size_t nodes : node_counts) {
            auto run = harness.run("namd", nodes, config.spec);
            acc_row.push_back(fmtPercent(harness.error(run)));
            speed_row.push_back(fmtSpeedup(harness.speedup(run)));
            if (options.verbose)
                std::fprintf(stderr, "%s\n", run.summary().c_str());
        }
        accuracy.addRow(acc_row);
        speed.addRow(speed_row);
    }

    bench::emit(accuracy,
                "Figure 7 (left): NAMD accuracy error vs. 1us ground "
                "truth (reported wall-clock)",
                options.csv);
    bench::emit(speed,
                "Figure 7 (right): NAMD simulation speedup vs. 1us "
                "ground truth",
                options.csv);
    return 0;
}
