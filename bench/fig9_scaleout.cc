/**
 * @file
 * Reproduces paper Section 6 / Figure 9: the 64-node scale-out case
 * study on NAS-EP, NAS-IS and NAMD.
 *
 * For each benchmark this harness emits
 *   - the packet-traffic-over-time chart (Fig. 9 left: one row per
 *     node, density-coded marks) from the ground-truth run,
 *   - the simulation-speedup-over-time series of the adaptive run
 *     versus the 1 us ground truth (Fig. 9 right, log scale),
 *   - the paper's summary table: acceleration and accuracy (EP, NAMD)
 *     or simulated-execution-time ratio (IS) for fixed 100 us, fixed
 *     10 us and the adaptive configuration the paper uses for that
 *     benchmark (EP/IS: dyn 1..100 us; NAMD: dyn 2..100 us).
 *
 * Expected shapes: EP — large speedup at negligible error (sparse
 * traffic); IS — the accuracy worst case: fixed quanta dilate
 * simulated time by orders of magnitude, the adaptive policy recovers
 * to a small ratio; NAMD — the speed worst case: continuous traffic
 * caps every configuration's speedup and the adaptive policy settles
 * near the best fixed quantum.
 */

#include <cmath>

#include "bench_util.hh"
#include "trace/ascii_plot.hh"
#include "trace/timeline.hh"
#include "workloads/workload.hh"

using namespace aqsim;
using namespace aqsim::harness;

namespace
{

constexpr std::size_t scaleOutNodes = 64;

struct CaseSpec
{
    const char *workload;
    double scale;           // relative to BenchOptions::scale = 1
    const char *dynSpec;
    const char *dynLabel;
    bool simTimeRatioMetric; // IS reports the sim-time ratio
};

engine::RunResult
run(const ExperimentConfig &base, const std::string &policy,
    bool timeline, trace::PacketTrace *trace_out)
{
    ExperimentConfig config = base;
    config.policySpec = policy;
    config.recordTimeline = timeline;
    config.recordTrace = trace_out != nullptr;
    auto out = runExperiment(config);
    if (trace_out)
        *trace_out = std::move(out.trace);
    return out.result;
}

void
runCase(const CaseSpec &spec, const aqsim::bench::BenchOptions &options)
{
    ExperimentConfig base;
    base.workload = spec.workload;
    base.numNodes = scaleOutNodes;
    base.scale = spec.scale * options.scale;
    base.seed = options.seed;

    // Ground truth with trace + timeline.
    trace::PacketTrace trace;
    auto gt = run(base, groundTruthSpec, true, &trace);
    const double gt_rate =
        gt.hostNs / static_cast<double>(gt.simTicks);

    // Comparison configurations.
    auto q100 = run(base, "fixed:100us", false, nullptr);
    auto q10 = run(base, "fixed:10us", false, nullptr);
    auto dyn = run(base, spec.dynSpec, true, nullptr);

    if (!options.csv) {
        std::printf("\n===== 64-node %s =====\n", spec.workload);
        std::printf(
            "ground truth: sim=%.3f ms, %llu packets, %llu quanta\n",
            static_cast<double>(gt.simTicks) * 1e-6,
            static_cast<unsigned long long>(gt.packets),
            static_cast<unsigned long long>(gt.quanta));
        std::printf("\nTraffic over time (Fig. 9 left; rows=nodes, "
                    "columns=time):\n%s",
                    trace::renderTrafficMap(trace.records(),
                                            scaleOutNodes, 100)
                        .c_str());

        // Speedup-over-time of the adaptive run (Fig. 9 right).
        const Tick window = std::max<Tick>(dyn.simTicks / 60, 1);
        auto series =
            trace::speedupOverTime(dyn.timeline, gt_rate, window);
        std::vector<double> xs, ys;
        for (const auto &pt : series) {
            xs.push_back(static_cast<double>(pt.simTime) * 1e-6);
            ys.push_back(pt.value);
        }
        std::printf("\nSpeedup over time vs 1us quantum (%s):\n%s",
                    spec.dynLabel,
                    trace::renderLogSeries(xs, ys, 80, 12,
                                           "speedup vs 1us")
                        .c_str());
    }

    // The paper's summary table for this benchmark.
    const char *metric_name = spec.simTimeRatioMetric
                                  ? "Simulated Exec. Ratio vs. 1us"
                                  : "Accuracy Error vs. 1us";
    Table table({"Quantum", "Acceleration vs. 1us", metric_name});
    auto add = [&](const std::string &label,
                   const engine::RunResult &r) {
        const double accel = engine::speedup(r, gt);
        std::string metric;
        if (spec.simTimeRatioMetric)
            metric = fmtRatio(engine::simTimeRatio(r, gt));
        else
            metric = fmtPercent(engine::accuracyError(r, gt));
        table.addRow({label, fmtSpeedup(accel), metric});
    };
    add("100us", q100);
    add("10us", q10);
    add(spec.dynLabel, dyn);
    aqsim::bench::emit(table,
                       std::string("Section 6 table: ") +
                           spec.workload + " at 64 nodes",
                       options.csv);
}

} // namespace

int
main(int argc, char **argv)
{
    auto options = aqsim::bench::BenchOptions::parse(argc, argv);
    // Defaults chosen so each ground-truth run stays in the
    // few-thousand-quanta range; --scale rescales all three.
    const CaseSpec cases[] = {
        {"nas.ep", 16.0, "dyn:1.03:0.02:1us:100us", "dyn 1:100",
         false},
        {"nas.is", 1.0, "dyn:1.03:0.02:1us:100us", "dyn 1:100", true},
        {"namd", 4.0, "dyn:1.03:0.02:2us:100us", "dyn 2:100", false},
    };
    for (const auto &spec : cases)
        runCase(spec, options);
    return 0;
}
