/** Tests for the NIC transmit/receive model. */

#include <gtest/gtest.h>

#include <vector>

#include "net/network_controller.hh"
#include "node/nic_model.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

using namespace aqsim;
using namespace aqsim::net;
using namespace aqsim::node;

namespace
{

class CaptureScheduler : public DeliveryScheduler
{
  public:
    Tick
    place(const PacketPtr &pkt, DeliveryKind &kind) override
    {
        kind = DeliveryKind::OnTime;
        packets.push_back(pkt);
        return pkt->idealArrival;
    }

    std::vector<PacketPtr> packets;
};

struct NicFixture : public ::testing::Test
{
    NicFixture()
        : root("cluster"), controller(2, NetworkParams{}, root),
          nic(0, queue, controller, root)
    {
        controller.setScheduler(&scheduler);
    }

    stats::Group root;
    CaptureScheduler scheduler;
    sim::EventQueue queue;
    NetworkController controller;
    NicModel nic;
};

} // namespace

TEST_F(NicFixture, DepartIncludesOverheadSerializationAndLatency)
{
    queue.schedule(1000, [&] { nic.send(1, 9000, nullptr); });
    queue.runOne();
    ASSERT_EQ(scheduler.packets.size(), 1u);
    const auto &pkt = *scheduler.packets[0];
    EXPECT_EQ(pkt.sendTick, 1000u);
    // 1000 + txOverhead 100 + 9000B at 10B/ns (900) + txLatency 500.
    EXPECT_EQ(pkt.departTick, 1000u + 100u + 900u + 500u);
}

TEST_F(NicFixture, BackToBackFramesQueueOnSerialization)
{
    queue.schedule(0, [&] {
        nic.send(1, 9000, nullptr);
        nic.send(1, 9000, nullptr);
    });
    queue.runOne();
    ASSERT_EQ(scheduler.packets.size(), 2u);
    const Tick d0 = scheduler.packets[0]->departTick;
    const Tick d1 = scheduler.packets[1]->departTick;
    // Second frame waits for the first one's serialization slot.
    EXPECT_EQ(d1 - d0, 900u);
    EXPECT_EQ(nic.txBusyUntil(), 100u + 900u + 900u);
}

TEST_F(NicFixture, IdleGapResetsQueueing)
{
    queue.schedule(0, [&] { nic.send(1, 9000, nullptr); });
    queue.runOne();
    queue.schedule(50000, [&] { nic.send(1, 9000, nullptr); });
    queue.runOne();
    const Tick d1 = scheduler.packets[1]->departTick;
    EXPECT_EQ(d1, 50000u + 100u + 900u + 500u);
}

TEST_F(NicFixture, DeliverySchedulesRxEventAndInvokesHandler)
{
    std::vector<std::pair<Tick, std::uint32_t>> received;
    nic.setRxHandler([&](const PacketPtr &pkt) {
        received.emplace_back(queue.now(), pkt->bytes);
    });
    auto pkt = makePacket(1, 0, 777, 0);
    nic.deliverAt(pkt, 4242);
    queue.runUntil(10000);
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].first, 4242u);
    EXPECT_EQ(received[0].second, 777u);
}

TEST_F(NicFixture, StatsCountFrames)
{
    nic.setRxHandler([](const PacketPtr &) {});
    queue.schedule(0, [&] { nic.send(1, 500, nullptr); });
    queue.runOne();
    nic.deliverAt(makePacket(1, 0, 200, 0), 100);
    queue.runUntil(1000);
    const auto *tx = root.find("node-less"); // not present
    EXPECT_EQ(tx, nullptr);
    // The NIC registers its stats under the group passed at
    // construction (here the root itself).
    const auto *tx_frames = root.find("nic.txFrames");
    const auto *rx_frames = root.find("nic.rxFrames");
    ASSERT_NE(tx_frames, nullptr);
    ASSERT_NE(rx_frames, nullptr);
    EXPECT_DOUBLE_EQ(tx_frames->rows()[0].second, 1.0);
    EXPECT_DOUBLE_EQ(rx_frames->rows()[0].second, 1.0);
}

TEST_F(NicFixture, OversizedFramePanics)
{
    queue.schedule(0, [&] { nic.send(1, 9001, nullptr); });
    EXPECT_DEATH(queue.runOne(), "assertion");
}
