#ifndef TYPES_HH
#define TYPES_HH
using Tick = unsigned long long;
#endif
