#include "net/packet.hh"
#include "base/types.hh"
#include <map>
#include <set>
// prose mentioning unordered_map in a comment is fine
const char *banner = "unordered_set in a string is fine too";
std::map<Tick, Packet> byTick;
