#ifndef PACKET_HH
#define PACKET_HH
#include "base/types.hh"
struct Packet { Tick departTick; };
#endif
