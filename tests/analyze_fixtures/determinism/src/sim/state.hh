#ifndef STATE_HH
#define STATE_HH
#include <map>
#include <set>
#include <unordered_map>
struct Node;
std::unordered_map<int, int> histogram;
std::map<Node *, int> byNode;
std::set<std::shared_ptr<Node>,
         std::less<std::shared_ptr<Node>>> owners;
std::map<int, Node *> byId; // pointer VALUES are fine, keys are not
#endif
