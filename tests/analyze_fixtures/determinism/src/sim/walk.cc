#include "sim/state.hh"
bool overlapping(Q &a, Q &b)
{
    return a.begin() < b.end();
}
bool selfRange(Q &a)
{
    return a.begin() < a.end(); // same container: fine
}
