struct Q;
void drive(Q &queue, Q *other)
{
    queue.runOne();
    other->fastForwardTo(100);
    queue.schedule(5, 0); // direct mutation bypasses the seam
    runNodeQuantum();     // the seam helper itself is fine
    queue.scheduleIn(7);
}
