struct Q;
void runNodeQuantum(Q &queue)
{
    queue.runOne(); // legal: this file IS the seam
    queue.fastForwardTo(100);
}
