struct Q;
void selfTest(Q &queue)
{
    queue.runOne(); // legal: the rule scopes to the engine module
}
