struct Q;
void deliver(Q &queue)
{
    queue.schedule(1, 0); // the node module owns its queues
}
