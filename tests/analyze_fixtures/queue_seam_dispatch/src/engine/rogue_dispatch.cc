struct Nic;
void exchange(Nic &nic, Nic *other)
{
    nic.deliverAt(0, 5);   // direct dispatch bypasses the seam
    other->deliverAt(0, 9);
    dispatchDelivery();    // the seam helpers themselves are fine
    deliverUrgent();
}
