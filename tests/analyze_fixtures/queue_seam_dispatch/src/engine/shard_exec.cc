struct Nic;
void dispatchDelivery(Nic &nic)
{
    nic.deliverAt(0, 1); // the seam owns post-exchange dispatch
}
