#ifndef CHECKPOINT_HH
#define CHECKPOINT_HH
#include <cstdint>
#include <string>
struct CheckpointImage
{
    std::uint64_t quantumIndex = 0;
    std::uint64_t configHash = 0;
    std::string engine;
    std::uint64_t forgottenField = 0;
    bool isValid() const { return configHash != 0; }
};
#endif
