#include "ckpt/checkpoint.hh"
void encode(const CheckpointImage &img)
{
    use(img.quantumIndex);
    use(img.configHash);
    use(img.engine);
}
