#ifndef CLOCK_HH
#define CLOCK_HH
#include "engine/driver.hh"
#endif
