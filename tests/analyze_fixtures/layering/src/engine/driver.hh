#ifndef DRIVER_HH
#define DRIVER_HH
#include "base/clock.hh"
#endif
