#ifndef WIRE_HH
#define WIRE_HH
#include "harness/bench.hh"
#endif
