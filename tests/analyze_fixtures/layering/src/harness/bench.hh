#ifndef BENCH_HH
#define BENCH_HH
#include "net/wire.hh"
#endif
