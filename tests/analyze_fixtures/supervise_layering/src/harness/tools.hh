#ifndef TOOLS_HH
#define TOOLS_HH
#endif
