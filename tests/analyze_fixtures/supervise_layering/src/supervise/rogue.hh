#ifndef ROGUE_HH
#define ROGUE_HH
#include "harness/tools.hh"
#endif
