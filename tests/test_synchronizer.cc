/** Tests for the quantum-barrier synchronizer bookkeeping. */

#include <gtest/gtest.h>

#include "core/synchronizer.hh"
#include "net/network_controller.hh"
#include "stats/stats.hh"

using namespace aqsim;
using namespace aqsim::core;

namespace
{

class NullScheduler : public net::DeliveryScheduler
{
  public:
    Tick
    place(const net::PacketPtr &pkt, net::DeliveryKind &kind) override
    {
        kind = net::DeliveryKind::OnTime;
        return pkt->idealArrival;
    }
};

struct SyncFixture : public ::testing::Test
{
    SyncFixture() : root("cluster"), controller(2, {}, root)
    {
        controller.setScheduler(&scheduler);
    }

    void
    injectOne()
    {
        auto pkt = net::makePacket(0, 1, 100, 0);
        controller.inject(pkt);
    }

    stats::Group root;
    NullScheduler scheduler;
    net::NetworkController controller;
};

} // namespace

TEST_F(SyncFixture, BeginOpensFirstWindowAtZero)
{
    FixedQuantumPolicy policy(microseconds(10));
    Synchronizer sync(policy, controller, root, false);
    sync.begin();
    EXPECT_EQ(sync.quantumStart(), 0u);
    EXPECT_EQ(sync.quantumEnd(), microseconds(10));
    EXPECT_EQ(sync.quantumLength(), microseconds(10));
}

TEST_F(SyncFixture, CompleteAdvancesWindowContiguously)
{
    FixedQuantumPolicy policy(microseconds(10));
    Synchronizer sync(policy, controller, root, false);
    sync.begin();
    sync.completeQuantum(1000.0);
    EXPECT_EQ(sync.quantumStart(), microseconds(10));
    EXPECT_EQ(sync.quantumEnd(), microseconds(20));
    sync.completeQuantum(1000.0);
    EXPECT_EQ(sync.quantumStart(), microseconds(20));
    EXPECT_EQ(sync.numQuanta(), 2u);
}

TEST_F(SyncFixture, FeedsPacketCountToPolicy)
{
    AdaptiveQuantumPolicy policy({});
    Synchronizer sync(policy, controller, root, false);
    sync.begin();
    EXPECT_EQ(sync.quantumLength(), microseconds(1));

    // Silent quantum: quantum grows.
    sync.completeQuantum(1.0);
    const Tick grown = sync.quantumLength();
    EXPECT_GT(grown, microseconds(1));

    // Grow further, then traffic collapses it.
    for (int i = 0; i < 500; ++i)
        sync.completeQuantum(1.0);
    const Tick big = sync.quantumLength();
    EXPECT_GT(big, microseconds(100));
    injectOne();
    sync.completeQuantum(1.0);
    EXPECT_LT(sync.quantumLength(), big);
}

TEST_F(SyncFixture, PacketCounterResetsEachQuantum)
{
    AdaptiveQuantumPolicy policy({});
    Synchronizer sync(policy, controller, root, false);
    sync.begin();
    injectOne();
    EXPECT_EQ(controller.packetsThisQuantum(), 1u);
    sync.completeQuantum(1.0);
    EXPECT_EQ(controller.packetsThisQuantum(), 0u);
}

TEST_F(SyncFixture, TimelineRecordsWhenEnabled)
{
    FixedQuantumPolicy policy(microseconds(5));
    Synchronizer sync(policy, controller, root, true);
    sync.begin();
    injectOne();
    injectOne();
    sync.completeQuantum(777.0);
    sync.completeQuantum(888.0);
    const auto &timeline = sync.stats().timeline();
    ASSERT_EQ(timeline.size(), 2u);
    EXPECT_EQ(timeline[0].start, 0u);
    EXPECT_EQ(timeline[0].length, microseconds(5));
    EXPECT_EQ(timeline[0].packets, 2u);
    EXPECT_DOUBLE_EQ(timeline[0].hostNs, 777.0);
    EXPECT_EQ(timeline[1].packets, 0u);
}

TEST_F(SyncFixture, TimelineNotRecordedWhenDisabled)
{
    FixedQuantumPolicy policy(microseconds(5));
    Synchronizer sync(policy, controller, root, false);
    sync.begin();
    sync.completeQuantum(1.0);
    EXPECT_TRUE(sync.stats().timeline().empty());
    EXPECT_EQ(sync.numQuanta(), 1u);
}

TEST_F(SyncFixture, ConservativeOnlyForFixedPolicyWithinT)
{
    FixedQuantumPolicy safe(microseconds(1));
    Synchronizer s1(safe, controller, root, false);
    EXPECT_TRUE(s1.conservative());

    FixedQuantumPolicy unsafe(microseconds(100));
    Synchronizer s2(unsafe, controller, root, false);
    EXPECT_FALSE(s2.conservative());

    AdaptiveQuantumPolicy adaptive({});
    Synchronizer s3(adaptive, controller, root, false);
    EXPECT_FALSE(s3.conservative());
}

TEST_F(SyncFixture, MeanQuantumLengthAggregates)
{
    AdaptiveQuantumPolicy policy({});
    Synchronizer sync(policy, controller, root, false);
    sync.begin();
    Tick total = 0;
    for (int i = 0; i < 10; ++i) {
        total += sync.quantumLength();
        sync.completeQuantum(1.0);
    }
    EXPECT_DOUBLE_EQ(sync.stats().meanQuantumLength(),
                     static_cast<double>(total) / 10.0);
}

TEST_F(SyncFixture, StragglerDeltaRecordedPerQuantum)
{
    // Scheduler that marks everything a straggler.
    class LateScheduler : public net::DeliveryScheduler
    {
      public:
        Tick
        place(const net::PacketPtr &pkt,
              net::DeliveryKind &kind) override
        {
            kind = net::DeliveryKind::Straggler;
            return pkt->idealArrival + 10;
        }
    };
    LateScheduler late;
    controller.setScheduler(&late);

    FixedQuantumPolicy policy(microseconds(5));
    Synchronizer sync(policy, controller, root, true);
    sync.begin();
    injectOne();
    sync.completeQuantum(1.0);
    injectOne();
    injectOne();
    sync.completeQuantum(1.0);
    const auto &timeline = sync.stats().timeline();
    ASSERT_EQ(timeline.size(), 2u);
    EXPECT_EQ(timeline[0].stragglers, 1u);
    EXPECT_EQ(timeline[1].stragglers, 2u);
}
