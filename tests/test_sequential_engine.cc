/** Tests for the deterministic host co-simulation engine. */

#include <gtest/gtest.h>

#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::LambdaWorkload;
using test::quietEngine;
using test::runLambda;

namespace
{

engine::RunResult
runNamed(const std::string &workload, std::size_t nodes,
         const std::string &policy, std::uint64_t seed = 1)
{
    harness::ExperimentConfig config;
    config.workload = workload;
    config.numNodes = nodes;
    config.scale = 0.1;
    config.policySpec = policy;
    config.seed = seed;
    return harness::runExperiment(config).result;
}

} // namespace

TEST(SequentialEngine, BitIdenticalReruns)
{
    const auto a = runNamed("nas.cg", 4, "fixed:10us", 7);
    const auto b = runNamed("nas.cg", 4, "fixed:10us", 7);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_DOUBLE_EQ(a.hostNs, b.hostNs);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.stragglers, b.stragglers);
    EXPECT_EQ(a.quanta, b.quanta);
    EXPECT_EQ(a.finishTicks, b.finishTicks);
}

TEST(SequentialEngine, DifferentSeedsDifferentHostTimes)
{
    const auto a = runNamed("nas.cg", 4, "fixed:10us", 7);
    const auto b = runNamed("nas.cg", 4, "fixed:10us", 8);
    EXPECT_NE(a.hostNs, b.hostNs);
}

TEST(SequentialEngine, ConservativeQuantumYieldsNoStragglers)
{
    // Q = 1us = T: the paper's safety condition.
    const auto r = runNamed("nas.is", 4, "fixed:1us");
    EXPECT_EQ(r.stragglers, 0u);
    EXPECT_EQ(r.nextQuantumDeliveries, 0u);
    EXPECT_EQ(r.latenessTicks, 0u);
}

TEST(SequentialEngine, SubLatencyQuantumAlsoSafe)
{
    const auto r = runNamed("pingpong", 2, "fixed:500ns");
    EXPECT_EQ(r.stragglers, 0u);
}

TEST(SequentialEngine, LongQuantaProduceStragglers)
{
    const auto r = runNamed("nas.is", 4, "fixed:100us");
    EXPECT_GT(r.stragglers, 0u);
    EXPECT_GT(r.latenessTicks, 0u);
}

TEST(SequentialEngine, QuantaCountMatchesSimTimeOverQuantum)
{
    const auto r = runNamed("pingpong", 2, "fixed:10us");
    // quanta ~ simTicks / 10us (final quantum may be partial).
    const auto expected = r.simTicks / microseconds(10);
    EXPECT_GE(r.quanta, expected);
    EXPECT_LE(r.quanta, expected + 2);
}

TEST(SequentialEngine, HostTimeScalesWithQuantumOverhead)
{
    // The whole point of the paper: small quanta pay per-quantum
    // overhead; 1000us quanta must be dramatically faster than 1us.
    const auto gt = runNamed("nas.ep", 4, "fixed:1us");
    const auto q1000 = runNamed("nas.ep", 4, "fixed:1000us");
    EXPECT_GT(gt.hostNs / q1000.hostNs, 10.0);
}

TEST(SequentialEngine, SlowestNodeSetsThePace)
{
    // Two nodes, one computing 10x the work, no communication. The
    // wall clock must track the slow node's cost (paper Fig. 5).
    auto options = quietEngine();
    auto fast_only = runLambda(
        2,
        [](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0)
                co_await ctx.compute(1e6);
            else
                co_await ctx.compute(1e6);
        },
        "fixed:100us", options);
    auto imbalanced = runLambda(
        2,
        [](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0)
                co_await ctx.compute(1e7);
            else
                co_await ctx.compute(1e6);
        },
        "fixed:100us", options);
    // The imbalanced cluster takes ~as long as a 1e7 pair would, far
    // longer than the balanced 1e6 pair.
    EXPECT_GT(imbalanced.hostNs, 3.0 * fast_only.hostNs);
}

TEST(SequentialEngine, IdleGuestsAreCheapToSimulate)
{
    // Simulating the same stretch of guest time costs roughly
    // idleFactor as much when the guest is idle as when it computes.
    auto options = quietEngine();
    const Tick span = milliseconds(2);
    auto busy = runLambda(
        2,
        [&](AppContext &ctx) -> sim::Process {
            // 2 ms of computation at 2.6 ops/ns.
            co_await ctx.compute(2.6 * static_cast<double>(span));
        },
        "fixed:1000us", options);
    auto idle = runLambda(
        2,
        [&](AppContext &ctx) -> sim::Process {
            co_await ctx.delay(span); // guest sleeps
        },
        "fixed:1000us", options);
    EXPECT_EQ(busy.simTicks, idle.simTicks);
    // idleFactor default 0.25; allow generous slack for fixed
    // per-quantum overheads shared by both runs.
    EXPECT_LT(idle.hostNs, busy.hostNs * 0.7);
}

TEST(SequentialEngine, AdaptiveQuantumGrowsDuringSilence)
{
    harness::ExperimentConfig config;
    config.workload = "nas.ep";
    config.numNodes = 4;
    config.scale = 1.0; // full-size EP: ~19 ms of silent compute
    config.policySpec = "dyn:1.1:0.02:1us:1000us";
    config.recordTimeline = true;
    auto out = harness::runExperiment(config);
    Tick max_q = 0;
    for (const auto &q : out.result.timeline)
        max_q = std::max(max_q, q.length);
    // EP's long silent compute lets the quantum reach its cap.
    EXPECT_EQ(max_q, microseconds(1000));
    // Mean quantum far above the minimum.
    EXPECT_GT(out.result.meanQuantumTicks, 50000.0);
}

TEST(SequentialEngine, AdaptiveQuantumStaysLowUnderDenseTraffic)
{
    harness::ExperimentConfig config;
    config.workload = "namd";
    config.numNodes = 4;
    config.scale = 0.15;
    config.policySpec = "dyn:1.03:0.02:1us:1000us";
    auto out = harness::runExperiment(config);
    // NAMD's continuous traffic keeps the mean quantum within ~20x
    // of the minimum (paper: adaptive settles near 10 us).
    EXPECT_LT(out.result.meanQuantumTicks, 30000.0);
}

TEST(SequentialEngine, MaxSimTicksGuardFires)
{
    engine::EngineOptions options;
    options.maxSimTicks = microseconds(50);
    EXPECT_EXIT(
        runLambda(
            2,
            [](AppContext &ctx) -> sim::Process {
                co_await ctx.compute(1e9); // far beyond the budget
            },
            "fixed:10us", options),
        ::testing::ExitedWithCode(1), "budget exceeded");
}

TEST(SequentialEngine, TimelineCoversWholeRun)
{
    harness::ExperimentConfig config;
    config.workload = "pingpong";
    config.numNodes = 2;
    config.policySpec = "fixed:10us";
    config.recordTimeline = true;
    auto out = harness::runExperiment(config);
    ASSERT_FALSE(out.result.timeline.empty());
    // Quanta tile simulated time contiguously from zero.
    Tick expected_start = 0;
    for (const auto &q : out.result.timeline) {
        EXPECT_EQ(q.start, expected_start);
        expected_start += q.length;
    }
    EXPECT_GE(expected_start, out.result.simTicks);
    // Host time adds up.
    HostNs total = 0.0;
    for (const auto &q : out.result.timeline)
        total += q.hostNs;
    EXPECT_NEAR(total, out.result.hostNs, 1.0);
}

TEST(SequentialEngine, PacketConservationAcrossQuanta)
{
    // Every sent message is delivered exactly once even when
    // deliveries straddle quantum boundaries.
    for (const char *policy : {"fixed:1us", "fixed:7us", "fixed:100us",
                               "dyn:1.05:0.02:1us:1000us"}) {
        std::atomic<int> received{0};
        constexpr int msgs = 50;
        runLambda(
            2,
            [&](AppContext &ctx) -> sim::Process {
                if (ctx.rank() == 0) {
                    for (int i = 0; i < msgs; ++i) {
                        co_await ctx.comm().send(1, 1, 512);
                        co_await ctx.delay(microseconds(3));
                    }
                } else {
                    for (int i = 0; i < msgs; ++i) {
                        co_await ctx.comm().recv(0, 1);
                        ++received;
                    }
                }
            },
            policy);
        EXPECT_EQ(received.load(), msgs) << policy;
    }
}
