/** Tests for the quantum policies — Algorithm 1 and its baselines. */

#include <gtest/gtest.h>

#include <cmath>

#include "base/types.hh"
#include "core/quantum_policy.hh"

using namespace aqsim;
using namespace aqsim::core;

TEST(FixedPolicy, ConstantRegardlessOfTraffic)
{
    FixedQuantumPolicy p(microseconds(10));
    EXPECT_EQ(p.initialQuantum(), microseconds(10));
    EXPECT_EQ(p.next(0), microseconds(10));
    EXPECT_EQ(p.next(1000), microseconds(10));
}

TEST(FixedPolicy, NameIncludesQuantum)
{
    FixedQuantumPolicy p(microseconds(100));
    EXPECT_EQ(p.name(), "fixed 100us");
}

TEST(AdaptivePolicy, StartsAtMinimum)
{
    AdaptiveQuantumPolicy p({});
    EXPECT_EQ(p.initialQuantum(), microseconds(1));
}

TEST(AdaptivePolicy, GrowsByIncOnSilence)
{
    AdaptiveQuantumPolicy::Params params;
    params.inc = 1.05;
    AdaptiveQuantumPolicy p(params);
    const Tick q1 = p.next(0);
    EXPECT_EQ(q1, static_cast<Tick>(std::llround(1000 * 1.05)));
    const Tick q2 = p.next(0);
    EXPECT_EQ(q2, static_cast<Tick>(std::llround(1000 * 1.05 * 1.05)));
}

TEST(AdaptivePolicy, CollapsesOnAnyTraffic)
{
    AdaptiveQuantumPolicy::Params params;
    params.dec = 0.02;
    AdaptiveQuantumPolicy p(params);
    // Grow to max first.
    Tick q = 0;
    for (int i = 0; i < 1000; ++i)
        q = p.next(0);
    EXPECT_EQ(q, params.maxQuantum);
    // A single packet collapses almost to minimum within 2 quanta:
    // 1000us * 0.02 = 20us, * 0.02 = 0.4us -> clamped to 1us.
    q = p.next(1);
    EXPECT_EQ(q, microseconds(20));
    q = p.next(5);
    EXPECT_EQ(q, microseconds(1));
}

TEST(AdaptivePolicy, ClampsToMinAndMax)
{
    AdaptiveQuantumPolicy::Params params;
    AdaptiveQuantumPolicy p(params);
    for (int i = 0; i < 10; ++i)
        EXPECT_GE(p.next(100), params.minQuantum);
    for (int i = 0; i < 100000; ++i) {
        const Tick q = p.next(0);
        EXPECT_LE(q, params.maxQuantum);
    }
}

TEST(AdaptivePolicy, ResetRestartsAtMinimum)
{
    AdaptiveQuantumPolicy p({});
    for (int i = 0; i < 50; ++i)
        p.next(0);
    p.reset();
    EXPECT_EQ(p.next(0),
              static_cast<Tick>(std::llround(1000 * 1.03)));
}

TEST(AdaptivePolicy, GrowthIsGradualDecreaseIsAbrupt)
{
    // The paper's "speed bumps": quantum must fall from max to min in
    // at most ~3 quanta but need many quanta to grow back.
    AdaptiveQuantumPolicy::Params params; // inc 1.03, dec 0.02
    AdaptiveQuantumPolicy p(params);
    for (int i = 0; i < 100000; ++i)
        p.next(0);
    int down = 0;
    Tick q = params.maxQuantum;
    while (q > params.minQuantum) {
        q = p.next(1);
        ++down;
    }
    EXPECT_LE(down, 3);

    int up = 0;
    while (q < params.maxQuantum) {
        q = p.next(0);
        ++up;
    }
    EXPECT_GT(up, 100);
}

TEST(AdaptivePolicy, CloneIsIndependent)
{
    AdaptiveQuantumPolicy p({});
    p.next(0);
    p.next(0);
    auto clone = p.clone();
    clone->reset();
    // Advancing the clone must not affect the original.
    clone->next(0);
    const Tick q_orig = p.next(0);
    AdaptiveQuantumPolicy fresh({});
    fresh.next(0);
    fresh.next(0);
    EXPECT_EQ(q_orig, fresh.next(0));
}

TEST(AdaptivePolicyDeath, RejectsBadParameters)
{
    AdaptiveQuantumPolicy::Params bad;
    bad.inc = 0.99;
    EXPECT_EXIT(AdaptiveQuantumPolicy{bad},
                ::testing::ExitedWithCode(1), "increase factor");
    AdaptiveQuantumPolicy::Params bad2;
    bad2.dec = 1.5;
    EXPECT_EXIT(AdaptiveQuantumPolicy{bad2},
                ::testing::ExitedWithCode(1), "decrease factor");
    AdaptiveQuantumPolicy::Params bad3;
    bad3.minQuantum = microseconds(10);
    bad3.maxQuantum = microseconds(1);
    EXPECT_EXIT(AdaptiveQuantumPolicy{bad3},
                ::testing::ExitedWithCode(1), "min_Q");
}

TEST(ThresholdPolicy, HoldsBelowThreshold)
{
    ThresholdAdaptivePolicy::Params params;
    params.packetThreshold = 4;
    ThresholdAdaptivePolicy p(params);
    for (int i = 0; i < 100; ++i)
        p.next(0); // grow
    const Tick grown = p.next(0);
    // Sparse traffic at/below the threshold holds the quantum.
    const Tick held = p.next(4);
    EXPECT_EQ(held, grown);
    // Above the threshold it collapses.
    const Tick dropped = p.next(5);
    EXPECT_LT(dropped, held);
}

TEST(SymmetricPolicy, DecreasesSlowly)
{
    AdaptiveQuantumPolicy::Params params;
    params.inc = 1.05;
    SymmetricAdaptivePolicy p(params);
    for (int i = 0; i < 100000; ++i)
        p.next(0);
    int down = 0;
    Tick q = params.maxQuantum;
    while (q > params.minQuantum && down < 100000) {
        q = p.next(10);
        ++down;
    }
    // ln(1000)/ln(1.05) ~ 142 quanta: far slower than Algorithm 1.
    EXPECT_GT(down, 100);
}

TEST(ParseTicks, AcceptsSuffixes)
{
    EXPECT_EQ(parseTicks("250ns"), 250u);
    EXPECT_EQ(parseTicks("1us"), 1000u);
    EXPECT_EQ(parseTicks("100us"), 100000u);
    EXPECT_EQ(parseTicks("2ms"), 2000000u);
    EXPECT_EQ(parseTicks("1s"), 1000000000u);
    EXPECT_EQ(parseTicks("42"), 42u);
    EXPECT_EQ(parseTicks("1.5us"), 1500u);
}

TEST(FormatTicks, RendersCompactly)
{
    EXPECT_EQ(formatTicks(750), "750ns");
    EXPECT_EQ(formatTicks(1000), "1us");
    EXPECT_EQ(formatTicks(100000), "100us");
    EXPECT_EQ(formatTicks(2000000), "2ms");
    EXPECT_EQ(formatTicks(1500), "1500ns");
}

TEST(ParsePolicy, FixedSpec)
{
    auto p = parsePolicy("fixed:100us");
    EXPECT_EQ(p->initialQuantum(), microseconds(100));
    EXPECT_EQ(p->name(), "fixed 100us");
}

TEST(ParsePolicy, DynSpecWithDefaults)
{
    auto p = parsePolicy("dyn:1.03:0.02");
    auto *dyn = dynamic_cast<AdaptiveQuantumPolicy *>(p.get());
    ASSERT_NE(dyn, nullptr);
    EXPECT_DOUBLE_EQ(dyn->params().inc, 1.03);
    EXPECT_DOUBLE_EQ(dyn->params().dec, 0.02);
    EXPECT_EQ(dyn->params().minQuantum, microseconds(1));
    EXPECT_EQ(dyn->params().maxQuantum, microseconds(1000));
}

TEST(ParsePolicy, DynSpecWithRange)
{
    auto p = parsePolicy("dyn:1.05:0.05:2us:500us");
    auto *dyn = dynamic_cast<AdaptiveQuantumPolicy *>(p.get());
    ASSERT_NE(dyn, nullptr);
    EXPECT_EQ(dyn->params().minQuantum, microseconds(2));
    EXPECT_EQ(dyn->params().maxQuantum, microseconds(500));
}

TEST(ParsePolicy, ThresholdAndSymmetric)
{
    EXPECT_NE(dynamic_cast<ThresholdAdaptivePolicy *>(
                  parsePolicy("threshold:1.03:0.02:8").get()),
              nullptr);
    EXPECT_NE(dynamic_cast<SymmetricAdaptivePolicy *>(
                  parsePolicy("symmetric:1.03").get()),
              nullptr);
}

TEST(ParsePolicyDeath, RejectsUnknownKind)
{
    EXPECT_EXIT(parsePolicy("magic:1"), ::testing::ExitedWithCode(1),
                "unknown policy");
}
