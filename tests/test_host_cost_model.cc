/** Tests for the host execution cost model. */

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"
#include "node/host_cost_model.hh"

using namespace aqsim;
using namespace aqsim::node;

TEST(HostCost, BusyRateIsBaseSlowdown)
{
    HostCostParams params;
    params.noiseSigma = 0.0;
    HostCostModel model(params, Rng(1));
    model.newQuantum(microseconds(1));
    EXPECT_DOUBLE_EQ(model.rate(true), params.busySlowdownNsPerTick);
}

TEST(HostCost, IdleIsCheaperThanBusy)
{
    HostCostParams params;
    params.noiseSigma = 0.0;
    HostCostModel model(params, Rng(1));
    model.newQuantum(microseconds(1));
    EXPECT_LT(model.rate(false), model.rate(true));
    EXPECT_DOUBLE_EQ(model.rate(false),
                     params.busySlowdownNsPerTick * params.idleFactor);
}

TEST(HostCost, DetailFactorScalesRate)
{
    HostCostParams params;
    params.noiseSigma = 0.0;
    HostCostModel model(params, Rng(1));
    model.newQuantum(microseconds(1));
    EXPECT_DOUBLE_EQ(model.rate(true, 0.1),
                     params.busySlowdownNsPerTick * 0.1);
}

TEST(HostCost, NoiseIsMeanOneOverManyQuanta)
{
    HostCostParams params;
    params.noiseSigma = 0.25;
    HostCostModel model(params, Rng(7));
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        model.newQuantum(params.noiseChunkTicks);
        sum += model.currentFactor();
    }
    EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(HostCost, LongQuantaHaveLessRelativeVariance)
{
    HostCostParams params;
    params.noiseSigma = 0.3;
    params.noiseRho = 0.0;

    auto variance = [&](Tick quantum) {
        HostCostModel model(params, Rng(11));
        double sum = 0.0, sq = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i) {
            model.newQuantum(quantum);
            const double f = model.currentFactor();
            sum += f;
            sq += f * f;
        }
        const double mean = sum / n;
        return sq / n - mean * mean;
    };

    // 1000x longer quantum -> ~1000x smaller variance of the mean.
    EXPECT_GT(variance(microseconds(1)),
              10.0 * variance(milliseconds(1)));
}

TEST(HostCost, CorrelatedNoisePersistsAcrossQuanta)
{
    HostCostParams params;
    params.noiseSigma = 0.3;
    params.noiseRho = 0.95;
    HostCostModel model(params, Rng(13));
    // Lag-1 autocorrelation of the log factors should be near rho.
    double prev = 0.0, sum_xy = 0.0, sum_x = 0.0, sum_xx = 0.0;
    const int n = 50000;
    model.newQuantum(params.noiseChunkTicks);
    prev = std::log(model.currentFactor());
    for (int i = 0; i < n; ++i) {
        model.newQuantum(params.noiseChunkTicks);
        const double cur = std::log(model.currentFactor());
        sum_xy += prev * cur;
        sum_x += prev;
        sum_xx += prev * prev;
        prev = cur;
    }
    const double mean = sum_x / n;
    const double corr =
        (sum_xy / n - mean * mean) / (sum_xx / n - mean * mean);
    EXPECT_NEAR(corr, 0.95, 0.05);
}

TEST(HostCost, ZeroSigmaIsDeterministicUnity)
{
    HostCostParams params;
    params.noiseSigma = 0.0;
    HostCostModel model(params, Rng(17));
    for (int i = 0; i < 10; ++i) {
        model.newQuantum(microseconds(5));
        EXPECT_DOUBLE_EQ(model.currentFactor(), 1.0);
    }
}

TEST(HostCost, BarrierCostGrowsWithNodeCount)
{
    HostCostParams params;
    EXPECT_GT(params.barrierNs(64), params.barrierNs(8));
    EXPECT_DOUBLE_EQ(params.barrierNs(8),
                     params.barrierBaseNs + 8 * params.barrierPerNodeNs);
}

TEST(HostCost, SameSeedSameNoiseSequence)
{
    HostCostParams params;
    params.noiseSigma = 0.2;
    HostCostModel a(params, Rng(99));
    HostCostModel b(params, Rng(99));
    for (int i = 0; i < 100; ++i) {
        a.newQuantum(microseconds(3));
        b.newQuantum(microseconds(3));
        EXPECT_DOUBLE_EQ(a.currentFactor(), b.currentFactor());
    }
}
