/** Tests for non-blocking receives (irecv) and probe. */

#include <gtest/gtest.h>

#include <atomic>

#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::runLambda;

TEST(Irecv, PostThenJoinReceives)
{
    std::atomic<std::uint64_t> got{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, 2048);
        } else {
            auto req = ctx.comm().irecv(0, 1);
            mpi::Message m = co_await req;
            got = m.bytes;
        }
    });
    EXPECT_EQ(got.load(), 2048u);
}

TEST(Irecv, OverlapsComputationWithReception)
{
    // The receive completes while the receiver computes; joining
    // afterwards must not wait again.
    std::vector<Tick> times;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, 512);
        } else {
            auto req = ctx.comm().irecv(0, 1);
            co_await ctx.compute(2.6e6); // ~1 ms >> message latency
            const Tick before_join = ctx.now();
            co_await req;
            times.push_back(before_join);
            times.push_back(ctx.now());
        }
    });
    ASSERT_EQ(times.size(), 2u);
    // Join was instantaneous: message had long arrived.
    EXPECT_EQ(times[0], times[1]);
}

TEST(Irecv, ReadyFlagTracksCompletion)
{
    std::vector<bool> ready;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.delay(microseconds(50));
            co_await ctx.comm().send(1, 1, 64);
        } else {
            auto req = ctx.comm().irecv(0, 1);
            ready.push_back(req.ready()); // not yet
            co_await ctx.delay(microseconds(200));
            ready.push_back(req.ready()); // arrived meanwhile
            co_await req;
        }
    });
    ASSERT_EQ(ready.size(), 2u);
    EXPECT_FALSE(ready[0]);
    EXPECT_TRUE(ready[1]);
}

TEST(Irecv, MultipleOutstandingRequestsMatchInOrder)
{
    std::vector<std::uint64_t> sizes;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, 111);
            co_await ctx.comm().send(1, 1, 222);
        } else {
            auto r1 = ctx.comm().irecv(0, 1);
            auto r2 = ctx.comm().irecv(0, 1);
            mpi::Message m2 = co_await r2;
            mpi::Message m1 = co_await r1;
            sizes.push_back(m1.bytes);
            sizes.push_back(m2.bytes);
        }
    });
    // Posting order decides matching: r1 gets the first message even
    // though it was joined second.
    EXPECT_EQ(sizes, (std::vector<std::uint64_t>{111, 222}));
}

TEST(Irecv, CancelledRequestLeavesMessageForOthers)
{
    std::atomic<std::uint64_t> got{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.delay(microseconds(100));
            co_await ctx.comm().send(1, 1, 4242);
        } else {
            {
                auto dropped = ctx.comm().irecv(0, 1);
                // destroyed unmatched -> cancelled
            }
            mpi::Message m = co_await ctx.comm().recv(0, 1);
            got = m.bytes;
        }
    });
    EXPECT_EQ(got.load(), 4242u);
}

TEST(Probe, SeesUnexpectedMessagesWithoutConsuming)
{
    std::vector<bool> probes;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 7, 64);
        } else {
            probes.push_back(ctx.comm().probe(0, 7)); // nothing yet
            co_await ctx.delay(microseconds(100));
            probes.push_back(ctx.comm().probe(0, 7));  // arrived
            probes.push_back(ctx.comm().probe(0, 8));  // wrong tag
            probes.push_back(ctx.comm().probe(mpi::anySource,
                                              mpi::anyTag));
            co_await ctx.comm().recv(0, 7);
            probes.push_back(ctx.comm().probe(0, 7)); // consumed
        }
    });
    ASSERT_EQ(probes.size(), 5u);
    EXPECT_FALSE(probes[0]);
    EXPECT_TRUE(probes[1]);
    EXPECT_FALSE(probes[2]);
    EXPECT_TRUE(probes[3]);
    EXPECT_FALSE(probes[4]);
}

TEST(Heterogeneous, SlowerGuestCpuStretchesItsCompute)
{
    std::vector<Tick> finish(2, 0);
    test::LambdaWorkload workload(
        [&](AppContext &ctx) -> sim::Process {
            co_await ctx.compute(2.6e6);
            finish[ctx.rank()] = ctx.now();
        });
    auto params = harness::defaultCluster(2, 1);
    params.cpuSpeedFactors = {1.0, 0.5}; // node 1 at half speed
    auto policy = core::parsePolicy("fixed:1us");
    engine::SequentialEngine engine;
    engine.run(params, workload, *policy);
    EXPECT_NEAR(static_cast<double>(finish[1]),
                2.0 * static_cast<double>(finish[0]),
                static_cast<double>(finish[0]) * 0.01);
}

TEST(Heterogeneous, MismatchedFactorCountIsFatal)
{
    test::LambdaWorkload workload(
        [](AppContext &) -> sim::Process { co_return; });
    auto params = harness::defaultCluster(4, 1);
    params.cpuSpeedFactors = {1.0, 2.0}; // wrong size
    EXPECT_EXIT(engine::Cluster(params, workload),
                ::testing::ExitedWithCode(1), "cpuSpeedFactors");
}
