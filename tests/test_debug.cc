/** Tests for the debug tracing subsystem. */

#include <gtest/gtest.h>

#include "base/debug.hh"
#include "test_util.hh"

using namespace aqsim;

namespace
{

/** RAII: capture trace output and restore clean flag state. */
class TraceCapture
{
  public:
    TraceCapture() { debug::captureTo(&buffer_); }

    ~TraceCapture()
    {
        debug::captureTo(nullptr);
        debug::clearFlags();
    }

    const std::string &text() const { return buffer_; }

  private:
    std::string buffer_;
};

engine::RunResult
tracedPing(const char *policy)
{
    return test::runLambda(
        2,
        [](workloads::AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0) {
                co_await ctx.comm().send(1, 1, 200000);
            } else {
                co_await ctx.comm().recv(0, 1);
            }
        },
        policy);
}

} // namespace

TEST(Debug, FlagsStartDisabled)
{
    EXPECT_FALSE(debug::Quantum.enabled());
    EXPECT_FALSE(debug::Packet.enabled());
}

TEST(Debug, SetFlagsEnablesNamed)
{
    TraceCapture capture;
    debug::setFlags("Quantum,Straggler");
    EXPECT_TRUE(debug::Quantum.enabled());
    EXPECT_TRUE(debug::Straggler.enabled());
    EXPECT_FALSE(debug::Packet.enabled());
}

TEST(Debug, AllEnablesEverything)
{
    TraceCapture capture;
    debug::setFlags("All");
    for ([[maybe_unused]] const auto &name : debug::listFlags())
        ; // names exist
    EXPECT_TRUE(debug::Quantum.enabled());
    EXPECT_TRUE(debug::Packet.enabled());
    EXPECT_TRUE(debug::Mpi.enabled());
    EXPECT_TRUE(debug::Engine.enabled());
}

TEST(Debug, ListContainsAllKnownFlags)
{
    auto names = debug::listFlags();
    EXPECT_NE(std::find(names.begin(), names.end(), "Quantum"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "Mpi"),
              names.end());
    EXPECT_GE(names.size(), 5u);
}

TEST(DebugDeath, UnknownFlagIsFatal)
{
    EXPECT_EXIT(debug::setFlags("Bogus"),
                ::testing::ExitedWithCode(1), "unknown debug flag");
}

TEST(Debug, DisabledFlagsEmitNothing)
{
    TraceCapture capture;
    tracedPing("fixed:1us");
    EXPECT_TRUE(capture.text().empty());
}

TEST(Debug, QuantumFlagTracesBoundaries)
{
    TraceCapture capture;
    debug::setFlags("Quantum");
    tracedPing("fixed:10us");
    EXPECT_NE(capture.text().find("sync: quantum"), std::string::npos);
    EXPECT_NE(capture.text().find("next Q=10000"), std::string::npos);
}

TEST(Debug, MpiFlagTracesRendezvousHandshake)
{
    TraceCapture capture;
    debug::setFlags("Mpi");
    tracedPing("fixed:1us");
    const auto &text = capture.text();
    EXPECT_NE(text.find("got RTS"), std::string::npos);
    EXPECT_NE(text.find("got CTS"), std::string::npos);
    EXPECT_NE(text.find("got window ACK"), std::string::npos);
    EXPECT_NE(text.find("matched msg from 0"), std::string::npos);
}

TEST(Debug, PacketFlagTracesEveryFrame)
{
    TraceCapture capture;
    debug::setFlags("Packet");
    auto result = tracedPing("fixed:1us");
    // One trace line per routed frame.
    std::size_t lines = 0;
    for (char c : capture.text())
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, result.packets);
}

TEST(Debug, StragglerFlagFiresOnlyWhenLate)
{
    {
        TraceCapture capture;
        debug::setFlags("Straggler");
        tracedPing("fixed:1us"); // conservative: never late
        EXPECT_TRUE(capture.text().empty());
    }
    {
        TraceCapture capture;
        debug::setFlags("Straggler");
        auto result = tracedPing("fixed:500us");
        if (result.stragglers > result.nextQuantumDeliveries) {
            EXPECT_NE(capture.text().find("late: ideal="),
                      std::string::npos);
        }
    }
}
