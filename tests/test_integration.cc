/**
 * Integration tests: end-to-end checks that the system reproduces the
 * paper's qualitative results at reduced problem scale.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/pareto.hh"
#include "net/topology.hh"
#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::harness;

namespace
{

/** Shared harness so ground truths are computed once per suite. */
Harness &
sharedHarness()
{
    static Harness harness(0.08, 1);
    return harness;
}

} // namespace

TEST(Integration, SpeedupLadderIsMonotoneInQuantum)
{
    // Fig. 6/7 right charts: bigger quantum, bigger speedup.
    auto &h = sharedHarness();
    const double s10 = h.speedup(h.run("nas.cg", 4, "fixed:10us"));
    const double s100 = h.speedup(h.run("nas.cg", 4, "fixed:100us"));
    const double s1000 = h.speedup(h.run("nas.cg", 4, "fixed:1000us"));
    EXPECT_GT(s10, 1.0);
    EXPECT_GT(s100, s10);
    EXPECT_GT(s1000, s100);
}

TEST(Integration, AccuracyDegradesWithQuantumOnCommunicatingApps)
{
    auto &h = sharedHarness();
    const double e10 = h.error(h.run("nas.is", 4, "fixed:10us"));
    const double e1000 = h.error(h.run("nas.is", 4, "fixed:1000us"));
    EXPECT_LT(e10, e1000);
    EXPECT_GT(e1000, 0.3); // catastrophic at 1000us (paper: ~85%+)
}

TEST(Integration, AdaptiveBeatsFixed1000OnAccuracyByFar)
{
    auto &h = sharedHarness();
    const double e_dyn =
        h.error(h.run("nas.is", 4, "dyn:1.03:0.02:1us:1000us"));
    const double e_1000 = h.error(h.run("nas.is", 4, "fixed:1000us"));
    EXPECT_LT(e_dyn, e_1000 / 3.0);
}

TEST(Integration, AdaptiveIsMuchFasterThanGroundTruth)
{
    auto &h = sharedHarness();
    const double s_dyn =
        h.speedup(h.run("nas.ep", 4, "dyn:1.03:0.02:1us:1000us"));
    EXPECT_GT(s_dyn, 8.0); // paper: ~26x at 8 nodes, full scale
}

TEST(Integration, EpIsAccurateEvenWithAdaptive)
{
    auto &h = sharedHarness();
    const double err =
        h.error(h.run("nas.ep", 4, "dyn:1.05:0.02:1us:1000us"));
    EXPECT_LT(err, 0.05); // paper EP table: ~0.58% at 64 nodes
}

TEST(Integration, ErrorGrowsWithNodeCount)
{
    // Fig. 6: "having longer quanta is progressively more harmful
    // for accuracy as the number of nodes increases".
    auto &h = sharedHarness();
    const double e2 = h.error(h.run("nas.cg", 2, "fixed:1000us"));
    const double e8 = h.error(h.run("nas.cg", 8, "fixed:1000us"));
    EXPECT_GT(e8, e2);
}

TEST(Integration, IsSimTimeDilatesUnderCoarseQuanta)
{
    // Section 6 IS table: simulated execution-time ratio explodes
    // with fixed coarse quanta but stays near 1 with the adaptive
    // policy.
    // Dilation (ratio - 1) grows with the quantum and the adaptive
    // policy recovers most of it. The paper's 150x headline needs the
    // 64-node long-chain configuration (bench/fig9_scaleout); at this
    // test's 8-node scale the effect is present but smaller.
    auto &h = sharedHarness();
    const auto &gt = h.groundTruth("nas.is", 8);
    const auto q1000 = h.run("nas.is", 8, "fixed:1000us");
    const auto dyn = h.run("nas.is", 8, "dyn:1.03:0.02:1us:1000us");
    const double dilation_q1000 = engine::simTimeRatio(q1000, gt) - 1.0;
    const double dilation_dyn = engine::simTimeRatio(dyn, gt) - 1.0;
    EXPECT_GT(dilation_q1000, 0.3);
    EXPECT_LT(dilation_dyn, dilation_q1000 / 3.0);
}

TEST(Integration, NamdAccuracyOrderingMatchesFig7)
{
    auto &h = sharedHarness();
    const double e10 = h.error(h.run("namd", 4, "fixed:10us"));
    const double e1000 = h.error(h.run("namd", 4, "fixed:1000us"));
    const double e_dyn =
        h.error(h.run("namd", 4, "dyn:1.03:0.02:1us:1000us"));
    EXPECT_LT(e10, e1000);
    EXPECT_LT(e_dyn, e1000);
}

TEST(Integration, AdaptiveConfigsLieOnOrNearParetoFront)
{
    // Fig. 8's headline: "All adaptive configurations lie in or very
    // near the Pareto curve".
    auto &h = sharedHarness();
    std::vector<TradeoffPoint> points;
    std::vector<bool> is_adaptive;
    for (const auto &config : paperConfigs()) {
        auto run = h.run("nas.cg", 4, config.spec);
        points.push_back(
            {config.label, h.error(run), h.speedup(run)});
        is_adaptive.push_back(config.label.rfind("dyn", 0) == 0);
    }
    auto front = paretoFront(points);
    // Every adaptive config is either on the front or within 20%
    // speedup of a front point with no worse error.
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (!is_adaptive[i])
            continue;
        bool near_front = isParetoOptimal(points, i);
        for (std::size_t f : front) {
            if (points[f].error <= points[i].error &&
                points[f].speedup <= points[i].speedup * 1.2)
                near_front = true;
        }
        EXPECT_TRUE(near_front) << points[i].label;
    }
}

TEST(Integration, StragglersOnlyWithNonConservativeQuanta)
{
    auto &h = sharedHarness();
    for (const char *workload : {"nas.is", "namd", "nas.lu"}) {
        EXPECT_EQ(h.groundTruth(workload, 4).stragglers, 0u)
            << workload;
        EXPECT_GT(h.run(workload, 4, "fixed:1000us").stragglers, 0u)
            << workload;
    }
}

TEST(Integration, HostTimeDecomposesIntoQuanta)
{
    harness::ExperimentConfig config;
    config.workload = "nas.mg";
    config.numNodes = 4;
    config.scale = 0.08;
    config.policySpec = "dyn:1.05:0.02:1us:1000us";
    config.recordTimeline = true;
    auto out = runExperiment(config);
    HostNs sum = 0.0;
    for (const auto &q : out.result.timeline)
        sum += q.hostNs;
    EXPECT_NEAR(sum, out.result.hostNs, out.result.hostNs * 1e-9);
    EXPECT_EQ(out.result.quanta, out.result.timeline.size());
}

TEST(Integration, SamplingCpuExtensionRunsAndStaysAccurate)
{
    // Paper future work: combining adaptive sync with node-simulator
    // sampling. The sampled run must complete with a metric close to
    // the detailed run (timing noise is small and zero-mean).
    auto workload = workloads::makeWorkload("nas.ep", 4, 0.08);
    auto policy = core::parsePolicy("dyn:1.03:0.02:1us:1000us");
    auto params = defaultCluster(4, 1);
    params.samplingCpu = true;
    params.sampling.detailFraction = 0.2;
    params.sampling.timingNoise = 0.02;
    engine::SequentialEngine engine;
    auto sampled = engine.run(params, *workload, *policy);

    auto workload2 = workloads::makeWorkload("nas.ep", 4, 0.08);
    auto policy2 = core::parsePolicy("dyn:1.03:0.02:1us:1000us");
    auto params2 = defaultCluster(4, 1);
    engine::SequentialEngine engine2;
    auto detailed = engine2.run(params2, *workload2, *policy2);

    EXPECT_GT(sampled.simTicks, 0u);
    EXPECT_NEAR(sampled.metric / detailed.metric, 1.0, 0.1);
    // Sampling makes the host cheaper.
    EXPECT_LT(sampled.hostNs, detailed.hostNs);
}

TEST(Integration, StoreAndForwardSwitchIncreasesLatencyNotCorrectness)
{
    auto workload = workloads::makeWorkload("pingpong", 2, 0.2);
    auto policy = core::parsePolicy("fixed:1us");
    auto params = defaultCluster(2, 1);
    params.network.switchModel =
        std::make_shared<net::StoreAndForwardSwitch>(2, 10.0,
                                                     microseconds(2));
    engine::SequentialEngine engine;
    auto result = engine.run(params, *workload, *policy);
    EXPECT_EQ(result.stragglers, 0u);

    auto workload2 = workloads::makeWorkload("pingpong", 2, 0.2);
    auto policy2 = core::parsePolicy("fixed:1us");
    auto perfect = defaultCluster(2, 1);
    engine::SequentialEngine engine2;
    auto base = engine2.run(perfect, *workload2, *policy2);
    // Store-and-forward adds per-hop latency: the run takes longer.
    EXPECT_GT(result.simTicks, base.simTicks);
}

TEST(Integration, Fig4_ConservativeReordersByLatencyNotArrival)
{
    // Paper Fig. 4: nodes 1 and 3 send to node 2 with different
    // network latencies; the packet that functionally arrives later
    // must still be *scheduled* earlier when its latency says so.
    // We use a ring topology: node 1 is 1 hop from node 2, node 3 is
    // 1 hop too, so use a tree with radix 2: node 3 is cross-leaf
    // (3 hops), node 1 same-leaf (1 hop).
    std::vector<std::pair<Rank, Tick>> arrivals;
    test::LambdaWorkload workload(
        [&](workloads::AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 1) {
                // Sends first, but over the long path.
                co_await ctx.comm().send(2, 1, 256);
            } else if (ctx.rank() == 0) {
                // Sends a touch later, over the short path... same
                // leaf as 2? With radix 2: leaves {0,1}, {2,3}: so
                // rank 3 is same-leaf with 2, rank 1 cross-leaf.
                co_return;
            } else if (ctx.rank() == 3) {
                co_await ctx.delay(1500);
                co_await ctx.comm().send(2, 1, 256);
            } else {
                for (int i = 0; i < 2; ++i) {
                    mpi::Message m =
                        co_await ctx.comm().recv(mpi::anySource, 1);
                    arrivals.emplace_back(m.src, ctx.now());
                }
            }
        });
    auto policy = core::parsePolicy("fixed:1us");
    auto params = defaultCluster(4, 1);
    net::TopologyParams topo;
    topo.kind = net::TopologyKind::Tree2Level;
    topo.radix = 2;
    topo.hopLatency = 2000;    // 2us per hop: cross-leaf = 6us
    topo.contention = false;   // pure latency, as in the figure
    params.network.switchModel =
        std::make_shared<net::TopologySwitch>(4, topo);
    engine::SequentialEngine engine;
    engine.run(params, workload, *policy);

    ASSERT_EQ(arrivals.size(), 2u);
    // Rank 3 sent 1.5us later but over the 1-hop path; rank 1 sent
    // first over the 3-hop path. Rank 3's message must arrive first.
    EXPECT_EQ(arrivals[0].first, 3u);
    EXPECT_EQ(arrivals[1].first, 1u);
    EXPECT_LT(arrivals[0].second, arrivals[1].second);
}

TEST(Integration, StatsTreeExposesFullHierarchy)
{
    // The stats tree after a run must contain the controller,
    // per-node NIC and MPI groups with consistent totals.
    auto workload = workloads::makeWorkload("burst", 4, 0.05);
    auto policy = core::parsePolicy("fixed:1us");
    auto params = defaultCluster(4, 1);
    engine::Cluster cluster(params, *workload);
    engine::SequentialEngine engine;
    auto result = engine.run(cluster, *policy);

    const auto *routed =
        cluster.statsRoot().find("network.packets");
    ASSERT_NE(routed, nullptr);
    EXPECT_DOUBLE_EQ(routed->rows()[0].second,
                     static_cast<double>(result.packets));

    // Sum of per-node tx frames == routed packets (no broadcasts).
    double tx_total = 0.0;
    for (NodeId id = 0; id < 4; ++id) {
        const auto *tx = cluster.statsRoot().find(
            "node" + std::to_string(id) + ".nic.txFrames");
        ASSERT_NE(tx, nullptr);
        tx_total += tx->rows()[0].second;
    }
    EXPECT_DOUBLE_EQ(tx_total, static_cast<double>(result.packets));

    // MPI message counters exist per node.
    const auto *sent =
        cluster.statsRoot().find("node0.mpi.msgsSent");
    ASSERT_NE(sent, nullptr);
    EXPECT_GT(sent->rows()[0].second, 0.0);
}
