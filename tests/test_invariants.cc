/**
 * Tests for the runtime invariant checker: each seeded violation of
 * the paper's safety conditions must be detected, and clean runs of
 * both engines must report zero violations while demonstrably
 * performing checks.
 */

#include <gtest/gtest.h>

#include <string>

#include "base/debug.hh"
#include "check/invariants.hh"
#include "engine/sequential_engine.hh"
#include "engine/threaded_engine.hh"
#include "harness/experiment.hh"
#include "net/network_controller.hh"
#include "stats/stats.hh"
#include "workloads/workload.hh"

using namespace aqsim;
using check::DeliveryClass;
using check::Invariant;
using check::InvariantChecker;

namespace
{

/** Enables the checker for one test and restores the off state. */
struct CheckerFixture : public ::testing::Test
{
    CheckerFixture() : checker(InvariantChecker::instance())
    {
        checker.reset();
        checker.setEnabled(true);
    }

    ~CheckerFixture() override
    {
        checker.setEnabled(false);
        checker.setFatal(false);
        checker.reset();
        debug::clearFlags();
    }

    InvariantChecker &checker;
};

/** Scheduler that places deliveries *before* the wire arrival. */
class TimeTravelScheduler : public net::DeliveryScheduler
{
  public:
    Tick
    place(const net::PacketPtr &pkt, net::DeliveryKind &kind) override
    {
        kind = net::DeliveryKind::OnTime;
        return pkt->idealArrival > 100 ? pkt->idealArrival - 100 : 0;
    }
};

} // namespace

TEST_F(CheckerFixture, QuantumBoundViolationDetected)
{
    // A "conservative" run whose quantum exceeds the minimum network
    // latency breaks the paper's Q <= T safety rule (Section 3).
    checker.onRunBegin();
    checker.onQuantumOpen(0, 5000, /*conservative=*/true,
                          /*min_latency=*/1000);
    EXPECT_EQ(checker.violations(Invariant::QuantumBound), 1u);
    EXPECT_EQ(checker.totalViolations(), 1u);

    // The same window under a non-conservative policy is legal.
    checker.reset();
    checker.onRunBegin();
    checker.onQuantumOpen(0, 5000, /*conservative=*/false, 1000);
    EXPECT_EQ(checker.totalViolations(), 0u);
}

TEST_F(CheckerFixture, PastScheduledEventDetected)
{
    checker.onEventScheduled(/*when=*/50, /*now=*/200);
    EXPECT_EQ(checker.violations(Invariant::PastEvent), 1u);

    checker.onTickAdvance(/*from=*/300, /*to=*/250);
    EXPECT_EQ(checker.violations(Invariant::TickMonotonic), 1u);
}

TEST_F(CheckerFixture, PastDeliveryThroughControllerDetected)
{
    // Route a real frame through the controller with a scheduler that
    // claims "on time" but delivers before the wire arrival: the
    // checker must flag the causality violation the controller's own
    // accounting cannot see (its assert passes for OnTime kinds).
    stats::Group root("cluster");
    net::NetworkController controller(2, net::NetworkParams{}, root);
    TimeTravelScheduler scheduler;
    controller.setScheduler(&scheduler);

    auto pkt = net::makePacket(0, 1, 256, /*depart=*/50'000);
    pkt->departTick = 50'000;
    controller.inject(pkt);

    EXPECT_EQ(checker.violations(Invariant::PastDelivery), 1u);
}

TEST_F(CheckerFixture, StragglerCountMismatchDetected)
{
    checker.onRunBegin();
    checker.onQuantumOpen(0, 1000, false, 2000);
    // Two frames displaced past their ideal arrival...
    checker.onDelivery(DeliveryClass::Straggler, 700, 500);
    checker.onDelivery(DeliveryClass::NextQuantum, 1000, 600);
    // ...but the quantum claims only one was accounted.
    checker.onQuantumComplete(0, 1000, /*claimed_stragglers=*/1);
    EXPECT_EQ(checker.violations(Invariant::StragglerAccounting), 1u);

    // Matching accounting is clean.
    checker.reset();
    checker.onRunBegin();
    checker.onQuantumOpen(0, 1000, false, 2000);
    checker.onDelivery(DeliveryClass::Straggler, 700, 500);
    checker.onQuantumComplete(0, 1000, 1);
    EXPECT_EQ(checker.totalViolations(), 0u);
}

TEST_F(CheckerFixture, QuantumWindowGapDetected)
{
    checker.onRunBegin();
    checker.onQuantumOpen(0, 1000, false, 2000);
    checker.onQuantumComplete(0, 1000, 0);
    // Next window must start exactly at the previous end.
    checker.onQuantumOpen(1500, 2500, false, 2000);
    EXPECT_EQ(checker.violations(Invariant::QuantumMonotonic), 1u);
}

TEST_F(CheckerFixture, MailboxMergeViolationsDetected)
{
    checker.onMailboxMerge(/*strictly_after=*/false,
                           DeliveryClass::OnTime, 100, 50);
    EXPECT_EQ(checker.violations(Invariant::MailboxOrder), 1u);

    // An unaccounted delivery behind the receiver is also flagged...
    checker.onMailboxMerge(true, DeliveryClass::NextQuantum, 40, 90);
    EXPECT_EQ(checker.violations(Invariant::MailboxOrder), 2u);

    // ...but an accounted Straggler behind the receiver is legal.
    checker.onMailboxMerge(true, DeliveryClass::Straggler, 40, 90);
    EXPECT_EQ(checker.violations(Invariant::MailboxOrder), 2u);
}

TEST_F(CheckerFixture, ViolationsTraceUnderCheckFlag)
{
    std::string sink;
    debug::captureTo(&sink);
    debug::setFlags("Check");
    checker.onEventScheduled(50, 200);
    debug::captureTo(nullptr);
    EXPECT_NE(sink.find("PastEvent violated"), std::string::npos);
    EXPECT_NE(sink.find("check"), std::string::npos);
}

TEST_F(CheckerFixture, ReportMarksFailedInvariants)
{
    checker.onEventScheduled(50, 200);
    const std::string report = checker.report();
    EXPECT_NE(report.find("FAIL  PastEvent: 1"), std::string::npos);
    EXPECT_NE(report.find("ok    QuantumBound: 0"), std::string::npos);
    EXPECT_NE(report.find("1 violations"), std::string::npos);
}

TEST_F(CheckerFixture, DisabledCheckerCountsNothing)
{
    checker.setEnabled(false);
    checker.onEventScheduled(50, 200);
    checker.onQuantumOpen(0, 5000, true, 1000);
    EXPECT_EQ(checker.totalViolations(), 0u);
    EXPECT_EQ(checker.checksPerformed(), 0u);
}

TEST_F(CheckerFixture, FatalModePanicsOnViolation)
{
    checker.setFatal(true);
    EXPECT_DEATH(checker.onEventScheduled(50, 200),
                 "invariant PastEvent violated");
}

TEST_F(CheckerFixture, CleanSequentialRunReportsZeroViolations)
{
    // Full sequential runs under both a conservative and an adaptive
    // policy: every hook fires and none may trip.
    for (const char *spec : {"fixed:1us", "fixed:500us",
                             "dyn:1.05:0.02:1us:1000us"}) {
        auto wl = workloads::makeWorkload("pingpong", 2, 0.05);
        auto pol = core::parsePolicy(spec);
        auto params = harness::defaultCluster(2, 1);
        engine::SequentialEngine engine;
        auto result = engine.run(params, *wl, *pol);
        EXPECT_GT(result.packets, 0u) << spec;
        EXPECT_EQ(checker.totalViolations(), 0u)
            << spec << "\n" << checker.report();
    }
    EXPECT_GT(checker.checksPerformed(), 0u);
}

TEST_F(CheckerFixture, CleanThreadedRunReportsZeroViolations)
{
    for (const char *spec : {"fixed:1us", "fixed:500us",
                             "dyn:1.05:0.02:1us:1000us"}) {
        auto wl = workloads::makeWorkload("random", 4, 0.05);
        auto pol = core::parsePolicy(spec);
        auto params = harness::defaultCluster(4, 1);
        engine::ThreadedEngine engine;
        auto result = engine.run(params, *wl, *pol);
        EXPECT_GT(result.packets, 0u) << spec;
        EXPECT_EQ(checker.totalViolations(), 0u)
            << spec << "\n" << checker.report();
    }
    EXPECT_GT(checker.checksPerformed(), 0u);
}
