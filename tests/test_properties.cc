/**
 * Property-based tests: invariants that must hold across a randomized
 * sweep of workloads, policies, cluster sizes and seeds.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "harness/experiment.hh"
#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::harness;

namespace
{

struct Sweep
{
    std::string workload;
    std::size_t nodes;
    std::string policy;
    std::uint64_t seed;
};

std::vector<Sweep>
sweepCases()
{
    std::vector<Sweep> cases;
    const char *workloads[] = {"pingpong", "burst", "random",
                               "nas.cg"};
    const char *policies[] = {"fixed:1us", "fixed:13us", "fixed:250us",
                              "dyn:1.04:0.03:1us:500us",
                              "threshold:1.03:0.02:4",
                              "symmetric:1.05"};
    std::uint64_t seed = 100;
    for (const char *w : workloads)
        for (const char *p : policies)
            cases.push_back(Sweep{
                w, (seed % 3) ? std::size_t{4} : std::size_t{3}, p,
                seed++});
    return cases;
}

class PropertySweep : public ::testing::TestWithParam<Sweep>
{
  protected:
    static engine::RunResult
    runCase(const Sweep &s, bool timeline = false)
    {
        ExperimentConfig config;
        config.workload = s.workload;
        config.numNodes = s.nodes;
        config.scale = 0.05;
        config.policySpec = s.policy;
        config.seed = s.seed;
        config.recordTimeline = timeline;
        return runExperiment(config).result;
    }
};

} // namespace

TEST_P(PropertySweep, RunCompletesWithSaneAccounting)
{
    const auto r = runCase(GetParam());
    // Liveness: finished, positive sim and host time.
    EXPECT_GT(r.simTicks, 0u);
    EXPECT_GT(r.hostNs, 0.0);
    EXPECT_GT(r.quanta, 0u);
    // Straggler counts are subsets of packet counts.
    EXPECT_LE(r.stragglers, r.packets);
    EXPECT_LE(r.nextQuantumDeliveries, r.stragglers);
    // Lateness only with stragglers.
    if (r.stragglers == 0) {
        EXPECT_EQ(r.latenessTicks, 0u);
    }
    // Every rank finished within the total sim time.
    for (Tick t : r.finishTicks)
        EXPECT_LE(t, r.simTicks);
}

TEST_P(PropertySweep, DeterministicRerun)
{
    const auto a = runCase(GetParam());
    const auto b = runCase(GetParam());
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_DOUBLE_EQ(a.hostNs, b.hostNs);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.stragglers, b.stragglers);
    EXPECT_EQ(a.quanta, b.quanta);
}

TEST_P(PropertySweep, QuantaTileSimulatedTime)
{
    const auto r = runCase(GetParam(), true);
    Tick expected_start = 0;
    for (const auto &q : r.timeline) {
        EXPECT_EQ(q.start, expected_start);
        EXPECT_GT(q.length, 0u);
        expected_start += q.length;
    }
    EXPECT_GE(expected_start, r.simTicks);
}

TEST_P(PropertySweep, QuantumBoundsRespected)
{
    const auto &s = GetParam();
    const auto r = runCase(s, true);
    // Extract configured bounds from the policy spec.
    Tick min_q = 1, max_q = maxTick;
    if (s.policy.rfind("fixed:", 0) == 0) {
        min_q = max_q = core::parseTicks(s.policy.substr(6));
    } else if (s.policy.rfind("dyn:", 0) == 0) {
        min_q = microseconds(1);
        max_q = microseconds(500);
    } else {
        min_q = microseconds(1);
        max_q = microseconds(1000);
    }
    for (const auto &q : r.timeline) {
        EXPECT_GE(q.length, min_q);
        EXPECT_LE(q.length, max_q);
    }
}

TEST_P(PropertySweep, ConservativePolicyNeverStraggles)
{
    auto s = GetParam();
    s.policy = "fixed:1us";
    const auto r = runCase(s);
    EXPECT_EQ(r.stragglers, 0u);
    EXPECT_EQ(r.latenessTicks, 0u);
}

TEST_P(PropertySweep, MetricConsistentWithSimTime)
{
    const auto r = runCase(GetParam());
    const auto workload = aqsim::workloads::makeWorkload(
        GetParam().workload, GetParam().nodes, 0.05);
    EXPECT_DOUBLE_EQ(r.metric, workload->metricValue(r.simTicks));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PropertySweep, ::testing::ValuesIn(sweepCases()),
    [](const auto &info) {
        std::string name = info.param.workload + "_" +
                           info.param.policy + "_s" +
                           std::to_string(info.param.seed);
        for (auto &c : name)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST(Properties, AdaptiveNeverSlowerThanGroundTruthPolicy)
{
    // Across seeds, adaptive host time <= ground-truth host time:
    // its quantum is never below the ground truth's 1us.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Harness h(0.05, seed);
        const auto &gt = h.groundTruth("burst", 4);
        auto dyn = h.run("burst", 4, "dyn:1.03:0.02:1us:1000us");
        EXPECT_LE(dyn.hostNs, gt.hostNs * 1.02) << seed;
    }
}

TEST(Properties, SimTimeNeverShrinksBelowIdealForPipelines)
{
    // Straggler effects can only delay deliveries, so simulated
    // completion of a recv-gated pipeline can only grow vs. ground
    // truth. (Compute-only time is quantum-independent.)
    Harness h(0.05, 3);
    const auto &gt = h.groundTruth("nas.lu", 4);
    for (const char *policy :
         {"fixed:10us", "fixed:100us", "fixed:1000us"}) {
        auto run = h.run("nas.lu", 4, policy);
        EXPECT_GE(run.simTicks + 10, gt.simTicks) << policy;
    }
}

TEST(Properties, SeedOnlyAffectsHostSideNotConservativeSimTime)
{
    // With conservative sync, host-speed noise must not perturb the
    // simulated result at all (the paper's determinism claim for
    // lock-step quanta): only jitterless workloads though — the
    // workload's own jitter comes from the cluster seed too, so use
    // pingpong (jitter-free).
    ExperimentConfig config;
    config.workload = "pingpong";
    config.numNodes = 2;
    config.policySpec = "fixed:1us";
    config.seed = 11;
    const auto a = runExperiment(config).result;
    config.seed = 12;
    const auto b = runExperiment(config).result;
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_NE(a.hostNs, b.hostNs);
}
