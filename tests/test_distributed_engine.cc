/**
 * Multi-process DistributedEngine tests: the cross-engine determinism
 * contract ({2,4} worker processes x {clean, 5% loss + reliable}
 * bit-identical to the SequentialEngine, including finalStateHash),
 * the peer-failure matrix (SIGKILL at first/mid/last-1 quantum,
 * SIGSTOP heartbeat loss, exit-before-hello) as structured
 * deadline-bounded failures, supervisor-driven recovery with
 * peer-failure/peer-recovery incidents, checkpoint-restore recovery,
 * and the watchdog's per-peer liveness dump.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "engine/distributed_engine.hh"
#include "supervise/run_supervisor.hh"
#include "test_util.hh"

using namespace aqsim;

namespace
{

/** Cluster configurations of the recovery matrix. */
engine::ClusterParams
configParams(const std::string &config)
{
    auto params = harness::defaultCluster(4, 7);
    if (config == "lossy") {
        params.faults.dropRate = 0.05;
        params.mpiParams.reliable = true;
    }
    return params;
}

engine::RunResult
runSequential(const engine::ClusterParams &params)
{
    auto workload = workloads::makeWorkload("burst", params.numNodes,
                                            0.05);
    auto policy = core::parsePolicy("fixed:1us");
    engine::SequentialEngine engine;
    return engine.run(params, *workload, *policy);
}

engine::RunResult
runDistributed(const engine::ClusterParams &params,
               engine::EngineOptions options)
{
    auto workload = workloads::makeWorkload("burst", params.numNodes,
                                            0.05);
    auto policy = core::parsePolicy("fixed:1us");
    engine::DistributedEngine engine(options);
    return engine.run(params, *workload, *policy);
}

/** The determinism contract: every simulated field matches the
 * sequential ground truth (host wall time may not). */
void
expectMatchesSequential(const engine::RunResult &dist,
                        const engine::RunResult &seq,
                        const std::string &what)
{
    EXPECT_EQ(dist.simTicks, seq.simTicks) << what;
    EXPECT_EQ(dist.quanta, seq.quanta) << what;
    EXPECT_EQ(dist.packets, seq.packets) << what;
    EXPECT_EQ(dist.stragglers, seq.stragglers) << what;
    EXPECT_EQ(dist.droppedFrames, seq.droppedFrames) << what;
    EXPECT_EQ(dist.retransmits, seq.retransmits) << what;
    EXPECT_EQ(dist.finishTicks, seq.finishTicks) << what;
    EXPECT_DOUBLE_EQ(dist.metric, seq.metric) << what;
    EXPECT_EQ(dist.finalStateHash, seq.finalStateHash) << what;
}

engine::EngineOptions
distOptions(std::size_t workers)
{
    engine::EngineOptions options;
    options.numWorkers = workers;
    // Tests run on one host: seconds-scale deadlines keep the failure
    // cases fast while leaving honest-path headroom.
    options.peerDeadlineSeconds = 5.0;
    options.heartbeatSeconds = 0.05;
    return options;
}

std::string
scratchDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("aqsim_distributed_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** Supervised distributed run of the burst workload. */
engine::RunResult
runSupervised(const engine::ClusterParams &params,
              const engine::EngineOptions &options,
              supervise::RunSupervisor &supervisor)
{
    auto workload = workloads::makeWorkload("burst", params.numNodes,
                                            0.05);
    auto policy = core::parsePolicy("fixed:1us");
    supervise::RunRequest request;
    request.engineKind = supervise::EngineKind::Distributed;
    request.engine = options;
    request.cluster = params;
    request.workload = workload.get();
    request.policy = policy.get();
    return supervisor.run(request);
}

supervise::SuperviseOptions
testSupervision()
{
    supervise::SuperviseOptions sup;
    sup.enabled = true;
    sup.backoffBaseSeconds = 0.0; // tests never sleep
    return sup;
}

} // namespace

TEST(DistributedEngine, MatchesSequentialBitForBit)
{
    for (const char *config : {"clean", "lossy"}) {
        const auto params = configParams(config);
        const auto seq = runSequential(params);
        ASSERT_GT(seq.quanta, 3u);
        for (std::size_t workers : {2u, 4u}) {
            const auto dist =
                runDistributed(params, distOptions(workers));
            EXPECT_EQ(dist.engine, "distributed");
            expectMatchesSequential(
                dist, seq,
                std::string(config) + "/" +
                    std::to_string(workers) + "w");
        }
    }
}

TEST(DistributedEngine, RunToRunDeterministic)
{
    const auto params = configParams("clean");
    const auto a = runDistributed(params, distOptions(4));
    const auto b = runDistributed(params, distOptions(4));
    EXPECT_EQ(a.finalStateHash, b.finalStateHash);
    EXPECT_EQ(a.finishTicks, b.finishTicks);
    EXPECT_EQ(a.quanta, b.quanta);
}

TEST(DistributedEngine, SinglePeerDegenerateCaseWorks)
{
    const auto params = configParams("clean");
    const auto seq = runSequential(params);
    const auto dist = runDistributed(params, distOptions(1));
    expectMatchesSequential(dist, seq, "1w");
}

TEST(DistributedEngineDeathTest, RejectsNonConservativePolicy)
{
    const auto params = configParams("clean");
    auto workload = workloads::makeWorkload("burst", params.numNodes,
                                            0.05);
    auto policy = core::parsePolicy("fixed:10us");
    engine::DistributedEngine engine(distOptions(2));
    EXPECT_DEATH(engine.run(params, *workload, *policy),
                 "conservative");
}

TEST(DistributedEngine, KilledPeerIsStructuredDisconnect)
{
    // SIGKILL mid-run, unsupervised: the coordinator must convert the
    // dead worker into RunAbort{peer-failure} naming the peer — and
    // do it via EOF, without waiting out any timeout.
    auto options = distOptions(2);
    options.peerDrillSpec = "kill:peer=1,quantum=2,phase=exchange";
    const auto params = configParams("clean");
    try {
        runDistributed(params, options);
        FAIL() << "expected RunAbort";
    } catch (const base::RunAbort &abort) {
        EXPECT_EQ(abort.cause(), "peer-failure");
        EXPECT_NE(abort.detail().find("peer 1"), std::string::npos)
            << abort.detail();
        EXPECT_NE(abort.detail().find("disconnected"),
                  std::string::npos)
            << abort.detail();
    }
}

TEST(DistributedEngine, StoppedPeerIsDeadlineBoundedHang)
{
    // SIGSTOP freezes the worker with its socket open: only the
    // heartbeat deadline can detect it, and the wait must be bounded.
    auto options = distOptions(4);
    options.peerDeadlineSeconds = 1.0;
    options.peerDrillSpec = "stop:peer=2,quantum=2,phase=ack";
    const auto params = configParams("clean");
    const auto start = std::chrono::steady_clock::now();
    try {
        runDistributed(params, options);
        FAIL() << "expected RunAbort";
    } catch (const base::RunAbort &abort) {
        EXPECT_EQ(abort.cause(), "peer-failure");
        EXPECT_NE(abort.detail().find("hung"), std::string::npos)
            << abort.detail();
        EXPECT_NE(abort.detail().find("peer 2"), std::string::npos)
            << abort.detail();
    }
    const double waited =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(waited, 30.0); // bounded, not a stuck barrier
}

TEST(DistributedEngine, PeerExitBeforeHelloIsDisconnect)
{
    // The half-open case: a worker vanishes before it ever speaks.
    auto options = distOptions(2);
    options.peerDrillSpec = "exit:peer=0,phase=hello";
    const auto params = configParams("clean");
    try {
        runDistributed(params, options);
        FAIL() << "expected RunAbort";
    } catch (const base::RunAbort &abort) {
        EXPECT_EQ(abort.cause(), "peer-failure");
        EXPECT_NE(abort.detail().find("hello"), std::string::npos)
            << abort.detail();
    }
}

TEST(DistributedEngine, SupervisorRecoversFromKilledPeerMatrix)
{
    // The acceptance matrix: kill a peer at the first, a middle, and
    // the next-to-last quantum; each supervised run must recover to a
    // final state bit-identical to the unsupervised sequential run.
    const auto params = configParams("lossy");
    const auto golden = runSequential(params);
    ASSERT_GT(golden.quanta, 3u);
    const std::uint64_t drill_quanta[] = {1, golden.quanta / 2,
                                          golden.quanta - 1};
    for (const std::uint64_t q : drill_quanta) {
        auto options = distOptions(4);
        options.peerDrillSpec =
            "kill:peer=1,quantum=" + std::to_string(q) +
            ",phase=exchange";
        supervise::RunSupervisor supervisor(testSupervision());
        const auto result =
            runSupervised(params, options, supervisor);
        expectMatchesSequential(result, golden,
                                "kill@" + std::to_string(q));
        EXPECT_EQ(result.superviseAttempts, 2u);
        EXPECT_EQ(result.superviseRecoveries, 1u);

        // Incident trail: a peer-failure retry, then a peer-recovery.
        const auto &incidents = supervisor.incidents().incidents();
        ASSERT_EQ(incidents.size(), 2u);
        EXPECT_EQ(incidents[0].cause, "peer-failure");
        EXPECT_EQ(incidents[0].outcome, "retry");
        EXPECT_NE(incidents[0].detail.find("peer 1"),
                  std::string::npos);
        EXPECT_EQ(incidents[1].cause, "peer-recovery");
        EXPECT_EQ(incidents[1].outcome, "recovered");
    }
}

TEST(DistributedEngine, SupervisorRecoversHungPeerViaCheckpoint)
{
    // SIGSTOP + checkpointing: the retry restores from the newest
    // good spliced checkpoint instead of replaying from scratch, and
    // still converges to the sequential final state.
    const auto params = configParams("clean");
    const auto golden = runSequential(params);
    auto options = distOptions(2);
    options.peerDeadlineSeconds = 1.0;
    options.checkpointEvery = 100;
    options.checkpointDir = scratchDir("ckpt_recover");
    const std::uint64_t mid = golden.quanta / 2;
    options.peerDrillSpec =
        "stop:peer=0,quantum=" + std::to_string(mid) + ",phase=ack";
    supervise::RunSupervisor supervisor(testSupervision());
    const auto result = runSupervised(params, options, supervisor);
    expectMatchesSequential(result, golden, "ckpt-recovery");
    EXPECT_EQ(result.superviseRecoveries, 1u);
    EXPECT_GT(result.restoredFromQuantum, 0u);
    std::filesystem::remove_all(options.checkpointDir);
}

TEST(DistributedEngine, CheckpointRoundTripVerifies)
{
    // Write spliced checkpoints, then replay with --verify-restore
    // semantics: the gathered image at the golden quantum must hash
    // identically on the replay.
    const auto params = configParams("clean");
    auto options = distOptions(2);
    options.checkpointEvery = 100;
    options.checkpointDir = scratchDir("ckpt_verify");
    const auto first = runDistributed(params, options);
    EXPECT_GT(first.checkpointsWritten, 0u);

    engine::EngineOptions replay = distOptions(2);
    replay.restorePath = options.checkpointDir;
    replay.verifyRestore = true;
    const auto second = runDistributed(params, replay);
    EXPECT_EQ(second.finalStateHash, first.finalStateHash);
    EXPECT_GT(second.restoredFromQuantum, 0u);
    std::filesystem::remove_all(options.checkpointDir);
}

TEST(DistributedEngine, WatchdogDumpCarriesPeerLiveness)
{
    // The injected watchdog-panic drill exercises the distributed
    // panic path: the dump must carry per-peer liveness (the replica
    // has no meaningful per-node progress to report).
    const auto params = configParams("clean");
    const auto golden = runSequential(params);
    auto sup_options = testSupervision();
    supervise::InjectedFailure inject;
    inject.attempt = 1;
    inject.afterQuantum = 2;
    inject.watchdog = true;
    sup_options.injectFailures.push_back(inject);
    supervise::RunSupervisor supervisor(sup_options);
    auto options = distOptions(2);
    options.watchdogSeconds = 30.0;
    const auto result = runSupervised(params, options, supervisor);
    expectMatchesSequential(result, golden, "watchdog");
    ASSERT_TRUE(supervisor.sawPanic());
    const auto info = supervisor.lastPanic();
    EXPECT_NE(info.peers.find("peer 0"), std::string::npos)
        << info.peers;
    EXPECT_NE(info.peers.find("phase="), std::string::npos)
        << info.peers;
}

TEST(DistributedEngine, HarnessRoutesDistributedRuns)
{
    harness::ExperimentConfig config;
    config.workload = "burst";
    config.numNodes = 4;
    config.scale = 0.05;
    config.policySpec = "fixed:1us";
    config.engineKind = supervise::EngineKind::Distributed;
    config.engine = distOptions(2);
    const auto out = harness::runExperiment(config);
    EXPECT_EQ(out.result.engine, "distributed");
    EXPECT_GT(out.result.simTicks, 0u);
}
