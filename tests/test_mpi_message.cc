/** Tests for message headers, checksums, fragmentation, reassembly. */

#include <gtest/gtest.h>

#include "mpi/message.hh"

using namespace aqsim;
using namespace aqsim::mpi;

namespace
{

MsgHeader
makeHeader(std::uint64_t id = 1, std::uint64_t bytes = 1000)
{
    MsgHeader h;
    h.msgId = id;
    h.src = 0;
    h.dst = 1;
    h.tag = 7;
    h.bytes = bytes;
    h.seq = 3;
    h.seal();
    return h;
}

} // namespace

TEST(MsgHeader, SealAndVerify)
{
    MsgHeader h = makeHeader();
    EXPECT_TRUE(h.verify());
}

TEST(MsgHeader, TamperedFieldsFailVerification)
{
    MsgHeader h = makeHeader();
    h.bytes += 1;
    EXPECT_FALSE(h.verify());
    h = makeHeader();
    h.tag = 8;
    EXPECT_FALSE(h.verify());
    h = makeHeader();
    h.seq += 1;
    EXPECT_FALSE(h.verify());
}

TEST(MsgHeader, DistinctMessagesHaveDistinctChecksums)
{
    EXPECT_NE(makeHeader(1).checksum, makeHeader(2).checksum);
    EXPECT_NE(makeHeader(1, 100).checksum,
              makeHeader(1, 200).checksum);
}

TEST(FragmentCount, RoundsUpAndHandlesZero)
{
    EXPECT_EQ(fragmentCount(0, 1000), 1u);
    EXPECT_EQ(fragmentCount(1, 1000), 1u);
    EXPECT_EQ(fragmentCount(1000, 1000), 1u);
    EXPECT_EQ(fragmentCount(1001, 1000), 2u);
    EXPECT_EQ(fragmentCount(10000, 1000), 10u);
}

TEST(RxBuffer, SingleFragmentCompletesImmediately)
{
    MsgHeader h = makeHeader();
    RxBuffer buf(h);
    FragmentPayload frag(h, 0, 1);
    EXPECT_EQ(buf.addFragment(frag), RxBuffer::AddResult::Complete);
    EXPECT_EQ(buf.received(), 1u);
}

TEST(RxBuffer, MultiFragmentCompletesOnLast)
{
    MsgHeader h = makeHeader();
    RxBuffer buf(h);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 0, 3)),
              RxBuffer::AddResult::Progress);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 2, 3)),
              RxBuffer::AddResult::Progress);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 1, 3)),
              RxBuffer::AddResult::Complete);
}

TEST(RxBuffer, OutOfOrderFragmentsAccepted)
{
    MsgHeader h = makeHeader();
    RxBuffer buf(h);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 3, 4)),
              RxBuffer::AddResult::Progress);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 0, 4)),
              RxBuffer::AddResult::Progress);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 2, 4)),
              RxBuffer::AddResult::Progress);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 1, 4)),
              RxBuffer::AddResult::Complete);
}

TEST(RxBuffer, DuplicateFragmentsIgnoredNotFatal)
{
    // Retransmits and fault-layer duplication legitimately replay
    // fragments; the buffer must absorb them without double-counting.
    MsgHeader h = makeHeader();
    RxBuffer buf(h);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 0, 2)),
              RxBuffer::AddResult::Progress);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 0, 2)),
              RxBuffer::AddResult::Duplicate);
    EXPECT_EQ(buf.received(), 1u);
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 1, 2)),
              RxBuffer::AddResult::Complete);
    // A replay after completion is still just a duplicate.
    EXPECT_EQ(buf.addFragment(FragmentPayload(h, 1, 2)),
              RxBuffer::AddResult::Duplicate);
    EXPECT_EQ(buf.received(), 2u);
}

TEST(RxBufferDeath, CorruptChecksumPanics)
{
    MsgHeader h = makeHeader();
    RxBuffer buf(h);
    MsgHeader bad = h;
    bad.checksum ^= 1;
    EXPECT_DEATH(buf.addFragment(FragmentPayload(bad, 0, 2)),
                 "corrupt fragment");
}
