/** Tests for the deterministic RNG and its distributions. */

#include <gtest/gtest.h>

#include <cmath>

#include "base/random.hh"

using aqsim::Rng;

TEST(Rng, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBoundedAndCoversRange)
{
    Rng r(11);
    bool seen[10] = {};
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(std::uint64_t{10});
        ASSERT_LT(v, 10u);
        seen[v] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniformInt(std::int64_t{-5}, std::int64_t{5});
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(17);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalMeanMatchesRequestedMean)
{
    Rng r(19);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.lognormalMean(2.5, 0.3);
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, LognormalAlwaysPositive)
{
    Rng r(21);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(r.lognormalMean(1.0, 1.0), 0.0);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng r(23);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, BernoulliFrequencyMatches)
{
    Rng r(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (r.bernoulli(0.3))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentOfParentDraws)
{
    // fork(label) then drawing from the parent must not change the
    // child's stream given the same parent state.
    Rng parent1(31);
    Rng child1 = parent1.fork(5);
    Rng parent2(31);
    Rng child2 = parent2.fork(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, ForksWithDifferentLabelsDiffer)
{
    Rng parent(33);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}
