/**
 * @file
 * Tests for the aqsim_analyze layering/determinism auditor.
 *
 * Two layers of coverage:
 *  - unit tests against the analyzer library (lexer, module/layer
 *    mapping, analyzeTree over the golden fixture trees in
 *    tests/analyze_fixtures/ — every seeded violation must be caught,
 *    with exact file:line:rule, and nothing else);
 *  - end-to-end runs of the aqsim_analyze binary, checking the exact
 *    stdout against each fixture's expected.txt and the exit-code
 *    contract (0 clean, 1 findings, 2 usage).
 *
 * The paths come in via compile definitions (see tests/CMakeLists.txt)
 * so the tests work from any build directory.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/analyzer.hh"

namespace
{

using aqsim::analyze::analyzeTree;
using aqsim::analyze::Finding;
using aqsim::analyze::layerOf;
using aqsim::analyze::moduleOf;
using aqsim::analyze::stripCommentsAndStrings;

std::string
fixture(const std::string &name)
{
    return std::string(AQSIM_ANALYZE_FIXTURES) + "/" + name + "/src";
}

/** Run a command, capture stdout, return (exit code, stdout). */
std::pair<int, std::string>
run(const std::string &cmd)
{
    FILE *pipe = popen((cmd + " 2>/dev/null").c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0)
        out.append(buf, n);
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(AnalyzeLexer, StripsCommentsAndStrings)
{
    EXPECT_EQ(stripCommentsAndStrings("int x; // unordered_map"),
              "int x;                 ");
    EXPECT_EQ(stripCommentsAndStrings("a /* b */ c"), "a         c");
    // Newlines survive inside block comments (line numbers hold).
    EXPECT_EQ(stripCommentsAndStrings("/* a\nb */x"), "    \n    x");
    // String contents blank out, delimiters stay.
    EXPECT_EQ(stripCommentsAndStrings("f(\"rand()\")"),
              "f(\"      \")");
    // Escaped quote does not end the string.
    EXPECT_EQ(stripCommentsAndStrings(R"(g("a\"b");h())"),
              "g(\"    \");h()");
    // '//' inside a string is not a comment.
    EXPECT_EQ(stripCommentsAndStrings("p(\"a//b\");q()"),
              "p(\"    \");q()");
}

TEST(AnalyzeLexer, RawStringsAndCharLiterals)
{
    const std::string raw = "auto s = R\"(map<Foo*, int>)\";done";
    const std::string stripped = stripCommentsAndStrings(raw);
    EXPECT_EQ(stripped.size(), raw.size());
    EXPECT_EQ(stripped.find("map"), std::string::npos);
    EXPECT_NE(stripped.find("done"), std::string::npos);
    EXPECT_EQ(stripCommentsAndStrings("c = '\\''; x"),
              "c = '  '; x");
}

TEST(AnalyzeLayers, ModuleMapping)
{
    EXPECT_EQ(moduleOf("base/types.hh"), "base");
    EXPECT_EQ(moduleOf("engine/worker_pool.cc"), "engine");
    EXPECT_EQ(moduleOf("aqsim.hh"), "root");
    // The serialization primitive is its own low layer, split out of
    // the checkpoint orchestration module.
    EXPECT_EQ(moduleOf("ckpt/ckpt_io.hh"), "ckpt_io");
    EXPECT_EQ(moduleOf("ckpt/ckpt_io.cc"), "ckpt_io");
    EXPECT_EQ(moduleOf("ckpt/checkpoint.hh"), "ckpt");
    EXPECT_EQ(moduleOf("supervise/run_supervisor.cc"), "supervise");
}

TEST(AnalyzeLayers, LayerOrder)
{
    EXPECT_EQ(layerOf("base"), 0);
    EXPECT_LT(layerOf("base"), layerOf("sim"));
    EXPECT_LT(layerOf("ckpt_io"), layerOf("ckpt"));
    EXPECT_LT(layerOf("sim"), layerOf("net"));
    EXPECT_LT(layerOf("net"), layerOf("engine"));
    EXPECT_EQ(layerOf("engine"), layerOf("ckpt"));
    // The supervisor drives engines and is itself the harness's only
    // path to them (the engine-seam lint rule).
    EXPECT_LT(layerOf("engine"), layerOf("supervise"));
    EXPECT_LT(layerOf("supervise"), layerOf("harness"));
    EXPECT_LT(layerOf("harness"), layerOf("root"));
    EXPECT_EQ(layerOf("no_such_module"), -1);
}

TEST(AnalyzeFixtures, CleanTreeHasNoFindings)
{
    EXPECT_TRUE(analyzeTree(fixture("clean")).empty());
}

TEST(AnalyzeFixtures, LayeringCatchesUpwardEdgesAndCycles)
{
    const auto findings = analyzeTree(fixture("layering"));
    ASSERT_EQ(findings.size(), 4u);
    EXPECT_EQ(findings[0].file, "base/clock.hh");
    EXPECT_EQ(findings[0].line, 3);
    EXPECT_EQ(findings[0].rule, "layering");
    EXPECT_EQ(findings[1].rule, "include-cycle");
    EXPECT_EQ(findings[2].file, "net/wire.hh");
    EXPECT_EQ(findings[2].rule, "include-cycle");
    EXPECT_EQ(findings[3].rule, "layering");
}

TEST(AnalyzeFixtures, SuperviseBelowHarness)
{
    // The supervise module must not reach up into the harness: the
    // harness composes experiments *on top of* the supervisor.
    const auto findings = analyzeTree(fixture("supervise_layering"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "supervise/rogue.hh");
    EXPECT_EQ(findings[0].rule, "layering");
}

TEST(AnalyzeFixtures, DeterminismRules)
{
    const auto findings = analyzeTree(fixture("determinism"));
    ASSERT_EQ(findings.size(), 5u);
    // <unordered_map> include + declaration.
    EXPECT_EQ(findings[0].rule, "unordered-container");
    EXPECT_EQ(findings[0].line, 5);
    EXPECT_EQ(findings[1].rule, "unordered-container");
    EXPECT_EQ(findings[1].line, 7);
    // Raw and smart pointer keys; pointer *values* stay legal.
    EXPECT_EQ(findings[2].rule, "pointer-key");
    EXPECT_EQ(findings[2].line, 8);
    EXPECT_EQ(findings[3].rule, "pointer-key");
    EXPECT_EQ(findings[3].line, 9);
    // Cross-container iterator comparison; same-container is fine.
    EXPECT_EQ(findings[4].file, "sim/walk.cc");
    EXPECT_EQ(findings[4].rule, "iterator-order");
    EXPECT_EQ(findings[4].line, 4);
}

TEST(AnalyzeFixtures, CkptCoverageFindsForgottenField)
{
    const auto findings = analyzeTree(fixture("ckpt_coverage"));
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].file, "ckpt/checkpoint.hh");
    EXPECT_EQ(findings[0].line, 10);
    EXPECT_EQ(findings[0].rule, "ckpt-coverage");
    EXPECT_NE(findings[0].message.find("forgottenField"),
              std::string::npos);
}

TEST(AnalyzeFixtures, QueueSeamBansDirectMutationOutsideSeam)
{
    const auto findings = analyzeTree(fixture("queue_seam"));
    ASSERT_EQ(findings.size(), 4u);
    for (const auto &f : findings) {
        // Only the rogue engine file trips: shard_exec.cc is the seam
        // and sim/ may touch its own queues freely.
        EXPECT_EQ(f.file, "engine/rogue_engine.cc");
        EXPECT_EQ(f.rule, "queue-seam");
    }
    EXPECT_EQ(findings[0].line, 4);
    EXPECT_NE(findings[0].message.find("'runOne'"),
              std::string::npos);
    EXPECT_EQ(findings[1].line, 5);
    EXPECT_NE(findings[1].message.find("'fastForwardTo'"),
              std::string::npos);
    EXPECT_EQ(findings[2].line, 6);
    EXPECT_NE(findings[2].message.find("'schedule'"),
              std::string::npos);
    EXPECT_EQ(findings[3].line, 8);
    EXPECT_NE(findings[3].message.find("'scheduleIn'"),
              std::string::npos);
}

TEST(AnalyzeFixtures, QueueSeamBansDispatchOutsideSeam)
{
    // Post-exchange dispatch is only legal through the shard_exec
    // seam (dispatchDelivery/deliverUrgent) on the owning worker's
    // shard; a direct NicModel::deliverAt from engine code would
    // bypass the per-destination canonical merge.
    const auto findings = analyzeTree(fixture("queue_seam_dispatch"));
    ASSERT_EQ(findings.size(), 2u);
    for (const auto &f : findings) {
        // Only the rogue dispatcher trips: shard_exec.cc is the seam
        // and node/ may deliver into its own queues freely.
        EXPECT_EQ(f.file, "engine/rogue_dispatch.cc");
        EXPECT_EQ(f.rule, "queue-seam");
        EXPECT_NE(f.message.find("'deliverAt'"), std::string::npos);
        EXPECT_NE(f.message.find("dispatchDelivery"),
                  std::string::npos);
    }
    EXPECT_EQ(findings[0].line, 4);
    EXPECT_EQ(findings[1].line, 5);
}

TEST(AnalyzeFixtures, RealTreeIsClean)
{
    // Zero findings over the actual src/ is an acceptance invariant:
    // the DAG in the analyzer *is* the architecture, not a wish.
    const auto findings = analyzeTree(AQSIM_ANALYZE_REAL_SRC);
    for (const auto &f : findings)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
}

TEST(AnalyzeBinary, GoldenOutputsAndExitCodes)
{
    const std::vector<std::pair<std::string, int>> cases = {
        {"clean", 0},
        {"layering", 1},
        {"determinism", 1},
        {"ckpt_coverage", 1},
        {"queue_seam", 1},
        {"queue_seam_dispatch", 1},
        {"supervise_layering", 1},
    };
    for (const auto &[name, want_exit] : cases) {
        const auto [code, out] = run(std::string(AQSIM_ANALYZE_BIN) +
                                     " --src " + fixture(name));
        EXPECT_EQ(code, want_exit) << name;
        EXPECT_EQ(out, slurp(std::string(AQSIM_ANALYZE_FIXTURES) +
                             "/" + name + "/expected.txt"))
            << name;
    }
}

TEST(AnalyzeBinary, UsageErrors)
{
    EXPECT_EQ(run(std::string(AQSIM_ANALYZE_BIN) +
                  " --src /no/such/dir").first, 2);
    EXPECT_EQ(run(std::string(AQSIM_ANALYZE_BIN) +
                  " --bogus-flag").first, 2);
}

} // namespace
