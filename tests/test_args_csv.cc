/** Tests for CLI parsing and CSV escaping. */

#include <gtest/gtest.h>

#include <sstream>

#include "base/args.hh"
#include "base/csv.hh"

using aqsim::Args;
using aqsim::CsvWriter;
using aqsim::csvEscape;

namespace
{

Args
parse(std::initializer_list<const char *> argv)
{
    std::vector<const char *> v(argv);
    return Args(static_cast<int>(v.size()), v.data());
}

} // namespace

TEST(Args, ParsesEqualsForm)
{
    auto args = parse({"prog", "--nodes=8", "--policy=dyn:1.03:0.02"});
    EXPECT_EQ(args.getInt("nodes", 0), 8);
    EXPECT_EQ(args.getString("policy", ""), "dyn:1.03:0.02");
}

TEST(Args, ParsesSpaceForm)
{
    auto args = parse({"prog", "--nodes", "8"});
    EXPECT_EQ(args.getInt("nodes", 0), 8);
}

TEST(Args, BareFlagIsTrue)
{
    auto args = parse({"prog", "--csv"});
    EXPECT_TRUE(args.getBool("csv", false));
    EXPECT_TRUE(args.has("csv"));
}

TEST(Args, MissingUsesFallback)
{
    auto args = parse({"prog"});
    EXPECT_EQ(args.getInt("nodes", 4), 4);
    EXPECT_EQ(args.getString("workload", "nas.ep"), "nas.ep");
    EXPECT_FALSE(args.getBool("csv", false));
    EXPECT_DOUBLE_EQ(args.getDouble("scale", 1.5), 1.5);
}

TEST(Args, PositionalArgumentsCollected)
{
    auto args = parse({"prog", "alpha", "--k=1", "beta"});
    ASSERT_EQ(args.positional().size(), 2u);
    EXPECT_EQ(args.positional()[0], "alpha");
    EXPECT_EQ(args.positional()[1], "beta");
}

TEST(Args, DoubleParsing)
{
    auto args = parse({"prog", "--scale=0.25"});
    EXPECT_DOUBLE_EQ(args.getDouble("scale", 1.0), 0.25);
}

TEST(Args, BoolExplicitValues)
{
    auto args = parse({"prog", "--a=true", "--b=0", "--c=yes"});
    EXPECT_TRUE(args.getBool("a", false));
    EXPECT_FALSE(args.getBool("b", true));
    EXPECT_TRUE(args.getBool("c", false));
}

TEST(Csv, EscapePlainStringUnchanged)
{
    EXPECT_EQ(csvEscape("hello"), "hello");
}

TEST(Csv, EscapeQuotesAndCommas)
{
    EXPECT_EQ(csvEscape("a,b"), "\"a,b\"");
    EXPECT_EQ(csvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterProducesHeaderAndRows)
{
    std::ostringstream out;
    {
        CsvWriter csv(out);
        csv.header({"name", "value"});
        csv.row().field("alpha").field(std::int64_t{42});
        csv.row().field("beta,gamma").field(2.5);
    }
    EXPECT_EQ(out.str(),
              "name,value\nalpha,42\n\"beta,gamma\",2.5\n");
}

TEST(Csv, PendingRowFlushedOnDestruction)
{
    std::ostringstream out;
    {
        CsvWriter csv(out);
        csv.row().field("tail");
    }
    EXPECT_EQ(out.str(), "tail\n");
}
