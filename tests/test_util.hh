/** Shared helpers for aqsim tests. */

#ifndef AQSIM_TESTS_TEST_UTIL_HH
#define AQSIM_TESTS_TEST_UTIL_HH

#include <functional>
#include <string>

#include "core/quantum_policy.hh"
#include "engine/cluster.hh"
#include "engine/sequential_engine.hh"
#include "harness/experiment.hh"
#include "workloads/workload.hh"

namespace aqsim::test
{

/** Workload whose per-rank program is a caller-provided lambda. */
class LambdaWorkload : public workloads::Workload
{
  public:
    using ProgramFn =
        std::function<sim::Process(workloads::AppContext &)>;

    explicit LambdaWorkload(ProgramFn fn, std::string name = "lambda")
        : fn_(std::move(fn)), name_(std::move(name))
    {}

    std::string name() const override { return name_; }

    MetricKind
    metricKind() const override
    {
        return MetricKind::WallClockSeconds;
    }

    sim::Process
    program(workloads::AppContext &ctx) override
    {
        return fn_(ctx);
    }

  private:
    ProgramFn fn_;
    std::string name_;
};

/** Noise-free engine options for exactly reproducible host times. */
inline engine::EngineOptions
quietEngine()
{
    engine::EngineOptions options;
    options.host.noiseSigma = 0.0;
    return options;
}

/**
 * Run @p fn as every rank's program on an n-node cluster under the
 * given policy spec, on the SequentialEngine.
 */
inline engine::RunResult
runLambda(std::size_t num_nodes, LambdaWorkload::ProgramFn fn,
          const std::string &policy_spec = "fixed:1us",
          engine::EngineOptions options = {},
          std::uint64_t seed = 1)
{
    LambdaWorkload workload(std::move(fn));
    auto policy = core::parsePolicy(policy_spec);
    auto params = harness::defaultCluster(num_nodes, seed);
    engine::SequentialEngine engine(options);
    return engine.run(params, workload, *policy);
}

/**
 * Like runLambda, but on caller-provided cluster parameters (fault
 * injection, reliable delivery, custom seeds) and engine options.
 */
inline engine::RunResult
runLambdaCluster(const engine::ClusterParams &params,
                 LambdaWorkload::ProgramFn fn,
                 const std::string &policy_spec = "fixed:1us",
                 engine::EngineOptions options = {})
{
    LambdaWorkload workload(std::move(fn));
    auto policy = core::parsePolicy(policy_spec);
    engine::SequentialEngine engine(options);
    return engine.run(params, workload, *policy);
}

} // namespace aqsim::test

#endif // AQSIM_TESTS_TEST_UTIL_HH
