/**
 * @file
 * Sharded-kernel tests: the deterministic k-way barrier merge
 * (sim::RunMerger) in isolation, the cross-engine bit-identity matrix
 * ((SequentialEngine, ThreadedEngine x 1/2/4/8 workers) x (clean, 5%
 * loss + reliable) x mid-run checkpoint/restore), and byte-identity of
 * checkpoint images across worker counts — the acceptance gates of the
 * per-shard event-queue refactor (docs/performance.md).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hh"
#include "engine/delivery_batch.hh"
#include "engine/threaded_engine.hh"
#include "net/packet.hh"
#include "sim/run_merge.hh"
#include "test_util.hh"

using namespace aqsim;

namespace
{

using sim::RunKey;
using sim::RunMerger;
using sim::RunView;

RunView
view(const std::vector<RunKey> &keys)
{
    return RunView{keys.data(), keys.size()};
}

/** Drain a merger into the flat emission order. */
std::vector<RunKey>
drain(RunMerger &merger)
{
    std::vector<RunKey> out;
    RunMerger::Item item;
    while (merger.next(item))
        out.push_back(item.key);
    return out;
}

TEST(RunMerge, SortRunOrdersByCanonicalKey)
{
    std::vector<RunKey> run = {
        {20, 5, 1, 0}, {10, 9, 2, 1}, {10, 3, 2, 2},
        {10, 3, 1, 3}, {20, 5, 1, 4},
    };
    sim::sortRun(run);
    // (when, src, departTick), then staging index for full stability.
    EXPECT_EQ(run[0].when, 10u);
    EXPECT_EQ(run[0].src, 1u);
    EXPECT_EQ(run[1].src, 2u);
    EXPECT_EQ(run[1].depart, 3u);
    EXPECT_EQ(run[2].depart, 9u);
    EXPECT_EQ(run[3].when, 20u);
    EXPECT_EQ(run[3].idx, 0u);
    EXPECT_EQ(run[4].idx, 4u);
}

TEST(RunMerge, MergesInterleavedRunsCanonically)
{
    const std::vector<RunKey> a = {{10, 0, 0, 0}, {30, 0, 0, 1}};
    const std::vector<RunKey> b = {{15, 1, 0, 0}, {25, 1, 0, 1}};
    const std::vector<RunKey> c = {{5, 2, 0, 0}, {40, 2, 0, 1}};
    const RunView views[] = {view(a), view(b), view(c)};
    RunMerger merger;
    merger.reset(views, 3);
    EXPECT_EQ(merger.remaining(), 6u);
    const auto out = drain(merger);
    ASSERT_EQ(out.size(), 6u);
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_TRUE(out[i - 1].strictlyBefore(out[i])) << i;
    EXPECT_EQ(out[0].when, 5u);
    EXPECT_EQ(out[5].when, 40u);
}

TEST(RunMerge, TieBreaksOnSourceThenDepart)
{
    // Same arrival tick everywhere: src decides, then departTick (a
    // total order because departTick strictly increases per source).
    const std::vector<RunKey> a = {{10, 4, 2, 0}, {10, 9, 2, 1}};
    const std::vector<RunKey> b = {{10, 3, 1, 0}, {10, 7, 5, 1}};
    const RunView views[] = {view(a), view(b)};
    RunMerger merger;
    merger.reset(views, 2);
    const auto out = drain(merger);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].src, 1u);
    EXPECT_EQ(out[1].src, 2u);
    EXPECT_EQ(out[1].depart, 4u);
    EXPECT_EQ(out[2].src, 2u);
    EXPECT_EQ(out[2].depart, 9u);
    EXPECT_EQ(out[3].src, 5u);
    for (std::size_t i = 1; i < out.size(); ++i)
        EXPECT_TRUE(out[i - 1].strictlyBefore(out[i])) << i;
}

TEST(RunMerge, SkipsEmptyShardsAndHandlesSingleRun)
{
    const std::vector<RunKey> only = {{7, 0, 3, 0}, {9, 0, 3, 1}};
    const std::vector<RunKey> empty;
    const RunView views[] = {view(empty), view(only), view(empty)};
    RunMerger merger;
    merger.reset(views, 3);
    EXPECT_EQ(merger.remaining(), 2u);
    const auto out = drain(merger);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].when, 7u);
    EXPECT_EQ(out[1].when, 9u);
}

TEST(RunMerge, AllEmptyAndReuse)
{
    RunMerger merger;
    merger.reset(nullptr, 0);
    RunMerger::Item item;
    EXPECT_FALSE(merger.next(item));
    EXPECT_EQ(merger.remaining(), 0u);
    // A merger is reusable quantum after quantum via reset().
    const std::vector<RunKey> a = {{1, 0, 0, 0}};
    const RunView views[] = {view(a)};
    merger.reset(views, 1);
    EXPECT_TRUE(merger.next(item));
    EXPECT_EQ(item.key.when, 1u);
    EXPECT_EQ(item.run, 0u);
    EXPECT_FALSE(merger.next(item));
}

// ---------------------------------------------------------------
// K×K exchange partitioner (engine::DeliveryBatch).
// ---------------------------------------------------------------

net::PacketPtr
stagedPacket(NodeId src, NodeId dst, Tick depart)
{
    auto pkt = net::makePacket(src, dst, 256, depart);
    pkt->departTick = depart;
    pkt->idealArrival = depart + 1;
    return pkt;
}

/** An 8-node cluster to dispatch into, plus a scoped invariant
 * checker so every merge's canonical order is machine-audited. */
struct Exchange : public ::testing::Test
{
    Exchange()
        : workload(workloads::makeWorkload("burst", 8, 0.05)),
          cluster(harness::defaultCluster(8, 13), *workload),
          checker(check::InvariantChecker::instance())
    {
        checker.reset();
        checker.setEnabled(true);
    }

    ~Exchange() override
    {
        checker.setEnabled(false);
        checker.reset();
    }

    std::uint64_t
    orderViolations() const
    {
        return checker.violations(check::Invariant::ShardMergeOrder);
    }

    std::unique_ptr<workloads::Workload> workload;
    engine::Cluster cluster;
    check::InvariantChecker &checker;
};

TEST_F(Exchange, StageRoutesBySourceAndDestinationShard)
{
    // 8 nodes over K=4 shards: two nodes per shard, destination known
    // at stage time, so each key lands directly in its (source shard,
    // destination shard) sub-run with no partition pass.
    engine::DeliveryBatch batch(8, 4);
    batch.stage(stagedPacket(0, 7, 10), 20,
                net::DeliveryKind::NextQuantum);
    batch.stage(stagedPacket(3, 2, 11), 20,
                net::DeliveryKind::NextQuantum);
    batch.stage(stagedPacket(6, 6, 12), 20,
                net::DeliveryKind::NextQuantum);

    EXPECT_EQ(batch.stagedBetween(0, 3), 1u);
    EXPECT_EQ(batch.stagedBetween(1, 1), 1u);
    EXPECT_EQ(batch.stagedBetween(3, 3), 1u);
    std::size_t occupied = 0;
    for (std::size_t s = 0; s < 4; ++s)
        for (std::size_t d = 0; d < 4; ++d)
            occupied += batch.stagedBetween(s, d) != 0;
    EXPECT_EQ(occupied, 3u);
    EXPECT_EQ(batch.pending(), 3u);
    EXPECT_EQ(batch.totalStaged(), 3u);

    EXPECT_EQ(batch.mergeInto(cluster), 3u);
    EXPECT_EQ(batch.pending(), 0u);
    EXPECT_EQ(batch.totalMerged(), 3u);
    for (std::size_t s = 0; s < 4; ++s)
        for (std::size_t d = 0; d < 4; ++d)
            EXPECT_EQ(batch.stagedBetween(s, d), 0u) << s << d;
    EXPECT_EQ(orderViolations(), 0u);
}

TEST_F(Exchange, EmptySubRunsMergeToNothing)
{
    engine::DeliveryBatch batch(8, 4);
    // A fully empty exchange is legal at every destination.
    for (std::size_t s = 0; s < 4; ++s)
        batch.closeRun(s);
    for (std::size_t d = 0; d < 4; ++d)
        EXPECT_EQ(batch.mergeShard(d, cluster), 0u) << d;

    // One intra-shard delivery: only its own column sees it; idle
    // destination shards still merge nothing.
    for (std::size_t s = 0; s < 4; ++s)
        batch.beginQuantum(s);
    batch.stage(stagedPacket(0, 1, 5), 9,
                net::DeliveryKind::NextQuantum);
    for (std::size_t s = 0; s < 4; ++s)
        batch.closeRun(s);
    EXPECT_EQ(batch.mergeShard(1, cluster), 0u);
    EXPECT_EQ(batch.mergeShard(2, cluster), 0u);
    EXPECT_EQ(batch.mergeShard(3, cluster), 0u);
    EXPECT_EQ(batch.mergeShard(0, cluster), 1u);
    EXPECT_EQ(batch.pending(), 0u);
    EXPECT_EQ(orderViolations(), 0u);
}

TEST_F(Exchange, AllToOneIncastMergesOneColumnCanonically)
{
    // Every node floods node 0: the worst-case exchange shape, where
    // one destination column carries the entire quantum. Stage in
    // descending key order so the per-sub-run sort and the k-way
    // column merge both have to do real work.
    engine::DeliveryBatch batch(8, 4);
    std::size_t staged = 0;
    for (NodeId src = 0; src < 8; ++src) {
        for (Tick t = 4; t > 0; --t) {
            batch.stage(stagedPacket(src, 0, 100 * t + src),
                        1000 + 10 * t, net::DeliveryKind::NextQuantum);
            ++staged;
        }
    }
    for (std::size_t s = 0; s < 4; ++s) {
        EXPECT_EQ(batch.stagedBetween(s, 0), 8u) << s;
        for (std::size_t d = 1; d < 4; ++d)
            EXPECT_EQ(batch.stagedBetween(s, d), 0u) << s << d;
        batch.closeRun(s);
    }
    EXPECT_EQ(batch.mergeShard(0, cluster), staged);
    for (std::size_t d = 1; d < 4; ++d)
        EXPECT_EQ(batch.mergeShard(d, cluster), 0u) << d;
    // The checker audited every emission for strict canonical order.
    EXPECT_EQ(orderViolations(), 0u);
    EXPECT_GT(checker.checksPerformed(), staged);
}

TEST_F(Exchange, DuplicateKeyTieIsFlaggedNotReordered)
{
    // Two deliveries with identical (when, src, departTick) — a
    // fault-injected duplicate the canonical key cannot order. The
    // staging index keeps the merge deterministic (staging order),
    // and the ShardMergeOrder invariant must flag the tie rather
    // than silently passing it off as strict order.
    engine::DeliveryBatch batch(8, 2);
    batch.stage(stagedPacket(3, 6, 40), 70,
                net::DeliveryKind::NextQuantum);
    batch.stage(stagedPacket(3, 6, 40), 70,
                net::DeliveryKind::NextQuantum);
    batch.closeRun(0);
    batch.closeRun(1);
    EXPECT_EQ(batch.mergeShard(1, cluster), 2u);
    EXPECT_EQ(orderViolations(), 1u);
}

TEST_F(Exchange, SingleShardIsTheDegenerateExchange)
{
    // K=1 (the SequentialEngine's configuration) is the one-cell
    // exchange: everything stages into (0, 0) and one merge drains
    // the whole quantum — no special-casing anywhere.
    engine::DeliveryBatch batch(8, 1);
    for (NodeId src = 0; src < 8; ++src)
        batch.stage(stagedPacket(src, 7 - src, 50 + src), 200,
                    net::DeliveryKind::NextQuantum);
    EXPECT_EQ(batch.numShards(), 1u);
    EXPECT_EQ(batch.stagedBetween(0, 0), 8u);
    EXPECT_EQ(batch.mergeInto(cluster), 8u);
    EXPECT_EQ(batch.pending(), 0u);
    EXPECT_EQ(orderViolations(), 0u);
}

TEST_F(Exchange, SubRunBuffersAreReusedAcrossQuanta)
{
    // Steady-state quanta must recycle the key and payload buffers:
    // capacities settle after the first quantum and never shrink or
    // reallocate while the traffic shape is stable.
    engine::DeliveryBatch batch(8, 2);
    const auto quantum = [&](Tick base) {
        for (std::size_t s = 0; s < 2; ++s)
            batch.beginQuantum(s);
        for (NodeId src = 0; src < 8; ++src)
            for (NodeId dst = 0; dst < 8; ++dst)
                batch.stage(
                    stagedPacket(src, dst, base + 8 * src + dst),
                    base + 64, net::DeliveryKind::NextQuantum);
        for (std::size_t s = 0; s < 2; ++s)
            batch.closeRun(s);
        for (std::size_t d = 0; d < 2; ++d)
            batch.mergeShard(d, cluster);
    };

    quantum(100);
    std::vector<std::size_t> caps;
    for (std::size_t s = 0; s < 2; ++s)
        for (std::size_t d = 0; d < 2; ++d) {
            EXPECT_EQ(batch.stagedBetween(s, d), 0u) << s << d;
            EXPECT_GE(batch.subRunCapacity(s, d), 16u) << s << d;
            caps.push_back(batch.subRunCapacity(s, d));
        }

    for (Tick base : {200, 300, 400})
        quantum(base);
    std::size_t i = 0;
    for (std::size_t s = 0; s < 2; ++s)
        for (std::size_t d = 0; d < 2; ++d)
            EXPECT_EQ(batch.subRunCapacity(s, d), caps[i++])
                << "sub-run (" << s << ", " << d
                << ") reallocated in steady state";
    EXPECT_EQ(batch.totalStaged(), 4u * 64u);
    EXPECT_EQ(batch.totalMerged(), 4u * 64u);
    EXPECT_EQ(orderViolations(), 0u);
}

// ---------------------------------------------------------------
// Cross-engine bit-identity matrix.
// ---------------------------------------------------------------

engine::ClusterParams
matrixParams(bool lossy)
{
    auto params = harness::defaultCluster(8, 13);
    if (lossy) {
        params.faults.dropRate = 0.05;
        params.mpiParams.reliable = true;
    }
    return params;
}

/**
 * Run one matrix cell: workers == 0 means the SequentialEngine,
 * otherwise the ThreadedEngine with that worker count (8 nodes, so 8
 * workers are not clamped away).
 */
engine::RunResult
runMatrixCell(std::size_t workers, bool lossy,
              engine::EngineOptions options = {})
{
    auto workload = workloads::makeWorkload("burst", 8, 0.05);
    auto policy = core::parsePolicy("fixed:1us");
    const auto params = matrixParams(lossy);
    if (workers == 0) {
        engine::SequentialEngine engine(options);
        return engine.run(params, *workload, *policy);
    }
    options.numWorkers = workers;
    engine::ThreadedEngine engine(options);
    return engine.run(params, *workload, *policy);
}

/** Every deterministic RunResult field (host time is wall-clock on
 * the threaded engine, so it is excluded by construction). */
void
expectBitIdentical(const engine::RunResult &a,
                   const engine::RunResult &b, const std::string &what)
{
    EXPECT_EQ(a.simTicks, b.simTicks) << what;
    EXPECT_EQ(a.quanta, b.quanta) << what;
    EXPECT_EQ(a.packets, b.packets) << what;
    EXPECT_EQ(a.stragglers, b.stragglers) << what;
    EXPECT_EQ(a.nextQuantumDeliveries, b.nextQuantumDeliveries)
        << what;
    EXPECT_EQ(a.latenessTicks, b.latenessTicks) << what;
    EXPECT_EQ(a.droppedFrames, b.droppedFrames) << what;
    EXPECT_EQ(a.retransmits, b.retransmits) << what;
    EXPECT_EQ(a.finishTicks, b.finishTicks) << what;
    EXPECT_EQ(a.metric, b.metric) << what;
    EXPECT_EQ(a.finalStateHash, b.finalStateHash) << what;
}

std::string
scratchDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("aqsim_shard_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

std::string
checkpointFile(const std::string &dir, std::uint64_t quantum)
{
    char name[64];
    std::snprintf(name, sizeof(name), "ckpt-q%012llu.aqc",
                  static_cast<unsigned long long>(quantum));
    return dir + "/" + name;
}

TEST(ShardIdentity, EveryWorkerCountMatchesSequential)
{
    for (const bool lossy : {false, true}) {
        const auto golden = runMatrixCell(0, lossy);
        ASSERT_GT(golden.quanta, 4u);
        for (const std::size_t workers : {1ul, 2ul, 4ul, 8ul}) {
            const std::string what =
                std::string(lossy ? "lossy" : "clean") + " thr" +
                std::to_string(workers);
            expectBitIdentical(golden, runMatrixCell(workers, lossy),
                               what);
        }
    }
}

TEST(ShardIdentity, RestoreAtGoldenQuantumMatchesAcrossEngines)
{
    // Mid-run checkpoint/restore leg of the matrix: every engine
    // config checkpoints, is "killed", restores from the mid-run
    // image with per-section divergence checking, and must land on
    // the sequential golden bit-for-bit.
    for (const bool lossy : {false, true}) {
        const auto golden = runMatrixCell(0, lossy);
        const std::uint64_t mid = golden.quanta / 2;
        ASSERT_GT(mid, 0u);
        int cell_id = 0;
        for (const std::size_t workers : {0ul, 1ul, 2ul, 4ul, 8ul}) {
            const std::string tag =
                std::string(lossy ? "lossy" : "clean") + "_w" +
                std::to_string(workers) + "_" +
                std::to_string(cell_id++);
            const std::string dir = scratchDir(tag);
            engine::EngineOptions ck;
            ck.checkpointEvery = 1;
            ck.checkpointDir = dir;
            ck.checkpointKeepLast = 0;
            expectBitIdentical(golden, runMatrixCell(workers, lossy, ck),
                               tag + " checkpointed");

            engine::EngineOptions restore;
            restore.restorePath = checkpointFile(dir, mid);
            restore.verifyRestore = true;
            const auto restored =
                runMatrixCell(workers, lossy, restore);
            expectBitIdentical(golden, restored, tag + " restored");
            EXPECT_EQ(restored.restoredFromQuantum, mid) << tag;
            std::filesystem::remove_all(dir);
        }
    }
}

std::string
slurpBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(ShardIdentity, CheckpointImagesByteIdenticalAcrossWorkerCounts)
{
    // The snapshot cut happens at the barrier with the shard runs
    // merged, and the engine-private section carries only
    // deterministic counters — so the image on disk must not depend
    // on how many workers produced it.
    const std::uint64_t probe = 3;
    std::string reference;
    std::size_t ref_workers = 0;
    for (const std::size_t workers : {1ul, 2ul, 4ul, 8ul}) {
        const std::string dir =
            scratchDir("bytes_w" + std::to_string(workers));
        engine::EngineOptions ck;
        ck.checkpointEvery = 1;
        ck.checkpointDir = dir;
        ck.checkpointKeepLast = 0;
        const auto result = runMatrixCell(workers, /*lossy=*/true, ck);
        ASSERT_GT(result.quanta, probe) << workers;
        const std::string image =
            slurpBytes(checkpointFile(dir, probe));
        ASSERT_FALSE(image.empty()) << workers;
        if (reference.empty()) {
            reference = image;
            ref_workers = workers;
        } else {
            EXPECT_EQ(image, reference)
                << "image at quantum " << probe << " differs between "
                << ref_workers << " and " << workers << " workers";
        }
        std::filesystem::remove_all(dir);
    }
}

} // namespace
