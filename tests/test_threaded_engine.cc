/**
 * Tests for the real-parallel ThreadedEngine, including the
 * cross-engine determinism contract: with conservative quanta
 * (Q <= T) its simulated results are bit-identical to the
 * SequentialEngine's.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "engine/threaded_engine.hh"
#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::LambdaWorkload;

namespace
{

engine::RunResult
runThreaded(const std::string &workload, std::size_t nodes,
            const std::string &policy, double scale = 0.05)
{
    auto wl = workloads::makeWorkload(workload, nodes, scale);
    auto pol = core::parsePolicy(policy);
    auto params = harness::defaultCluster(nodes, 1);
    engine::ThreadedEngine engine;
    return engine.run(params, *wl, *pol);
}

engine::RunResult
runSequential(const std::string &workload, std::size_t nodes,
              const std::string &policy, double scale = 0.05)
{
    auto wl = workloads::makeWorkload(workload, nodes, scale);
    auto pol = core::parsePolicy(policy);
    auto params = harness::defaultCluster(nodes, 1);
    engine::SequentialEngine engine;
    return engine.run(params, *wl, *pol);
}

} // namespace

TEST(ThreadedEngine, RunsPingPongToCompletion)
{
    auto result = runThreaded("pingpong", 2, "fixed:1us");
    EXPECT_GT(result.simTicks, 0u);
    EXPECT_GT(result.hostNs, 0.0);
    EXPECT_EQ(result.engine, "threaded");
    EXPECT_EQ(result.stragglers, 0u);
}

TEST(ThreadedEngine, ConservativeMatchesSequentialExactly)
{
    for (const char *workload : {"pingpong", "nas.ep", "nas.cg"}) {
        auto threaded = runThreaded(workload, 4, "fixed:1us");
        auto sequential = runSequential(workload, 4, "fixed:1us");
        EXPECT_EQ(threaded.simTicks, sequential.simTicks) << workload;
        EXPECT_EQ(threaded.packets, sequential.packets) << workload;
        EXPECT_EQ(threaded.finishTicks, sequential.finishTicks)
            << workload;
        EXPECT_EQ(threaded.stragglers, 0u) << workload;
    }
}

TEST(ThreadedEngine, ConservativeIsRunToRunDeterministic)
{
    auto a = runThreaded("nas.cg", 4, "fixed:1us");
    auto b = runThreaded("nas.cg", 4, "fixed:1us");
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.finishTicks, b.finishTicks);
}

TEST(ThreadedEngine, SubLatencyQuantumAlsoMatches)
{
    auto threaded = runThreaded("pingpong", 2, "fixed:500ns");
    auto sequential = runSequential("pingpong", 2, "fixed:500ns");
    EXPECT_EQ(threaded.simTicks, sequential.simTicks);
}

TEST(ThreadedEngine, NonConservativeStillDeliversEverything)
{
    // With Q > T the threaded engine is racy (like the paper's real
    // system) but must remain functionally correct: every message
    // delivered, run completes.
    std::atomic<int> received{0};
    constexpr int msgs = 30;
    LambdaWorkload workload([&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            for (int i = 0; i < msgs; ++i)
                co_await ctx.comm().send(1, 1, 256);
        } else {
            for (int i = 0; i < msgs; ++i) {
                co_await ctx.comm().recv(0, 1);
                ++received;
            }
        }
    });
    auto pol = core::parsePolicy("fixed:50us");
    auto params = harness::defaultCluster(2, 1);
    engine::ThreadedEngine engine;
    auto result = engine.run(params, workload, *pol);
    EXPECT_EQ(received.load(), msgs);
    EXPECT_GT(result.simTicks, 0u);
}

TEST(ThreadedEngine, AdaptivePolicyCompletes)
{
    auto result =
        runThreaded("burst", 4, "dyn:1.05:0.02:1us:1000us", 0.2);
    EXPECT_GT(result.simTicks, 0u);
    EXPECT_GT(result.quanta, 0u);
}

TEST(ThreadedEngine, EightNodeCollectivesComplete)
{
    auto result = runThreaded("nas.mg", 8, "fixed:1us", 0.02);
    EXPECT_GT(result.simTicks, 0u);
    for (Tick t : result.finishTicks)
        EXPECT_GT(t, 0u);
}

TEST(ThreadedEngine, DeadlockDetectedAcrossThreads)
{
    LambdaWorkload workload([](AppContext &ctx) -> sim::Process {
        // Everyone waits forever.
        co_await ctx.comm().recv(
            static_cast<int>((ctx.rank() + 1) % ctx.numRanks()), 1);
    });
    auto pol = core::parsePolicy("fixed:10us");
    auto params = harness::defaultCluster(2, 1);
    engine::ThreadedEngine engine;
    EXPECT_DEATH(engine.run(params, workload, *pol), "deadlock");
}

TEST(ThreadedEngine, WallClockIsMeasuredNotModeled)
{
    auto result = runThreaded("pingpong", 2, "fixed:10us");
    // Measured host time is positive and sane (< 60 s).
    EXPECT_GT(result.hostNs, 0.0);
    EXPECT_LT(result.hostNs, 60e9);
}
