/** Tests for multi-hop topology switch models. */

#include <gtest/gtest.h>

#include "net/topology.hh"
#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::net;

TEST(Topology, ParseAndName)
{
    EXPECT_EQ(parseTopology("star"), TopologyKind::Star);
    EXPECT_EQ(parseTopology("ring"), TopologyKind::Ring);
    EXPECT_EQ(parseTopology("mesh"), TopologyKind::Mesh2D);
    EXPECT_EQ(parseTopology("torus"), TopologyKind::Torus2D);
    EXPECT_EQ(parseTopology("tree"), TopologyKind::Tree2Level);
    EXPECT_EQ(topologyName(TopologyKind::Ring), "ring");
    EXPECT_EXIT(parseTopology("blob"), ::testing::ExitedWithCode(1),
                "unknown topology");
}

TEST(Topology, StarIsOneHopEverywhere)
{
    TopologyParams params;
    params.kind = TopologyKind::Star;
    TopologySwitch sw(8, params);
    for (NodeId a = 0; a < 8; ++a)
        for (NodeId b = 0; b < 8; ++b)
            EXPECT_EQ(sw.hops(a, b), a == b ? 0u : 1u);
    EXPECT_EQ(sw.diameter(), 1u);
}

TEST(Topology, RingUsesShortestDirection)
{
    TopologyParams params;
    params.kind = TopologyKind::Ring;
    TopologySwitch sw(8, params);
    EXPECT_EQ(sw.hops(0, 1), 1u);
    EXPECT_EQ(sw.hops(0, 4), 4u);
    EXPECT_EQ(sw.hops(0, 7), 1u); // wraps
    EXPECT_EQ(sw.hops(6, 1), 3u);
    EXPECT_EQ(sw.diameter(), 4u);
}

TEST(Topology, MeshManhattanDistance)
{
    TopologyParams params;
    params.kind = TopologyKind::Mesh2D;
    TopologySwitch sw(16, params); // 4x4
    EXPECT_EQ(sw.hops(0, 3), 3u);   // same row
    EXPECT_EQ(sw.hops(0, 12), 3u);  // same column
    EXPECT_EQ(sw.hops(0, 15), 6u);  // opposite corner
    EXPECT_EQ(sw.diameter(), 6u);
}

TEST(Topology, TorusWrapsBothAxes)
{
    TopologyParams params;
    params.kind = TopologyKind::Torus2D;
    TopologySwitch sw(16, params); // 4x4
    EXPECT_EQ(sw.hops(0, 3), 1u);  // row wrap
    EXPECT_EQ(sw.hops(0, 12), 1u); // column wrap
    EXPECT_EQ(sw.hops(0, 15), 2u);
    EXPECT_EQ(sw.diameter(), 4u);
}

TEST(Topology, TreeSameLeafVsCrossLeaf)
{
    TopologyParams params;
    params.kind = TopologyKind::Tree2Level;
    params.radix = 4;
    TopologySwitch sw(16, params);
    EXPECT_EQ(sw.hops(0, 3), 1u);  // same leaf
    EXPECT_EQ(sw.hops(0, 4), 3u);  // via root
    EXPECT_EQ(sw.diameter(), 3u);
}

TEST(Topology, EgressPricesHopsAndSerialization)
{
    TopologyParams params;
    params.kind = TopologyKind::Ring;
    params.hopLatency = 100;
    params.bytesPerNs = 10.0;
    params.contention = false;
    TopologySwitch sw(8, params);
    // 3 hops * 100 + 1000B/10.
    EXPECT_EQ(sw.egress(0, 3, 1000, 5000), 5000u + 300u + 100u);
}

TEST(Topology, ContentionQueuesOnDestinationPort)
{
    TopologyParams params;
    params.kind = TopologyKind::Star;
    params.hopLatency = 100;
    params.bytesPerNs = 1.0;
    TopologySwitch sw(4, params);
    EXPECT_EQ(sw.egress(0, 1, 1000, 0), 1100u);
    EXPECT_EQ(sw.egress(2, 1, 1000, 0), 2100u); // queues
    sw.reset();
    EXPECT_EQ(sw.egress(2, 1, 1000, 0), 1100u);
}

TEST(Topology, MinTraversalIsOneHop)
{
    TopologyParams params;
    params.kind = TopologyKind::Mesh2D;
    params.hopLatency = 250;
    TopologySwitch sw(16, params);
    EXPECT_EQ(sw.minTraversal(), 250u);
}

TEST(Topology, SymmetricHops)
{
    for (TopologyKind kind :
         {TopologyKind::Ring, TopologyKind::Mesh2D,
          TopologyKind::Torus2D, TopologyKind::Tree2Level}) {
        TopologyParams params;
        params.kind = kind;
        TopologySwitch sw(12, params);
        for (NodeId a = 0; a < 12; ++a)
            for (NodeId b = 0; b < 12; ++b)
                EXPECT_EQ(sw.hops(a, b), sw.hops(b, a))
                    << topologyName(kind) << " " << a << "," << b;
    }
}

TEST(Topology, ClusterRunsConservativelyOnEveryTopology)
{
    // End-to-end: a cluster over each topology still satisfies the
    // conservative no-straggler guarantee when Q <= T.
    for (const char *name : {"star", "ring", "mesh", "torus", "tree"}) {
        auto workload = workloads::makeWorkload("burst", 8, 0.05);
        auto policy = core::parsePolicy("fixed:1us");
        auto params = harness::defaultCluster(8, 1);
        TopologyParams topo;
        topo.kind = parseTopology(name);
        params.network.switchModel =
            std::make_shared<TopologySwitch>(8, topo);
        engine::SequentialEngine engine;
        auto result = engine.run(params, *workload, *policy);
        EXPECT_EQ(result.stragglers, 0u) << name;
        EXPECT_GT(result.simTicks, 0u) << name;
    }
}

TEST(Topology, MoreHopsMeansLongerRuntime)
{
    auto run_with = [](TopologyKind kind) {
        auto workload = workloads::makeWorkload("pingpong", 8, 0.2);
        auto policy = core::parsePolicy("fixed:1us");
        auto params = harness::defaultCluster(8, 1);
        TopologyParams topo;
        topo.kind = kind;
        topo.hopLatency = 1000;
        params.network.switchModel =
            std::make_shared<TopologySwitch>(8, topo);
        engine::SequentialEngine engine;
        return engine.run(params, *workload, *policy).simTicks;
    };
    // Ring neighbors (0<->1 pairs) are 1 hop on both, but the star
    // run and ring run should match; a tree with radix 1 forces
    // 3 hops for every pair.
    auto run_tree = [](std::size_t radix) {
        auto workload = workloads::makeWorkload("pingpong", 8, 0.2);
        auto policy = core::parsePolicy("fixed:1us");
        auto params = harness::defaultCluster(8, 1);
        TopologyParams topo;
        topo.kind = TopologyKind::Tree2Level;
        topo.radix = radix;
        topo.hopLatency = 1000;
        params.network.switchModel =
            std::make_shared<TopologySwitch>(8, topo);
        engine::SequentialEngine engine;
        return engine.run(params, *workload, *policy).simTicks;
    };
    EXPECT_EQ(run_with(TopologyKind::Star),
              run_with(TopologyKind::Ring));
    EXPECT_GT(run_tree(1), run_tree(8));
}
