/** Tests for the windowed (TCP-style) flow control of long messages. */

#include <gtest/gtest.h>

#include <atomic>

#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::runLambda;

namespace
{

/** Frame payload capacity with the default parameters. */
constexpr std::uint64_t payloadCap = 9000 - 78;
/** Fragments per 64 KiB window. */
constexpr std::uint64_t windowFrags = (64 * 1024) / payloadCap;

engine::RunResult
transfer(std::uint64_t bytes, std::atomic<std::uint64_t> *got = nullptr)
{
    return runLambda(2, [&, got](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, bytes);
        } else {
            mpi::Message m = co_await ctx.comm().recv(0, 1);
            if (got)
                *got = m.bytes;
        }
    });
}

} // namespace

TEST(FlowControl, MessageJustAboveEagerUsesRendezvousNoAck)
{
    // 64KiB + 1: rendezvous, but only ~8 fragments (just above one
    // window) — one ACK at most.
    std::atomic<std::uint64_t> got{0};
    const std::uint64_t bytes = 64 * 1024 + 1;
    auto result = transfer(bytes, &got);
    EXPECT_EQ(got.load(), bytes);
    const auto frags = mpi::fragmentCount(bytes, payloadCap);
    const auto windows = (frags + windowFrags - 1) / windowFrags;
    EXPECT_EQ(result.packets, frags + 2 + (windows - 1));
}

TEST(FlowControl, ExactWindowMultipleHasNoTrailingAck)
{
    // Exactly 2 windows of fragments: one ACK (after window 1), none
    // after the final window.
    const std::uint64_t bytes = 2 * windowFrags * payloadCap;
    std::atomic<std::uint64_t> got{0};
    auto result = transfer(bytes, &got);
    EXPECT_EQ(got.load(), bytes);
    const auto frags = mpi::fragmentCount(bytes, payloadCap);
    EXPECT_EQ(frags, 2 * windowFrags);
    EXPECT_EQ(result.packets, frags + 2 + 1);
}

TEST(FlowControl, VeryLargeTransferScalesWindows)
{
    const std::uint64_t bytes = 4 << 20; // 4 MiB
    std::atomic<std::uint64_t> got{0};
    auto result = transfer(bytes, &got);
    EXPECT_EQ(got.load(), bytes);
    const auto frags = mpi::fragmentCount(bytes, payloadCap);
    const auto windows = (frags + windowFrags - 1) / windowFrags;
    EXPECT_EQ(result.packets, frags + 2 + (windows - 1));
    EXPECT_EQ(result.stragglers, 0u); // conservative ground truth
}

TEST(FlowControl, ConcurrentRendezvousToOneReceiver)
{
    // Three senders stream long messages to rank 0 simultaneously;
    // per-msgId ACK bookkeeping must not cross wires.
    std::atomic<int> received{0};
    runLambda(4, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            for (int i = 0; i < 3; ++i) {
                co_await ctx.comm().recv(mpi::anySource, 2);
                ++received;
            }
        } else {
            co_await ctx.comm().send(0, 2, 300000 + ctx.rank());
        }
    });
    EXPECT_EQ(received.load(), 3);
}

TEST(FlowControl, BidirectionalConcurrentWindowedTransfers)
{
    std::atomic<int> done{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        const Rank peer = 1 - ctx.rank();
        auto s = ctx.comm().send(peer, 3, 1 << 20);
        s.start();
        co_await ctx.comm().recv(static_cast<int>(peer), 3);
        co_await std::move(s);
        ++done;
    });
    EXPECT_EQ(done.load(), 2);
}

TEST(FlowControl, WindowRoundTripsGateTransferLatency)
{
    // The windowed transfer's simulated duration includes one ack
    // round trip per non-final window — measure a 512 KiB transfer
    // and check it exceeds pure serialization by roughly the ack
    // RTTs.
    std::vector<Tick> arrival;
    const std::uint64_t bytes = 512 * 1024;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, bytes);
        } else {
            co_await ctx.comm().recv(0, 1);
            arrival.push_back(ctx.now());
        }
    });
    ASSERT_EQ(arrival.size(), 1u);
    // Pure wire time: ~512K/10 B/ns = 52us. With RTS/CTS + 8 windows,
    // the measured completion must be noticeably larger but bounded.
    EXPECT_GT(arrival[0], microseconds(55));
    EXPECT_LT(arrival[0], microseconds(200));
}

TEST(FlowControl, DilationUnderCoarseQuantumGrowsWithWindows)
{
    // Under a 500us quantum, each ACK round trip snaps toward a
    // quantum boundary, so transfer time grows with window count.
    auto timed = [&](std::uint64_t bytes, const char *policy) {
        std::vector<Tick> arrival;
        runLambda(
            2,
            [&](AppContext &ctx) -> sim::Process {
                if (ctx.rank() == 0) {
                    co_await ctx.comm().send(1, 1, bytes);
                } else {
                    co_await ctx.comm().recv(0, 1);
                    arrival.push_back(ctx.now());
                }
            },
            policy);
        return arrival.at(0);
    };
    const Tick gt = timed(1 << 20, "fixed:1us");
    const Tick coarse = timed(1 << 20, "fixed:500us");
    EXPECT_GT(coarse, 2 * gt);
}
