/** Tests for the network controller: routing, timing, accounting. */

#include <gtest/gtest.h>

#include <vector>

#include "base/random.hh"
#include "fault/fault_injector.hh"
#include "net/network_controller.hh"
#include "stats/stats.hh"

using namespace aqsim;
using namespace aqsim::net;

namespace
{

/** Captures placements so tests can verify controller behaviour. */
class RecordingScheduler : public DeliveryScheduler
{
  public:
    struct Placement
    {
        PacketPtr pkt;
        DeliveryKind kind;
        Tick actual;
    };

    /** Next placement behaves as configured. */
    DeliveryKind nextKind = DeliveryKind::OnTime;
    Tick extraLateness = 0;

    Tick
    place(const PacketPtr &pkt, DeliveryKind &kind) override
    {
        kind = nextKind;
        const Tick actual = pkt->idealArrival + extraLateness;
        placements.push_back(Placement{pkt, kind, actual});
        return actual;
    }

    std::vector<Placement> placements;
};

struct ControllerFixture : public ::testing::Test
{
    ControllerFixture()
        : root("cluster"), controller(4, NetworkParams{}, root)
    {
        controller.setScheduler(&scheduler);
    }

    PacketPtr
    makeFrame(NodeId src, NodeId dst, std::uint32_t bytes,
              Tick depart)
    {
        auto pkt = makePacket(src, dst, bytes, depart);
        pkt->departTick = depart;
        return pkt;
    }

    stats::Group root;
    RecordingScheduler scheduler;
    NetworkController controller;
};

} // namespace

TEST_F(ControllerFixture, MinNetworkLatencyMatchesPaperConfig)
{
    // Default NicParams: 500+500 latency + 64B/10GBps serialization.
    const Tick t = controller.minNetworkLatency();
    EXPECT_GE(t, 1000u);
    EXPECT_LE(t, 1010u);
}

TEST_F(ControllerFixture, RoutesUnicastWithIdealArrival)
{
    controller.inject(makeFrame(0, 1, 9000, 5000));
    ASSERT_EQ(scheduler.placements.size(), 1u);
    const auto &p = scheduler.placements[0];
    // Perfect switch: ideal = depart + rx latency.
    EXPECT_EQ(p.pkt->idealArrival, 5000u + 500u);
    EXPECT_EQ(controller.totalPackets(), 1u);
    EXPECT_EQ(controller.packetsThisQuantum(), 1u);
}

TEST_F(ControllerFixture, AssignsUniqueIds)
{
    controller.inject(makeFrame(0, 1, 100, 0));
    controller.inject(makeFrame(1, 2, 100, 0));
    EXPECT_NE(scheduler.placements[0].pkt->id,
              scheduler.placements[1].pkt->id);
}

TEST_F(ControllerFixture, BroadcastReplicatesToAllOthers)
{
    controller.inject(makeFrame(2, broadcastNode, 100, 0));
    ASSERT_EQ(scheduler.placements.size(), 3u);
    std::vector<NodeId> dsts;
    for (const auto &p : scheduler.placements)
        dsts.push_back(p.pkt->dst);
    EXPECT_EQ(dsts, (std::vector<NodeId>{0, 1, 3}));
    EXPECT_EQ(controller.totalPackets(), 3u);
}

TEST_F(ControllerFixture, QuantumPacketCountResetsAtBeginQuantum)
{
    controller.inject(makeFrame(0, 1, 100, 0));
    controller.inject(makeFrame(0, 2, 100, 0));
    EXPECT_EQ(controller.packetsThisQuantum(), 2u);
    controller.beginQuantum();
    EXPECT_EQ(controller.packetsThisQuantum(), 0u);
    EXPECT_EQ(controller.totalPackets(), 2u);
}

TEST_F(ControllerFixture, StragglerAccounting)
{
    scheduler.nextKind = DeliveryKind::Straggler;
    scheduler.extraLateness = 123;
    controller.inject(makeFrame(0, 1, 100, 0));
    EXPECT_EQ(controller.totalStragglers(), 1u);
    EXPECT_EQ(controller.totalNextQuantum(), 0u);
    EXPECT_EQ(controller.totalLatenessTicks(), 123u);
}

TEST_F(ControllerFixture, NextQuantumCountsAsStragglerToo)
{
    scheduler.nextKind = DeliveryKind::NextQuantum;
    scheduler.extraLateness = 50;
    controller.inject(makeFrame(0, 1, 100, 0));
    EXPECT_EQ(controller.totalStragglers(), 1u);
    EXPECT_EQ(controller.totalNextQuantum(), 1u);
}

TEST_F(ControllerFixture, OnTimeDeliveriesAreNotStragglers)
{
    controller.inject(makeFrame(0, 1, 100, 0));
    EXPECT_EQ(controller.totalStragglers(), 0u);
    EXPECT_EQ(controller.totalLatenessTicks(), 0u);
}

TEST_F(ControllerFixture, ObserversSeeEveryPacket)
{
    std::vector<std::pair<NodeId, Tick>> seen;
    controller.addObserver([&](const Packet &pkt, Tick actual) {
        seen.emplace_back(pkt.dst, actual);
    });
    controller.inject(makeFrame(0, 3, 100, 700));
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0].first, 3u);
    EXPECT_EQ(seen[0].second, 700u + 500u);
}

TEST_F(ControllerFixture, ResetClearsCounters)
{
    controller.inject(makeFrame(0, 1, 100, 0));
    controller.reset();
    EXPECT_EQ(controller.totalPackets(), 0u);
    EXPECT_EQ(controller.packetsThisQuantum(), 0u);
}

TEST_F(ControllerFixture, ResetAlsoClearsTheStatsTree)
{
    scheduler.nextKind = DeliveryKind::Straggler;
    scheduler.extraLateness = 77;
    controller.inject(makeFrame(0, 1, 100, 0));
    const auto *packets = dynamic_cast<const stats::Scalar *>(
        root.find("network.packets"));
    const auto *stragglers = dynamic_cast<const stats::Scalar *>(
        root.find("network.stragglers"));
    ASSERT_NE(packets, nullptr);
    ASSERT_NE(stragglers, nullptr);
    EXPECT_EQ(packets->value(), 1.0);
    EXPECT_EQ(stragglers->value(), 1.0);
    controller.reset();
    // Scalars and histograms under the controller's group go back to
    // zero along with the raw counters, so a rerun starts clean.
    EXPECT_EQ(packets->value(), 0.0);
    EXPECT_EQ(stragglers->value(), 0.0);
    EXPECT_EQ(controller.totalStragglers(), 0u);
    EXPECT_EQ(controller.totalLatenessTicks(), 0u);
}

TEST_F(ControllerFixture, ResetRestoresTheFaultLayerToo)
{
    fault::FaultParams fp;
    fp.dropRate = 1.0;
    fault::FaultInjector faults(4, fp, Rng(9), root);
    controller.setFaultInjector(&faults);
    controller.inject(makeFrame(0, 1, 100, 0));
    EXPECT_EQ(controller.totalDropped(), 1u);
    EXPECT_EQ(faults.totalDropped(), 1u);
    const auto *dropped = dynamic_cast<const stats::Scalar *>(
        root.find("faults.dropped"));
    ASSERT_NE(dropped, nullptr);
    EXPECT_EQ(dropped->value(), 1.0);
    controller.reset();
    EXPECT_EQ(controller.totalDropped(), 0u);
    EXPECT_EQ(faults.totalDropped(), 0u);
    EXPECT_EQ(dropped->value(), 0.0);
}

TEST_F(ControllerFixture, StoreAndForwardSwitchDelaysThroughPorts)
{
    NetworkParams params;
    params.switchModel =
        std::make_shared<StoreAndForwardSwitch>(4, 10.0, 200);
    stats::Group root2("cluster");
    NetworkController ctrl(4, params, root2);
    RecordingScheduler sched;
    ctrl.setScheduler(&sched);

    auto pkt = makePacket(0, 1, 9000, 0);
    pkt->departTick = 0;
    ctrl.inject(pkt);
    // traversal 200 + 9000B at 10 B/ns = 900 + rx latency 500.
    EXPECT_EQ(sched.placements[0].pkt->idealArrival, 200u + 900u + 500u);
    EXPECT_EQ(ctrl.minNetworkLatency(), 500u + 200u + 500u + 7u);
}

TEST(NicParams, SerializationRoundsUp)
{
    NicParams nic;
    nic.bytesPerNs = 10.0;
    EXPECT_EQ(nic.serialization(9000), 900u);
    EXPECT_EQ(nic.serialization(64), 7u); // 6.4 -> 7
    EXPECT_EQ(nic.serialization(1), 1u);
}

TEST(ControllerDeath, SelfSendIsRejected)
{
    stats::Group root("cluster");
    NetworkController ctrl(2, NetworkParams{}, root);
    RecordingScheduler sched;
    ctrl.setScheduler(&sched);
    auto pkt = makePacket(0, 0, 100, 0);
    EXPECT_DEATH(ctrl.inject(pkt), "assertion");
}
