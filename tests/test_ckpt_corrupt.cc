/**
 * Checkpoint file hardening tests: bit flips, truncation, stale
 * versions and foreign endianness must all be rejected with a
 * structured error naming the damaged section, and recovery must fall
 * back past a corrupt newest file to the previous good checkpoint.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "ckpt/manager.hh"
#include "engine/sequential_engine.hh"
#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::ckpt;

namespace
{

/** Byte offsets of the container header fields (see ckpt_io.hh). */
constexpr std::size_t versionOffset = 8;
constexpr std::size_t endianOffset = 12;

/** Produce a directory of real checkpoints from a small run. */
struct CorruptFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        // Per-test directory: ctest runs each test in its own process,
        // concurrently — a shared path would race SetUp/TearDown.
        const std::string test_name = ::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name();
        dir = (std::filesystem::temp_directory_path() /
               ("aqsim_ckpt_corrupt_" + test_name))
                  .string();
        std::filesystem::remove_all(dir);

        auto workload = workloads::makeWorkload("burst", 4, 0.05);
        auto policy = core::parsePolicy("fixed:1us");
        engine::EngineOptions options;
        options.checkpointEvery = 100;
        options.checkpointDir = dir;
        options.checkpointKeepLast = 0;
        engine::SequentialEngine engine(options);
        result = engine.run(harness::defaultCluster(4, 7), *workload,
                            *policy);

        files.clear();
        for (const auto &entry :
             std::filesystem::directory_iterator(dir))
            files.push_back(entry.path().string());
        std::sort(files.begin(), files.end());
        ASSERT_GE(files.size(), 2u);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::vector<std::uint8_t>
    readImage(const std::string &path)
    {
        std::vector<std::uint8_t> raw;
        CkptError error;
        EXPECT_TRUE(readFile(path, raw, error)) << error.str();
        return raw;
    }

    void
    writeRaw(const std::string &path,
             const std::vector<std::uint8_t> &raw)
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(raw.data(), 1, raw.size(), f);
        std::fclose(f);
    }

    std::string dir;
    std::vector<std::string> files;
    engine::RunResult result;
};

TEST_F(CorruptFixture, IntactFileDecodes)
{
    CheckpointImage image;
    CkptError error;
    ASSERT_TRUE(decodeImage(readImage(files.back()), image, error))
        << error.str();
    EXPECT_EQ(image.engine, "sequential");
    EXPECT_GT(image.quantumIndex, 0u);
    EXPECT_NE(image.find(sectionNodes), nullptr);
    EXPECT_NE(image.find(sectionMpi), nullptr);
}

TEST_F(CorruptFixture, BitFlipIsRejectedNamingTheSection)
{
    auto raw = readImage(files.back());
    // Flip one bit deep inside the payload: the damaged section's own
    // CRC must catch it and the error must say which section died.
    raw[raw.size() / 2] ^= 0x40;
    CheckpointImage image;
    CkptError error;
    EXPECT_FALSE(decodeImage(raw, image, error));
    EXPECT_FALSE(error.section.empty());
    EXPECT_NE(error.str().find("CRC mismatch"), std::string::npos)
        << error.str();
}

TEST_F(CorruptFixture, TruncationIsRejected)
{
    auto raw = readImage(files.back());
    raw.resize(raw.size() - 7);
    CheckpointImage image;
    CkptError error;
    EXPECT_FALSE(decodeImage(raw, image, error));
    EXPECT_NE(error.str().find("truncated"), std::string::npos)
        << error.str();
}

TEST_F(CorruptFixture, StaleVersionIsRejected)
{
    auto raw = readImage(files.back());
    raw[versionOffset] = 99;
    CheckpointImage image;
    CkptError error;
    EXPECT_FALSE(decodeImage(raw, image, error));
    EXPECT_EQ(error.section, "header");
    EXPECT_NE(error.message.find("version"), std::string::npos)
        << error.str();
}

TEST_F(CorruptFixture, ForeignEndiannessIsRejected)
{
    auto raw = readImage(files.back());
    std::swap(raw[endianOffset], raw[endianOffset + 3]);
    std::swap(raw[endianOffset + 1], raw[endianOffset + 2]);
    CheckpointImage image;
    CkptError error;
    EXPECT_FALSE(decodeImage(raw, image, error));
    EXPECT_EQ(error.section, "header");
    EXPECT_NE(error.message.find("endian"), std::string::npos)
        << error.str();
}

TEST_F(CorruptFixture, NotACheckpointIsRejected)
{
    std::vector<std::uint8_t> raw = {'h', 'e', 'l', 'l', 'o'};
    CheckpointImage image;
    CkptError error;
    EXPECT_FALSE(decodeImage(raw, image, error));
    EXPECT_EQ(error.section, "header");
    EXPECT_NE(error.message.find("magic"), std::string::npos)
        << error.str();
}

TEST_F(CorruptFixture, RecoveryFallsBackPastCorruptNewestFile)
{
    // Damage the newest checkpoint in place.
    auto raw = readImage(files.back());
    raw[raw.size() / 2] ^= 0x01;
    writeRaw(files.back(), raw);

    CheckpointManager manager(dir, 0, 0);
    CheckpointImage image;
    std::string path;
    CkptError error;
    ASSERT_TRUE(manager.loadBest(image, path, error)) << error.str();
    EXPECT_EQ(path, files[files.size() - 2]);
    ASSERT_EQ(manager.skipped().size(), 1u);
    EXPECT_NE(manager.skipped()[0].find(files.back()),
              std::string::npos);
}

TEST_F(CorruptFixture, RecoveryFailsWhenEverythingIsCorrupt)
{
    for (const auto &file : files) {
        auto raw = readImage(file);
        raw[raw.size() / 2] ^= 0x01;
        writeRaw(file, raw);
    }
    CheckpointManager manager(dir, 0, 0);
    CheckpointImage image;
    std::string path;
    CkptError error;
    EXPECT_FALSE(manager.loadBest(image, path, error));
    EXPECT_EQ(manager.skipped().size(), files.size());
}

TEST_F(CorruptFixture, MetaSectionHashGuardsSectionSubstitution)
{
    // Swap a whole (self-consistent) section body between two files:
    // every per-section CRC still passes, but the meta stateHash must
    // expose the cross-file splice.
    std::vector<Section> a, b;
    CkptError error;
    ASSERT_TRUE(decodeFile(readImage(files.back()), a, error));
    ASSERT_TRUE(
        decodeFile(readImage(files[files.size() - 2]), b, error));
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name == sectionNodes) {
            for (auto &other : b)
                if (other.name == sectionNodes)
                    a[i].body = other.body;
        }
    }
    CheckpointImage image;
    EXPECT_FALSE(decodeImage(encodeFile(a), image, error));
    EXPECT_NE(error.str().find("hash"), std::string::npos)
        << error.str();
}

TEST_F(CorruptFixture, RotationNeverDeletesNewestVerifiedUnderKeepLastOne)
{
    // The supervisor's recovery guarantee hinges on this: with
    // keep-last-1, neither a torn in-flight write nor a torn external
    // file newer than the verified image may ever consume the only
    // checkpoint recovery is guaranteed to accept.
    const std::string rot = dir + "_rot";
    std::filesystem::remove_all(rot);
    CheckpointManager manager(rot, 100, /*keep_last=*/1);

    CheckpointImage image;
    CkptError error;
    ASSERT_TRUE(decodeImage(readImage(files.back()), image, error))
        << error.str();

    // Two good writes: plain keep-last-1 rotation leaves the newest.
    ASSERT_TRUE(manager.write(image, error)) << error.str();
    image.quantumIndex += 100;
    ASSERT_TRUE(manager.write(image, error)) << error.str();
    const std::string good = manager.verifiedPath();
    EXPECT_TRUE(std::filesystem::exists(good));
    EXPECT_EQ(std::distance(
                  std::filesystem::directory_iterator(rot),
                  std::filesystem::directory_iterator()),
              1);

    // A torn in-flight write must fail read-back verification, be
    // deleted on the spot, and not rotate the good image away.
    manager.corruptNextWriteForTest();
    image.quantumIndex += 100;
    CkptError torn;
    EXPECT_FALSE(manager.write(image, torn));
    EXPECT_EQ(torn.section, "verify");
    EXPECT_TRUE(std::filesystem::exists(good));

    // An externally written torn file *newer* than the next good
    // write: rotation counts it against the keep budget, but must
    // skip the newest verified image rather than delete it.
    char name[48];
    std::snprintf(name, sizeof(name), "/ckpt-q%012llu.aqc",
                  static_cast<unsigned long long>(
                      image.quantumIndex + 200));
    writeRaw(rot + name, {0xde, 0xad, 0xbe, 0xef});
    image.quantumIndex += 100; // good write, older than the torn file
    ASSERT_TRUE(manager.write(image, error)) << error.str();
    const std::string survivor = manager.verifiedPath();
    EXPECT_TRUE(std::filesystem::exists(survivor));

    // Recovery falls back past the torn newest file to the verified
    // image rotation preserved.
    CheckpointImage best;
    std::string path;
    ASSERT_TRUE(manager.loadBest(best, path, error)) << error.str();
    EXPECT_EQ(path, survivor);
    EXPECT_EQ(best.quantumIndex, image.quantumIndex);
    EXPECT_EQ(manager.skipped().size(), 1u);

    std::filesystem::remove_all(rot);
}

} // namespace
