/**
 * End-to-end checkpoint/restore tests: the kill-and-restore matrix
 * ((SequentialEngine, ThreadedEngine x 1/2/4 workers) x (clean, lossy
 * reliable) x kill-at-quantum {1, mid, last-1}), rotation, restore
 * rejection of foreign configurations/engines, cross-engine section
 * equality, checkpoint stats surfacing, and the engine re-run
 * regression (fresh watchdog kick state, per-run checkpoint counters,
 * scheduler unbinding on controller reset).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hh"
#include "ckpt/manager.hh"
#include "engine/threaded_engine.hh"
#include "engine/watchdog.hh"
#include "net/network_controller.hh"
#include "test_util.hh"

using namespace aqsim;

namespace
{

/** One cell of the kill-and-restore matrix. */
struct MatrixCell
{
    bool threaded;
    std::size_t workers;
    bool lossy;
};

engine::ClusterParams
cellParams(bool lossy)
{
    auto params = harness::defaultCluster(4, 7);
    if (lossy) {
        params.faults.dropRate = 0.05;
        params.mpiParams.reliable = true;
    }
    return params;
}

engine::RunResult
runCell(const MatrixCell &cell, engine::EngineOptions options = {})
{
    auto workload = workloads::makeWorkload("burst", 4, 0.05);
    auto policy = core::parsePolicy("fixed:1us");
    const auto params = cellParams(cell.lossy);
    if (cell.threaded) {
        options.numWorkers = cell.workers;
        engine::ThreadedEngine engine(options);
        return engine.run(params, *workload, *policy);
    }
    engine::SequentialEngine engine(options);
    return engine.run(params, *workload, *policy);
}

/** Fresh (empty) per-test scratch directory under the temp root. */
std::string
scratchDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("aqsim_ckpt_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

std::string
checkpointFile(const std::string &dir, std::uint64_t quantum)
{
    char name[64];
    std::snprintf(name, sizeof(name), "ckpt-q%012llu.aqc",
                  static_cast<unsigned long long>(quantum));
    return dir + "/" + name;
}

/**
 * Compare every deterministic RunResult field. Host time is excluded:
 * it is modeled (and reproducible) on the SequentialEngine but
 * measured wall-clock on the ThreadedEngine.
 */
void
expectSameRun(const engine::RunResult &a, const engine::RunResult &b,
              const std::string &what)
{
    EXPECT_EQ(a.simTicks, b.simTicks) << what;
    EXPECT_EQ(a.quanta, b.quanta) << what;
    EXPECT_EQ(a.packets, b.packets) << what;
    EXPECT_EQ(a.stragglers, b.stragglers) << what;
    EXPECT_EQ(a.nextQuantumDeliveries, b.nextQuantumDeliveries) << what;
    EXPECT_EQ(a.latenessTicks, b.latenessTicks) << what;
    EXPECT_EQ(a.droppedFrames, b.droppedFrames) << what;
    EXPECT_EQ(a.retransmits, b.retransmits) << what;
    EXPECT_EQ(a.finishTicks, b.finishTicks) << what;
    EXPECT_EQ(a.metric, b.metric) << what;
    EXPECT_EQ(a.finalStateHash, b.finalStateHash) << what;
}

TEST(Checkpoint, KillAndRestoreMatrix)
{
    const MatrixCell cells[] = {
        {false, 0, false}, {false, 0, true},  {true, 1, false},
        {true, 1, true},   {true, 2, false}, {true, 2, true},
        {true, 4, false},  {true, 4, true},
    };
    int cell_id = 0;
    for (const MatrixCell &cell : cells) {
        const std::string tag =
            (cell.threaded ? "thr" + std::to_string(cell.workers)
                           : std::string("seq")) +
            (cell.lossy ? "_lossy" : "_clean");
        const auto golden = runCell(cell);
        ASSERT_GT(golden.quanta, 4u) << tag;

        // Checkpoint at every quantum so any kill point has a file.
        const std::string dir =
            scratchDir("matrix" + std::to_string(cell_id++));
        engine::EngineOptions ck;
        ck.checkpointEvery = 1;
        ck.checkpointDir = dir;
        ck.checkpointKeepLast = 0;
        const auto checkpointed = runCell(cell, ck);
        expectSameRun(golden, checkpointed, tag + " checkpointed");
        EXPECT_EQ(checkpointed.checkpointsWritten, golden.quanta)
            << tag;
        EXPECT_GT(checkpointed.checkpointBytes, 0u) << tag;

        // A SIGKILL at quantum k leaves ckpt-q{k} as the newest file
        // (atomic rename: files are never half-written). Restoring it
        // must reproduce the uninterrupted run bit-for-bit.
        const std::uint64_t kills[] = {1, golden.quanta / 2,
                                       golden.quanta - 1};
        for (std::uint64_t k : kills) {
            engine::EngineOptions restore;
            restore.restorePath = checkpointFile(dir, k);
            restore.verifyRestore = true;
            const auto restored = runCell(cell, restore);
            const std::string what =
                tag + " kill@" + std::to_string(k);
            expectSameRun(golden, restored, what);
            EXPECT_EQ(restored.restoredFromQuantum, k) << what;
        }
        std::filesystem::remove_all(dir);
    }
}

TEST(Checkpoint, RestoreFromDirectoryPicksNewest)
{
    const MatrixCell cell{false, 0, false};
    const auto golden = runCell(cell);

    const std::string dir = scratchDir("dirpick");
    engine::EngineOptions ck;
    ck.checkpointEvery = 100;
    ck.checkpointDir = dir;
    ck.checkpointKeepLast = 0;
    runCell(cell, ck);

    engine::EngineOptions restore;
    restore.restorePath = dir;
    const auto restored = runCell(cell, restore);
    expectSameRun(golden, restored, "dir restore");
    EXPECT_EQ(restored.restoredFromQuantum,
              (golden.quanta / 100) * 100);
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, RotationKeepsLastN)
{
    const std::string dir = scratchDir("rotate");
    engine::EngineOptions ck;
    ck.checkpointEvery = 50;
    ck.checkpointDir = dir;
    ck.checkpointKeepLast = 2;
    const auto result = runCell({false, 0, false}, ck);

    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir))
        files.push_back(entry.path().filename().string());
    ASSERT_EQ(files.size(), 2u);
    const std::uint64_t last = (result.quanta / 50) * 50;
    EXPECT_TRUE(std::filesystem::exists(checkpointFile(dir, last)));
    EXPECT_TRUE(
        std::filesystem::exists(checkpointFile(dir, last - 50)));
    // Rotation still counts every write in the run stats.
    EXPECT_EQ(result.checkpointsWritten, result.quanta / 50);
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, SummaryReportsCheckpointAndRestoreStats)
{
    const std::string dir = scratchDir("summary");
    engine::EngineOptions ck;
    ck.checkpointEvery = 100;
    ck.checkpointDir = dir;
    const auto written = runCell({false, 0, false}, ck);
    EXPECT_NE(written.summary().find("ckpts="), std::string::npos);

    engine::EngineOptions restore;
    restore.restorePath = dir;
    const auto restored = runCell({false, 0, false}, restore);
    EXPECT_NE(restored.summary().find("restored@q"),
              std::string::npos);
    std::filesystem::remove_all(dir);
}

/**
 * Cross-engine consistency: under conservative quanta both engines
 * reach bit-identical architectural state, so their checkpoints match
 * section for section — everything except the engine-private section.
 */
TEST(Checkpoint, CrossEngineSectionsAreBitIdentical)
{
    const std::string seq_dir = scratchDir("xengine_seq");
    const std::string thr_dir = scratchDir("xengine_thr");
    engine::EngineOptions ck;
    ck.checkpointEvery = 100;
    ck.checkpointKeepLast = 0;

    ck.checkpointDir = seq_dir;
    const auto seq = runCell({false, 0, false}, ck);
    ck.checkpointDir = thr_dir;
    const auto thr = runCell({true, 2, false}, ck);
    ASSERT_EQ(seq.quanta, thr.quanta);

    const std::uint64_t q = (seq.quanta / 100) * 100;
    ckpt::CheckpointImage a, b;
    ckpt::CkptError error;
    std::vector<std::uint8_t> raw;
    ASSERT_TRUE(
        ckpt::readFile(checkpointFile(seq_dir, q), raw, error));
    ASSERT_TRUE(ckpt::decodeImage(raw, a, error)) << error.str();
    ASSERT_TRUE(
        ckpt::readFile(checkpointFile(thr_dir, q), raw, error));
    ASSERT_TRUE(ckpt::decodeImage(raw, b, error)) << error.str();

    EXPECT_EQ(a.quantumIndex, b.quantumIndex);
    EXPECT_EQ(a.configHash, b.configHash);
    for (const auto &section : a.sections) {
        if (section.name == ckpt::sectionEngine)
            continue;
        const auto *other = b.find(section.name);
        ASSERT_NE(other, nullptr) << section.name;
        EXPECT_EQ(section.body, *other) << section.name;
    }
    std::filesystem::remove_all(seq_dir);
    std::filesystem::remove_all(thr_dir);
}

TEST(CheckpointDeathTest, RestoreRejectsForeignConfiguration)
{
    const std::string dir = scratchDir("wrongconfig");
    engine::EngineOptions ck;
    ck.checkpointEvery = 100;
    ck.checkpointDir = dir;
    runCell({false, 0, false}, ck);

    // Same workload/policy, different fault profile => different
    // configuration fingerprint.
    engine::EngineOptions restore;
    restore.restorePath = dir;
    EXPECT_EXIT(runCell({false, 0, true}, restore),
                ::testing::ExitedWithCode(1),
                "different.*configuration");
    std::filesystem::remove_all(dir);
}

TEST(CheckpointDeathTest, RestoreRejectsForeignEngine)
{
    const std::string dir = scratchDir("wrongengine");
    engine::EngineOptions ck;
    ck.checkpointEvery = 100;
    ck.checkpointDir = dir;
    runCell({false, 0, false}, ck);

    engine::EngineOptions restore;
    restore.restorePath = dir;
    EXPECT_EXIT(runCell({true, 2, false}, restore),
                ::testing::ExitedWithCode(1),
                "produced by the sequential engine");
    std::filesystem::remove_all(dir);
}

/**
 * A hung run with a checkpoint directory configured must die with a
 * resumable panic checkpoint: the engine stashes the encoded snapshot
 * at every boundary, and the watchdog dump path persists the stash.
 */
TEST(CheckpointDeathTest, WatchdogPanicWritesResumableCheckpoint)
{
    const std::string dir = scratchDir("panic");
    std::filesystem::create_directories(dir);

    // Healthy traffic for ~5 us of simulated time, then the link goes
    // dark (no reliability => no retransmit timer) while rank 1
    // busy-polls for the message that will never arrive.
    auto params = harness::defaultCluster(2, 1);
    fault::LinkWindow down;
    down.a = 0;
    down.b = 1;
    down.from = 5'000;
    down.to = 1'000'000'000'000ULL;
    params.faults.linkDown.push_back(down);

    engine::EngineOptions options;
    options.watchdogSeconds = 0.3;
    options.checkpointDir = dir;

    auto program = [](workloads::AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, 64);
            co_await ctx.delay(10'000);
            co_await ctx.comm().send(1, 2, 64);
        } else {
            co_await ctx.comm().recv(0, 1);
            while (ctx.comm().messagesReceived() < 2)
                co_await ctx.delay(0);
        }
    };
    EXPECT_DEATH(test::runLambdaCluster(params, program, "fixed:1us",
                                        options),
                 "last quantum boundary written to");

    // The panic checkpoint the dying child wrote must itself decode.
    std::vector<std::uint8_t> raw;
    ckpt::CheckpointImage image;
    ckpt::CkptError error;
    ASSERT_TRUE(ckpt::readFile(dir + "/panic.aqc", raw, error))
        << error.str();
    EXPECT_TRUE(ckpt::decodeImage(raw, image, error)) << error.str();
    EXPECT_GT(image.quantumIndex, 0u);
    std::filesystem::remove_all(dir);
}

TEST(CheckpointDeathTest, CadenceWithoutDirectoryIsFatal)
{
    engine::EngineOptions ck;
    ck.checkpointEvery = 10;
    EXPECT_EXIT(runCell({false, 0, false}, ck),
                ::testing::ExitedWithCode(1),
                "no.*checkpoint directory");
}

/**
 * Engine re-run regression (reset paths): a reused engine must arm the
 * watchdog with a fresh kick count and per-run dump, count checkpoint
 * stats per run (not cumulatively), and a controller reset must drop
 * the previous run's scheduler binding.
 */
TEST(Checkpoint, EngineRerunResetsWatchdogAndCheckpointCounters)
{
    engine::EngineOptions options;
    options.watchdogSeconds = 300.0;
    const std::string dir1 = scratchDir("rerun1");
    const std::string dir2 = scratchDir("rerun2");

    engine::SequentialEngine engine(options);
    auto workload1 = workloads::makeWorkload("burst", 4, 0.05);
    auto workload2 = workloads::makeWorkload("burst", 4, 0.05);
    auto policy1 = core::parsePolicy("fixed:1us");
    auto policy2 = core::parsePolicy("fixed:1us");

    const auto first =
        engine.run(cellParams(false), *workload1, *policy1);
    ASSERT_NE(engine.watchdog(), nullptr);
    EXPECT_FALSE(engine.watchdog()->armed());
    EXPECT_EQ(engine.watchdog()->kicks(), first.quanta);

    const auto second =
        engine.run(cellParams(false), *workload2, *policy2);
    EXPECT_FALSE(engine.watchdog()->armed());
    // arm() zeroed the previous run's kicks; only run 2's count shows.
    EXPECT_EQ(engine.watchdog()->kicks(), second.quanta);
    expectSameRun(first, second, "rerun determinism");

    // Checkpoint counters are per run, not accumulated across runs.
    engine::EngineOptions ck = options;
    ck.checkpointEvery = 50;
    ck.checkpointDir = dir2;
    engine::SequentialEngine ck_engine(ck);
    auto workload3 = workloads::makeWorkload("burst", 4, 0.05);
    auto workload4 = workloads::makeWorkload("burst", 4, 0.05);
    auto policy3 = core::parsePolicy("fixed:1us");
    const auto third =
        ck_engine.run(cellParams(false), *workload3, *policy3);
    std::filesystem::remove_all(dir2);
    const auto fourth =
        ck_engine.run(cellParams(false), *workload4, *policy3);
    EXPECT_EQ(third.checkpointsWritten, fourth.checkpointsWritten);

    std::filesystem::remove_all(dir1);
    std::filesystem::remove_all(dir2);
}

TEST(Checkpoint, ControllerResetDropsSchedulerBinding)
{
    auto workload = workloads::makeWorkload("burst", 4, 0.05);
    auto policy = core::parsePolicy("fixed:1us");
    engine::Cluster cluster(cellParams(false), *workload);
    engine::SequentialEngine engine;
    engine.run(cluster, *policy);
    // The engine-side scheduler died when run() returned; reset() must
    // not carry the dangling binding into the next run.
    cluster.controller().reset();
    EXPECT_EQ(cluster.controller().scheduler(), nullptr);
}

} // namespace
