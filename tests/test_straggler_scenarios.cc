/**
 * Tests reproducing the paper's Figure 3 straggler taxonomy by
 * forcing host-speed skew between two nodes and observing how packet
 * deliveries are placed.
 *
 * (a) equal speeds, conservative quantum: ideal roundtrip;
 * (b) receiver simulating ahead: packet delivered late (straggler);
 * (c) receiver behind: delivery scheduled at the exact ideal tick;
 * (d) receiver already at the barrier: delivery snaps to the next
 *     quantum boundary.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "workloads/synthetic.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::quietEngine;

namespace
{

/** Run a ping-pong with controlled parameters; returns the result
 * plus the measured roundtrip. */
struct PingOutcome
{
    engine::RunResult result;
    double roundtrip;
};

PingOutcome
runPing(const std::string &policy, Tick gap, std::size_t rounds,
        double noise_sigma, std::uint64_t seed = 1)
{
    PingPong::Params params;
    params.rounds = rounds;
    params.bytes = 1024;
    params.gap = gap;
    PingPong workload(2, 1.0, params);

    auto cluster = harness::defaultCluster(2, seed);
    auto pol = core::parsePolicy(policy);
    engine::EngineOptions options;
    options.host.noiseSigma = noise_sigma;
    engine::SequentialEngine engine(options);
    auto result = engine.run(cluster, workload, *pol);
    return {result, workload.meanRoundtripTicks()};
}

} // namespace

TEST(StragglerScenarios, ScenarioA_ConservativeGivesIdealRoundtrip)
{
    // Equal speeds + safe quantum: the measured roundtrip equals the
    // physical latency, independent of host-speed noise.
    auto quiet = runPing("fixed:1us", 0, 50, 0.0);
    auto noisy = runPing("fixed:1us", 0, 50, 0.4);
    EXPECT_EQ(quiet.result.stragglers, 0u);
    EXPECT_EQ(noisy.result.stragglers, 0u);
    EXPECT_DOUBLE_EQ(quiet.roundtrip, noisy.roundtrip);
}

TEST(StragglerScenarios, IdleRacingReceiverSnapsWithoutAnyNoise)
{
    // Even with perfectly equal configured speeds, a receiver that is
    // blocked on a recv fast-forwards its idle guest to the barrier
    // almost instantly (idle skipping), so a long quantum turns every
    // ping into a next-quantum delivery: the roundtrip snaps to ~two
    // quantum lengths (Fig. 3d).
    auto coarse = runPing("fixed:100us", 0, 50, 0.0);
    EXPECT_GT(coarse.result.stragglers, 0u);
    EXPECT_GT(coarse.roundtrip, 150000.0);
    EXPECT_LT(coarse.roundtrip, 250000.0);
}

TEST(StragglerScenarios, ScenarioBC_SpeedSkewInflatesRoundtrip)
{
    // Fig. 3b/3c: heterogeneous host speeds skew node progress; with
    // Q >> T replies land in the receiver's past (stragglers) and
    // the visible latency inflates.
    auto ideal = runPing("fixed:1us", 0, 100, 0.35);
    auto coarse = runPing("fixed:100us", 0, 100, 0.35);
    EXPECT_GT(coarse.result.stragglers, 0u);
    EXPECT_GT(coarse.roundtrip, ideal.roundtrip);
}

TEST(StragglerScenarios, ScenarioD_BlockedReceiverSnapsToQuantum)
{
    // Fig. 3d: the receiver blocks on a recv, so its simulator races
    // to the quantum barrier in host time; a message sent after a
    // long compute then finds the receiver already at the barrier and
    // the controller queues it to the next quantum boundary.
    const Tick quantum = microseconds(200);
    std::vector<Tick> recv_ticks;
    test::LambdaWorkload workload(
        [&](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0) {
                // Compute most of a quantum before sending: the
                // receiver reaches the barrier long before this (it
                // is idle and cheap to simulate).
                co_await ctx.compute(2.6 * 150000.0); // ~150 us
                co_await ctx.comm().send(1, 1, 1024);
            } else {
                co_await ctx.comm().recv(0, 1);
                recv_ticks.push_back(ctx.now());
            }
        });
    auto policy = core::parsePolicy("fixed:200us");
    auto params = harness::defaultCluster(2, 1);
    auto options = quietEngine();
    engine::SequentialEngine engine(options);
    auto result = engine.run(params, workload, *policy);
    EXPECT_EQ(result.nextQuantumDeliveries, 1u);
    ASSERT_EQ(recv_ticks.size(), 1u);
    // Delivery snapped to the next quantum boundary (+ rx overhead).
    EXPECT_GE(recv_ticks[0], quantum);
    EXPECT_LE(recv_ticks[0], quantum + microseconds(1));
}

TEST(StragglerScenarios, LatenessNeverExceedsOneQuantumPerHop)
{
    // The paper: "we limit the number of stragglers to what can
    // happen in a single quantum". Each delivery's lateness is
    // bounded by the quantum it was injected in.
    auto coarse = runPing("fixed:50us", 0, 100, 0.3);
    if (coarse.result.stragglers > 0) {
        const double mean_lateness =
            static_cast<double>(coarse.result.latenessTicks) /
            static_cast<double>(coarse.result.stragglers);
        EXPECT_LE(mean_lateness,
                  static_cast<double>(microseconds(50)));
    }
}

TEST(StragglerScenarios, StragglerRateGrowsWithQuantum)
{
    const auto q10 = runPing("fixed:10us", 0, 100, 0.2);
    const auto q100 = runPing("fixed:100us", 0, 100, 0.2);
    EXPECT_GE(q100.result.stragglerFraction(),
              q10.result.stragglerFraction());
    EXPECT_GT(q100.roundtrip, q10.roundtrip * 0.9);
}

TEST(StragglerScenarios, AdaptiveWithGapsRecoversAccuracy)
{
    // With idle gaps between rounds, the adaptive policy grows the
    // quantum in the gaps but collapses it on traffic: its roundtrip
    // must be far closer to ideal than a fixed 1000us quantum at a
    // fraction of the ground-truth cost.
    const Tick gap = microseconds(300);
    auto ideal = runPing("fixed:1us", gap, 50, 0.3);
    auto fixed1k = runPing("fixed:1000us", gap, 50, 0.3);
    auto dyn = runPing("dyn:1.05:0.02:1us:1000us", gap, 50, 0.3);

    const double err_fixed =
        std::abs(fixed1k.roundtrip - ideal.roundtrip);
    const double err_dyn = std::abs(dyn.roundtrip - ideal.roundtrip);
    EXPECT_LT(err_dyn, err_fixed / 3.0);

    const double speed_dyn = ideal.result.hostNs / dyn.result.hostNs;
    EXPECT_GT(speed_dyn, 5.0);
}

TEST(StragglerScenarios, DeliveriesNeverPrecedeIdealArrival)
{
    // Across policies, a packet may be late but never early: the
    // controller asserts actual >= ideal for non-OnTime, and OnTime
    // means exactly ideal. Indirect check: zero lateness implies zero
    // stragglers.
    for (const char *policy :
         {"fixed:1us", "fixed:10us", "fixed:100us"}) {
        auto out = runPing(policy, 0, 50, 0.25);
        if (out.result.latenessTicks == 0)
            EXPECT_EQ(out.result.stragglers, 0u) << policy;
        else
            EXPECT_GT(out.result.stragglers, 0u) << policy;
    }
}

TEST(StragglerScenarios, RoundtripErrorBoundedByQuantumScale)
{
    // Fig. 8 intuition: the latency error a quantum can introduce is
    // bounded by (a few) quantum lengths per hop, so coarse quanta
    // admit far larger errors than fine ones.
    auto ideal = runPing("fixed:1us", 0, 200, 0.3);
    auto q5 = runPing("fixed:5us", 0, 200, 0.3);
    auto q500 = runPing("fixed:500us", 0, 200, 0.3);
    const double e5 = std::abs(q5.roundtrip - ideal.roundtrip);
    const double e500 = std::abs(q500.roundtrip - ideal.roundtrip);
    // Error under a 5us quantum is itself bounded by ~2 quanta.
    EXPECT_LE(e5, 2.0 * 5000.0);
    // And the coarse configuration is at least an order of magnitude
    // worse whenever it errs at all.
    if (q500.result.stragglers > 0) {
        EXPECT_GT(e500, e5);
    }
}

TEST(StragglerScenarios, DeferPolicySnapsEveryStraggler)
{
    // With DeferToNextQuantum, no mid-quantum straggler deliveries
    // happen: every late packet becomes a next-quantum delivery and
    // the measured roundtrip degrades toward the quantum length.
    PingPong::Params params;
    params.rounds = 50;
    params.bytes = 1024;
    PingPong deliver_now(2, 1.0, params);
    PingPong defer(2, 1.0, params);

    engine::EngineOptions now_opts;
    now_opts.host.noiseSigma = 0.3;
    engine::EngineOptions defer_opts = now_opts;
    defer_opts.stragglerPolicy =
        engine::StragglerPolicy::DeferToNextQuantum;

    auto cluster = harness::defaultCluster(2, 1);
    auto p1 = core::parsePolicy("fixed:100us");
    engine::SequentialEngine e1(now_opts);
    auto r1 = e1.run(cluster, deliver_now, *p1);

    auto p2 = core::parsePolicy("fixed:100us");
    engine::SequentialEngine e2(defer_opts);
    auto r2 = e2.run(cluster, defer, *p2);

    // Deferring can only add latency.
    EXPECT_GE(defer.meanRoundtripTicks(),
              deliver_now.meanRoundtripTicks());
    // All of defer's stragglers are next-quantum deliveries.
    EXPECT_EQ(r2.stragglers, r2.nextQuantumDeliveries);
    EXPECT_LE(r1.nextQuantumDeliveries, r1.stragglers);
}
