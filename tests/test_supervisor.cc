/**
 * Self-healing run supervisor tests: the kill-and-recover matrix
 * ((SequentialEngine, ThreadedEngine x 1/2/4 workers) x (clean, 5%
 * loss reliable, chaos rolling-crash) x injected failure at {first,
 * mid, last-1} quantum) asserting bit-identical final state against
 * an unsupervised clean run, the two-mid-run-failure acceptance
 * drill (direct abort + watchdog panic in one supervised run),
 * livelock escalation into SuperviseAbort, structured watchdog panic
 * info without a checkpoint directory (the progress-dump regression),
 * incident-log JSONL well-formedness, and the conservative window
 * escalation policy.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/threaded_engine.hh"
#include "fault/chaos.hh"
#include "supervise/escalation.hh"
#include "supervise/run_supervisor.hh"
#include "test_util.hh"

using namespace aqsim;

namespace
{

/** One engine flavour of the recovery matrix. */
struct EngineCell
{
    bool threaded;
    std::size_t workers;
};

constexpr EngineCell kEngines[] = {
    {false, 0}, {true, 1}, {true, 2}, {true, 4}};

const char *const kConfigs[] = {"clean", "lossy", "chaos"};

engine::ClusterParams
configParams(const std::string &config)
{
    auto params = harness::defaultCluster(4, 7);
    if (config == "lossy") {
        params.faults.dropRate = 0.05;
        params.mpiParams.reliable = true;
    } else if (config == "chaos") {
        fault::applyChaos(params.faults, "rolling-crash",
                          params.numNodes, params.seed);
        params.mpiParams.reliable = true;
    }
    return params;
}

/** Unsupervised clean run of one cell: the determinism ground truth. */
engine::RunResult
runUnsupervised(const EngineCell &cell,
                const engine::ClusterParams &params)
{
    auto workload = workloads::makeWorkload("burst", 4, 0.05);
    auto policy = core::parsePolicy("fixed:1us");
    engine::EngineOptions options;
    if (cell.threaded) {
        options.numWorkers = cell.workers;
        engine::ThreadedEngine engine(options);
        return engine.run(params, *workload, *policy);
    }
    engine::SequentialEngine engine(options);
    return engine.run(params, *workload, *policy);
}

/** Supervised run of the same cell through @p supervisor. */
engine::RunResult
runSupervised(const EngineCell &cell,
              const engine::ClusterParams &params,
              const engine::EngineOptions &engine_options,
              supervise::RunSupervisor &supervisor)
{
    auto workload = workloads::makeWorkload("burst", 4, 0.05);
    auto policy = core::parsePolicy("fixed:1us");

    supervise::RunRequest request;
    request.engineKind = cell.threaded
                             ? supervise::EngineKind::Threaded
                             : supervise::EngineKind::Sequential;
    request.engine = engine_options;
    if (cell.threaded)
        request.engine.numWorkers = cell.workers;
    request.cluster = params;
    request.workload = workload.get();
    request.policy = policy.get();
    return supervisor.run(request);
}

std::string
scratchDir(const std::string &name)
{
    const auto dir = std::filesystem::temp_directory_path() /
                     ("aqsim_supervise_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

supervise::SuperviseOptions
testSupervision()
{
    supervise::SuperviseOptions sup;
    sup.enabled = true;
    sup.backoffBaseSeconds = 0.0; // tests never sleep
    return sup;
}

void
expectSameFinalState(const engine::RunResult &golden,
                     const engine::RunResult &supervised,
                     const std::string &what)
{
    EXPECT_EQ(golden.finalStateHash, supervised.finalStateHash)
        << what;
    EXPECT_EQ(golden.simTicks, supervised.simTicks) << what;
    EXPECT_EQ(golden.quanta, supervised.quanta) << what;
    EXPECT_EQ(golden.packets, supervised.packets) << what;
    EXPECT_EQ(golden.metric, supervised.metric) << what;
    EXPECT_EQ(golden.finishTicks, supervised.finishTicks) << what;
}

sim::Process
lostAckPollLoop(workloads::AppContext &ctx)
{
    if (ctx.rank() == 0) {
        co_await ctx.comm().send(1, 1, 64);
    } else {
        while (ctx.comm().messagesReceived() == 0)
            co_await ctx.delay(0);
    }
}

} // namespace

TEST(Supervisor, DisabledSupervisionIsAPlainRun)
{
    const EngineCell cell{false, 0};
    const auto params = configParams("clean");
    const auto golden = runUnsupervised(cell, params);

    supervise::SuperviseOptions sup; // enabled = false
    supervise::RunSupervisor supervisor(sup);
    const auto run = runSupervised(cell, params, {}, supervisor);
    expectSameFinalState(golden, run, "disabled supervision");
    EXPECT_EQ(run.superviseAttempts, 0u);
    EXPECT_EQ(run.superviseRecoveries, 0u);
    EXPECT_TRUE(supervisor.incidents().incidents().empty());
    // The default summary must stay byte-identical to unsupervised
    // output (CI byte-compares summaries).
    EXPECT_EQ(golden.summary(), run.summary());
}

TEST(Supervisor, KillAndRecoverMatrix)
{
    int cell_id = 0;
    for (const char *config : kConfigs) {
        const auto params = configParams(config);
        for (const EngineCell &cell : kEngines) {
            const std::string tag =
                std::string(config) + "_" +
                (cell.threaded
                     ? "thr" + std::to_string(cell.workers)
                     : std::string("seq"));
            const auto golden = runUnsupervised(cell, params);
            ASSERT_GT(golden.quanta, 4u) << tag;

            const std::uint64_t cadence =
                std::max<std::uint64_t>(1, golden.quanta / 4);
            const std::uint64_t kills[] = {1, golden.quanta / 2,
                                           golden.quanta - 1};
            for (const std::uint64_t kill : kills) {
                const std::string what =
                    tag + " kill@" + std::to_string(kill);
                const std::string dir = scratchDir(
                    "matrix" + std::to_string(cell_id++));

                engine::EngineOptions options;
                options.checkpointEvery = cadence;
                options.checkpointDir = dir;
                options.checkpointKeepLast = 0;

                auto sup = testSupervision();
                sup.maxRestarts = 2;
                sup.injectFailures = {{1, kill, false}};
                supervise::RunSupervisor supervisor(sup);
                const auto run =
                    runSupervised(cell, params, options, supervisor);

                expectSameFinalState(golden, run, what);
                EXPECT_EQ(run.superviseAttempts, 2u) << what;
                EXPECT_EQ(run.superviseRecoveries, 1u) << what;
                EXPECT_EQ(run.superviseEscalations, 0u) << what;
                // Recovery resumed from the newest checkpoint at or
                // below the kill point (none exists before the first
                // cadence boundary: a cold-start replay).
                const std::uint64_t expect_restore =
                    (kill / cadence) * cadence;
                EXPECT_EQ(run.restoredFromQuantum, expect_restore)
                    << what;

                const auto &incidents =
                    supervisor.incidents().incidents();
                ASSERT_EQ(incidents.size(), 2u) << what;
                EXPECT_EQ(incidents[0].attempt, 1u) << what;
                EXPECT_EQ(incidents[0].cause, "injected") << what;
                EXPECT_EQ(incidents[0].quantum, kill) << what;
                EXPECT_EQ(incidents[0].outcome, "retry") << what;
                EXPECT_EQ(incidents[1].attempt, 2u) << what;
                EXPECT_EQ(incidents[1].outcome, "recovered") << what;
                EXPECT_EQ(incidents[1].restoreSource.empty(),
                          expect_restore == 0)
                    << what;
                std::filesystem::remove_all(dir);
            }
        }
    }
}

TEST(Supervisor, AcceptanceTwoMidRunFailuresUnderChaos)
{
    // The issue's acceptance drill: a chaos run that loses attempt 1
    // to a direct failure and attempt 2 to a watchdog panic must
    // auto-recover within budget and still produce the clean run's
    // exact final state at every tested worker count.
    const auto params = configParams("chaos");
    int cell_id = 0;
    for (const EngineCell &cell : kEngines) {
        const std::string tag =
            cell.threaded ? "thr" + std::to_string(cell.workers)
                          : std::string("seq");
        const auto golden = runUnsupervised(cell, params);
        ASSERT_GT(golden.quanta, 4u) << tag;

        const std::string dir =
            scratchDir("accept" + std::to_string(cell_id++));
        engine::EngineOptions options;
        options.checkpointEvery =
            std::max<std::uint64_t>(1, golden.quanta / 5);
        options.checkpointDir = dir;
        options.checkpointKeepLast = 0;

        auto sup = testSupervision();
        sup.maxRestarts = 3;
        sup.injectFailures = {
            {1, golden.quanta / 3, false},
            {2, (2 * golden.quanta) / 3, true},
        };
        supervise::RunSupervisor supervisor(sup);
        const auto run = runSupervised(cell, params, options,
                                       supervisor);

        expectSameFinalState(golden, run, tag);
        EXPECT_EQ(run.superviseAttempts, 3u) << tag;
        EXPECT_EQ(run.superviseRecoveries, 2u) << tag;

        const auto &incidents = supervisor.incidents().incidents();
        ASSERT_EQ(incidents.size(), 3u) << tag;
        EXPECT_EQ(incidents[0].cause, "injected") << tag;
        EXPECT_EQ(incidents[1].cause, "watchdog") << tag;
        EXPECT_FALSE(incidents[1].restoreSource.empty()) << tag;
        EXPECT_EQ(incidents[2].outcome, "recovered") << tag;
        EXPECT_TRUE(supervisor.sawPanic()) << tag;
        std::filesystem::remove_all(dir);
    }
}

TEST(Supervisor, LivelockEscalatesThenAbortsWithStructuredReport)
{
    // A blackhole hang fails at the same quantum on every replay:
    // retry once, escalate to the conservative guard, then abort when
    // even the escalated attempt hangs. No checkpointDir is set — the
    // structured panic info must still carry the per-node progress
    // dump (the context the old string-only panic path lost).
    auto params = harness::defaultCluster(2, 1);
    params.faults.dropRate = 1.0;
    params.mpiParams.reliable = false;

    test::LambdaWorkload workload(lostAckPollLoop);
    auto policy = core::parsePolicy("fixed:1us");

    supervise::RunRequest request;
    request.engine.watchdogSeconds = 0.2;
    request.cluster = params;
    request.workload = &workload;
    request.policy = policy.get();

    auto sup = testSupervision();
    sup.maxRestarts = 4;
    sup.livelockThreshold = 2;
    sup.escalationWindowQuanta = 8;
    supervise::RunSupervisor supervisor(sup);

    EXPECT_THROW(supervisor.run(request), supervise::SuperviseAbort);

    const auto &incidents = supervisor.incidents().incidents();
    ASSERT_EQ(incidents.size(), 3u);
    EXPECT_EQ(incidents[0].cause, "watchdog");
    EXPECT_EQ(incidents[0].outcome, "retry");
    EXPECT_EQ(incidents[1].outcome, "escalate");
    EXPECT_EQ(incidents[2].outcome, "abort");
    EXPECT_EQ(incidents[1].quantum, incidents[0].quantum);

    EXPECT_TRUE(supervisor.sawPanic());
    const auto panic = supervisor.lastPanic();
    EXPECT_FALSE(panic.progress.empty());
    EXPECT_NE(panic.progress.find("node"), std::string::npos);
    EXPECT_NE(panic.format().find("quantum ["), std::string::npos);
}

TEST(Supervisor, IncidentLogIsWellFormedJsonl)
{
    const std::string dir = scratchDir("jsonl");
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/incidents.jsonl";

    const EngineCell cell{false, 0};
    const auto params = configParams("clean");
    const auto golden = runUnsupervised(cell, params);

    engine::EngineOptions options;
    options.checkpointEvery =
        std::max<std::uint64_t>(1, golden.quanta / 4);
    options.checkpointDir = dir + "/ckpt";

    auto sup = testSupervision();
    sup.incidentLogPath = path;
    sup.injectFailures = {{1, golden.quanta / 2, false}};
    supervise::RunSupervisor supervisor(sup);
    runSupervised(cell, params, options, supervisor);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << line;
        EXPECT_EQ(line.back(), '}') << line;
        for (const char *key :
             {"\"attempt\":", "\"cause\":", "\"quantum\":",
              "\"backoff_s\":", "\"restore_source\":",
              "\"outcome\":", "\"detail\":"})
            EXPECT_NE(line.find(key), std::string::npos)
                << key << " missing in " << line;
    }
    EXPECT_EQ(lines, 2u);
    EXPECT_EQ(supervisor.incidents().incidents().size(), 2u);
    std::filesystem::remove_all(dir);
}

TEST(Supervisor, ExhaustedBudgetThrowsWithIncidentTrail)
{
    const EngineCell cell{false, 0};
    const auto params = configParams("clean");
    const auto golden = runUnsupervised(cell, params);

    // Fail every attempt at a *different* quantum so livelock
    // escalation never fires; the budget itself must run out.
    auto sup = testSupervision();
    sup.maxRestarts = 1;
    sup.injectFailures = {
        {1, golden.quanta / 2, false},
        {2, golden.quanta / 2 + 1, false},
    };
    supervise::RunSupervisor supervisor(sup);
    EXPECT_THROW(runSupervised(cell, params, {}, supervisor),
                 supervise::SuperviseAbort);
    const auto &incidents = supervisor.incidents().incidents();
    ASSERT_EQ(incidents.size(), 2u);
    EXPECT_EQ(incidents[0].outcome, "retry");
    EXPECT_EQ(incidents[1].outcome, "abort");
}

TEST(ConservativeWindow, ClampsOnlyInsideTheWindow)
{
    const Tick safe = 1000; // 1us: well under the inner fixed 100us
    supervise::ConservativeWindowPolicy guard(
        core::parsePolicy("fixed:100us"), safe, 10, 3);
    EXPECT_EQ(guard.name(),
              "guard:" + core::parsePolicy("fixed:100us")->name());
    EXPECT_EQ(guard.initialQuantum(), microseconds(100));

    // The n-th next() call decides quantum index n; indices 7..13
    // fall in the guarded window [10-3, 10+3] and clamp to the bound.
    for (std::uint64_t i = 1; i <= 15; ++i) {
        const Tick want =
            (i >= 7 && i <= 13) ? safe : microseconds(100);
        EXPECT_EQ(guard.next(0), want) << "index " << i;
        EXPECT_EQ(guard.guarded(i), i >= 7 && i <= 13) << i;
    }

    // reset() restarts the index count; a clone resumes mid-stream.
    guard.reset();
    EXPECT_EQ(guard.next(0), microseconds(100));
    for (std::uint64_t i = 2; i <= 7; ++i)
        guard.next(0);
    auto copy = guard.clone();
    EXPECT_EQ(copy->next(0), safe); // index 8: still guarded
}

TEST(ConservativeWindow, WindowAtRunStartGuardsInitialQuantum)
{
    // A failure near quantum zero guards the initial quantum too.
    supervise::ConservativeWindowPolicy guard(
        core::parsePolicy("fixed:100us"), 1000, 1, 4);
    EXPECT_TRUE(guard.guarded(0));
    EXPECT_EQ(guard.initialQuantum(), Tick{1000});
}

TEST(Incident, JsonEscapesControlAndQuoteCharacters)
{
    supervise::Incident incident;
    incident.attempt = 3;
    incident.cause = "panic";
    incident.detail = "line1\nline\"2\"\tend\\";
    incident.outcome = "retry";
    const std::string json = incident.toJson();
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_NE(json.find("\\\"2\\\""), std::string::npos);
    EXPECT_NE(json.find("\\t"), std::string::npos);
    EXPECT_NE(json.find("\\\\"), std::string::npos);
    EXPECT_EQ(json.find('\n'), std::string::npos);
}
