/** Unit tests for the per-node discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace aqsim;
using sim::EventQueue;
using sim::Priority;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextTick(), maxTick);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (q.runOne()) {}
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickOrderedByInsertionSequence)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    while (q.runOne()) {}
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PriorityBeatsInsertionOrderAtSameTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); }, Priority::Default);
    q.schedule(5, [&] { order.push_back(0); }, Priority::Delivery);
    q.schedule(5, [&] { order.push_back(2); }, Priority::Late);
    while (q.runOne()) {}
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, NowAdvancesToEventTick)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(42, [&] { seen = q.now(); });
    q.runOne();
    EXPECT_EQ(seen, 42u);
    EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, ScheduleInIsRelativeToNow)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(10, [&] {
        q.scheduleIn(5, [&] { seen = q.now(); });
    });
    while (q.runOne()) {}
    EXPECT_EQ(seen, 15u);
}

TEST(EventQueue, RunUntilExecutesInclusiveAndAdvancesNow)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&] { ++count; });
    q.schedule(20, [&] { ++count; });
    q.schedule(21, [&] { ++count; });
    EXPECT_EQ(q.runUntil(20), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 20u);
    EXPECT_EQ(q.nextTick(), 21u);
}

TEST(EventQueue, RunUntilHonorsEventsScheduledDuringExecution)
{
    EventQueue q;
    std::vector<Tick> ticks;
    q.schedule(10, [&] {
        ticks.push_back(q.now());
        q.scheduleIn(5, [&] { ticks.push_back(q.now()); });
    });
    q.runUntil(100);
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 15}));
}

TEST(EventQueue, DescheduleCancelsPendingEvent)
{
    EventQueue q;
    bool ran = false;
    auto id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_TRUE(q.empty());
    q.runUntil(100);
    EXPECT_FALSE(ran);
    EXPECT_EQ(q.numCancelled(), 1u);
}

TEST(EventQueue, DescheduleTwiceReturnsFalse)
{
    EventQueue q;
    auto id = q.schedule(10, [] {});
    EXPECT_TRUE(q.deschedule(id));
    EXPECT_FALSE(q.deschedule(id));
}

TEST(EventQueue, DescheduleDoesNotDisturbOtherEvents)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(1); });
    auto id = q.schedule(15, [&] { order.push_back(99); });
    q.schedule(20, [&] { order.push_back(2); });
    q.deschedule(id);
    while (q.runOne()) {}
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, FastForwardAdvancesWithoutRunning)
{
    EventQueue q;
    bool ran = false;
    q.schedule(100, [&] { ran = true; });
    q.fastForwardTo(100);
    EXPECT_EQ(q.now(), 100u);
    EXPECT_FALSE(ran);
    // Event at exactly now is still runnable.
    EXPECT_TRUE(q.runOne());
    EXPECT_TRUE(ran);
}

TEST(EventQueue, CountersTrackLifecycle)
{
    EventQueue q;
    q.schedule(1, [] {});
    q.schedule(2, [] {});
    auto id = q.schedule(3, [] {});
    q.deschedule(id);
    q.runUntil(10);
    EXPECT_EQ(q.numScheduled(), 3u);
    EXPECT_EQ(q.numExecuted(), 2u);
    EXPECT_EQ(q.numCancelled(), 1u);
    EXPECT_EQ(q.pendingCount(), 0u);
}

TEST(EventQueue, SchedulingAtNowIsAllowed)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runOne();
    bool ran = false;
    q.schedule(10, [&] { ran = true; });
    q.runOne();
    EXPECT_TRUE(ran);
    EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runOne();
    EXPECT_DEATH(q.schedule(5, [] {}), "assertion");
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue q;
    Tick last = 0;
    bool monotonic = true;
    for (Tick t = 1000; t > 0; --t) {
        q.schedule(t * 7 % 997 + 1, [&, t] {
            (void)t;
            if (q.now() < last)
                monotonic = false;
            last = q.now();
        });
    }
    while (q.runOne()) {}
    EXPECT_TRUE(monotonic);
    EXPECT_EQ(q.numExecuted(), 1000u);
}
