/**
 * Tests for the fault-injection layer: per-frame decision semantics at
 * the controller, scheduled outage windows, observer behaviour under
 * duplication, and the determinism contract (same seed => bit-identical
 * runs across engines and worker counts).
 */

#include <gtest/gtest.h>

#include <vector>

#include "engine/threaded_engine.hh"
#include "fault/fault_injector.hh"
#include "net/network_controller.hh"
#include "stats/stats.hh"
#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::net;
using aqsim::fault::FaultInjector;
using aqsim::fault::FaultParams;

namespace
{

/** Captures placements so tests can verify controller behaviour. */
class RecordingScheduler : public DeliveryScheduler
{
  public:
    struct Placement
    {
        PacketPtr pkt;
        DeliveryKind kind;
        Tick actual;
    };

    Tick
    place(const PacketPtr &pkt, DeliveryKind &kind) override
    {
        kind = DeliveryKind::OnTime;
        placements.push_back(
            Placement{pkt, kind, pkt->idealArrival});
        return pkt->idealArrival;
    }

    std::vector<Placement> placements;
};

/** A 4-node controller with a fault injector interposed. */
struct FaultFixture : public ::testing::Test
{
    explicit FaultFixture() : root("cluster") {}

    void
    attach(const FaultParams &params, std::uint64_t seed = 42)
    {
        controller =
            std::make_unique<NetworkController>(4, NetworkParams{},
                                                root);
        controller->setScheduler(&scheduler);
        faults = std::make_unique<FaultInjector>(4, params, Rng(seed),
                                                 root);
        controller->setFaultInjector(faults.get());
    }

    PacketPtr
    makeFrame(NodeId src, NodeId dst, std::uint32_t bytes, Tick depart)
    {
        auto pkt = makePacket(src, dst, bytes, depart);
        pkt->departTick = depart;
        return pkt;
    }

    stats::Group root;
    RecordingScheduler scheduler;
    std::unique_ptr<NetworkController> controller;
    std::unique_ptr<FaultInjector> faults;
};

} // namespace

TEST_F(FaultFixture, DropsCountAsTrafficButAreNeverDelivered)
{
    FaultParams params;
    params.dropRate = 1.0;
    attach(params);
    controller->inject(makeFrame(0, 1, 100, 0));
    controller->inject(makeFrame(0, 2, 100, 0));
    EXPECT_TRUE(scheduler.placements.empty());
    EXPECT_EQ(controller->totalDropped(), 2u);
    EXPECT_EQ(faults->totalDropped(), 2u);
    // Dropped frames still feed the adaptive-quantum traffic signal
    // (the controller saw them), but never the delivered count.
    EXPECT_EQ(controller->packetsThisQuantum(), 2u);
    EXPECT_EQ(controller->totalPackets(), 0u);
}

TEST_F(FaultFixture, DuplicateDeliversTwoCopiesAndObserversSeeBoth)
{
    FaultParams params;
    params.duplicateRate = 1.0;
    attach(params);
    std::vector<std::uint64_t> observed_ids;
    controller->addObserver(
        [&](const Packet &pkt, Tick) { observed_ids.push_back(pkt.id); });
    controller->inject(makeFrame(0, 1, 100, 0));
    ASSERT_EQ(scheduler.placements.size(), 2u);
    // Primary first, copy second, each with its own id; the observer
    // ordering matches the placement ordering exactly.
    EXPECT_EQ(scheduler.placements[0].pkt->dst, 1u);
    EXPECT_EQ(scheduler.placements[1].pkt->dst, 1u);
    EXPECT_NE(scheduler.placements[0].pkt->id,
              scheduler.placements[1].pkt->id);
    ASSERT_EQ(observed_ids.size(), 2u);
    EXPECT_EQ(observed_ids[0], scheduler.placements[0].pkt->id);
    EXPECT_EQ(observed_ids[1], scheduler.placements[1].pkt->id);
    EXPECT_EQ(faults->totalDuplicated(), 1u);
    EXPECT_EQ(controller->totalPackets(), 2u);
}

TEST_F(FaultFixture, CorruptSetsTheFlagWithoutChangingTiming)
{
    FaultParams params;
    params.corruptRate = 1.0;
    attach(params);
    controller->inject(makeFrame(0, 1, 9000, 5000));
    ASSERT_EQ(scheduler.placements.size(), 1u);
    EXPECT_TRUE(scheduler.placements[0].pkt->corrupted);
    // Perfect switch: ideal = depart + rx latency, unchanged.
    EXPECT_EQ(scheduler.placements[0].pkt->idealArrival, 5000u + 500u);
    EXPECT_EQ(faults->totalCorrupted(), 1u);
}

TEST_F(FaultFixture, JitterOnlyEverAddsLatency)
{
    FaultParams params;
    params.jitterRate = 1.0;
    params.maxJitterTicks = 300;
    attach(params);
    for (int i = 0; i < 20; ++i)
        controller->inject(makeFrame(0, 1, 100, 1000));
    const Tick base = 1000 + 500; // depart + rx latency
    ASSERT_EQ(scheduler.placements.size(), 20u);
    for (const auto &p : scheduler.placements) {
        EXPECT_GT(p.pkt->idealArrival, base);
        EXPECT_LE(p.pkt->idealArrival, base + 300);
    }
    EXPECT_EQ(faults->totalDelayed(), 20u);
}

TEST_F(FaultFixture, LinkDownWindowDropsBothDirectionsOnlyInWindow)
{
    FaultParams params;
    params.linkDown.push_back({0, 1, 1000, 2000});
    attach(params);
    controller->inject(makeFrame(0, 1, 100, 1500)); // down, forward
    controller->inject(makeFrame(1, 0, 100, 1500)); // down, reverse
    controller->inject(makeFrame(0, 2, 100, 1500)); // other link: fine
    controller->inject(makeFrame(0, 1, 100, 2000)); // window end: fine
    controller->inject(makeFrame(0, 1, 100, 999));  // before: fine
    EXPECT_EQ(controller->totalDropped(), 2u);
    EXPECT_EQ(scheduler.placements.size(), 3u);
}

TEST_F(FaultFixture, NodeCrashWindowDropsAllTrafficOfTheNode)
{
    FaultParams params;
    params.nodeCrash.push_back({2, 100, 500});
    attach(params);
    controller->inject(makeFrame(0, 2, 100, 200)); // to crashed node
    controller->inject(makeFrame(2, 3, 100, 200)); // from crashed node
    controller->inject(makeFrame(0, 1, 100, 200)); // unrelated
    controller->inject(makeFrame(0, 2, 100, 600)); // after recovery
    EXPECT_EQ(controller->totalDropped(), 2u);
    EXPECT_EQ(scheduler.placements.size(), 2u);
}

TEST_F(FaultFixture, NodePauseHoldsArrivalToWindowEnd)
{
    FaultParams params;
    params.nodePause.push_back({1, 0, 10000});
    attach(params);
    controller->inject(makeFrame(0, 1, 100, 1000));
    ASSERT_EQ(scheduler.placements.size(), 1u);
    // Natural arrival would be 1500; the pause holds it to 10000.
    EXPECT_EQ(scheduler.placements[0].pkt->idealArrival, 10000u);
    // A frame departing after the window is unaffected.
    controller->inject(makeFrame(0, 1, 100, 20000));
    EXPECT_EQ(scheduler.placements[1].pkt->idealArrival, 20500u);
}

TEST(FaultInjectorUnit, SameSeedGivesIdenticalDecisionSequences)
{
    FaultParams params;
    params.dropRate = 0.3;
    params.duplicateRate = 0.2;
    params.corruptRate = 0.1;
    params.jitterRate = 0.5;
    params.maxJitterTicks = 100;
    stats::Group root_a("a"), root_b("b");
    FaultInjector a(4, params, Rng(7), root_a);
    FaultInjector b(4, params, Rng(7), root_b);
    for (Tick t = 0; t < 500; ++t) {
        const auto da = a.decide(0, 1, t * 10);
        const auto db = b.decide(0, 1, t * 10);
        EXPECT_EQ(da.drop, db.drop);
        EXPECT_EQ(da.corrupt, db.corrupt);
        EXPECT_EQ(da.duplicate, db.duplicate);
        EXPECT_EQ(da.jitter, db.jitter);
        EXPECT_EQ(da.duplicateJitter, db.duplicateJitter);
    }
    EXPECT_EQ(a.totalDropped(), b.totalDropped());
    EXPECT_EQ(a.totalDuplicated(), b.totalDuplicated());
}

TEST(FaultInjectorUnit, LinksHaveIndependentStreams)
{
    FaultParams params;
    params.dropRate = 0.5;
    stats::Group root_a("a"), root_b("b");
    FaultInjector a(4, params, Rng(7), root_a);
    FaultInjector b(4, params, Rng(7), root_b);
    // Interleaving traffic on another link must not perturb the
    // decision sequence of link 0->1.
    std::vector<bool> drops_a, drops_b;
    for (Tick t = 0; t < 200; ++t) {
        drops_a.push_back(a.decide(0, 1, t).drop);
        b.decide(2, 3, t); // extra traffic on an unrelated link
        drops_b.push_back(b.decide(0, 1, t).drop);
    }
    EXPECT_EQ(drops_a, drops_b);
}

TEST(FaultInjectorUnit, ResetReplaysTheExactSameDecisions)
{
    FaultParams params;
    params.dropRate = 0.4;
    params.jitterRate = 0.3;
    params.maxJitterTicks = 50;
    stats::Group root("a");
    FaultInjector inj(2, params, Rng(11), root);
    std::vector<Tick> first;
    for (Tick t = 0; t < 300; ++t) {
        const auto d = inj.decide(0, 1, t);
        first.push_back(d.drop ? maxTick : d.jitter);
    }
    const auto dropped = inj.totalDropped();
    inj.reset();
    EXPECT_EQ(inj.totalDropped(), 0u);
    for (Tick t = 0; t < 300; ++t) {
        const auto d = inj.decide(0, 1, t);
        EXPECT_EQ(first[t], d.drop ? maxTick : d.jitter) << "tick " << t;
    }
    EXPECT_EQ(inj.totalDropped(), dropped);
}

namespace
{

/** A lossy conservative run of the burst workload on either engine. */
engine::RunResult
runFaulty(bool threaded, std::size_t workers, std::uint64_t seed)
{
    auto params = harness::defaultCluster(8, seed);
    params.faults.dropRate = 0.02;
    params.faults.duplicateRate = 0.02;
    params.faults.corruptRate = 0.01;
    params.faults.jitterRate = 0.05;
    params.faults.maxJitterTicks = 200;
    params.mpiParams.reliable = true;
    params.mpiParams.retryTimeout = microseconds(20);
    auto workload = workloads::makeWorkload("burst", 8, 0.1);
    auto policy = core::parsePolicy("fixed:1us");
    engine::EngineOptions options;
    options.numWorkers = workers;
    if (threaded) {
        engine::ThreadedEngine engine(options);
        return engine.run(params, *workload, *policy);
    }
    engine::SequentialEngine engine(options);
    return engine.run(params, *workload, *policy);
}

} // namespace

TEST(FaultDeterminism, ConservativeLossyRunsMatchAcrossEngines)
{
    // The ISSUE acceptance bar: with fault injection and reliable
    // delivery enabled, a same-seed conservative run is bit-identical
    // on the SequentialEngine and on the WorkerPool engine at 1, 2,
    // and 4 workers.
    const auto ref = runFaulty(false, 0, 5);
    EXPECT_GT(ref.droppedFrames, 0u);
    EXPECT_GT(ref.retransmits, 0u);
    for (std::size_t workers : {1ul, 2ul, 4ul}) {
        const auto got = runFaulty(true, workers, 5);
        EXPECT_EQ(got.simTicks, ref.simTicks) << "workers=" << workers;
        EXPECT_EQ(got.packets, ref.packets) << "workers=" << workers;
        EXPECT_EQ(got.finishTicks, ref.finishTicks)
            << "workers=" << workers;
        EXPECT_EQ(got.droppedFrames, ref.droppedFrames)
            << "workers=" << workers;
        EXPECT_EQ(got.retransmits, ref.retransmits)
            << "workers=" << workers;
        EXPECT_EQ(got.stragglers, ref.stragglers)
            << "workers=" << workers;
    }
}

TEST(FaultDeterminism, RerunsWithTheSameSeedAreIdentical)
{
    const auto a = runFaulty(false, 0, 9);
    const auto b = runFaulty(false, 0, 9);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.droppedFrames, b.droppedFrames);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.finishTicks, b.finishTicks);
}

TEST(FaultDeterminism, DifferentSeedsPerturbTheFaultPattern)
{
    const auto a = runFaulty(false, 0, 5);
    const auto b = runFaulty(false, 0, 6);
    // Not a hard physical law, but with hundreds of frames at 2% drop
    // the probability of identical drop counts AND identical finish
    // times under different seeds is negligible.
    EXPECT_TRUE(a.droppedFrames != b.droppedFrames ||
                a.finishTicks != b.finishTicks);
}

TEST(FaultStraggler, DeferToNextQuantumStillCompletesUnderLoss)
{
    // Large quantum + deferred stragglers + loss: every late frame
    // snaps to the next quantum boundary (DeliveryKind::NextQuantum)
    // and the reliable layer still converges.
    auto params = harness::defaultCluster(4, 3);
    params.faults.dropRate = 0.05;
    params.mpiParams.reliable = true;
    params.mpiParams.retryTimeout = microseconds(20);
    auto workload = workloads::makeWorkload("burst", 4, 0.1);
    auto policy = core::parsePolicy("fixed:100us");
    engine::EngineOptions options;
    options.stragglerPolicy = engine::StragglerPolicy::DeferToNextQuantum;
    engine::SequentialEngine engine(options);
    const auto result = engine.run(params, *workload, *policy);
    EXPECT_GT(result.nextQuantumDeliveries, 0u);
    EXPECT_EQ(result.stragglers, result.nextQuantumDeliveries);
    EXPECT_GT(result.droppedFrames, 0u);
    for (Tick t : result.finishTicks)
        EXPECT_GT(t, 0u);
}
