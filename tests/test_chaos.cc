/**
 * Chaos scenario engine tests: spec parsing (including the '+'
 * composition and k=v parameter grammar), the compiled shape of every
 * catalog scenario, seed determinism of randomized placement, rejection
 * of malformed specs, and cross-engine bit-identity of a chaos run.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "engine/threaded_engine.hh"
#include "fault/chaos.hh"
#include "test_util.hh"

using namespace aqsim;

namespace
{

fault::FaultParams
compiled(const std::string &spec, std::size_t n = 4,
         std::uint64_t seed = 7)
{
    fault::FaultParams faults;
    fault::applyChaos(faults, spec, n, seed);
    return faults;
}

} // namespace

TEST(ChaosSpec, ParsesNamesParametersAndComposition)
{
    const auto specs = fault::parseChaosSpec(
        "rolling-crash:count=2,start=10us+loss-burst:rate=0.5");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "rolling-crash");
    ASSERT_EQ(specs[0].params.size(), 2u);
    EXPECT_EQ(specs[0].params[0].first, "count");
    EXPECT_EQ(specs[0].params[0].second, "2");
    EXPECT_EQ(specs[0].count("count", 99), 2u);
    EXPECT_EQ(specs[0].tick("start", 0), microseconds(10));
    // Missing keys fall back to the caller's default.
    EXPECT_EQ(specs[0].count("nope", 42), 42u);
    EXPECT_EQ(specs[1].name, "loss-burst");
    EXPECT_DOUBLE_EQ(specs[1].rate("rate", 0.0), 0.5);
}

TEST(ChaosSpecDeath, MalformedSpecsAreFatal)
{
    EXPECT_DEATH(fault::parseChaosSpec("+flap"), "empty scenario");
    EXPECT_DEATH(fault::parseChaosSpec("flap:dur"), "not k=v");
    EXPECT_DEATH(fault::parseChaosSpec("flap:=3"), "not k=v");
    EXPECT_DEATH(compiled("no-such-scenario"),
                 "unknown chaos scenario");
    EXPECT_DEATH(compiled("rolling-crash:count=4", 4),
                 "at least one survivor");
    EXPECT_DEATH(compiled("flap:dur=100us,period=100us"),
                 "shorter than period");
    EXPECT_DEATH(compiled("partition:cut=0"), "needs 1..");
    EXPECT_DEATH(compiled("rolling-crash:count=x"), "not a count");
    EXPECT_DEATH(compiled("loss-burst:rate=abc"), "not a rate");
}

TEST(Chaos, RollingCrashStaggersDistinctNodes)
{
    const auto faults = compiled("rolling-crash", 4);
    // Default count on 4 nodes: min(3, n-1) = 3 crash windows.
    ASSERT_EQ(faults.nodeCrash.size(), 3u);
    std::set<NodeId> nodes;
    for (std::size_t i = 0; i < faults.nodeCrash.size(); ++i) {
        const auto &w = faults.nodeCrash[i];
        nodes.insert(w.node);
        EXPECT_EQ(w.from, microseconds(50) + i * microseconds(150));
        EXPECT_EQ(w.to, w.from + microseconds(100));
    }
    // The permutation never crashes the same node twice.
    EXPECT_EQ(nodes.size(), 3u);
    EXPECT_TRUE(faults.linkDown.empty());
    EXPECT_TRUE(faults.lossBursts.empty());
}

TEST(Chaos, CascadingLinkAccumulatesAndHealsTogether)
{
    const auto faults = compiled("cascading-link:count=3", 6);
    ASSERT_EQ(faults.linkDown.size(), 3u);
    const Tick heal = faults.linkDown[0].to;
    for (std::size_t i = 0; i < 3; ++i) {
        const auto &w = faults.linkDown[i];
        EXPECT_EQ(w.from,
                  microseconds(50) + i * microseconds(100));
        EXPECT_EQ(w.to, heal); // all heal at the same instant
        EXPECT_NE(w.a, w.b);
    }
}

TEST(Chaos, PartitionCutsEveryCrossPair)
{
    const auto faults = compiled("partition", 4);
    // Default bisection of 4 nodes: 2x2 cross pairs.
    ASSERT_EQ(faults.linkDown.size(), 4u);
    for (const auto &w : faults.linkDown) {
        EXPECT_LT(w.a, 2u);
        EXPECT_GE(w.b, 2u);
        EXPECT_EQ(w.from, microseconds(100));
        EXPECT_EQ(w.to, microseconds(300));
    }
}

TEST(Chaos, FlapTogglesOneLinkPeriodically)
{
    const auto faults = compiled("flap:count=5,a=1,b=3");
    ASSERT_EQ(faults.linkDown.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        const auto &w = faults.linkDown[i];
        EXPECT_EQ(w.a, 1u);
        EXPECT_EQ(w.b, 3u);
        EXPECT_EQ(w.from,
                  microseconds(50) + i * microseconds(100));
        EXPECT_EQ(w.to, w.from + microseconds(20));
    }
}

TEST(Chaos, LossBurstWindowsTheElevatedRate)
{
    const auto faults = compiled("loss-burst:rate=0.4,dur=100us");
    ASSERT_EQ(faults.lossBursts.size(), 1u);
    EXPECT_EQ(faults.lossBursts[0].from, microseconds(50));
    EXPECT_EQ(faults.lossBursts[0].to, microseconds(150));
    EXPECT_DOUBLE_EQ(faults.lossBursts[0].rate, 0.4);
}

TEST(Chaos, CompositionAppendsEveryScenario)
{
    const auto faults =
        compiled("rolling-crash:count=1+partition+loss-burst", 4);
    EXPECT_EQ(faults.nodeCrash.size(), 1u);
    EXPECT_EQ(faults.linkDown.size(), 4u);
    EXPECT_EQ(faults.lossBursts.size(), 1u);
}

TEST(Chaos, PlacementIsAPureFunctionOfTheSeed)
{
    const auto a = compiled("rolling-crash+cascading-link", 8, 123);
    const auto b = compiled("rolling-crash+cascading-link", 8, 123);
    ASSERT_EQ(a.nodeCrash.size(), b.nodeCrash.size());
    for (std::size_t i = 0; i < a.nodeCrash.size(); ++i) {
        EXPECT_EQ(a.nodeCrash[i].node, b.nodeCrash[i].node);
        EXPECT_EQ(a.nodeCrash[i].from, b.nodeCrash[i].from);
    }
    ASSERT_EQ(a.linkDown.size(), b.linkDown.size());
    for (std::size_t i = 0; i < a.linkDown.size(); ++i) {
        EXPECT_EQ(a.linkDown[i].a, b.linkDown[i].a);
        EXPECT_EQ(a.linkDown[i].b, b.linkDown[i].b);
    }

    // A different seed shuffles placement (8 nodes: the odds of an
    // identical 3-crash draw are small enough to assert against).
    const auto c = compiled("rolling-crash+cascading-link", 8, 124);
    bool differs = false;
    for (std::size_t i = 0; i < a.nodeCrash.size(); ++i)
        differs |= a.nodeCrash[i].node != c.nodeCrash[i].node;
    for (std::size_t i = 0; i < a.linkDown.size(); ++i)
        differs |= a.linkDown[i].a != c.linkDown[i].a;
    EXPECT_TRUE(differs);
}

TEST(Chaos, ChaosRunIsBitIdenticalAcrossEngines)
{
    // The scenario compiler only appends windows to FaultParams, so a
    // chaos run inherits the fault layer's determinism contract:
    // sequential and threaded engines agree bit-for-bit.
    auto params = harness::defaultCluster(4, 7);
    fault::applyChaos(params.faults, "rolling-crash+loss-burst:rate=0.2",
                      params.numNodes, params.seed);
    params.mpiParams.reliable = true;

    auto workload = workloads::makeWorkload("burst", 4, 0.05);
    auto policy = core::parsePolicy("fixed:1us");
    engine::SequentialEngine seq;
    const auto golden = seq.run(params, *workload, *policy);
    EXPECT_GT(golden.droppedFrames, 0u); // the chaos actually bit

    for (const std::size_t workers : {1, 2, 4}) {
        engine::EngineOptions options;
        options.numWorkers = workers;
        engine::ThreadedEngine thr(options);
        auto w = workloads::makeWorkload("burst", 4, 0.05);
        auto p = core::parsePolicy("fixed:1us");
        const auto run = thr.run(params, *w, *p);
        EXPECT_EQ(run.finalStateHash, golden.finalStateHash)
            << workers << " workers";
        EXPECT_EQ(run.simTicks, golden.simTicks) << workers;
        EXPECT_EQ(run.packets, golden.packets) << workers;
    }
}
