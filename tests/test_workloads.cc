/** Tests for the workload skeletons and the workload framework. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "test_util.hh"
#include "workloads/namd.hh"
#include "workloads/nas_common.hh"
#include "workloads/nas_ep.hh"
#include "workloads/nas_is.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload.hh"

using namespace aqsim;
using namespace aqsim::workloads;

namespace
{

engine::RunResult
runWorkload(const std::string &name, std::size_t nodes,
            double scale = 0.1)
{
    harness::ExperimentConfig config;
    config.workload = name;
    config.numNodes = nodes;
    config.scale = scale;
    config.policySpec = "fixed:1us";
    return harness::runExperiment(config).result;
}

class AllWorkloads
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::size_t>>
{};

} // namespace

TEST_P(AllWorkloads, RunsToCompletionUnderGroundTruth)
{
    const auto &[name, nodes] = GetParam();
    auto result = runWorkload(name, nodes);
    EXPECT_GT(result.simTicks, 0u);
    EXPECT_GT(result.hostNs, 0.0);
    EXPECT_EQ(result.numNodes, nodes);
    EXPECT_EQ(result.workload, name);
    // Conservative 1 us quantum: never any straggler.
    EXPECT_EQ(result.stragglers, 0u);
    // All ranks finish.
    for (Tick t : result.finishTicks)
        EXPECT_GT(t, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllWorkloads,
    ::testing::Combine(::testing::Values("nas.ep", "nas.is", "nas.cg",
                                         "nas.mg", "nas.lu", "namd",
                                         "pingpong", "burst", "random"),
                       ::testing::Values(std::size_t{2},
                                         std::size_t{4},
                                         std::size_t{8})),
    [](const auto &info) {
        auto name = std::get<0>(info.param);
        for (auto &c : name)
            if (c == '.')
                c = '_';
        return name + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(WorkloadFactory, KnowsAllNames)
{
    for (const auto &name : workloadNames())
        EXPECT_NE(makeWorkload(name, 2, 1.0), nullptr) << name;
}

TEST(WorkloadFactory, RejectsUnknownName)
{
    EXPECT_EXIT(makeWorkload("nas.zz", 2, 1.0),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(WorkloadFactory, NasListMatchesPaperSelection)
{
    const auto names = nasWorkloadNames();
    ASSERT_EQ(names.size(), 5u);
    EXPECT_EQ(names[0], "nas.ep");
    EXPECT_EQ(names[1], "nas.is");
}

TEST(WorkloadMetrics, RateWorkloadsReportMops)
{
    NasEp ep(4, 1.0);
    EXPECT_EQ(ep.metricKind(), Workload::MetricKind::RateMops);
    const double mops = ep.metricValue(milliseconds(100));
    EXPECT_NEAR(mops, ep.totalOps() / 0.1 / 1e6, 1.0);
}

TEST(WorkloadMetrics, NamdReportsWallClock)
{
    Namd namd(4, 1.0);
    EXPECT_EQ(namd.metricKind(),
              Workload::MetricKind::WallClockSeconds);
    EXPECT_DOUBLE_EQ(namd.metricValue(seconds(2)), 2.0);
}

TEST(WorkloadMetrics, FasterCompletionMeansHigherMops)
{
    NasIs is(4, 1.0);
    EXPECT_GT(is.metricValue(milliseconds(10)),
              is.metricValue(milliseconds(20)));
}

TEST(WorkloadShape, EpHasAlmostNoTraffic)
{
    auto ep = runWorkload("nas.ep", 4);
    auto is = runWorkload("nas.is", 4);
    // EP: only the three final reductions; IS: alltoalls everywhere.
    EXPECT_LT(ep.packets * 20, is.packets);
}

TEST(WorkloadShape, NamdHasNoLongQuietIntervalEpDoes)
{
    // Paper Fig. 9: EP's chart shows long silent stretches; NAMD has
    // "no visible interval where the application is not exchanging
    // data". Compare the longest packet-free gap as a fraction of
    // the run.
    auto longest_gap_fraction = [](const std::string &name) {
        harness::ExperimentConfig config;
        config.workload = name;
        config.numNodes = 4;
        config.scale = 1.0;
        config.policySpec = "fixed:1us";
        config.recordTrace = true;
        auto out = harness::runExperiment(config);
        Tick last = 0, longest = 0;
        for (const auto &rec : out.trace.records()) {
            if (rec.time > last)
                longest = std::max(longest, rec.time - last);
            last = std::max(last, rec.time);
        }
        longest = std::max(longest, out.result.simTicks - last);
        return static_cast<double>(longest) /
               static_cast<double>(out.result.simTicks);
    };
    const double ep_gap = longest_gap_fraction("nas.ep");
    const double namd_gap = longest_gap_fraction("namd");
    EXPECT_GT(ep_gap, 0.5);    // one huge silent compute block
    EXPECT_LT(namd_gap, 0.15); // traffic throughout
    EXPECT_LT(namd_gap, ep_gap / 3.0);
}

TEST(WorkloadShape, PingPongMeasuresRoundtrip)
{
    PingPong::Params params;
    params.rounds = 10;
    params.bytes = 1000;
    PingPong workload(2, 1.0, params);
    auto policy = core::parsePolicy("fixed:1us");
    auto cluster_params = harness::defaultCluster(2, 1);
    engine::SequentialEngine engine;
    engine.run(cluster_params, workload, *policy);
    // Same physical roundtrip as computed in test_mpi_endpoint.
    EXPECT_NEAR(workload.meanRoundtripTicks(), 2.0 * 2175.0, 20.0);
}

TEST(WorkloadShape, ScaleShrinksRuntime)
{
    auto small = runWorkload("nas.ep", 2, 0.05);
    auto large = runWorkload("nas.ep", 2, 0.2);
    EXPECT_LT(small.simTicks, large.simTicks);
}

TEST(NasCommon, Factor3ProducesNearCubicGrids)
{
    EXPECT_EQ(factor3(8), (std::array<std::size_t, 3>{2, 2, 2}));
    EXPECT_EQ(factor3(64), (std::array<std::size_t, 3>{4, 4, 4}));
    auto f12 = factor3(12);
    EXPECT_EQ(f12[0] * f12[1] * f12[2], 12u);
    EXPECT_EQ(factor3(1), (std::array<std::size_t, 3>{1, 1, 1}));
    auto f7 = factor3(7);
    EXPECT_EQ(f7[0] * f7[1] * f7[2], 7u);
}

TEST(NasCommon, Factor2ProducesNearSquareGrids)
{
    EXPECT_EQ(factor2(16), (std::array<std::size_t, 2>{4, 4}));
    EXPECT_EQ(factor2(8), (std::array<std::size_t, 2>{4, 2}));
    EXPECT_EQ(factor2(5), (std::array<std::size_t, 2>{5, 1}));
}

TEST(NasCommon, GridCoordsRoundTrip)
{
    const std::array<std::size_t, 3> dims{4, 3, 2};
    for (std::size_t r = 0; r < 24; ++r)
        EXPECT_EQ(gridRank(gridCoords(r, dims), dims), r);
}

TEST(NasCommon, GridNeighborRespectsBoundaries)
{
    const std::array<std::size_t, 3> dims{2, 2, 1};
    EXPECT_EQ(gridNeighbor(0, dims, 0, +1), 1);
    EXPECT_EQ(gridNeighbor(0, dims, 0, -1), -1);
    EXPECT_EQ(gridNeighbor(0, dims, 1, +1), 2);
    EXPECT_EQ(gridNeighbor(3, dims, 0, +1), -1);
    EXPECT_EQ(gridNeighbor(3, dims, 1, -1), 1);
}
