/** Tests for the logging subsystem. */

#include <gtest/gtest.h>

#include "base/logging.hh"

using namespace aqsim;

namespace
{

/** RAII capture of log output into a string. */
class LogCapture
{
  public:
    LogCapture() { Logger::captureTo(&buffer_); }
    ~LogCapture() { Logger::captureTo(nullptr); }
    const std::string &text() const { return buffer_; }

  private:
    std::string buffer_;
};

} // namespace

TEST(Logging, InformSuppressedUnlessVerbose)
{
    LogCapture capture;
    Logger::setVerbose(false);
    inform("hidden %d", 1);
    EXPECT_TRUE(capture.text().empty());
    Logger::setVerbose(true);
    inform("visible %d", 2);
    Logger::setVerbose(false);
    EXPECT_NE(capture.text().find("info: visible 2"),
              std::string::npos);
}

TEST(Logging, WarnAlwaysEmits)
{
    LogCapture capture;
    warn("watch out: %s", "stragglers");
    EXPECT_NE(capture.text().find("warn: watch out: stragglers"),
              std::string::npos);
}

TEST(Logging, FormatsArguments)
{
    LogCapture capture;
    warn("%d quanta at %.1f us", 42, 2.5);
    EXPECT_NE(capture.text().find("42 quanta at 2.5 us"),
              std::string::npos);
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config %d", 7),
                ::testing::ExitedWithCode(1), "bad config 7");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant %s broken", "x"),
                 "invariant x broken");
}

TEST(LoggingDeath, AssertMacroReportsExpressionAndLocation)
{
    EXPECT_DEATH(AQSIM_ASSERT(1 == 2), "assertion '1 == 2' failed");
}
