/**
 * Tests for the worker-pool engine layer: shard math, the quantum
 * gate/pool protocol, and the cross-engine determinism contract — a
 * conservative ThreadedEngine run is bit-identical to the
 * SequentialEngine at *every* worker count, including oversubscribed
 * and clamped ones.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "engine/threaded_engine.hh"
#include "engine/worker_pool.hh"
#include "test_util.hh"

using namespace aqsim;

namespace
{

engine::RunResult
runWith(const std::string &workload, std::size_t nodes,
        const std::string &policy, std::size_t workers,
        bool threaded, double scale = 0.05)
{
    auto wl = workloads::makeWorkload(workload, nodes, scale);
    auto pol = core::parsePolicy(policy);
    auto params = harness::defaultCluster(nodes, 1);
    engine::EngineOptions options;
    options.numWorkers = workers;
    if (threaded) {
        engine::ThreadedEngine engine(options);
        return engine.run(params, *wl, *pol);
    }
    engine::SequentialEngine engine(options);
    return engine.run(params, *wl, *pol);
}

} // namespace

TEST(WorkerPoolShards, CoverAllTasksExactlyOnce)
{
    for (std::size_t tasks : {1u, 2u, 7u, 8u, 64u}) {
        for (std::size_t workers : {1u, 2u, 3u, 8u}) {
            if (workers > tasks)
                continue;
            std::vector<int> owned(tasks, 0);
            std::size_t prev_end = 0;
            for (std::size_t w = 0; w < workers; ++w) {
                auto [begin, end] = engine::WorkerPool::shardRange(
                    w, workers, tasks);
                EXPECT_EQ(begin, prev_end);
                prev_end = end;
                for (std::size_t t = begin; t < end; ++t)
                    ++owned[t];
            }
            EXPECT_EQ(prev_end, tasks);
            for (int count : owned)
                EXPECT_EQ(count, 1);
        }
    }
}

TEST(WorkerPoolShards, ResolveWorkerCountClampsAndDefaults)
{
    // Explicit requests are clamped to the task count, never zero.
    EXPECT_EQ(engine::WorkerPool::resolveWorkerCount(4, 64), 4u);
    EXPECT_EQ(engine::WorkerPool::resolveWorkerCount(7, 4), 4u);
    EXPECT_EQ(engine::WorkerPool::resolveWorkerCount(1, 1), 1u);
    // Default (0) resolves to some positive hardware-derived count.
    EXPECT_GE(engine::WorkerPool::resolveWorkerCount(0, 64), 1u);
    EXPECT_LE(engine::WorkerPool::resolveWorkerCount(0, 4), 4u);
}

TEST(WorkerPoolGate, EveryWorkerRunsEveryQuantum)
{
    constexpr std::size_t workers = 3;
    constexpr int quanta = 50;
    std::vector<std::atomic<int>> runs(workers);
    std::atomic<Tick> last_end{0};
    {
        engine::WorkerPool pool(workers, [&](std::size_t w, Tick qe) {
            ++runs[w];
            last_end.store(qe, std::memory_order_relaxed);
        });
        EXPECT_EQ(pool.numWorkers(), workers);
        for (int q = 1; q <= quanta; ++q)
            pool.runQuantum(static_cast<Tick>(q) * 10);
        // runQuantum is a full barrier: all work for this quantum is
        // done and visible once it returns.
        for (std::size_t w = 0; w < workers; ++w)
            EXPECT_EQ(runs[w].load(), quanta);
        EXPECT_EQ(last_end.load(), static_cast<Tick>(quanta) * 10);
    }
}

TEST(WorkerPoolGate, StopsCleanlyWithoutQuanta)
{
    engine::WorkerPool pool(4, [](std::size_t, Tick) {});
    // Destructor joins a pool that never ran a quantum.
}

/**
 * The cross-engine contract of the issue: conservative fixed-Q runs
 * are bit-identical between ThreadedEngine (any worker count) and
 * SequentialEngine in every simulated-result field.
 */
TEST(WorkerPoolDeterminism, ConservativeMatchesSequentialAtAllWorkerCounts)
{
    constexpr std::size_t nodes = 4;
    for (const char *workload : {"pingpong", "nas.cg"}) {
        const auto expected =
            runWith(workload, nodes, "fixed:1us", 0, false);
        // {1, 2, N-1, N, N+3}: N+3 exercises the clamp path.
        for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    nodes - 1, nodes, nodes + 3}) {
            const auto got =
                runWith(workload, nodes, "fixed:1us", workers, true);
            EXPECT_EQ(got.simTicks, expected.simTicks)
                << workload << " workers=" << workers;
            EXPECT_EQ(got.packets, expected.packets)
                << workload << " workers=" << workers;
            EXPECT_EQ(got.stragglers, expected.stragglers)
                << workload << " workers=" << workers;
            EXPECT_EQ(got.finishTicks, expected.finishTicks)
                << workload << " workers=" << workers;
        }
    }
}

TEST(WorkerPoolDeterminism, EightNodesShardedMatchesSequential)
{
    const auto expected = runWith("nas.mg", 8, "fixed:1us", 0, false, 0.02);
    const auto got = runWith("nas.mg", 8, "fixed:1us", 3, true, 0.02);
    EXPECT_EQ(got.simTicks, expected.simTicks);
    EXPECT_EQ(got.packets, expected.packets);
    EXPECT_EQ(got.stragglers, expected.stragglers);
    EXPECT_EQ(got.finishTicks, expected.finishTicks);
}

TEST(WorkerPoolDeterminism, NonConservativeShardedStillCompletes)
{
    // With Q > T the sharded engine is racy (like the paper's system)
    // but must stay functionally correct at any worker count.
    for (std::size_t workers : {1u, 2u, 5u}) {
        const auto result =
            runWith("burst", 8, "fixed:50us", workers, true, 0.1);
        EXPECT_GT(result.simTicks, 0u);
        EXPECT_GT(result.packets, 0u);
    }
}
