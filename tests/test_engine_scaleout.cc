/**
 * Scale-out and dynamics tests: larger clusters, cross-engine sweeps,
 * and the "speed bump" quantum dynamics the paper describes.
 * Also compiles the umbrella header to keep the public API sound.
 */

#include <gtest/gtest.h>

#include "aqsim.hh"
#include "test_util.hh"

using namespace aqsim;

namespace
{

engine::RunResult
runScaled(const std::string &workload, std::size_t nodes,
          const std::string &policy, double scale,
          bool timeline = false)
{
    harness::ExperimentConfig config;
    config.workload = workload;
    config.numNodes = nodes;
    config.scale = scale;
    config.policySpec = policy;
    config.recordTimeline = timeline;
    return harness::runExperiment(config).result;
}

} // namespace

TEST(ScaleOut, SixtyFourNodeEpCompletes)
{
    auto result = runScaled("nas.ep", 64, "dyn:1.05:0.02:1us:1000us",
                            2.0);
    EXPECT_GT(result.simTicks, 0u);
    EXPECT_EQ(result.finishTicks.size(), 64u);
    for (Tick t : result.finishTicks)
        EXPECT_GT(t, 0u);
}

TEST(ScaleOut, SixtyFourNodeIsCompletesConservatively)
{
    auto result = runScaled("nas.is", 64, "fixed:1us", 0.25);
    EXPECT_EQ(result.stragglers, 0u);
    EXPECT_GT(result.packets, 1000u); // dense alltoall traffic
}

TEST(ScaleOut, ThirtyTwoNodeCollectiveHeavyRun)
{
    auto result = runScaled("burst", 32, "dyn:1.03:0.02:1us:1000us",
                            0.5);
    EXPECT_GT(result.simTicks, 0u);
    EXPECT_GT(result.quanta, 10u);
}

TEST(ScaleOut, StragglerFractionGrowsWithNodeCount)
{
    // Fig. 6 reasoning: "more nodes imply more communication and
    // hence more stragglers in larger quanta scenarios".
    const auto n4 = runScaled("nas.cg", 4, "fixed:1000us", 0.25);
    const auto n16 = runScaled("nas.cg", 16, "fixed:1000us", 0.25);
    EXPECT_GT(n16.stragglerFraction(), n4.stragglerFraction() * 0.8);
    EXPECT_GT(n16.stragglers, n4.stragglers);
}

TEST(SpeedBump, QuantumCollapsesWithinThreeQuantaOfTraffic)
{
    // The paper: dec near 1/sqrt(maxQ) "forces a dramatic reduction
    // of the quantum duration in just two or three quanta at most".
    // Verify on the recorded timeline of a bursty run: after any
    // quantum with traffic, the quantum returns to within 2x of the
    // minimum within 3 steps.
    auto result = runScaled("burst", 8, "dyn:1.05:0.02:1us:1000us",
                            2.0, true);
    const auto &timeline = result.timeline;
    ASSERT_GT(timeline.size(), 10u);
    for (std::size_t i = 0; i + 3 < timeline.size(); ++i) {
        if (timeline[i].packets == 0)
            continue;
        // Find the quantum length three steps later; unless traffic
        // continues, it must be near the minimum.
        bool still_traffic = false;
        for (std::size_t j = i + 1; j <= i + 3; ++j)
            still_traffic |= timeline[j].packets > 0;
        if (still_traffic)
            continue;
        EXPECT_LE(timeline[i + 3].length, microseconds(2))
            << "quantum failed to collapse after traffic at index "
            << i;
    }
}

TEST(SpeedBump, QuantumGrowthIsMonotoneThroughSilence)
{
    auto result = runScaled("nas.ep", 4, "dyn:1.05:0.02:1us:1000us",
                            1.0, true);
    const auto &timeline = result.timeline;
    // Within any run of consecutive zero-packet quanta, lengths never
    // decrease.
    for (std::size_t i = 1; i < timeline.size(); ++i) {
        if (timeline[i - 1].packets == 0 &&
            timeline[i - 1].length < microseconds(1000)) {
            EXPECT_GE(timeline[i].length, timeline[i - 1].length)
                << "shrank without traffic at index " << i;
        }
    }
}

TEST(CrossEngine, ConservativeSweepMatchesAcrossEngines)
{
    for (const char *workload : {"burst", "random"}) {
        for (std::size_t nodes : {2ul, 5ul, 8ul}) {
            auto wl_seq =
                workloads::makeWorkload(workload, nodes, 0.05);
            auto pol_seq = core::parsePolicy("fixed:1us");
            auto params = harness::defaultCluster(nodes, 3);
            engine::SequentialEngine seq;
            auto a = seq.run(params, *wl_seq, *pol_seq);

            auto wl_thr =
                workloads::makeWorkload(workload, nodes, 0.05);
            auto pol_thr = core::parsePolicy("fixed:1us");
            engine::ThreadedEngine thr;
            auto b = thr.run(params, *wl_thr, *pol_thr);

            EXPECT_EQ(a.simTicks, b.simTicks)
                << workload << " n=" << nodes;
            EXPECT_EQ(a.packets, b.packets)
                << workload << " n=" << nodes;
            EXPECT_EQ(a.finishTicks, b.finishTicks)
                << workload << " n=" << nodes;
        }
    }
}

TEST(CrossEngine, ThreadedSixteenNodesNonConservative)
{
    auto wl = workloads::makeWorkload("burst", 16, 0.1);
    auto pol = core::parsePolicy("dyn:1.05:0.02:1us:500us");
    auto params = harness::defaultCluster(16, 1);
    engine::ThreadedEngine engine;
    auto result = engine.run(params, *wl, *pol);
    EXPECT_GT(result.simTicks, 0u);
    for (Tick t : result.finishTicks)
        EXPECT_GT(t, 0u);
}

TEST(ProblemClass, ScaleMappingMatchesConvention)
{
    EXPECT_DOUBLE_EQ(workloads::scaleForClass('A'), 1.0);
    EXPECT_DOUBLE_EQ(workloads::scaleForClass('a'), 1.0);
    EXPECT_LT(workloads::scaleForClass('S'),
              workloads::scaleForClass('W'));
    EXPECT_LT(workloads::scaleForClass('W'),
              workloads::scaleForClass('A'));
    EXPECT_LT(workloads::scaleForClass('A'),
              workloads::scaleForClass('B'));
    EXPECT_EXIT(workloads::scaleForClass('Z'),
                ::testing::ExitedWithCode(1), "unknown problem class");
}

TEST(UmbrellaHeader, ProvidesTheFullPublicApi)
{
    // Compile-time check mostly; spot-check a few symbols resolve.
    core::AdaptiveQuantumPolicy policy({});
    EXPECT_EQ(policy.initialQuantum(), microseconds(1));
    net::TopologyParams topo;
    EXPECT_EQ(net::topologyName(topo.kind), "star");
    EXPECT_EQ(harness::groundTruthSpec, std::string("fixed:1us"));
}
