/** Tests for packets and switch timing models. */

#include <gtest/gtest.h>

#include "base/types.hh"
#include "net/packet.hh"
#include "net/switch_model.hh"

using namespace aqsim;
using namespace aqsim::net;

TEST(Packet, FactoryInitializesTimestamps)
{
    auto pkt = makePacket(1, 2, 512, 1000);
    EXPECT_EQ(pkt->src, 1u);
    EXPECT_EQ(pkt->dst, 2u);
    EXPECT_EQ(pkt->bytes, 512u);
    EXPECT_EQ(pkt->sendTick, 1000u);
    EXPECT_EQ(pkt->departTick, 1000u);
}

TEST(Packet, ToStringContainsEndpoints)
{
    auto pkt = makePacket(3, 7, 64, 0);
    const std::string s = pkt->toString();
    EXPECT_NE(s.find("3->7"), std::string::npos);
    EXPECT_NE(s.find("64B"), std::string::npos);
}

TEST(PerfectSwitch, ZeroLatencyInfiniteBandwidth)
{
    PerfectSwitch sw;
    EXPECT_EQ(sw.egress(0, 1, 9000, 555), 555u);
    EXPECT_EQ(sw.egress(0, 1, 9000, 555), 555u); // no port occupancy
    EXPECT_EQ(sw.minTraversal(), 0u);
}

TEST(StoreAndForwardSwitch, AddsTraversalAndSerialization)
{
    // 1 byte/ns, 100 ns traversal.
    StoreAndForwardSwitch sw(4, 1.0, 100);
    // 1000B frame entering at t=0: exits at 100 + 1000.
    EXPECT_EQ(sw.egress(0, 1, 1000, 0), 1100u);
    EXPECT_EQ(sw.minTraversal(), 100u);
}

TEST(StoreAndForwardSwitch, OutputPortContentionQueues)
{
    StoreAndForwardSwitch sw(4, 1.0, 100);
    EXPECT_EQ(sw.egress(0, 1, 1000, 0), 1100u);
    // Second frame to the same port at the same time queues behind.
    EXPECT_EQ(sw.egress(2, 1, 1000, 0), 2100u);
    // A frame to a different port does not queue.
    EXPECT_EQ(sw.egress(2, 3, 1000, 0), 1100u);
}

TEST(StoreAndForwardSwitch, ResetClearsPortState)
{
    StoreAndForwardSwitch sw(2, 1.0, 10);
    sw.egress(0, 1, 5000, 0);
    sw.reset();
    EXPECT_EQ(sw.egress(0, 1, 1000, 0), 1010u);
}

TEST(StoreAndForwardSwitch, FractionalBandwidthRoundsUp)
{
    StoreAndForwardSwitch sw(2, 3.0, 0); // 3 bytes/ns
    // 10 bytes at 3 B/ns = 3.33 ns -> ceil 4.
    EXPECT_EQ(sw.egress(0, 1, 10, 0), 4u);
}
