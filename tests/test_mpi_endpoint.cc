/** Tests for the message-passing endpoint: matching, protocols. */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::LambdaWorkload;
using test::runLambda;

TEST(Endpoint, BlockingSendRecvDeliversOnce)
{
    std::atomic<int> received{0};
    std::atomic<std::uint64_t> bytes{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 5, 1234);
        } else {
            mpi::Message m = co_await ctx.comm().recv(0, 5);
            ++received;
            bytes = m.bytes;
            EXPECT_EQ(m.src, 0u);
            EXPECT_EQ(m.tag, 5);
        }
    });
    EXPECT_EQ(received.load(), 1);
    EXPECT_EQ(bytes.load(), 1234u);
}

TEST(Endpoint, RecvBeforeSendAndAfterSendBothMatch)
{
    // First message arrives before the recv is posted (unexpected
    // queue); second recv is posted before the message arrives.
    std::vector<Tick> recv_times;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, 100);
            co_await ctx.delay(microseconds(50));
            co_await ctx.comm().send(1, 1, 100);
        } else {
            co_await ctx.delay(microseconds(20)); // late post
            co_await ctx.comm().recv(0, 1);
            recv_times.push_back(ctx.now());
            co_await ctx.comm().recv(0, 1); // early post
            recv_times.push_back(ctx.now());
        }
    });
    ASSERT_EQ(recv_times.size(), 2u);
    EXPECT_GE(recv_times[0], microseconds(20));
    EXPECT_GT(recv_times[1], microseconds(50));
}

TEST(Endpoint, MessagesMatchInSendOrderPerSource)
{
    std::vector<std::uint64_t> sizes;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 9, 111);
            co_await ctx.comm().send(1, 9, 222);
            co_await ctx.comm().send(1, 9, 333);
        } else {
            for (int i = 0; i < 3; ++i) {
                mpi::Message m = co_await ctx.comm().recv(0, 9);
                sizes.push_back(m.bytes);
            }
        }
    });
    EXPECT_EQ(sizes, (std::vector<std::uint64_t>{111, 222, 333}));
}

TEST(Endpoint, TagsSeparateMessageStreams)
{
    std::vector<int> tags;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, 64);
            co_await ctx.comm().send(1, 2, 64);
        } else {
            // Receive in reverse tag order: matching must be by tag,
            // not arrival order.
            co_await ctx.comm().recv(0, 2);
            tags.push_back(2);
            co_await ctx.comm().recv(0, 1);
            tags.push_back(1);
        }
    });
    EXPECT_EQ(tags, (std::vector<int>{2, 1}));
}

TEST(Endpoint, AnySourceMatchesEarliestArrival)
{
    std::vector<Rank> sources;
    runLambda(3, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 1) {
            co_await ctx.delay(microseconds(30));
            co_await ctx.comm().send(0, 4, 64);
        } else if (ctx.rank() == 2) {
            co_await ctx.comm().send(0, 4, 64);
        } else {
            for (int i = 0; i < 2; ++i) {
                mpi::Message m =
                    co_await ctx.comm().recv(mpi::anySource, 4);
                sources.push_back(m.src);
            }
        }
    });
    // Rank 2 sent immediately, rank 1 after 30 us.
    EXPECT_EQ(sources, (std::vector<Rank>{2, 1}));
}

TEST(Endpoint, AnyTagMatches)
{
    std::atomic<int> got{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 77, 64);
        } else {
            mpi::Message m = co_await ctx.comm().recv(0, mpi::anyTag);
            got = m.tag;
        }
    });
    EXPECT_EQ(got.load(), 77);
}

TEST(Endpoint, LargeMessageUsesRendezvousAndArrivesIntact)
{
    // > eagerThreshold (64 KiB) triggers RTS/CTS.
    std::atomic<std::uint64_t> got_bytes{0};
    constexpr std::uint64_t big = 1 << 20; // 1 MiB
    auto result =
        runLambda(2, [&](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0) {
                co_await ctx.comm().send(1, 3, big);
            } else {
                mpi::Message m = co_await ctx.comm().recv(0, 3);
                got_bytes = m.bytes;
            }
        });
    EXPECT_EQ(got_bytes.load(), big);
    // 1 MiB in ~8922-byte fragments plus RTS + CTS control frames
    // plus one flow-control ACK per non-final 64 KiB window.
    const auto frags = mpi::fragmentCount(big, 9000 - 78);
    const std::uint32_t window = 64 * 1024 / (9000 - 78);
    const auto acks = (frags + window - 1) / window - 1;
    EXPECT_EQ(result.packets, frags + 2 + acks);
}

TEST(Endpoint, EagerMessageHasNoControlFrames)
{
    auto result =
        runLambda(2, [&](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0) {
                co_await ctx.comm().send(1, 3, 1000);
            } else {
                co_await ctx.comm().recv(0, 3);
            }
        });
    EXPECT_EQ(result.packets, 1u);
}

TEST(Endpoint, RendezvousWhenRecvPostedFirst)
{
    std::atomic<int> ok{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.delay(microseconds(100));
            co_await ctx.comm().send(1, 3, 200000);
        } else {
            co_await ctx.comm().recv(0, 3); // posted before RTS
            ++ok;
        }
    });
    EXPECT_EQ(ok.load(), 1);
}

TEST(Endpoint, RendezvousWhenRtsArrivesFirst)
{
    std::atomic<int> ok{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 3, 200000);
        } else {
            co_await ctx.delay(microseconds(100)); // RTS waits
            co_await ctx.comm().recv(0, 3);
            ++ok;
        }
    });
    EXPECT_EQ(ok.load(), 1);
}

TEST(Endpoint, ConcurrentBidirectionalLargeSendsDoNotDeadlock)
{
    std::atomic<int> done{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        const Rank peer = ctx.rank() == 0 ? 1 : 0;
        auto s = ctx.comm().send(peer, 8, 500000);
        s.start();
        co_await ctx.comm().recv(static_cast<int>(peer), 8);
        co_await std::move(s);
        ++done;
    });
    EXPECT_EQ(done.load(), 2);
}

TEST(Endpoint, ManySmallMessagesAllDelivered)
{
    std::atomic<int> count{0};
    constexpr int n_msgs = 200;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            for (int i = 0; i < n_msgs; ++i)
                co_await ctx.comm().send(1, 6, 64 + i);
        } else {
            for (int i = 0; i < n_msgs; ++i) {
                mpi::Message m = co_await ctx.comm().recv(0, 6);
                EXPECT_EQ(m.bytes,
                          static_cast<std::uint64_t>(64 + i));
                ++count;
            }
        }
    });
    EXPECT_EQ(count.load(), n_msgs);
}

TEST(Endpoint, ZeroByteMessageStillSynchronizes)
{
    std::atomic<int> got{0};
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 2, 0);
        } else {
            mpi::Message m = co_await ctx.comm().recv(0, 2);
            EXPECT_EQ(m.bytes, 0u);
            ++got;
        }
    });
    EXPECT_EQ(got.load(), 1);
}

TEST(Endpoint, DeadlockIsDetectedAndReported)
{
    // Both ranks wait for a message that is never sent.
    EXPECT_DEATH(
        runLambda(2,
                  [&](AppContext &ctx) -> sim::Process {
                      co_await ctx.comm().recv(
                          static_cast<int>(1 - ctx.rank()), 1);
                  }),
        "deadlock");
}

TEST(Endpoint, RoundtripLatencyMatchesPhysicalModel)
{
    // One 1000-byte ping and pong with conservative sync: the
    // measured roundtrip must equal the deterministic component sum.
    std::vector<Tick> rtt;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            const Tick t0 = ctx.now();
            co_await ctx.comm().send(1, 1, 1000);
            co_await ctx.comm().recv(1, 1);
            rtt.push_back(ctx.now() - t0);
        } else {
            co_await ctx.comm().recv(0, 1);
            co_await ctx.comm().send(0, 1, 1000);
        }
    });
    ASSERT_EQ(rtt.size(), 1u);
    // One direction: sendOverhead 400 + copy(1000/6=167) + txOverhead
    // 100 + serialization(1078B/10=108) + txLatency 500 + rxLatency
    // 500 + recvOverhead 400; the pong adds the same again.
    const Tick one_way = 400 + 167 + 100 + 108 + 500 + 500 + 400;
    EXPECT_NEAR(static_cast<double>(rtt[0]),
                static_cast<double>(2 * one_way), 10.0);
}

TEST(Endpoint, MessageLatencyMatchesRoundtripComponents)
{
    // Message::latency() reports send-to-arrival; for a 1000-byte
    // eager message this is the deterministic one-way component sum
    // minus the receive overhead (charged after completion).
    std::vector<Tick> latencies;
    runLambda(2, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0) {
            co_await ctx.comm().send(1, 1, 1000);
        } else {
            mpi::Message m = co_await ctx.comm().recv(0, 1);
            latencies.push_back(m.latency());
        }
    });
    ASSERT_EQ(latencies.size(), 1u);
    // sendOverhead 400 + copy 167 + txOverhead 100 + serialization
    // 108 + txLatency 500 + rxLatency 500 = 1775.
    EXPECT_NEAR(static_cast<double>(latencies[0]), 1775.0, 10.0);
}

TEST(Endpoint, LatencyInflatesUnderCoarseQuanta)
{
    auto measure = [](const char *policy) {
        std::vector<Tick> latencies;
        runLambda(
            2,
            [&](AppContext &ctx) -> sim::Process {
                if (ctx.rank() == 0) {
                    for (int i = 0; i < 20; ++i) {
                        co_await ctx.comm().send(1, 1, 1000);
                        co_await ctx.comm().recv(1, 2);
                    }
                } else {
                    for (int i = 0; i < 20; ++i) {
                        mpi::Message m =
                            co_await ctx.comm().recv(0, 1);
                        latencies.push_back(m.latency());
                        co_await ctx.comm().send(0, 2, 64);
                    }
                }
            },
            policy);
        Tick total = 0;
        for (Tick l : latencies)
            total += l;
        return static_cast<double>(total) /
               static_cast<double>(latencies.size());
    };
    const double exact = measure("fixed:1us");
    const double coarse = measure("fixed:200us");
    EXPECT_GT(coarse, 2.0 * exact);
}
