/** Tests for the statistics package. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/histogram.hh"
#include "stats/output.hh"
#include "stats/stats.hh"

using namespace aqsim::stats;

TEST(Scalar, AccumulatesAndResets)
{
    Group g("root");
    auto &s = g.add<Scalar>("count", "a counter");
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Average, TracksMeanMinMax)
{
    Group g("root");
    auto &a = g.add<Average>("lat", "latency");
    a.sample(10.0);
    a.sample(20.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 12.0);
    EXPECT_DOUBLE_EQ(a.min(), 6.0);
    EXPECT_DOUBLE_EQ(a.max(), 20.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, EmptyIsZero)
{
    Group g("root");
    auto &a = g.add<Average>("x", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    Group g("root");
    auto &h = g.add<Histogram>("h", "", 0.0, 100.0, 10);
    h.sample(5.0);   // bucket 0
    h.sample(15.0);  // bucket 1
    h.sample(95.0);  // bucket 9
    h.sample(-1.0);  // underflow
    h.sample(100.0); // overflow (hi is exclusive)
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(Histogram, MeanIncludesOutOfRange)
{
    Group g("root");
    auto &h = g.add<Histogram>("h", "", 0.0, 10.0, 2);
    h.sample(2.0);
    h.sample(4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Log2Distribution, PowerOfTwoBuckets)
{
    Group g("root");
    auto &d = g.add<Log2Distribution>("d", "");
    d.sample(0); // bucket 0
    d.sample(1); // bucket 0
    d.sample(2); // bucket 1
    d.sample(3); // bucket 1
    d.sample(4); // bucket 2
    d.sample(1024); // bucket 10
    EXPECT_EQ(d.bucketCount(0), 2u);
    EXPECT_EQ(d.bucketCount(1), 2u);
    EXPECT_EQ(d.bucketCount(2), 1u);
    EXPECT_EQ(d.bucketCount(10), 1u);
    EXPECT_EQ(d.maxValue(), 1024u);
    EXPECT_EQ(d.totalSamples(), 6u);
}

TEST(Group, FindByDottedPath)
{
    Group root("cluster");
    auto &nic = root.addGroup("nic");
    auto &tx = nic.add<Scalar>("txBytes", "bytes");
    tx += 42.0;
    const Stat *found = root.find("nic.txBytes");
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name(), "txBytes");
    EXPECT_EQ(root.find("nic.missing"), nullptr);
    EXPECT_EQ(root.find("missing.txBytes"), nullptr);
}

TEST(Group, ResetAllRecurses)
{
    Group root("cluster");
    auto &a = root.add<Scalar>("a", "");
    auto &child = root.addGroup("child");
    auto &b = child.add<Scalar>("b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0.0);
    EXPECT_DOUBLE_EQ(b.value(), 0.0);
}

TEST(Output, TextDumpContainsPathsValuesAndDescriptions)
{
    Group root("cluster");
    auto &nic = root.addGroup("nic");
    auto &tx = nic.add<Scalar>("txBytes", "bytes transmitted");
    tx += 128.0;
    std::ostringstream out;
    dumpText(root, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("cluster.nic.txBytes"), std::string::npos);
    EXPECT_NE(text.find("128"), std::string::npos);
    EXPECT_NE(text.find("bytes transmitted"), std::string::npos);
}

TEST(Output, CsvDumpHasHeaderAndRows)
{
    Group root("cluster");
    root.add<Scalar>("x", "desc");
    std::ostringstream out;
    dumpCsv(root, out);
    const std::string text = out.str();
    EXPECT_NE(text.find("path,label,value,description"),
              std::string::npos);
    EXPECT_NE(text.find("cluster.x"), std::string::npos);
}
