/**
 * Construction-time validation tests: every nonsensical synchronizer,
 * engine, MPI, or fault configuration must be rejected with a clear
 * fatal error instead of silently misbehaving mid-run.
 */

#include <gtest/gtest.h>

#include "core/quantum_policy.hh"
#include "engine/worker_pool.hh"
#include "fault/fault_injector.hh"
#include "test_util.hh"

using namespace aqsim;
using ::testing::ExitedWithCode;

TEST(PolicyValidation, ZeroTickFixedQuantumIsRejected)
{
    EXPECT_EXIT(core::FixedQuantumPolicy policy(0), ExitedWithCode(1),
                "fixed quantum must be positive");
    EXPECT_EXIT(core::parsePolicy("fixed:0us"), ExitedWithCode(1),
                "fixed quantum must be positive");
}

TEST(PolicyValidation, AdaptiveMinAboveMaxIsRejected)
{
    core::AdaptiveQuantumPolicy::Params params;
    params.minQuantum = microseconds(10);
    params.maxQuantum = microseconds(1);
    EXPECT_EXIT(core::AdaptiveQuantumPolicy policy(params),
                ExitedWithCode(1), "0 < min_Q <= max_Q");
}

TEST(PolicyValidation, AdaptiveZeroMinQuantumIsRejected)
{
    core::AdaptiveQuantumPolicy::Params params;
    params.minQuantum = 0;
    EXPECT_EXIT(core::AdaptiveQuantumPolicy policy(params),
                ExitedWithCode(1), "0 < min_Q <= max_Q");
}

TEST(PolicyValidation, AdaptiveIncreaseFactorAtOrBelowOneIsRejected)
{
    core::AdaptiveQuantumPolicy::Params params;
    params.inc = 1.0;
    EXPECT_EXIT(core::AdaptiveQuantumPolicy policy(params),
                ExitedWithCode(1), "increase factor must be > 1");
}

TEST(PolicyValidation, AdaptiveDecreaseFactorAtOrAboveOneIsRejected)
{
    core::AdaptiveQuantumPolicy::Params params;
    params.dec = 1.0;
    EXPECT_EXIT(core::AdaptiveQuantumPolicy policy(params),
                ExitedWithCode(1), "decrease factor must be in");
}

TEST(PolicyValidation, ThresholdPolicyValidatesItsBaseParams)
{
    core::ThresholdAdaptivePolicy::Params params;
    params.base.minQuantum = microseconds(5);
    params.base.maxQuantum = microseconds(1);
    EXPECT_EXIT(core::ThresholdAdaptivePolicy policy(params),
                ExitedWithCode(1),
                "threshold policy requires 0 < min_Q <= max_Q");
    params = {};
    params.base.dec = 2.0;
    EXPECT_EXIT(core::ThresholdAdaptivePolicy policy(params),
                ExitedWithCode(1),
                "threshold policy decrease factor");
}

TEST(PolicyValidation, SymmetricPolicyNeedsFactorAboveOne)
{
    core::AdaptiveQuantumPolicy::Params params;
    params.inc = 0.9;
    EXPECT_EXIT(core::SymmetricAdaptivePolicy policy(params),
                ExitedWithCode(1), "symmetric policy factor must be > 1");
}

TEST(PolicyValidation, UnknownPolicySpecIsRejected)
{
    EXPECT_EXIT(core::parsePolicy("bogus:1:2"), ExitedWithCode(1),
                "unknown policy kind");
}

TEST(WorkerPoolValidation, ZeroWorkersIsRejected)
{
    EXPECT_EXIT(engine::WorkerPool pool(0, [](std::size_t, Tick) {}),
                ExitedWithCode(1), "at least one worker");
}

namespace
{

/** Build a cluster (endpoint construction validates MPI params). */
void
buildCluster(engine::ClusterParams params)
{
    test::LambdaWorkload workload(
        [](workloads::AppContext &) -> sim::Process { co_return; });
    engine::Cluster cluster(params, workload);
}

} // namespace

TEST(ReliableParamValidation, ZeroRetryTimeoutIsRejected)
{
    auto params = harness::defaultCluster(2);
    params.mpiParams.reliable = true;
    params.mpiParams.retryTimeout = 0;
    EXPECT_EXIT(buildCluster(params), ExitedWithCode(1),
                "retryTimeout > 0");
}

TEST(ReliableParamValidation, ShrinkingBackoffIsRejected)
{
    auto params = harness::defaultCluster(2);
    params.mpiParams.reliable = true;
    params.mpiParams.retryBackoff = 0.5;
    EXPECT_EXIT(buildCluster(params), ExitedWithCode(1),
                "retryBackoff must be >= 1.0");
}

TEST(ReliableParamValidation, ZeroMaxRetriesIsRejected)
{
    auto params = harness::defaultCluster(2);
    params.mpiParams.reliable = true;
    params.mpiParams.maxRetries = 0;
    EXPECT_EXIT(buildCluster(params), ExitedWithCode(1),
                "maxRetries >= 1");
}

namespace
{

void
buildInjector(const fault::FaultParams &params)
{
    stats::Group root("cluster");
    fault::FaultInjector injector(4, params, Rng(1), root);
}

} // namespace

TEST(FaultParamValidation, RatesOutsideUnitIntervalAreRejected)
{
    fault::FaultParams params;
    params.dropRate = 1.5;
    EXPECT_EXIT(buildInjector(params), ExitedWithCode(1),
                "rate must be in \\[0,1\\]");
    params = {};
    params.duplicateRate = -0.1;
    EXPECT_EXIT(buildInjector(params), ExitedWithCode(1),
                "rate must be in \\[0,1\\]");
}

TEST(FaultParamValidation, JitterRateNeedsAPositiveMaxJitter)
{
    fault::FaultParams params;
    params.jitterRate = 0.5;
    params.maxJitterTicks = 0;
    EXPECT_EXIT(buildInjector(params), ExitedWithCode(1),
                "needs a positive max jitter");
}

TEST(FaultParamValidation, SelfLinkAndUnknownNodesAreRejected)
{
    fault::FaultParams params;
    params.linkDown.push_back({1, 1, 0, 100});
    EXPECT_EXIT(buildInjector(params), ExitedWithCode(1),
                "invalid link");
    params = {};
    params.linkDown.push_back({0, 9, 0, 100});
    EXPECT_EXIT(buildInjector(params), ExitedWithCode(1),
                "invalid link");
    params = {};
    params.nodeCrash.push_back({9, 0, 100});
    EXPECT_EXIT(buildInjector(params), ExitedWithCode(1),
                "invalid node");
}

TEST(FaultParamValidation, EmptyWindowsAreRejected)
{
    fault::FaultParams params;
    params.linkDown.push_back({0, 1, 500, 500});
    EXPECT_EXIT(buildInjector(params), ExitedWithCode(1),
                "is empty");
    params = {};
    params.nodePause.push_back({0, 700, 600});
    EXPECT_EXIT(buildInjector(params), ExitedWithCode(1),
                "is empty");
}
