/** Tests for packet tracing, derived time series and ASCII plots. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hh"
#include "trace/ascii_plot.hh"
#include "trace/packet_trace.hh"
#include "trace/timeline.hh"

using namespace aqsim;
using namespace aqsim::trace;

namespace
{

harness::ExperimentOutput
tracedRun(const std::string &workload, std::size_t nodes)
{
    harness::ExperimentConfig config;
    config.workload = workload;
    config.numNodes = nodes;
    config.scale = 0.05;
    config.policySpec = "fixed:1us";
    config.recordTrace = true;
    config.recordTimeline = true;
    return harness::runExperiment(config);
}

} // namespace

TEST(PacketTrace, CapturesEveryRoutedPacket)
{
    auto out = tracedRun("pingpong", 2);
    EXPECT_EQ(out.trace.size(), out.result.packets);
    for (const auto &rec : out.trace.records()) {
        EXPECT_LT(rec.src, 2u);
        EXPECT_LT(rec.dst, 2u);
        EXPECT_NE(rec.src, rec.dst);
        EXPECT_GT(rec.bytes, 0u);
    }
}

TEST(PacketTrace, TimesAreMonotoneNondecreasingPerPair)
{
    auto out = tracedRun("pingpong", 2);
    Tick last = 0;
    for (const auto &rec : out.trace.records()) {
        if (rec.src == 0) {
            EXPECT_GE(rec.time, last);
            last = rec.time;
        }
    }
}

TEST(PacketTrace, CsvDumpHasHeaderAndRows)
{
    auto out = tracedRun("pingpong", 2);
    std::ostringstream csv;
    out.trace.dumpCsv(csv);
    const std::string text = csv.str();
    EXPECT_NE(text.find("time,src,dst,bytes"), std::string::npos);
    // Header + one line per packet.
    std::size_t lines = 0;
    for (char c : text)
        if (c == '\n')
            ++lines;
    EXPECT_EQ(lines, out.trace.size() + 1);
}

TEST(PacketTrace, DensityBinsSumToTotal)
{
    auto out = tracedRun("nas.cg", 4);
    auto bins = out.trace.density(microseconds(100));
    std::uint64_t total = 0;
    for (auto b : bins)
        total += b;
    EXPECT_EQ(total, out.trace.size());
}

TEST(PacketTrace, EndTimeIsMaxRecord)
{
    auto out = tracedRun("pingpong", 2);
    Tick max_t = 0;
    for (const auto &r : out.trace.records())
        max_t = std::max(max_t, r.time);
    EXPECT_EQ(out.trace.endTime(), max_t);
}

TEST(AsciiPlot, TrafficMapHasOneRowPerNode)
{
    auto out = tracedRun("nas.cg", 4);
    const std::string map =
        renderTrafficMap(out.trace.records(), 4, 60);
    std::size_t lines = 0;
    for (char c : map)
        if (c == '\n')
            ++lines;
    // 4 node rows + 2 footer lines.
    EXPECT_EQ(lines, 6u);
    EXPECT_NE(map.find("time: 0 .."), std::string::npos);
}

TEST(AsciiPlot, EmptyTrafficHandled)
{
    EXPECT_EQ(renderTrafficMap({}, 4, 60), "(no traffic)\n");
}

TEST(AsciiPlot, LogSeriesRendersPoints)
{
    std::vector<double> xs{0, 1, 2, 3, 4};
    std::vector<double> ys{1, 10, 100, 10, 1};
    const std::string chart = renderLogSeries(xs, ys, 40, 10, "speedup");
    EXPECT_NE(chart.find('*'), std::string::npos);
    EXPECT_NE(chart.find("log scale"), std::string::npos);
}

TEST(AsciiPlot, FlatSeriesDoesNotDivideByZero)
{
    std::vector<double> xs{0, 1, 2};
    std::vector<double> ys{5, 5, 5};
    const std::string chart = renderLogSeries(xs, ys, 20, 5, "y");
    EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(Timeline, SpeedupSeriesReflectsReferenceRate)
{
    // Build a synthetic timeline: constant 10 host-ns per tick.
    std::vector<core::QuantumRecord> timeline;
    Tick start = 0;
    for (int i = 0; i < 100; ++i) {
        core::QuantumRecord rec;
        rec.start = start;
        rec.length = microseconds(10);
        rec.hostNs = 10.0 * static_cast<double>(rec.length);
        timeline.push_back(rec);
        start += rec.length;
    }
    // Reference rate 100 ns/tick: speedup must be 10 everywhere.
    auto series =
        speedupOverTime(timeline, 100.0, microseconds(100));
    ASSERT_FALSE(series.empty());
    for (const auto &pt : series)
        EXPECT_NEAR(pt.value, 10.0, 1e-9);
}

TEST(Timeline, WindowsTileSimTime)
{
    std::vector<core::QuantumRecord> timeline;
    Tick start = 0;
    for (int i = 0; i < 10; ++i) {
        core::QuantumRecord rec;
        rec.start = start;
        rec.length = microseconds(3);
        rec.hostNs = 1.0;
        rec.packets = static_cast<std::uint64_t>(i);
        timeline.push_back(rec);
        start += rec.length;
    }
    auto traffic = trafficOverTime(timeline, microseconds(6));
    // 10 quanta of 3us into 6us windows -> 5 windows.
    EXPECT_EQ(traffic.size(), 5u);
    double total = 0;
    for (const auto &pt : traffic)
        total += pt.value;
    EXPECT_DOUBLE_EQ(total, 45.0); // sum 0..9
}

TEST(Timeline, QuantumSeriesTracksPolicy)
{
    std::vector<core::QuantumRecord> timeline;
    Tick start = 0;
    for (int i = 0; i < 4; ++i) {
        core::QuantumRecord rec;
        rec.start = start;
        rec.length = microseconds(static_cast<std::uint64_t>(1 + i));
        rec.hostNs = 1.0;
        timeline.push_back(rec);
        start += rec.length;
    }
    auto series = quantumOverTime(timeline, microseconds(100));
    ASSERT_EQ(series.size(), 1u);
    EXPECT_DOUBLE_EQ(series[0].value, (1000 + 2000 + 3000 + 4000) / 4.0);
}

TEST(Timeline, RealRunSpeedupSeriesIsPositive)
{
    auto gt = tracedRun("nas.cg", 4);
    const double ref_rate =
        gt.result.hostNs / static_cast<double>(gt.result.simTicks);

    harness::ExperimentConfig config;
    config.workload = "nas.cg";
    config.numNodes = 4;
    config.scale = 0.05;
    config.policySpec = "fixed:100us";
    config.recordTimeline = true;
    auto fast = harness::runExperiment(config);

    auto series = speedupOverTime(fast.result.timeline, ref_rate,
                                  milliseconds(1));
    ASSERT_FALSE(series.empty());
    for (const auto &pt : series)
        EXPECT_GT(pt.value, 1.0);
}
