/**
 * Tests for reliable delivery on a lossy network: retransmission until
 * the receiver's Rack, duplicate suppression, corrupted-frame drops,
 * retry-budget exhaustion, and full workloads completing under loss.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::runLambdaCluster;

namespace
{

/** Two-node cluster params with the given fault mix, reliable mode. */
engine::ClusterParams
lossyPair(std::uint64_t seed, double drop, double duplicate = 0.0,
          double corrupt = 0.0)
{
    auto params = harness::defaultCluster(2, seed);
    params.faults.dropRate = drop;
    params.faults.duplicateRate = duplicate;
    params.faults.corruptRate = corrupt;
    params.mpiParams.reliable = true;
    params.mpiParams.retryTimeout = microseconds(20);
    return params;
}

} // namespace

TEST(Reliable, EagerMessagesSurviveHeavyLoss)
{
    std::atomic<int> received{0};
    const auto result = runLambdaCluster(
        lossyPair(7, 0.25), [&](AppContext &ctx) -> sim::Process {
            const int kMsgs = 20;
            if (ctx.rank() == 0) {
                for (int i = 0; i < kMsgs; ++i)
                    co_await ctx.comm().send(1, 1, 512);
            } else {
                for (int i = 0; i < kMsgs; ++i) {
                    mpi::Message m = co_await ctx.comm().recv(0, 1);
                    EXPECT_EQ(m.bytes, 512u);
                    ++received;
                }
            }
        });
    EXPECT_EQ(received.load(), 20);
    EXPECT_GT(result.droppedFrames, 0u);
    EXPECT_GT(result.retransmits, 0u);
}

TEST(Reliable, RendezvousTransferSurvivesLoss)
{
    // 256 KiB is far above the eager threshold: RTS/CTS handshake,
    // ~30 data fragments, window acks — every frame class must be
    // recoverable for the transfer to complete.
    std::atomic<std::uint64_t> got_bytes{0};
    const auto result = runLambdaCluster(
        lossyPair(13, 0.08), [&](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0) {
                co_await ctx.comm().send(1, 2, 256 * 1024);
            } else {
                mpi::Message m = co_await ctx.comm().recv(0, 2);
                got_bytes = m.bytes;
            }
        });
    EXPECT_EQ(got_bytes.load(), 256u * 1024u);
    EXPECT_GT(result.droppedFrames, 0u);
}

TEST(Reliable, DuplicatedFramesAreDeliveredExactlyOnce)
{
    std::atomic<int> received{0};
    std::atomic<std::uint64_t> endpoint_received{0};
    runLambdaCluster(
        lossyPair(21, 0.0, /*duplicate=*/0.9),
        [&](AppContext &ctx) -> sim::Process {
            const int kMsgs = 10;
            if (ctx.rank() == 0) {
                for (int i = 0; i < kMsgs; ++i)
                    co_await ctx.comm().send(1, 3, 256);
            } else {
                for (int i = 0; i < kMsgs; ++i) {
                    co_await ctx.comm().recv(0, 3);
                    ++received;
                }
                endpoint_received = ctx.comm().messagesReceived();
            }
        });
    EXPECT_EQ(received.load(), 10);
    // The endpoint saw every frame twice but completed each message
    // exactly once.
    EXPECT_EQ(endpoint_received.load(), 10u);
}

TEST(Reliable, CorruptedFramesAreDroppedAndRetransmitted)
{
    std::atomic<int> received{0};
    std::atomic<std::uint64_t> corrupt_dropped{0};
    const auto result = runLambdaCluster(
        lossyPair(31, 0.0, 0.0, /*corrupt=*/0.3),
        [&](AppContext &ctx) -> sim::Process {
            const int kMsgs = 10;
            if (ctx.rank() == 0) {
                for (int i = 0; i < kMsgs; ++i)
                    co_await ctx.comm().send(1, 4, 512);
            } else {
                for (int i = 0; i < kMsgs; ++i) {
                    co_await ctx.comm().recv(0, 4);
                    ++received;
                }
                corrupt_dropped = ctx.comm().corruptDropped();
            }
        });
    EXPECT_EQ(received.load(), 10);
    EXPECT_GT(corrupt_dropped.load(), 0u);
    EXPECT_GT(result.retransmits, 0u);
}

namespace
{

engine::RunResult
runWorkloadUnderLoss(const std::string &name, double drop,
                     std::uint64_t seed)
{
    auto params = harness::defaultCluster(8, seed);
    params.faults.dropRate = drop;
    params.mpiParams.reliable = true;
    params.mpiParams.retryTimeout = microseconds(20);
    auto workload = workloads::makeWorkload(name, 8, 0.25);
    auto policy = core::parsePolicy("fixed:1us");
    engine::SequentialEngine engine;
    return engine.run(params, *workload, *policy);
}

} // namespace

TEST(Reliable, NasEpCompletesCorrectlyAtFivePercentLoss)
{
    const auto lossless = runWorkloadUnderLoss("nas.ep", 0.0, 17);
    const auto lossy = runWorkloadUnderLoss("nas.ep", 0.05, 17);
    ASSERT_EQ(lossy.finishTicks.size(), 8u);
    for (Tick t : lossy.finishTicks)
        EXPECT_GT(t, 0u);
    EXPECT_GT(lossy.droppedFrames, 0u);
    EXPECT_GT(lossy.metric, 0.0);
    // EP does the same arithmetic either way; retransmission delays
    // only stretch the (small) communication phase, so the reported
    // rate stays close to the lossless run.
    EXPECT_NEAR(lossy.metric, lossless.metric,
                0.25 * lossless.metric);
    EXPECT_GE(lossy.simTicks, lossless.simTicks);
}

TEST(Reliable, NasCgSurvivesLossOnConcurrentRendezvousStreams)
{
    // Regression: CG overlaps several multi-window rendezvous
    // transfers per rank. A retransmitted window used to generate a
    // second Ack for the same boundary (hole-fill plus the trailing
    // duplicate of the window's final fragment); the stale Ack
    // released the sender's *next* window early, the stream ran
    // ahead of the retry state, and the stranded middle-window holes
    // burned the whole retry budget ("gave up after 20 retries").
    // Acks now carry cumulative progress, so this must complete.
    const auto lossless = runWorkloadUnderLoss("nas.cg", 0.0, 1);
    const auto lossy = runWorkloadUnderLoss("nas.cg", 0.05, 1);
    ASSERT_EQ(lossy.finishTicks.size(), 8u);
    for (Tick t : lossy.finishTicks)
        EXPECT_GT(t, 0u);
    EXPECT_GT(lossy.droppedFrames, 0u);
    EXPECT_GT(lossy.retransmits, 0u);
    EXPECT_GT(lossy.metric, 0.0);
    EXPECT_GE(lossy.simTicks, lossless.simTicks);
}

TEST(Reliable, NamdCompletesAtFivePercentLoss)
{
    const auto lossless = runWorkloadUnderLoss("namd", 0.0, 19);
    const auto lossy = runWorkloadUnderLoss("namd", 0.05, 19);
    ASSERT_EQ(lossy.finishTicks.size(), 8u);
    for (Tick t : lossy.finishTicks)
        EXPECT_GT(t, 0u);
    EXPECT_GT(lossy.droppedFrames, 0u);
    EXPECT_GT(lossy.retransmits, 0u);
    EXPECT_GT(lossy.metric, 0.0);
    // Loss costs time; it must never make the simulated run faster.
    EXPECT_GE(lossy.simTicks, lossless.simTicks);
}

TEST(ReliableDeath, GivesUpAfterTheRetryBudgetIsExhausted)
{
    // A 100%-loss link can never be acknowledged: after maxRetries
    // the sender must declare the run failed (exit, not hang).
    auto params = lossyPair(3, 1.0);
    params.mpiParams.retryTimeout = microseconds(5);
    params.mpiParams.maxRetries = 3;
    EXPECT_EXIT(
        runLambdaCluster(params,
                         [](AppContext &ctx) -> sim::Process {
                             if (ctx.rank() == 0)
                                 co_await ctx.comm().send(1, 1, 256);
                             else
                                 co_await ctx.comm().recv(0, 1);
                         }),
        ::testing::ExitedWithCode(1), "gave up");
}

TEST(UnreliableDeath, LossWithoutReliabilityDeadlocksTheCluster)
{
    // Sanity check of the failure mode reliable mode exists to fix:
    // with the protocol off, a dropped eager frame is simply gone and
    // the receiver waits forever — the engine reports a deadlock.
    auto params = harness::defaultCluster(2, 23);
    params.faults.dropRate = 1.0;
    params.mpiParams.reliable = false;
    EXPECT_DEATH(
        runLambdaCluster(params,
                         [](AppContext &ctx) -> sim::Process {
                             if (ctx.rank() == 0)
                                 co_await ctx.comm().send(1, 1, 128);
                             else
                                 co_await ctx.comm().recv(0, 1);
                         }),
        "deadlock");
}
