/** Tests for the experiment harness, Pareto logic and reporting. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hh"
#include "harness/pareto.hh"
#include "net/topology.hh"
#include "workloads/workload.hh"
#include "engine/sequential_engine.hh"
#include "harness/report.hh"

using namespace aqsim;
using namespace aqsim::harness;

TEST(HarnessConfig, PaperNetworkMatchesSection4)
{
    auto net = paperNetwork();
    EXPECT_EQ(net.nic.mtu, 9000u);                  // jumbo frames
    EXPECT_DOUBLE_EQ(net.nic.bytesPerNs, 10.0);     // 10 GB/s
    EXPECT_EQ(net.nic.txLatency + net.nic.rxLatency,
              microseconds(1)); // 1 us minimum latency
    EXPECT_EQ(net.switchModel, nullptr); // perfect switch
}

TEST(HarnessConfig, PaperConfigListMatchesFigures)
{
    auto configs = paperConfigs();
    ASSERT_EQ(configs.size(), 5u);
    EXPECT_EQ(configs[0].label, "10");
    EXPECT_EQ(configs[1].label, "100");
    EXPECT_EQ(configs[2].label, "1k");
    EXPECT_EQ(configs[3].label, "dyn 1k 1.03:0.02");
    EXPECT_EQ(configs[4].label, "dyn 1k 1.05:0.02");
}

TEST(Harness, GroundTruthIsCached)
{
    Harness harness(0.05);
    const auto &a = harness.groundTruth("pingpong", 2);
    const auto &b = harness.groundTruth("pingpong", 2);
    EXPECT_EQ(&a, &b); // same object, not re-run
    EXPECT_EQ(a.policy, "fixed 1us");
}

TEST(Harness, ErrorOfGroundTruthAgainstItselfIsZero)
{
    Harness harness(0.05);
    auto gt = harness.run("pingpong", 2, groundTruthSpec);
    EXPECT_DOUBLE_EQ(harness.error(gt), 0.0);
    EXPECT_DOUBLE_EQ(harness.speedup(gt), 1.0);
}

TEST(Harness, CoarseQuantumIsFasterAndLessAccurate)
{
    Harness harness(0.05);
    auto coarse = harness.run("nas.is", 4, "fixed:100us");
    EXPECT_GT(harness.speedup(coarse), 2.0);
    EXPECT_GT(harness.error(coarse), 0.0);
}

TEST(Harness, HarmonicMeanMatchesDefinition)
{
    EXPECT_DOUBLE_EQ(harmonicMean({2.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 3.0}), 1.5);
    EXPECT_DOUBLE_EQ(harmonicMean({4.0}), 4.0);
    // Harmonic mean is dominated by the smallest element — exactly
    // why a single catastrophic IS run wrecks the NAS aggregate.
    EXPECT_LT(harmonicMean({0.1, 100.0, 100.0}),  0.4);
}

TEST(RunResultHelpers, AccuracyErrorIsRelative)
{
    engine::RunResult gt;
    gt.metric = 200.0;
    gt.hostNs = 1000.0;
    gt.simTicks = 100;
    engine::RunResult run = gt;
    run.metric = 150.0;
    run.hostNs = 100.0;
    run.simTicks = 140;
    EXPECT_DOUBLE_EQ(engine::accuracyError(run, gt), 0.25);
    EXPECT_DOUBLE_EQ(engine::speedup(run, gt), 10.0);
    EXPECT_DOUBLE_EQ(engine::simTimeRatio(run, gt), 1.4);
}

TEST(Pareto, ExtractsNonDominatedPoints)
{
    std::vector<TradeoffPoint> points{
        {"a", 0.01, 5.0},  // optimal (lowest error)
        {"b", 0.05, 20.0}, // optimal
        {"c", 0.10, 10.0}, // dominated by b
        {"d", 0.80, 60.0}, // optimal (fastest)
        {"e", 0.90, 60.0}, // dominated by d
    };
    auto front = paretoFront(points);
    ASSERT_EQ(front.size(), 3u);
    EXPECT_EQ(points[front[0]].label, "a");
    EXPECT_EQ(points[front[1]].label, "b");
    EXPECT_EQ(points[front[2]].label, "d");
    EXPECT_TRUE(isParetoOptimal(points, 0));
    EXPECT_FALSE(isParetoOptimal(points, 2));
    EXPECT_FALSE(isParetoOptimal(points, 4));
}

TEST(Pareto, EqualPointsDominateEachOtherSymmetrically)
{
    std::vector<TradeoffPoint> points{
        {"a", 0.1, 10.0},
        {"b", 0.1, 10.0},
    };
    // Identical points: neither strictly better, both optimal.
    EXPECT_TRUE(isParetoOptimal(points, 0));
    EXPECT_TRUE(isParetoOptimal(points, 1));
}

TEST(Pareto, SinglePointIsOptimal)
{
    std::vector<TradeoffPoint> points{{"only", 0.5, 2.0}};
    EXPECT_EQ(paretoFront(points).size(), 1u);
}

TEST(Report, TableAlignsColumns)
{
    Table t({"config", "speedup"});
    t.addRow({"10", "9.1x"});
    t.addRow({"dyn 1k 1.03:0.02", "26.0x"});
    std::ostringstream out;
    t.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("config"), std::string::npos);
    EXPECT_NE(text.find("dyn 1k 1.03:0.02"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Report, TableCsvEscapes)
{
    Table t({"a", "b"});
    t.addRow({"x,y", "2"});
    std::ostringstream out;
    t.printCsv(out);
    EXPECT_EQ(out.str(), "a,b\n\"x,y\",2\n");
}

TEST(Report, Formatters)
{
    EXPECT_EQ(fmtPercent(0.034), "3.40%");
    EXPECT_EQ(fmtPercent(0.85), "85.0%");
    EXPECT_EQ(fmtPercent(10.4), "1040%");
    EXPECT_EQ(fmtSpeedup(26.04), "26.0x");
    EXPECT_EQ(fmtRatio(150.2), "150x");
    EXPECT_EQ(fmtRatio(1.57), "1.57x");
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
}

TEST(Harness, SeedChangesResultsScaleChangesDuration)
{
    Harness a(0.05, 1);
    Harness b(0.05, 2);
    auto ra = a.run("nas.cg", 2, "fixed:10us");
    auto rb = b.run("nas.cg", 2, "fixed:10us");
    EXPECT_NE(ra.hostNs, rb.hostNs);
}

TEST(SafeQuantum, MatchesControllerMinimumLatency)
{
    auto network = paperNetwork();
    const Tick t = safeQuantum(network, 8);
    EXPECT_GE(t, microseconds(1));
    EXPECT_LE(t, microseconds(1) + 10);
}

TEST(SafeQuantum, GrowsWithTopologyLatency)
{
    auto network = paperNetwork();
    net::TopologyParams topo;
    topo.kind = net::TopologyKind::Ring;
    topo.hopLatency = microseconds(5);
    network.switchModel =
        std::make_shared<net::TopologySwitch>(8, topo);
    const Tick t = safeQuantum(network, 8);
    // 5us one-hop traversal on top of the NIC latencies.
    EXPECT_GE(t, microseconds(6));
}

TEST(SafeQuantum, SafeFixedPolicyIsStragglerFreeOnSlowNetworks)
{
    auto params = defaultCluster(4, 1);
    net::TopologyParams topo;
    topo.kind = net::TopologyKind::Torus2D;
    topo.hopLatency = microseconds(10);
    params.network.switchModel =
        std::make_shared<net::TopologySwitch>(4, topo);
    const Tick t = safeQuantum(params.network, 4);
    EXPECT_GT(t, microseconds(10));

    auto workload = workloads::makeWorkload("burst", 4, 0.1);
    core::FixedQuantumPolicy policy(t);
    engine::SequentialEngine engine;
    auto result = engine.run(params, *workload, policy);
    EXPECT_EQ(result.stragglers, 0u);
    // And the coarser safe quantum needs fewer barriers than 1us.
    auto workload2 = workloads::makeWorkload("burst", 4, 0.1);
    core::FixedQuantumPolicy fine(microseconds(1));
    engine::SequentialEngine engine2;
    auto gt = engine2.run(params, *workload2, fine);
    EXPECT_LT(result.quanta, gt.quanta);
    EXPECT_LT(result.hostNs, gt.hostNs);
}
