/**
 * Transport-layer tests: frame encode/decode self-checking (CRC,
 * length, type validation), loopback channel semantics (ordering,
 * drain-after-close), socket channel failure mapping (deadline-bounded
 * recv, EOF on close, torn writes, half-open TCP), the heartbeat
 * beacon, and the peer-drill spec parser.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include <unistd.h>

#include "ckpt/ckpt_io.hh"
#include "fault/peer_drill.hh"
#include "transport/channel.hh"
#include "transport/frame.hh"
#include "transport/heartbeat.hh"
#include "transport/socket.hh"

using namespace aqsim;
using namespace aqsim::transport;

namespace
{

Frame
makeFrame(FrameType type, std::uint64_t value)
{
    Frame frame;
    frame.type = type;
    ckpt::Writer w;
    w.u64(value);
    frame.body = w.buffer();
    return frame;
}

/** Decode an encoded wire buffer back through decodeFrame. */
RecvStatus
redecode(std::vector<std::uint8_t> wire, Frame &out)
{
    EXPECT_GE(wire.size(), frameHeaderBytes);
    std::uint32_t header[3];
    std::memcpy(header, wire.data(), frameHeaderBytes);
    std::vector<std::uint8_t> body(wire.begin() + frameHeaderBytes,
                                   wire.end());
    return decodeFrame(header[0], header[1], header[2],
                       std::move(body), out);
}

} // namespace

TEST(Frame, EncodeDecodeRoundTrip)
{
    const Frame frame = makeFrame(FrameType::Exchange, 0xdeadbeef);
    Frame out;
    ASSERT_EQ(redecode(encodeFrame(frame), out), RecvStatus::Ok);
    EXPECT_EQ(out.type, FrameType::Exchange);
    EXPECT_EQ(out.body, frame.body);
}

TEST(Frame, EmptyBodyRoundTrips)
{
    Frame stop;
    stop.type = FrameType::Stop;
    Frame out;
    ASSERT_EQ(redecode(encodeFrame(stop), out), RecvStatus::Ok);
    EXPECT_EQ(out.type, FrameType::Stop);
    EXPECT_TRUE(out.body.empty());
}

TEST(Frame, BitFlipInBodyIsCorrupt)
{
    auto wire = encodeFrame(makeFrame(FrameType::Ack, 7));
    wire[frameHeaderBytes] ^= 0x01;
    Frame out;
    EXPECT_EQ(redecode(std::move(wire), out), RecvStatus::Corrupt);
}

TEST(Frame, UnknownTypeIsCorrupt)
{
    auto wire = encodeFrame(makeFrame(FrameType::Ack, 7));
    const std::uint32_t bogus = 999;
    std::memcpy(wire.data() + 4, &bogus, 4);
    Frame out;
    EXPECT_EQ(redecode(std::move(wire), out), RecvStatus::Corrupt);
}

TEST(Frame, OversizeLengthIsCorrupt)
{
    Frame out;
    EXPECT_EQ(decodeFrame(maxFrameBody + 1,
                          static_cast<std::uint32_t>(FrameType::Ack),
                          0, {}, out),
              RecvStatus::Corrupt);
}

TEST(Frame, TypeNamesAreStable)
{
    EXPECT_STREQ(frameTypeName(FrameType::Exchange), "exchange");
    EXPECT_STREQ(frameTypeName(FrameType::Heartbeat), "heartbeat");
    EXPECT_STREQ(recvStatusName(RecvStatus::Timeout), "timeout");
}

TEST(LoopbackChannel, OrderedDelivery)
{
    auto [a, b] = loopbackChannelPair();
    for (std::uint64_t i = 0; i < 10; ++i)
        ASSERT_TRUE(a->send(makeFrame(FrameType::Quantum, i)));
    for (std::uint64_t i = 0; i < 10; ++i) {
        Frame f;
        ASSERT_EQ(b->recv(f, 1.0), RecvStatus::Ok);
        ckpt::Reader r(f.body, "test");
        EXPECT_EQ(r.u64(), i);
    }
}

TEST(LoopbackChannel, RecvTimesOutWhenEmpty)
{
    auto [a, b] = loopbackChannelPair();
    Frame f;
    EXPECT_EQ(b->recv(f, 0.05), RecvStatus::Timeout);
}

TEST(LoopbackChannel, QueuedFramesDrainAfterClose)
{
    // A worker that sent its Exchange and then exited cleanly must
    // still have that frame readable: close is not data loss.
    auto [a, b] = loopbackChannelPair();
    ASSERT_TRUE(a->send(makeFrame(FrameType::Exchange, 42)));
    a->close();
    Frame f;
    ASSERT_EQ(b->recv(f, 1.0), RecvStatus::Ok);
    EXPECT_EQ(f.type, FrameType::Exchange);
    EXPECT_EQ(b->recv(f, 0.05), RecvStatus::Closed);
    EXPECT_FALSE(a->send(makeFrame(FrameType::Ack, 0)));
}

TEST(SocketChannel, RoundTripOverSocketpair)
{
    auto [a, b] = socketChannelPair();
    ASSERT_TRUE(a->send(makeFrame(FrameType::Deliver, 99)));
    Frame f;
    ASSERT_EQ(b->recv(f, 2.0), RecvStatus::Ok);
    EXPECT_EQ(f.type, FrameType::Deliver);
    ckpt::Reader r(f.body, "test");
    EXPECT_EQ(r.u64(), 99u);
}

TEST(SocketChannel, RecvIsDeadlineBounded)
{
    auto [a, b] = socketChannelPair();
    const auto start = std::chrono::steady_clock::now();
    Frame f;
    EXPECT_EQ(b->recv(f, 0.1), RecvStatus::Timeout);
    const double waited =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GE(waited, 0.09);
    EXPECT_LT(waited, 5.0);
}

TEST(SocketChannel, PeerDestructionReadsClosed)
{
    auto [a, b] = socketChannelPair();
    a.reset(); // peer process died: kernel closes its fds
    Frame f;
    EXPECT_EQ(b->recv(f, 1.0), RecvStatus::Closed);
}

TEST(SocketChannel, SendIntoClosedPipeFailsWithoutSignal)
{
    auto [a, b] = socketChannelPair();
    b.reset();
    // Depending on buffering the first send may be absorbed by the
    // kernel; a bounded number of sends must observe the dead pipe
    // (and none may raise SIGPIPE, which would kill the test).
    bool failed = false;
    for (int i = 0; i < 64 && !failed; ++i)
        failed = !a->send(makeFrame(FrameType::Quantum, 1));
    EXPECT_TRUE(failed);
}

TEST(SocketChannel, TornFrameIsTimeoutNotHang)
{
    // A peer that wedges mid-frame must not stall the reader past its
    // deadline: write only half a header, then nothing.
    auto [a, b] = socketChannelPair();
    const auto wire = encodeFrame(makeFrame(FrameType::Ack, 5));
    ASSERT_EQ(::write(a->fd(), wire.data(), 6), 6);
    Frame f;
    EXPECT_EQ(b->recv(f, 0.2), RecvStatus::Timeout);
}

TEST(SocketChannel, CorruptBytesOnWireAreCorrupt)
{
    auto [a, b] = socketChannelPair();
    auto wire = encodeFrame(makeFrame(FrameType::Ack, 5));
    wire.back() ^= 0xff;
    ASSERT_EQ(::write(a->fd(), wire.data(),
                      static_cast<ssize_t>(wire.size())),
              static_cast<ssize_t>(wire.size()));
    Frame f;
    EXPECT_EQ(b->recv(f, 2.0), RecvStatus::Corrupt);
}

TEST(SocketChannel, HalfOpenTcpPeerIsDetected)
{
    // The classic half-open: the far side connects, then vanishes
    // without a protocol goodbye. The near side must observe Closed
    // (EOF), never block forever.
    std::uint16_t port = 0;
    const int listen_fd = tcpListen(0, port);
    ASSERT_GE(listen_fd, 0);
    const int client_fd = tcpConnect(port);
    ASSERT_GE(client_fd, 0);
    const int server_fd = tcpAccept(listen_fd, 5.0);
    ASSERT_GE(server_fd, 0);
    ::close(listen_fd);

    SocketChannel server(server_fd);
    {
        SocketChannel client(client_fd);
        // Destructor closes without sending Stop/Abort.
    }
    Frame f;
    EXPECT_EQ(server.recv(f, 2.0), RecvStatus::Closed);
}

TEST(SocketChannel, TcpAcceptTimesOut)
{
    std::uint16_t port = 0;
    const int listen_fd = tcpListen(0, port);
    ASSERT_GE(listen_fd, 0);
    EXPECT_EQ(tcpAccept(listen_fd, 0.1), -1);
    ::close(listen_fd);
}

TEST(Heartbeat, BeaconsArriveAndCarrySequence)
{
    auto [a, b] = socketChannelPair();
    HeartbeatSender beacon(*b, 0.01);
    std::uint64_t last_seq = 0;
    for (int i = 0; i < 3; ++i) {
        Frame f;
        ASSERT_EQ(a->recv(f, 2.0), RecvStatus::Ok);
        ASSERT_EQ(f.type, FrameType::Heartbeat);
        ckpt::Reader r(f.body, "test");
        const std::uint64_t seq = r.u64();
        EXPECT_GE(seq, last_seq);
        last_seq = seq;
    }
    beacon.stop();
}

TEST(Heartbeat, StopsCleanlyOnDeadPipe)
{
    auto [a, b] = socketChannelPair();
    HeartbeatSender beacon(*b, 0.005);
    a.reset();
    // The beacon must notice the dead pipe on its own and stop
    // without wedging the destructor.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

TEST(PeerDrill, ParsesFullSpec)
{
    const auto drills = fault::parsePeerDrills(
        "kill:peer=1,quantum=3,phase=exchange;"
        "stop:peer=0,quantum=7,phase=ack;exit:peer=2,phase=hello");
    ASSERT_EQ(drills.size(), 3u);
    EXPECT_EQ(drills[0].op, fault::PeerDrillOp::Kill);
    EXPECT_EQ(drills[0].peer, 1u);
    EXPECT_EQ(drills[0].quantum, 3u);
    EXPECT_EQ(drills[0].phase, fault::PeerDrillPhase::Exchange);
    EXPECT_EQ(drills[1].op, fault::PeerDrillOp::Stop);
    EXPECT_EQ(drills[1].phase, fault::PeerDrillPhase::Ack);
    EXPECT_EQ(drills[2].op, fault::PeerDrillOp::Exit);
    EXPECT_EQ(drills[2].phase, fault::PeerDrillPhase::Hello);
}

TEST(PeerDrill, DefaultsAndEmpty)
{
    EXPECT_TRUE(fault::parsePeerDrills("").empty());
    const auto drills = fault::parsePeerDrills("kill:peer=0");
    ASSERT_EQ(drills.size(), 1u);
    EXPECT_EQ(drills[0].quantum, 1u);
    EXPECT_EQ(drills[0].phase, fault::PeerDrillPhase::Exchange);
}

TEST(PeerDrillDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH(fault::parsePeerDrills("melt:peer=0"), "unknown op");
    EXPECT_DEATH(fault::parsePeerDrills("kill:quantum=1"),
                 "peer= is required");
    EXPECT_DEATH(fault::parsePeerDrills("kill:peer=0,quantum=0"),
                 "1-based");
    EXPECT_DEATH(fault::parsePeerDrills("kill:peer=0,phase=nope"),
                 "unknown phase");
}
