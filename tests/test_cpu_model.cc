/** Tests for the CPU timing models. */

#include <gtest/gtest.h>

#include "base/random.hh"
#include "node/cpu_model.hh"

using namespace aqsim;
using namespace aqsim::node;

TEST(SimpleCpu, LatencyScalesWithOps)
{
    SimpleCpuModel cpu(CpuParams{2.6});
    EXPECT_EQ(cpu.computeLatency(2.6), 1u);
    EXPECT_EQ(cpu.computeLatency(26000.0), 10000u);
    EXPECT_EQ(cpu.computeLatency(0.0), 0u);
}

TEST(SimpleCpu, DetailFactorIsOne)
{
    SimpleCpuModel cpu(CpuParams{1.0});
    EXPECT_DOUBLE_EQ(cpu.hostDetailFactor(), 1.0);
}

TEST(CpuModel, BusyTracksNestedComputeBursts)
{
    SimpleCpuModel cpu(CpuParams{1.0});
    EXPECT_FALSE(cpu.busy());
    cpu.beginCompute();
    EXPECT_TRUE(cpu.busy());
    cpu.beginCompute();
    cpu.endCompute();
    EXPECT_TRUE(cpu.busy());
    cpu.endCompute();
    EXPECT_FALSE(cpu.busy());
}

TEST(CpuModelDeath, EndWithoutBeginPanics)
{
    SimpleCpuModel cpu(CpuParams{1.0});
    EXPECT_DEATH(cpu.endCompute(), "assertion");
}

TEST(SamplingCpu, FullDetailMatchesSimpleModel)
{
    SamplingCpuModel::Params params;
    params.cpu.opsPerNs = 2.0;
    params.detailFraction = 1.0;
    SamplingCpuModel cpu(params, Rng(1));
    EXPECT_EQ(cpu.computeLatency(2000.0), 1000u);
    EXPECT_DOUBLE_EQ(cpu.hostDetailFactor(), 1.0);
}

TEST(SamplingCpu, FastForwardWindowsCheapenHostCost)
{
    SamplingCpuModel::Params params;
    params.cpu.opsPerNs = 1.0;
    params.detailFraction = 0.1;
    params.fastForwardCost = 0.05;
    params.timingNoise = 0.0;
    SamplingCpuModel cpu(params, Rng(2));
    int cheap = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        cpu.computeLatency(100.0);
        if (cpu.hostDetailFactor() < 1.0)
            ++cheap;
    }
    // ~90% of windows should be fast-forwarded.
    EXPECT_GT(cheap, n * 8 / 10);
    EXPECT_LT(cheap, n * 97 / 100);
}

TEST(SamplingCpu, NoiseChangesLatencyButPreservesMean)
{
    SamplingCpuModel::Params params;
    params.cpu.opsPerNs = 1.0;
    params.detailFraction = 0.01;
    params.timingNoise = 0.05;
    SamplingCpuModel cpu(params, Rng(3));
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(cpu.computeLatency(1000.0));
    EXPECT_NEAR(sum / n, 1000.0, 10.0);
}
