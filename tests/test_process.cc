/** Tests for coroutine processes, triggers, latches and nesting. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/process.hh"

using namespace aqsim;
using sim::DelayAwaitable;
using sim::EventQueue;
using sim::Latch;
using sim::Process;
using sim::Trigger;

namespace
{

Process
delayTwice(EventQueue &q, std::vector<Tick> &ticks)
{
    ticks.push_back(q.now());
    co_await DelayAwaitable(q, 10);
    ticks.push_back(q.now());
    co_await DelayAwaitable(q, 5);
    ticks.push_back(q.now());
}

Process
waitTrigger(EventQueue &q, Trigger &t, std::vector<Tick> &ticks)
{
    co_await t.wait();
    ticks.push_back(q.now());
}

Process
child(EventQueue &q, int &state)
{
    co_await DelayAwaitable(q, 7);
    state = 1;
}

Process
parent(EventQueue &q, int &state, Tick &after_child)
{
    co_await child(q, state);
    after_child = q.now();
    co_await DelayAwaitable(q, 3);
}

Process
immediate(int &ran)
{
    ran = 1;
    co_return;
}

Process
parentOfImmediate(EventQueue &q, int &ran, Tick &when)
{
    co_await immediate(ran);
    when = q.now();
    co_await DelayAwaitable(q, 1);
}

} // namespace

TEST(Process, StartsSuspendedAndRunsOnStart)
{
    EventQueue q;
    std::vector<Tick> ticks;
    Process p = delayTwice(q, ticks);
    EXPECT_TRUE(p.valid());
    EXPECT_FALSE(p.started());
    EXPECT_TRUE(ticks.empty());
    p.start();
    EXPECT_TRUE(p.started());
    EXPECT_EQ(ticks.size(), 1u);
    EXPECT_FALSE(p.done());
}

TEST(Process, DelaysAdvanceThroughTheQueue)
{
    EventQueue q;
    std::vector<Tick> ticks;
    Process p = delayTwice(q, ticks);
    p.start();
    q.runUntil(1000);
    EXPECT_TRUE(p.done());
    EXPECT_EQ(ticks, (std::vector<Tick>{0, 10, 15}));
}

TEST(Process, OnDoneFiresAtCompletion)
{
    EventQueue q;
    std::vector<Tick> ticks;
    Process p = delayTwice(q, ticks);
    Tick done_at = 0;
    p.onDone([&] { done_at = q.now(); });
    p.start();
    q.runUntil(1000);
    EXPECT_EQ(done_at, 15u);
}

TEST(Process, MoveTransfersOwnership)
{
    EventQueue q;
    std::vector<Tick> ticks;
    Process a = delayTwice(q, ticks);
    Process b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    b.start();
    q.runUntil(1000);
    EXPECT_TRUE(b.done());
}

TEST(Process, DestructionOfUnstartedCoroutineIsSafe)
{
    EventQueue q;
    std::vector<Tick> ticks;
    {
        Process p = delayTwice(q, ticks);
    }
    EXPECT_TRUE(ticks.empty());
}

TEST(Trigger, ResumesAllWaitersWhenFired)
{
    EventQueue q;
    Trigger t(q);
    std::vector<Tick> ticks;
    Process a = waitTrigger(q, t, ticks);
    Process b = waitTrigger(q, t, ticks);
    a.start();
    b.start();
    q.runUntil(5);
    EXPECT_TRUE(ticks.empty());
    t.fire();
    q.runUntil(10);
    EXPECT_EQ(ticks.size(), 2u);
    EXPECT_EQ(ticks[0], 5u); // resumed via events at the firing tick
    EXPECT_TRUE(a.done() && b.done());
}

TEST(Trigger, AwaitingFiredTriggerDoesNotSuspend)
{
    EventQueue q;
    Trigger t(q);
    t.fire();
    std::vector<Tick> ticks;
    Process p = waitTrigger(q, t, ticks);
    p.start();
    EXPECT_TRUE(p.done());
    EXPECT_EQ(ticks.size(), 1u);
}

TEST(Latch, CompletesWhenCountReachesZero)
{
    EventQueue q;
    Latch latch(q, 3);
    bool done = false;
    auto waiter = [](Latch &l, bool &flag) -> Process {
        co_await l.wait();
        flag = true;
    }(latch, done);
    waiter.start();
    latch.countDown();
    latch.countDown();
    q.runUntil(1);
    EXPECT_FALSE(done);
    latch.countDown();
    q.runUntil(2);
    EXPECT_TRUE(done);
}

TEST(Latch, ZeroCountIsImmediatelyReady)
{
    EventQueue q;
    Latch latch(q, 0);
    bool done = false;
    auto waiter = [](Latch &l, bool &flag) -> Process {
        co_await l.wait();
        flag = true;
    }(latch, done);
    waiter.start();
    EXPECT_TRUE(done);
}

TEST(ProcessNesting, AwaitingChildRunsItToCompletion)
{
    EventQueue q;
    int state = 0;
    Tick after_child = 0;
    Process p = parent(q, state, after_child);
    p.start();
    q.runUntil(100);
    EXPECT_TRUE(p.done());
    EXPECT_EQ(state, 1);
    EXPECT_EQ(after_child, 7u);
}

TEST(ProcessNesting, SynchronouslyCompletingChildDoesNotDeadlock)
{
    EventQueue q;
    int ran = 0;
    Tick when = 99;
    Process p = parentOfImmediate(q, ran, when);
    p.start();
    q.runUntil(100);
    EXPECT_TRUE(p.done());
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(when, 0u);
}

TEST(ProcessNesting, ForkJoinOverlapsChildWithParent)
{
    EventQueue q;
    std::vector<Tick> ticks;
    auto prog = [](EventQueue &queue,
                   std::vector<Tick> &out) -> Process {
        int ignored = 0;
        Process background = child(queue, ignored); // 7-tick child
        background.start();
        co_await DelayAwaitable(queue, 3); // overlap
        out.push_back(queue.now());
        co_await std::move(background); // join
        out.push_back(queue.now());
    }(q, ticks);
    prog.start();
    q.runUntil(100);
    EXPECT_TRUE(prog.done());
    ASSERT_EQ(ticks.size(), 2u);
    EXPECT_EQ(ticks[0], 3u);
    EXPECT_EQ(ticks[1], 7u); // join completes when the child does
}

TEST(ProcessNesting, JoiningAlreadyFinishedChildContinuesInline)
{
    EventQueue q;
    std::vector<Tick> ticks;
    auto prog = [](EventQueue &queue,
                   std::vector<Tick> &out) -> Process {
        int ignored = 0;
        Process background = child(queue, ignored);
        background.start();
        co_await DelayAwaitable(queue, 20); // child done at 7
        co_await std::move(background);
        out.push_back(queue.now());
    }(q, ticks);
    prog.start();
    q.runUntil(100);
    EXPECT_TRUE(prog.done());
    ASSERT_EQ(ticks.size(), 1u);
    EXPECT_EQ(ticks[0], 20u);
}

TEST(ProcessNesting, DeepChainCompletes)
{
    EventQueue q;
    // Recursion depth guard: chain of nested awaits.
    struct Chain
    {
        static Process
        run(EventQueue &queue, int depth, int &leaf)
        {
            if (depth == 0) {
                leaf = 1;
                co_await DelayAwaitable(queue, 1);
                co_return;
            }
            co_await run(queue, depth - 1, leaf);
        }
    };
    int leaf = 0;
    Process p = Chain::run(q, 50, leaf);
    p.start();
    q.runUntil(100);
    EXPECT_TRUE(p.done());
    EXPECT_EQ(leaf, 1);
}
