/** Tests for the collective algorithms across rank counts. */

#include <gtest/gtest.h>

#include <atomic>

#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::runLambda;

namespace
{

/** Rank counts exercised for every collective (pow2 and not). */
class CollectiveSizes : public ::testing::TestWithParam<std::size_t>
{};

} // namespace

TEST_P(CollectiveSizes, BarrierCompletesOnAllRanks)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::barrier(ctx.comm());
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, BarrierActuallySynchronizes)
{
    // Rank 0 enters late; no rank may leave before rank 0 entered.
    const Tick rank0_entry = microseconds(500);
    std::vector<Tick> exit_times(GetParam(), 0);
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 0)
            co_await ctx.delay(rank0_entry);
        co_await mpi::barrier(ctx.comm());
        exit_times[ctx.rank()] = ctx.now();
    });
    if (GetParam() == 1)
        return;
    for (Tick t : exit_times)
        EXPECT_GE(t, rank0_entry);
}

TEST_P(CollectiveSizes, BcastReachesEveryRank)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::bcast(ctx.comm(), 0, 4096);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, BcastFromNonzeroRoot)
{
    const Rank root =
        static_cast<Rank>(GetParam() > 1 ? GetParam() - 1 : 0);
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::bcast(ctx.comm(), root, 1024);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, ReduceCompletes)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::reduce(ctx.comm(), 0, 8192);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, AllreduceCompletes)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::allreduce(ctx.comm(), 64);
        co_await mpi::allreduce(ctx.comm(), 8);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, AllgatherCompletes)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::allgather(ctx.comm(), 2048);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, GatherCompletes)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::gather(ctx.comm(), 0, 1024);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, ScatterCompletes)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::scatter(ctx.comm(), 0, 4096);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, ScatterFromNonzeroRoot)
{
    const Rank root =
        static_cast<Rank>(GetParam() > 2 ? 2 : 0);
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::scatter(ctx.comm(), root, 512);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, ReduceScatterCompletes)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::reduceScatter(ctx.comm(), 2048);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, AlltoallCompletes)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        co_await mpi::alltoall(ctx.comm(), 512);
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

TEST_P(CollectiveSizes, AlltoallvWithAsymmetricSizes)
{
    std::atomic<int> done{0};
    const std::size_t n = GetParam();
    runLambda(n, [&](AppContext &ctx) -> sim::Process {
        std::vector<std::uint64_t> sizes(ctx.numRanks());
        for (std::size_t i = 0; i < sizes.size(); ++i)
            sizes[i] = 100 * (ctx.rank() + 1) + i;
        co_await mpi::alltoallv(ctx.comm(), std::move(sizes));
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(n));
}

TEST_P(CollectiveSizes, BackToBackCollectivesKeepTagDiscipline)
{
    std::atomic<int> done{0};
    runLambda(GetParam(), [&](AppContext &ctx) -> sim::Process {
        for (int i = 0; i < 5; ++i) {
            co_await mpi::barrier(ctx.comm());
            co_await mpi::allreduce(ctx.comm(), 8);
            co_await mpi::alltoall(ctx.comm(), 64);
        }
        ++done;
    });
    EXPECT_EQ(done.load(), static_cast<int>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST(Collectives, AllreducePropagatesLatestEntryTime)
{
    // allreduce is globally synchronizing: no rank can finish before
    // the last rank entered.
    constexpr std::size_t n = 6;
    const Tick late = microseconds(400);
    std::vector<Tick> exit_times(n, 0);
    runLambda(n, [&](AppContext &ctx) -> sim::Process {
        if (ctx.rank() == 3)
            co_await ctx.delay(late);
        co_await mpi::allreduce(ctx.comm(), 8);
        exit_times[ctx.rank()] = ctx.now();
    });
    for (Tick t : exit_times)
        EXPECT_GE(t, late);
}

TEST(Collectives, AlltoallMovesExpectedVolume)
{
    constexpr std::size_t n = 4;
    constexpr std::uint64_t per_pair = 10000;
    auto result =
        runLambda(n, [&](AppContext &ctx) -> sim::Process {
            co_await mpi::alltoall(ctx.comm(), per_pair);
        });
    // n*(n-1) messages, each 10000 B -> two fragments.
    EXPECT_EQ(result.packets, n * (n - 1) * 2);
}


TEST(Collectives, ScatterMovesHalvedAggregates)
{
    // Binomial scatter on 8 ranks: root sends 4n, 2n, n shares ->
    // total payload = (4+2+1+2+1+1+1)*per = 12*per ... verify via the
    // byte counter instead of a brittle constant: total scattered
    // bytes must be >= (n-1)*per (every rank got its share) and
    // <= n*log2(n)*per (tree forwarding bound).
    constexpr std::size_t n = 8;
    constexpr std::uint64_t per = 10000;
    std::atomic<std::uint64_t> total{0};
    runLambda(n, [&](AppContext &ctx) -> sim::Process {
        co_await mpi::scatter(ctx.comm(), 0, per);
        total += ctx.comm().messagesSent();
        co_return;
    });
    // 7 messages total on a binomial tree over 8 ranks.
    EXPECT_EQ(total.load(), n - 1);
}

TEST(Collectives, ReduceScatterHalvesVolumePerRound)
{
    // On 4 ranks with 1000 B/rank shares (vector 4000 B): round 1
    // exchanges 2000 B, round 2 exchanges 1000 B per rank pair.
    auto result =
        runLambda(4, [&](AppContext &ctx) -> sim::Process {
            co_await mpi::reduceScatter(ctx.comm(), 1000);
        });
    // 2 rounds x 4 ranks x 1 message each.
    EXPECT_EQ(result.packets, 8u);
}

TEST(Collectives, BarrierMessageComplexityIsLogarithmic)
{
    auto count_packets = [&](std::size_t n) {
        return runLambda(n,
                         [&](AppContext &ctx) -> sim::Process {
                             co_await mpi::barrier(ctx.comm());
                         })
            .packets;
    };
    // Dissemination barrier: n * ceil(log2(n)) messages.
    EXPECT_EQ(count_packets(2), 2u);
    EXPECT_EQ(count_packets(4), 8u);
    EXPECT_EQ(count_packets(8), 24u);
    EXPECT_EQ(count_packets(5), 15u);
}
