/**
 * Tests for the engine watchdog: it must stay silent while quanta make
 * progress and convert a hung run into a failed one with a diagnostic
 * dump.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "engine/threaded_engine.hh"
#include "engine/watchdog.hh"
#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::runLambdaCluster;
using test::runLambda;

TEST(Watchdog, CountsKicksAndDisarmsCleanly)
{
    engine::Watchdog dog(30.0, [] { return std::string("dump"); });
    EXPECT_EQ(dog.kicks(), 0u);
    dog.kick();
    dog.kick();
    dog.kick();
    EXPECT_EQ(dog.kicks(), 3u);
    // Destructor disarms and joins without the deadline elapsing.
}

TEST(Watchdog, RegularKicksKeepItQuietPastTheDeadline)
{
    engine::Watchdog dog(0.25, [] { return std::string("dump"); });
    // Kick well past several deadline periods; each kick rearms the
    // timer so the watchdog never fires.
    for (int i = 0; i < 12; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        dog.kick();
    }
    EXPECT_EQ(dog.kicks(), 12u);
}

TEST(Watchdog, DisarmedWatchdogNeverFires)
{
    // Disarmed construction (the engine-owned shape): the deadline
    // passes many times over with no kick and nothing happens.
    engine::Watchdog dog(0.05);
    EXPECT_FALSE(dog.armed());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_EQ(dog.kicks(), 0u);
}

TEST(Watchdog, RearmZeroesKickCountAndSwapsTheDump)
{
    engine::Watchdog dog(30.0);
    dog.arm([] { return std::string("run one"); });
    EXPECT_TRUE(dog.armed());
    dog.kick();
    dog.kick();
    EXPECT_EQ(dog.kicks(), 2u);
    dog.disarm();
    EXPECT_FALSE(dog.armed());
    // Re-arming for the next run must not inherit run one's count.
    dog.arm([] { return std::string("run two"); });
    EXPECT_EQ(dog.kicks(), 0u);
    dog.kick();
    EXPECT_EQ(dog.kicks(), 1u);
}

TEST(Watchdog, DisarmStopsTheDeadline)
{
    engine::Watchdog dog(0.1, [] { return std::string("dump"); });
    dog.kick();
    dog.disarm();
    // Starve well past the deadline: a disarmed watchdog stays silent.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    EXPECT_EQ(dog.kicks(), 1u);
}

TEST(WatchdogDeath, RearmedWatchdogFiresWithTheNewDump)
{
    EXPECT_DEATH(
        {
            engine::Watchdog dog(0.05);
            dog.arm([] { return std::string("first-run dump"); });
            dog.kick();
            dog.disarm();
            dog.arm([] { return std::string("second-run dump"); });
            std::this_thread::sleep_for(std::chrono::seconds(5));
        },
        "second-run dump");
}

TEST(WatchdogDeath, FiresWithTheDiagnosticDumpWhenStarved)
{
    EXPECT_DEATH(
        {
            engine::Watchdog dog(0.05, [] {
                return std::string("per-node progress dump");
            });
            std::this_thread::sleep_for(std::chrono::seconds(5));
        },
        "per-node progress dump");
}

TEST(Watchdog, ArmedWatchdogDoesNotPerturbAHealthyRun)
{
    engine::EngineOptions plain;
    engine::EngineOptions watched;
    watched.watchdogSeconds = 30.0;
    const auto a = runLambda(
        2,
        [](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0)
                co_await ctx.comm().send(1, 1, 4096);
            else
                co_await ctx.comm().recv(0, 1);
        },
        "fixed:1us", plain);
    const auto b = runLambda(
        2,
        [](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0)
                co_await ctx.comm().send(1, 1, 4096);
            else
                co_await ctx.comm().recv(0, 1);
        },
        "fixed:1us", watched);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.finishTicks, b.finishTicks);
}

namespace
{

/**
 * A run that wedges mid-quantum: rank 0's only frame is swallowed by
 * a 100%-loss network (no reliability, so no retransmit timer) while
 * rank 1 busy-polls at a single tick for the message that will never
 * come. The quantum can never finish, and only the watchdog can see
 * that.
 */
sim::Process
lostAckPollLoop(AppContext &ctx)
{
    if (ctx.rank() == 0) {
        co_await ctx.comm().send(1, 1, 64);
    } else {
        while (ctx.comm().messagesReceived() == 0)
            co_await ctx.delay(0);
    }
}

engine::ClusterParams
blackholeParams()
{
    auto params = harness::defaultCluster(2, 1);
    params.faults.dropRate = 1.0;
    params.mpiParams.reliable = false;
    return params;
}

} // namespace

TEST(WatchdogDeath, SequentialEngineHangBecomesAFailedRun)
{
    engine::EngineOptions options;
    options.watchdogSeconds = 0.3;
    EXPECT_DEATH(runLambdaCluster(blackholeParams(), lostAckPollLoop,
                                  "fixed:1us", options),
                 "watchdog: no quantum completed");
}

TEST(WatchdogDeath, ThreadedEngineHangBecomesAFailedRun)
{
    engine::EngineOptions options;
    options.watchdogSeconds = 0.3;
    options.numWorkers = 2;
    auto params = blackholeParams();
    test::LambdaWorkload workload(lostAckPollLoop);
    auto policy = core::parsePolicy("fixed:1us");
    EXPECT_DEATH(
        {
            engine::ThreadedEngine engine(options);
            engine.run(params, workload, *policy);
        },
        "watchdog: no quantum completed");
}
