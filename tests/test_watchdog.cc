/**
 * Tests for the engine watchdog: it must stay silent while quanta make
 * progress and convert a hung run into a failed one with a diagnostic
 * dump.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>

#include "engine/threaded_engine.hh"
#include "engine/watchdog.hh"
#include "test_util.hh"

using namespace aqsim;
using namespace aqsim::workloads;
using test::runLambdaCluster;
using test::runLambda;

TEST(Watchdog, CountsKicksAndDisarmsCleanly)
{
    engine::Watchdog dog(30.0, [] { return engine::PanicInfo{}; });
    EXPECT_EQ(dog.kicks(), 0u);
    dog.kick();
    dog.kick();
    dog.kick();
    EXPECT_EQ(dog.kicks(), 3u);
    // Destructor disarms and joins without the deadline elapsing.
}

TEST(Watchdog, RegularKicksKeepItQuietPastTheDeadline)
{
    engine::Watchdog dog(0.25, [] { return engine::PanicInfo{}; });
    // Kick well past several deadline periods; each kick rearms the
    // timer so the watchdog never fires.
    for (int i = 0; i < 12; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        dog.kick();
    }
    EXPECT_EQ(dog.kicks(), 12u);
}

TEST(Watchdog, DisarmedWatchdogNeverFires)
{
    // Disarmed construction (the engine-owned shape): the deadline
    // passes many times over with no kick and nothing happens.
    engine::Watchdog dog(0.05);
    EXPECT_FALSE(dog.armed());
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_EQ(dog.kicks(), 0u);
}

TEST(Watchdog, RearmZeroesKickCountAndSwapsTheDump)
{
    engine::Watchdog dog(30.0);
    dog.arm([] { return engine::PanicInfo{}; });
    EXPECT_TRUE(dog.armed());
    dog.kick();
    dog.kick();
    EXPECT_EQ(dog.kicks(), 2u);
    dog.disarm();
    EXPECT_FALSE(dog.armed());
    // Re-arming for the next run must not inherit run one's count.
    dog.arm([] { return engine::PanicInfo{}; });
    EXPECT_EQ(dog.kicks(), 0u);
    dog.kick();
    EXPECT_EQ(dog.kicks(), 1u);
}

TEST(Watchdog, DisarmStopsTheDeadline)
{
    engine::Watchdog dog(0.1, [] { return engine::PanicInfo{}; });
    dog.kick();
    dog.disarm();
    // Starve well past the deadline: a disarmed watchdog stays silent.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    EXPECT_EQ(dog.kicks(), 1u);
}

TEST(WatchdogDeath, RearmedWatchdogFiresWithTheNewDump)
{
    EXPECT_DEATH(
        {
            engine::Watchdog dog(0.05);
            dog.arm([] {
                engine::PanicInfo info;
                info.progress = "first-run dump";
                return info;
            });
            dog.kick();
            dog.disarm();
            dog.arm([] {
                engine::PanicInfo info;
                info.progress = "second-run dump";
                return info;
            });
            std::this_thread::sleep_for(std::chrono::seconds(5));
        },
        "second-run dump");
}

TEST(WatchdogDeath, FiresWithTheDiagnosticDumpWhenStarved)
{
    EXPECT_DEATH(
        {
            engine::Watchdog dog(0.05, [] {
                engine::PanicInfo info;
                info.progress = "per-node progress dump";
                return info;
            });
            std::this_thread::sleep_for(std::chrono::seconds(5));
        },
        "per-node progress dump");
}

TEST(Watchdog, PanicHandlerReceivesStructuredInfoInsteadOfDying)
{
    // Supervised shape: the first expiry hands the structured
    // PanicInfo to the handler; the process survives. Regression for
    // the old string-only dump, which lost the quantum window and
    // per-node progress whenever no checkpoint directory (and hence
    // no panic-image note) was configured.
    std::promise<engine::PanicInfo> fired;
    engine::Watchdog dog(0.05);
    dog.arm(
        [] {
            engine::PanicInfo info;
            info.quantumStart = 17;
            info.quantumEnd = 42;
            info.progress = "  node 1: wedged\n";
            // No note: checkpointing is not configured.
            return info;
        },
        [&fired](const engine::PanicInfo &info) {
            fired.set_value(info);
        });
    auto future = fired.get_future();
    ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
              std::future_status::ready);
    const engine::PanicInfo info = future.get();
    dog.disarm();
    EXPECT_DOUBLE_EQ(info.deadlineSeconds, 0.05);
    EXPECT_EQ(info.quantaCompleted, 0u);
    EXPECT_EQ(info.quantumStart, 17u);
    EXPECT_EQ(info.quantumEnd, 42u);
    EXPECT_EQ(info.progress, "  node 1: wedged\n");
    // The formatted dump carries the same context.
    EXPECT_NE(info.format().find("quantum [17,42)"), std::string::npos);
    EXPECT_NE(info.format().find("node 1: wedged"), std::string::npos);
}

TEST(WatchdogDeath, SecondExpiryAfterHandlerStillHardPanics)
{
    // A handler that fails to unwedge the run must not convert a
    // detected hang into a silent one: the next full deadline with no
    // progress falls through to the classic panic.
    EXPECT_DEATH(
        {
            engine::Watchdog dog(0.05);
            dog.arm(
                [] {
                    engine::PanicInfo info;
                    info.progress = "still wedged";
                    return info;
                },
                [](const engine::PanicInfo &) { /* does nothing */ });
            std::this_thread::sleep_for(std::chrono::seconds(5));
        },
        "watchdog: no quantum completed.*still wedged");
}

TEST(Watchdog, ArmedWatchdogDoesNotPerturbAHealthyRun)
{
    engine::EngineOptions plain;
    engine::EngineOptions watched;
    watched.watchdogSeconds = 30.0;
    const auto a = runLambda(
        2,
        [](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0)
                co_await ctx.comm().send(1, 1, 4096);
            else
                co_await ctx.comm().recv(0, 1);
        },
        "fixed:1us", plain);
    const auto b = runLambda(
        2,
        [](AppContext &ctx) -> sim::Process {
            if (ctx.rank() == 0)
                co_await ctx.comm().send(1, 1, 4096);
            else
                co_await ctx.comm().recv(0, 1);
        },
        "fixed:1us", watched);
    EXPECT_EQ(a.simTicks, b.simTicks);
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.finishTicks, b.finishTicks);
}

namespace
{

/**
 * A run that wedges mid-quantum: rank 0's only frame is swallowed by
 * a 100%-loss network (no reliability, so no retransmit timer) while
 * rank 1 busy-polls at a single tick for the message that will never
 * come. The quantum can never finish, and only the watchdog can see
 * that.
 */
sim::Process
lostAckPollLoop(AppContext &ctx)
{
    if (ctx.rank() == 0) {
        co_await ctx.comm().send(1, 1, 64);
    } else {
        while (ctx.comm().messagesReceived() == 0)
            co_await ctx.delay(0);
    }
}

engine::ClusterParams
blackholeParams()
{
    auto params = harness::defaultCluster(2, 1);
    params.faults.dropRate = 1.0;
    params.mpiParams.reliable = false;
    return params;
}

} // namespace

TEST(WatchdogDeath, SequentialEngineHangBecomesAFailedRun)
{
    engine::EngineOptions options;
    options.watchdogSeconds = 0.3;
    EXPECT_DEATH(runLambdaCluster(blackholeParams(), lostAckPollLoop,
                                  "fixed:1us", options),
                 "watchdog: no quantum completed");
}

TEST(WatchdogDeath, ThreadedEngineHangBecomesAFailedRun)
{
    engine::EngineOptions options;
    options.watchdogSeconds = 0.3;
    options.numWorkers = 2;
    auto params = blackholeParams();
    test::LambdaWorkload workload(lostAckPollLoop);
    auto policy = core::parsePolicy("fixed:1us");
    EXPECT_DEATH(
        {
            engine::ThreadedEngine engine(options);
            engine.run(params, workload, *policy);
        },
        "watchdog: no quantum completed");
}
