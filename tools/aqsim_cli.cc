/**
 * @file
 * aqsim command-line driver: run any cluster-simulation experiment
 * without writing code.
 *
 *   aqsim_cli --workload nas.is --nodes 8 --policy dyn:1.03:0.02 \
 *             [--class A | --scale S] [--seed N]
 *             [--engine sequential|threaded|distributed] [--workers K]
 *             [--topology star|ring|mesh|torus|tree] [--hop-latency T]
 *             [--sampling F] [--noise SIGMA]
 *             [--drop P] [--duplicate P] [--corrupt P]  # fault rates
 *             [--jitter-rate P --jitter-max T]          # reorder jitter
 *             [--link-down a-b:FROM:TO[,...]]           # outage windows
 *             [--node-crash n:FROM:TO[,...]]
 *             [--node-pause n:FROM:TO[,...]]
 *             [--chaos name[:k=v,...][+name...]]  # scenario campaigns
 *             [--reliable] [--retry-timeout T]  # ack + retransmit mode
 *             [--watchdog SECONDS]     # hang detector (0 = off)
 *             [--supervise]            # self-healing restore/retry
 *             [--max-restarts N] [--backoff SECONDS]
 *             [--incident-log FILE.jsonl]
 *             [--inject-fail a:q[:watchdog][,...]]  # recovery drills
 *             [--peer-deadline SECONDS] [--heartbeat SECONDS]
 *             [--peer-drill op:peer=P[,quantum=Q][,phase=...][;...]]
 *             [--phase-stats]          # exchange-phase timings

 *             [--checkpoint-every N --checkpoint-dir DIR]
 *             [--restore FILE|DIR] [--verify-restore]
 *             [--checkpoint-keep N]    # rotation (0 = unlimited)
 *             [--baseline]             # also run the 1us ground truth
 *             [--sweep spec1,spec2,...] # compare several policies
 *             [--stats] [--stats-csv]  # dump the statistics tree
 *             [--check]                # runtime invariant checking
 *             [--debug-flags Quantum,Mpi,...]  # trace to stderr
 *             [--timeline FILE.csv]    # per-quantum records
 *             [--trace FILE.csv]       # packet trace
 *             [--quiet]
 *
 * Exit code 0 on success; fatal configuration errors exit 1;
 * --check exits 2 if any runtime invariant was violated.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "aqsim.hh"

using namespace aqsim;

namespace
{

/** Split a comma-separated list into its non-empty elements. */
std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    for (std::size_t start = 0; start <= csv.size();) {
        auto end = csv.find(',', start);
        if (end == std::string::npos)
            end = csv.size();
        if (end > start)
            out.push_back(csv.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

/** Parse "<head>:FROM:TO" (times via parseTicks) into head + window. */
std::string
parseWindowSpec(const std::string &spec, Tick &from, Tick &to)
{
    const auto first = spec.find(':');
    const auto second =
        first == std::string::npos ? first : spec.find(':', first + 1);
    if (first == std::string::npos || second == std::string::npos)
        fatal("expected <id>:<from>:<to>, got '%s'", spec.c_str());
    from = core::parseTicks(spec.substr(first + 1,
                                        second - first - 1));
    to = core::parseTicks(spec.substr(second + 1));
    return spec.substr(0, first);
}

NodeId
parseNodeId(const std::string &text, const std::string &spec)
{
    char *end = nullptr;
    const long id = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || id < 0)
        fatal("bad node id '%s' in '%s'", text.c_str(), spec.c_str());
    return static_cast<NodeId>(id);
}

fault::FaultParams
buildFaultParams(const Args &args)
{
    fault::FaultParams faults;
    faults.dropRate = args.getDouble("drop", 0.0);
    faults.duplicateRate = args.getDouble("duplicate", 0.0);
    faults.corruptRate = args.getDouble("corrupt", 0.0);
    faults.jitterRate = args.getDouble("jitter-rate", 0.0);
    if (args.has("jitter-max"))
        faults.maxJitterTicks =
            core::parseTicks(args.getString("jitter-max", "0"));

    for (const auto &spec :
         splitList(args.getString("link-down", ""))) {
        fault::LinkWindow w;
        const std::string link = parseWindowSpec(spec, w.from, w.to);
        const auto dash = link.find('-');
        if (dash == std::string::npos)
            fatal("expected <a>-<b>:<from>:<to>, got '%s'",
                  spec.c_str());
        w.a = parseNodeId(link.substr(0, dash), spec);
        w.b = parseNodeId(link.substr(dash + 1), spec);
        faults.linkDown.push_back(w);
    }
    for (const auto &spec :
         splitList(args.getString("node-crash", ""))) {
        fault::NodeWindow w;
        w.node = parseNodeId(parseWindowSpec(spec, w.from, w.to), spec);
        faults.nodeCrash.push_back(w);
    }
    for (const auto &spec :
         splitList(args.getString("node-pause", ""))) {
        fault::NodeWindow w;
        w.node = parseNodeId(parseWindowSpec(spec, w.from, w.to), spec);
        faults.nodePause.push_back(w);
    }
    return faults;
}

engine::ClusterParams
buildClusterParams(const Args &args, std::size_t nodes,
                   std::uint64_t seed)
{
    auto params = harness::defaultCluster(nodes, seed);

    const std::string topology = args.getString("topology", "star");
    const Tick hop = core::parseTicks(
        args.getString("hop-latency", "200ns"));
    if (topology != "star" || args.has("hop-latency")) {
        net::TopologyParams topo;
        topo.kind = net::parseTopology(topology);
        topo.hopLatency = hop;
        params.network.switchModel =
            std::make_shared<net::TopologySwitch>(nodes, topo);
    }

    const double sampling = args.getDouble("sampling", 1.0);
    if (sampling < 1.0) {
        params.samplingCpu = true;
        params.sampling.detailFraction = sampling;
    }

    params.faults = buildFaultParams(args);
    if (args.has("chaos"))
        fault::applyChaos(params.faults, args.getString("chaos", ""),
                          nodes, seed);
    params.mpiParams.reliable = args.getBool("reliable", false);
    if (args.has("retry-timeout"))
        params.mpiParams.retryTimeout =
            core::parseTicks(args.getString("retry-timeout", "50us"));
    return params;
}

std::uint64_t
parseCount(const std::string &text, const std::string &spec)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("bad count '%s' in '%s'", text.c_str(), spec.c_str());
    return static_cast<std::uint64_t>(v);
}

supervise::SuperviseOptions
buildSuperviseOptions(const Args &args)
{
    supervise::SuperviseOptions sup;
    sup.enabled = args.getBool("supervise", false);
    sup.maxRestarts =
        static_cast<std::uint64_t>(args.getInt("max-restarts", 5));
    sup.backoffBaseSeconds = args.getDouble("backoff", 0.25);
    sup.incidentLogPath = args.getString("incident-log", "");

    // "attempt:quantum[:watchdog]" — fail attempt N after quantum Q,
    // either as a direct abort or through the watchdog panic path.
    for (const auto &spec :
         splitList(args.getString("inject-fail", ""))) {
        supervise::InjectedFailure f;
        const auto first = spec.find(':');
        if (first == std::string::npos)
            fatal("expected <attempt>:<quantum>[:watchdog], got '%s'",
                  spec.c_str());
        const auto second = spec.find(':', first + 1);
        f.attempt = parseCount(spec.substr(0, first), spec);
        const auto quantum_end =
            second == std::string::npos ? spec.size() : second;
        f.afterQuantum = parseCount(
            spec.substr(first + 1, quantum_end - first - 1), spec);
        if (second != std::string::npos) {
            const std::string kind = spec.substr(second + 1);
            if (kind == "watchdog")
                f.watchdog = true;
            else if (kind != "abort")
                fatal("unknown inject-fail kind '%s' "
                      "(abort|watchdog)", kind.c_str());
        }
        sup.injectFailures.push_back(f);
    }
    if (!sup.enabled &&
        (!sup.injectFailures.empty() || !sup.incidentLogPath.empty()))
        fatal("--inject-fail/--incident-log require --supervise");
    return sup;
}

/** Run one (policy) configuration and return the result. */
engine::RunResult
runOne(const Args &args, workloads::Workload &workload,
       const engine::ClusterParams &cluster_params,
       const std::string &policy_spec, bool want_timeline,
       engine::Cluster **cluster_out,
       std::unique_ptr<engine::Cluster> &cluster_storage,
       trace::PacketTrace *trace)
{
    auto policy = core::parsePolicy(policy_spec);
    engine::EngineOptions options;
    options.recordTimeline = want_timeline;
    if (args.has("noise"))
        options.host.noiseSigma = args.getDouble("noise", 0.25);
    options.numWorkers =
        static_cast<std::size_t>(args.getInt("workers", 0));
    options.watchdogSeconds = args.getDouble("watchdog", 0.0);
    options.phaseStats = args.getBool("phase-stats", false);
    options.checkpointEvery = static_cast<std::uint64_t>(
        args.getInt("checkpoint-every", 0));
    options.checkpointDir = args.getString("checkpoint-dir", "");
    options.restorePath = args.getString("restore", "");
    options.verifyRestore = args.getBool("verify-restore", false);
    options.checkpointKeepLast =
        static_cast<std::size_t>(args.getInt("checkpoint-keep", 2));
    options.peerDeadlineSeconds =
        args.getDouble("peer-deadline", options.peerDeadlineSeconds);
    options.heartbeatSeconds =
        args.getDouble("heartbeat", options.heartbeatSeconds);
    options.peerDrillSpec = args.getString("peer-drill", "");

    supervise::RunRequest request;
    const std::string engine_kind =
        args.getString("engine", "sequential");
    if (engine_kind == "threaded")
        request.engineKind = supervise::EngineKind::Threaded;
    else if (engine_kind == "distributed")
        request.engineKind = supervise::EngineKind::Distributed;
    else if (engine_kind != "sequential")
        fatal("unknown engine '%s' (sequential|threaded|distributed)",
              engine_kind.c_str());
    if (!options.peerDrillSpec.empty() &&
        request.engineKind != supervise::EngineKind::Distributed)
        fatal("--peer-drill requires --engine distributed");
    request.engine = options;
    request.cluster = cluster_params;
    request.workload = &workload;
    request.policy = policy.get();
    if (trace && request.engineKind != supervise::EngineKind::Distributed)
        request.onClusterBuilt = [trace](engine::Cluster &cluster) {
            trace->attach(cluster.controller());
        };

    supervise::RunSupervisor supervisor(buildSuperviseOptions(args));
    engine::RunResult result;
    try {
        result = supervisor.run(request);
    } catch (const supervise::SuperviseAbort &abort) {
        fatal("%s", abort.what());
    }
    cluster_storage = supervisor.takeCluster();
    if (cluster_out)
        *cluster_out = cluster_storage.get();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv,
              {"workload", "nodes", "policy", "scale", "class", "seed",
               "engine", "workers", "topology", "hop-latency",
               "sampling", "noise", "baseline", "stats", "stats-csv",
               "timeline", "trace", "quiet", "debug-flags", "sweep",
               "check", "drop", "duplicate", "corrupt", "jitter-rate",
               "jitter-max", "link-down", "node-crash", "node-pause",
               "reliable", "retry-timeout", "watchdog", "phase-stats",
               "checkpoint-every", "checkpoint-dir", "restore",
               "verify-restore", "checkpoint-keep", "chaos",
               "supervise", "max-restarts", "backoff", "incident-log",
               "inject-fail", "peer-deadline", "heartbeat",
               "peer-drill"});

    debug::applyEnvironment();
    if (args.has("debug-flags"))
        debug::setFlags(args.getString("debug-flags", ""));

    auto &checker = check::InvariantChecker::instance();
    checker.applyEnvironment();
    const bool check_mode = args.getBool("check", false);
    if (check_mode) {
        checker.reset();
        checker.setEnabled(true);
    }

    const std::string workload_name =
        args.getString("workload", "nas.cg");
    const auto nodes =
        static_cast<std::size_t>(args.getInt("nodes", 8));
    const std::string policy_spec =
        args.getString("policy", "dyn:1.03:0.02:1us:1000us");
    const auto seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    double scale = args.getDouble("scale", 1.0);
    if (args.has("class"))
        scale = workloads::scaleForClass(
            args.getString("class", "A").at(0));
    const bool quiet = args.getBool("quiet", false);
    Logger::setVerbose(!quiet);

    // Shared epilogue: in --check mode print the audit report and
    // convert violations into a distinct exit code.
    auto finish = [&checker, check_mode, quiet]() -> int {
        if (!check_mode)
            return 0;
        if (!quiet || checker.totalViolations() > 0)
            std::fputs(checker.report().c_str(), stderr);
        return checker.totalViolations() > 0 ? 2 : 0;
    };

    auto workload = workloads::makeWorkload(workload_name, nodes,
                                            scale);
    auto cluster_params = buildClusterParams(args, nodes, seed);

    if (args.has("sweep")) {
        // Comparative mode: run the ground truth plus every listed
        // policy spec and print one table.
        std::vector<std::string> specs{harness::groundTruthSpec};
        const std::string csv = args.getString("sweep", "");
        for (std::size_t start = 0; start <= csv.size();) {
            auto end = csv.find(',', start);
            if (end == std::string::npos)
                end = csv.size();
            if (end > start)
                specs.push_back(csv.substr(start, end - start));
            start = end + 1;
        }
        harness::Table table({"policy", "metric", "error", "speedup",
                              "mean Q (us)", "stragglers"});
        engine::RunResult gt;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            auto wl = workloads::makeWorkload(workload_name, nodes,
                                              scale);
            std::unique_ptr<engine::Cluster> c;
            auto run = runOne(args, *wl, cluster_params, specs[i],
                              false, nullptr, c, nullptr);
            if (i == 0)
                gt = run;
            table.addRow(
                {run.policy, harness::fmtDouble(run.metric, 4),
                 harness::fmtPercent(engine::accuracyError(run, gt)),
                 harness::fmtSpeedup(engine::speedup(run, gt)),
                 harness::fmtDouble(run.meanQuantumTicks * 1e-3, 1),
                 std::to_string(run.stragglers)});
        }
        std::printf("%s on %zu nodes (scale %.2f):\n\n",
                    workload_name.c_str(), nodes, scale);
        table.print(std::cout);
        return finish();
    }

    const bool want_timeline = args.has("timeline");
    trace::PacketTrace trace;
    std::unique_ptr<engine::Cluster> cluster;
    engine::Cluster *cluster_ptr = nullptr;
    auto result =
        runOne(args, *workload, cluster_params, policy_spec,
               want_timeline, &cluster_ptr, cluster,
               args.has("trace") ? &trace : nullptr);

    if (!quiet)
        std::printf("%s\n", result.summary().c_str());

    if (args.getBool("baseline", false)) {
        auto gt_workload = workloads::makeWorkload(workload_name,
                                                   nodes, scale);
        std::unique_ptr<engine::Cluster> gt_cluster;
        auto gt = runOne(args, *gt_workload, cluster_params,
                         harness::groundTruthSpec, false, nullptr,
                         gt_cluster, nullptr);
        std::printf("baseline       : %s\n", gt.summary().c_str());
        std::printf("accuracy error : %.3f%%\n",
                    100.0 * engine::accuracyError(result, gt));
        std::printf("speedup        : %.2fx\n",
                    engine::speedup(result, gt));
        std::printf("sim-time ratio : %.3f\n",
                    engine::simTimeRatio(result, gt));
    }

    // Distributed runs leave no in-process cluster behind (the stats
    // trees live and die in the worker processes).
    if (args.getBool("stats", false) && cluster_ptr)
        stats::dumpText(cluster_ptr->statsRoot(), std::cout);
    if (args.getBool("stats-csv", false) && cluster_ptr)
        stats::dumpCsv(cluster_ptr->statsRoot(), std::cout);

    const std::string timeline_path = args.getString("timeline", "");
    if (!timeline_path.empty()) {
        std::ofstream file(timeline_path);
        if (!file)
            fatal("cannot open '%s'", timeline_path.c_str());
        CsvWriter csv(file);
        csv.header({"start", "length", "packets", "stragglers",
                    "hostNs"});
        for (const auto &q : result.timeline) {
            csv.row()
                .field(static_cast<std::uint64_t>(q.start))
                .field(static_cast<std::uint64_t>(q.length))
                .field(q.packets)
                .field(q.stragglers)
                .field(q.hostNs);
        }
        if (!quiet)
            std::printf("timeline written to %s (%zu quanta)\n",
                        timeline_path.c_str(),
                        result.timeline.size());
    }

    const std::string trace_path = args.getString("trace", "");
    if (!trace_path.empty()) {
        std::ofstream file(trace_path);
        if (!file)
            fatal("cannot open '%s'", trace_path.c_str());
        trace.dumpCsv(file);
        if (!quiet)
            std::printf("trace written to %s (%zu packets)\n",
                        trace_path.c_str(), trace.size());
    }
    return finish();
}
