/**
 * @file
 * aqsim_analyze: layering + determinism static auditor over src/.
 *
 * A deliberately small analyzer — a comment/string-stripping lexer and
 * an include-graph builder, not a compiler frontend — that enforces
 * the repository rules the regex lint (tools/lint/lint.py) cannot
 * express and clang-tidy does not know about:
 *
 *  layering       every `#include "..."` edge must respect the
 *                 declared module-layer DAG (docs/static-analysis.md):
 *                 base -> {check,stats} -> {ckpt_io,sim}
 *                 -> {fault,net,node,mpi,core} -> {trace,workloads}
 *                 -> {engine,ckpt} -> harness -> root umbrella.
 *                 Violations are reported as named edges (file:line).
 *  include-cycle  the file-level include graph must be a DAG; cycles
 *                 are reported with their full path.
 *  unordered-container  std::unordered_map/set iteration order is
 *                 implementation-defined, so a single token anywhere
 *                 in simulation state is banned (the tree has zero —
 *                 this locks that in).
 *  pointer-key    ordered containers keyed by pointers (or smart
 *                 pointers) iterate in allocation order, which varies
 *                 run to run; key by stable ids instead.
 *  iterator-order relational comparison of iterators from two
 *                 different containers is UB and address-dependent.
 *  ckpt-coverage  every data member of the snapshot structs declared
 *                 in ckpt/checkpoint.hh must be mentioned by
 *                 ckpt/checkpoint.cc encode/decode — forgetting a
 *                 freshly added field silently truncates checkpoints.
 *  queue-seam     engine code may drive node event queues only
 *                 through the shard-execution seam
 *                 (engine/shard_exec.cc): direct EventQueue mutator
 *                 calls (runOne/runUntil/fastForwardTo/schedule/
 *                 scheduleIn/deschedule) anywhere else in the engine
 *                 module would bypass the barrier-only canonical
 *                 merge that makes every worker count bit-identical.
 *
 * The analyzer runs over any src-like tree (module = first directory
 * component), which is how the golden fixtures under
 * tests/analyze_fixtures/ seed known violations.
 */

#ifndef AQSIM_TOOLS_ANALYZE_ANALYZER_HH
#define AQSIM_TOOLS_ANALYZE_ANALYZER_HH

#include <string>
#include <vector>

namespace aqsim::analyze
{

/** One reported rule violation, anchored to a file and line. */
struct Finding
{
    std::string file; ///< path relative to the analyzed root
    int line = 0;
    std::string rule;
    std::string message;

    bool
    operator<(const Finding &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        if (rule != o.rule)
            return rule < o.rule;
        return message < o.message;
    }
};

/**
 * Replace comments and string/char literal contents with spaces,
 * preserving newlines (so offsets keep their line numbers). Handles
 * //, block comments, escapes, and basic raw strings.
 */
std::string stripCommentsAndStrings(const std::string &text);

/** Module name of a root-relative path ("base/types.hh" -> "base"). */
std::string moduleOf(const std::string &rel_path);

/** Layer index of a module (higher may include lower; -1 unknown). */
int layerOf(const std::string &module);

/**
 * Run every rule over the tree rooted at @p src_root (typically the
 * repository's src/). @return all findings, deterministically sorted
 * by (file, line, rule, message).
 */
std::vector<Finding> analyzeTree(const std::string &src_root);

} // namespace aqsim::analyze

#endif // AQSIM_TOOLS_ANALYZE_ANALYZER_HH
