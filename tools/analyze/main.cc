/**
 * @file
 * aqsim_analyze entry point.
 *
 * Usage: aqsim_analyze [--src DIR]
 *
 * Runs the layering + determinism auditor (see analyzer.hh) over DIR
 * (default: ./src). Findings go to stdout as `file:line: [rule]
 * message`, one per line, deterministically sorted; a summary goes to
 * stderr. Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "tools/analyze/analyzer.hh"

int
main(int argc, char **argv)
{
    std::string src_root = "src";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--src") == 0 && i + 1 < argc) {
            src_root = argv[++i];
        } else if (std::strcmp(argv[i], "--help") == 0 ||
                   std::strcmp(argv[i], "-h") == 0) {
            std::printf("usage: aqsim_analyze [--src DIR]\n");
            return 0;
        } else {
            std::fprintf(stderr, "aqsim_analyze: unknown argument '%s'\n",
                         argv[i]);
            return 2;
        }
    }

    if (!std::filesystem::is_directory(src_root)) {
        std::fprintf(stderr, "aqsim_analyze: '%s' is not a directory\n",
                     src_root.c_str());
        return 2;
    }

    const auto findings = aqsim::analyze::analyzeTree(src_root);
    for (const auto &f : findings) {
        std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    }
    std::fprintf(stderr, "aqsim_analyze: %zu finding%s in %s\n",
                 findings.size(), findings.size() == 1 ? "" : "s",
                 src_root.c_str());
    return findings.empty() ? 0 : 1;
}
