#include "analyzer.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>

namespace fs = std::filesystem;

namespace aqsim::analyze
{

namespace
{

/**
 * The declared module-layer DAG, bottom (0) to top. A module may
 * include its own layer and every layer below it; reaching *up* is a
 * layering violation. `ckpt_io` (ckpt/ckpt_io.*) is split out of
 * `ckpt` because the Writer/Reader serialization primitive sits far
 * below the checkpoint orchestration that snapshots whole clusters;
 * `engine` and `ckpt` share a layer because images are built from
 * engine state while engines drive the checkpoint lifecycle.
 * `supervise` sits between the engines it drives and the harness
 * that must reach engines only through it (the engine-seam lint
 * rule) — the supervisor owns the run lifecycle, the harness owns
 * experiment composition.
 * Rationale and diagram: docs/static-analysis.md.
 */
const std::vector<std::vector<std::string>> kLayers = {
    {"base"},
    {"check", "stats"},
    {"ckpt_io", "sim"},
    {"fault", "net", "node", "mpi", "core", "transport"},
    {"trace", "workloads"},
    {"engine", "ckpt"},
    {"supervise"},
    {"harness"},
    {"root"},
};

struct IncludeEdge
{
    int line;
    std::string target; ///< resolved root-relative path
};

struct SourceFile
{
    std::string rel;      ///< root-relative path, '/'-separated
    std::string stripped; ///< comment/string-stripped text
    std::vector<IncludeEdge> includes;
};

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Offset of the first character of each line, for offset->line. */
std::vector<std::size_t>
lineStarts(const std::string &text)
{
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < text.size(); ++i)
        if (text[i] == '\n')
            starts.push_back(i + 1);
    return starts;
}

int
lineAt(const std::vector<std::size_t> &starts, std::size_t offset)
{
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), offset);
    return static_cast<int>(it - starts.begin());
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string current;
    for (const char c : text) {
        if (c == '\n') {
            lines.push_back(current);
            current.clear();
        } else {
            current += c;
        }
    }
    if (!current.empty())
        lines.push_back(current);
    return lines;
}

} // namespace

std::string
stripCommentsAndStrings(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Code;
    std::string raw_delim; ///< the )delim" closing a raw string
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out += "  ";
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out += "  ";
                ++i;
            } else if (c == 'R' && next == '"' &&
                       (i == 0 || !isWordChar(text[i - 1]))) {
                // R"delim( ... )delim"
                std::size_t p = i + 2;
                std::string delim;
                while (p < text.size() && text[p] != '(' &&
                       delim.size() < 20)
                    delim += text[p++];
                raw_delim = ")" + delim + "\"";
                state = State::RawString;
                out += "\"";
                for (std::size_t k = i + 1; k <= p && k < text.size();
                     ++k)
                    out += ' ';
                i = p;
            } else if (c == '"') {
                state = State::String;
                out += '"';
            } else if (c == '\'') {
                state = State::Char;
                out += '\'';
            } else {
                out += c;
            }
            break;
          case State::LineComment:
            if (c == '\n') {
                state = State::Code;
                out += '\n';
            } else {
                out += ' ';
            }
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                out += "  ";
                ++i;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
          case State::String:
            if (c == '\\' && next != '\0') {
                out += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out += '"';
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
          case State::Char:
            if (c == '\\' && next != '\0') {
                out += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out += '\'';
            } else {
                out += ' ';
            }
            break;
          case State::RawString:
            if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
                for (std::size_t k = 0; k < raw_delim.size(); ++k)
                    out += ' ';
                out.back() = '"';
                i += raw_delim.size() - 1;
                state = State::Code;
            } else {
                out += c == '\n' ? '\n' : ' ';
            }
            break;
        }
    }
    return out;
}

std::string
moduleOf(const std::string &rel_path)
{
    if (rel_path == "ckpt/ckpt_io.hh" || rel_path == "ckpt/ckpt_io.cc")
        return "ckpt_io";
    const auto slash = rel_path.find('/');
    if (slash == std::string::npos)
        return "root";
    return rel_path.substr(0, slash);
}

int
layerOf(const std::string &module)
{
    for (std::size_t i = 0; i < kLayers.size(); ++i)
        for (const auto &m : kLayers[i])
            if (m == module)
                return static_cast<int>(i);
    return -1;
}

namespace
{

const std::regex kIncludeRe(
    R"(^\s*#\s*include\s*\"([^\"]+)\")");
const std::regex kUnorderedRe(
    R"(\bunordered_(map|set|multimap|multiset)\b)");
const std::regex kIterOrderRe(
    R"((\w+)\s*\.\s*(c?r?begin|c?r?end)\s*\(\s*\)\s*(<=|>=|<|>)\s*(\w+)\s*\.\s*(c?r?begin|c?r?end)\s*\(\s*\))");

/** Scan per-line rules + includes for one file. */
void
scanFile(const SourceFile &file, const std::string &src_root,
         std::vector<Finding> &findings)
{
    const auto lines = splitLines(file.stripped);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        const int lineno = static_cast<int>(i) + 1;
        std::smatch m;
        if (std::regex_search(line, m, kUnorderedRe)) {
            findings.push_back(
                {file.rel, lineno, "unordered-container",
                 "std::" + m.str(0) +
                     " iteration order is implementation-defined; "
                     "simulation state must use ordered containers "
                     "(runs are pure functions of the seed)"});
        }
        if (std::regex_search(line, m, kIterOrderRe) &&
            m.str(1) != m.str(4)) {
            findings.push_back(
                {file.rel, lineno, "iterator-order",
                 "relational comparison of iterators from '" +
                     m.str(1) + "' and '" + m.str(4) +
                     "' orders by address, which varies run to run "
                     "(and is UB across containers)"});
        }
    }
    (void)src_root;
}

/**
 * Scan for ordered containers keyed by an address: map/set (and
 * multi- variants) whose first template argument is a raw or smart
 * pointer. Works on the whole stripped text so multi-line
 * declarations are caught.
 */
void
scanPointerKeys(const SourceFile &file, std::vector<Finding> &findings)
{
    const std::string &text = file.stripped;
    const auto starts = lineStarts(text);
    static const std::vector<std::string> kContainers = {
        "map", "set", "multimap", "multiset"};
    for (const auto &name : kContainers) {
        std::size_t pos = 0;
        while ((pos = text.find(name, pos)) != std::string::npos) {
            const std::size_t begin = pos;
            pos += name.size();
            if (begin > 0 && isWordChar(text[begin - 1]))
                continue; // suffix of a longer identifier
            std::size_t p = pos;
            while (p < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[p])))
                ++p;
            if (p >= text.size() || text[p] != '<')
                continue; // not a template instantiation
            if (pos < text.size() && isWordChar(text[pos]))
                continue;
            // Extract the first template argument at depth 0.
            ++p;
            int angle = 0, paren = 0, square = 0;
            std::string arg;
            for (; p < text.size(); ++p) {
                const char c = text[p];
                if (c == '<')
                    ++angle;
                else if (c == '>') {
                    if (angle == 0)
                        break;
                    --angle;
                } else if (c == '(')
                    ++paren;
                else if (c == ')')
                    --paren;
                else if (c == '[')
                    ++square;
                else if (c == ']')
                    --square;
                else if (c == ',' && angle == 0 && paren == 0 &&
                         square == 0)
                    break;
                arg += c;
            }
            if (p >= text.size())
                continue; // unterminated; not a real instantiation
            const bool raw_ptr =
                arg.find('*') != std::string::npos;
            const bool smart_ptr =
                std::regex_search(arg, std::regex(R"(\b(shared_ptr|unique_ptr|weak_ptr)\s*<)"));
            if (raw_ptr || smart_ptr) {
                findings.push_back(
                    {file.rel, lineAt(starts, begin), "pointer-key",
                     "ordered container '" + name +
                         "' keyed by a pointer ('" + arg +
                         "'): iteration follows allocation addresses, "
                         "which vary run to run; key by a stable id "
                         "instead"});
            }
        }
    }
}

/**
 * Queue-seam rule: the engine module may drive node event queues only
 * through the shard-execution seam (engine/shard_exec.cc), so the
 * per-destination exchange merge stays the single delivery path and
 * the bit-identity argument across worker counts has one choke point
 * to audit. deliverAt is banned alongside the raw EventQueue mutators:
 * post-exchange dispatch is only legal via dispatchDelivery (and the
 * urgent path via deliverUrgent) on the shard that owns the
 * destination node — a direct NIC delivery from engine code would
 * bypass both the canonical per-column order and the ownership rule.
 * Method-call syntax is what distinguishes a queue mutation from the
 * engine's own same-named helpers (a bare `runNodeQuantum(` never
 * matches; `queue.runOne(` does).
 */
const std::regex kQueueMutatorRe(
    R"((\.|->)\s*(runOne|runUntil|fastForwardTo|scheduleIn|schedule|deschedule|deliverAt)\s*\()");

void
scanQueueSeam(const SourceFile &file, std::vector<Finding> &findings)
{
    if (moduleOf(file.rel) != "engine" ||
        file.rel == "engine/shard_exec.cc")
        return;
    const auto lines = splitLines(file.stripped);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::smatch m;
        if (std::regex_search(lines[i], m, kQueueMutatorRe)) {
            findings.push_back(
                {file.rel, static_cast<int>(i) + 1, "queue-seam",
                 "event-queue mutator '" + m.str(2) +
                     "' called from engine code outside the "
                     "shard-execution seam (engine/shard_exec.cc); "
                     "route execution through runNodeQuantum/stepNode/"
                     "advanceNodeTo/snapToQuantumEnd and dispatch "
                     "through dispatchDelivery/deliverUrgent so each "
                     "destination shard's exchange merge stays the "
                     "only delivery path"});
        }
    }
}

/** Layering + include-cycle checks over the whole tree. */
void
checkGraph(const std::vector<SourceFile> &files,
           std::vector<Finding> &findings)
{
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < files.size(); ++i)
        index[files[i].rel] = i;

    // Named-edge layering violations.
    for (const auto &file : files) {
        const std::string from_mod = moduleOf(file.rel);
        const int from_layer = layerOf(from_mod);
        for (const auto &edge : file.includes) {
            const std::string to_mod = moduleOf(edge.target);
            if (to_mod == from_mod)
                continue;
            const int to_layer = layerOf(to_mod);
            if (from_layer < 0 || to_layer < 0)
                continue; // unknown module: layering not declared
            if (to_layer > from_layer) {
                findings.push_back(
                    {file.rel, edge.line, "layering",
                     "include of \"" + edge.target + "\" reaches up "
                     "the layer DAG: module '" + from_mod + "' (layer " +
                     std::to_string(from_layer) + ") -> '" + to_mod +
                     "' (layer " + std::to_string(to_layer) + ")"});
            }
        }
    }

    // File-level include cycles (DFS, deterministic order).
    enum class Color
    {
        White,
        Gray,
        Black,
    };
    std::vector<Color> color(files.size(), Color::White);
    std::vector<std::size_t> stack;
    std::set<std::string> reported;

    struct Dfs
    {
        const std::vector<SourceFile> &files;
        std::map<std::string, std::size_t> &index;
        std::vector<Color> &color;
        std::vector<std::size_t> &stack;
        std::set<std::string> &reported;
        std::vector<Finding> &findings;

        void
        visit(std::size_t u)
        {
            color[u] = Color::Gray;
            stack.push_back(u);
            for (const auto &edge : files[u].includes) {
                const auto it = index.find(edge.target);
                if (it == index.end())
                    continue;
                const std::size_t v = it->second;
                if (color[v] == Color::Gray) {
                    // Back edge: the cycle is stack[v..] + v.
                    auto at = std::find(stack.begin(), stack.end(), v);
                    std::string path;
                    for (auto jt = at; jt != stack.end(); ++jt)
                        path += files[*jt].rel + " -> ";
                    path += files[v].rel;
                    if (reported.insert(path).second) {
                        findings.push_back(
                            {files[u].rel, edge.line, "include-cycle",
                             "include cycle: " + path});
                    }
                } else if (color[v] == Color::White) {
                    visit(v);
                }
            }
            stack.pop_back();
            color[u] = Color::Black;
        }
    };
    Dfs dfs{files, index, color, stack, reported, findings};
    for (std::size_t i = 0; i < files.size(); ++i)
        if (color[i] == Color::White)
            dfs.visit(i);
}

/**
 * Checkpoint-coverage heuristic: every data member of every struct
 * defined in ckpt/checkpoint.hh must appear (as a token) in
 * ckpt/checkpoint.cc, or a freshly added snapshot field is silently
 * never encoded/decoded.
 */
void
checkCkptCoverage(const std::vector<SourceFile> &files,
                  std::vector<Finding> &findings)
{
    const SourceFile *header = nullptr;
    const SourceFile *impl = nullptr;
    for (const auto &f : files) {
        if (f.rel == "ckpt/checkpoint.hh")
            header = &f;
        else if (f.rel == "ckpt/checkpoint.cc")
            impl = &f;
    }
    if (!header || !impl)
        return; // tree has no checkpoint layer; rule not applicable

    const std::string &text = header->stripped;
    const auto starts = lineStarts(text);

    // Walk `struct X {` / `class X {` definitions.
    static const std::regex kStructRe(
        R"(\b(struct|class)\s+(\w+)\s*(final\s*)?([:{]))");
    for (auto it = std::sregex_iterator(text.begin(), text.end(),
                                        kStructRe);
         it != std::sregex_iterator(); ++it) {
        const std::string struct_name = (*it)[2];
        std::size_t p =
            static_cast<std::size_t>(it->position(4));
        // Skip a base-clause to the opening brace.
        while (p < text.size() && text[p] != '{' && text[p] != ';')
            ++p;
        if (p >= text.size() || text[p] != '{')
            continue; // forward declaration
        // Collect depth-1 statements of the body.
        int depth = 0;
        std::string stmt;
        std::size_t stmt_first = 0; ///< offset of stmt's first token
        for (; p < text.size(); ++p) {
            const char c = text[p];
            if (c == '{') {
                ++depth;
                continue;
            }
            if (c == '}') {
                --depth;
                if (depth == 0)
                    break;
                continue;
            }
            if (depth != 1)
                continue;
            if (c != ';') {
                if (stmt.empty() &&
                    !std::isspace(static_cast<unsigned char>(c)))
                    stmt_first = p;
                if (!stmt.empty() ||
                    !std::isspace(static_cast<unsigned char>(c)))
                    stmt += c;
                continue;
            }
            // One depth-1 statement ending at p.
            std::string s = stmt;
            stmt.clear();
            const std::size_t here = stmt_first;
            // Drop access-specifier labels glued to the front.
            static const std::regex kAccessRe(
                R"((public|private|protected)\s*:)");
            s = std::regex_replace(s, kAccessRe, " ");
            if (s.find('(') != std::string::npos)
                continue; // member function (or function pointer)
            static const std::regex kSkipRe(
                R"(^\s*(using|typedef|friend|enum|struct|class|template)\b)");
            if (std::regex_search(s, kSkipRe))
                continue;
            // Field declarator: last identifier before '=', '[' or
            // the end. (Multi-declarator lines split on top-level ','
            // are not used in this codebase; keep the common case.)
            const std::size_t eq = s.find('=');
            std::string decl =
                eq == std::string::npos ? s : s.substr(0, eq);
            const std::size_t br = decl.find('[');
            if (br != std::string::npos)
                decl = decl.substr(0, br);
            static const std::regex kIdentRe(R"((\w+)\s*$)");
            std::smatch m;
            if (!std::regex_search(decl, m, kIdentRe))
                continue;
            const std::string field = m.str(1);
            static const std::regex kTypeTailRe(R"(^(const|int|char|bool|float|double|long|short|unsigned|signed|auto)$)");
            if (std::regex_match(field, kTypeTailRe))
                continue; // e.g. `struct X;` artifacts — not a field
            const std::regex token_re("\\b" + field + "\\b");
            if (!std::regex_search(impl->stripped, token_re)) {
                findings.push_back(
                    {header->rel, lineAt(starts, here), "ckpt-coverage",
                     "field '" + field + "' of snapshotted struct '" +
                         struct_name +
                         "' never appears in ckpt/checkpoint.cc "
                         "encode/decode — checkpoints would silently "
                         "omit it"});
            }
        }
    }
}

} // namespace

std::vector<Finding>
analyzeTree(const std::string &src_root)
{
    std::vector<Finding> findings;
    const fs::path root(src_root);

    std::vector<std::string> rels;
    for (auto it = fs::recursive_directory_iterator(root);
         it != fs::recursive_directory_iterator(); ++it) {
        if (!it->is_regular_file())
            continue;
        const auto ext = it->path().extension().string();
        if (ext != ".hh" && ext != ".cc" && ext != ".cpp")
            continue;
        std::string rel =
            fs::relative(it->path(), root).generic_string();
        rels.push_back(std::move(rel));
    }
    std::sort(rels.begin(), rels.end());

    std::vector<SourceFile> files;
    files.reserve(rels.size());
    for (const auto &rel : rels) {
        SourceFile f;
        f.rel = rel;
        const std::string raw = readFile(root / rel);
        f.stripped = stripCommentsAndStrings(raw);
        // Include paths live inside the quotes the stripper blanks,
        // so extract them from the raw line — but only where the
        // stripped line confirms a real include directive (and not,
        // say, one quoted inside a comment).
        const auto raw_lines = splitLines(raw);
        const auto stripped_lines = splitLines(f.stripped);
        static const std::regex kIncludeHereRe(
            R"(^\s*#\s*include\s*\")");
        for (std::size_t i = 0; i < raw_lines.size(); ++i) {
            if (i >= stripped_lines.size() ||
                !std::regex_search(stripped_lines[i], kIncludeHereRe))
                continue;
            std::smatch m;
            if (std::regex_search(raw_lines[i], m, kIncludeRe)) {
                const std::string target = m.str(1);
                if (fs::exists(root / target))
                    f.includes.push_back(
                        {static_cast<int>(i) + 1, target});
            }
        }
        files.push_back(std::move(f));
    }

    for (const auto &f : files) {
        scanFile(f, src_root, findings);
        scanPointerKeys(f, findings);
        scanQueueSeam(f, findings);
    }
    checkGraph(files, findings);
    checkCkptCoverage(files, findings);

    std::sort(findings.begin(), findings.end());
    return findings;
}

} // namespace aqsim::analyze
