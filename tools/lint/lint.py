#!/usr/bin/env python3
"""aqsim repository lint: header hygiene, determinism, naming.

Checks (each file, line numbers reported):

  guards     every .hh carries the canonical include guard
             AQSIM_<RELPATH>_HH (src/ stripped), with a matching
             #define and a trailing ``#endif // GUARD`` comment,
             and never ``#pragma once``
  determinism banned nondeterminism sources outside base/random:
             rand()/srand(), time()/gettimeofday()/clock(),
             std::random_device, and the std <random> engines
             (mt19937 & friends) — a run must be a pure function of
             its seed, drawn through base/random.hh Rng streams
  naming     snake_case file names, .hh/.cc extensions only,
             no ``using namespace std``
  hygiene    a foo.cc with a sibling foo.hh includes it first;
             no trailing whitespace or tab indentation
  hotpath    no std::function (or <functional> include) under
             src/sim/ — the event kernel is allocation-free; use
             sim::SmallCallback (docs/performance.md)
  persistence no raw file I/O (fopen/fwrite/fread, std::ofstream/
             ifstream/fstream) under src/ outside src/ckpt/ — all
             persistent simulator state goes through the versioned,
             CRC-guarded ckpt_io layer (docs/checkpoint-restore.md);
             tools/tests/bench report writers are exempt, as is
             src/supervise/incident_log.cc (an append-only JSONL
             diagnostics stream, not simulator state)
  engine-seam no direct engine use (SequentialEngine/ThreadedEngine)
             under src/harness/ — the harness reaches an engine only
             through supervise::RunSupervisor, so every harness run
             gets the restore/retry/escalate lifecycle and the
             supervision seam stays the one place engines are driven
             (docs/supervision.md); mirrors the queue-seam rule

Usage: lint.py [--root DIR] [paths...]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import argparse
import re
import sys
from pathlib import Path

DEFAULT_DIRS = ["src", "tests", "bench", "tools", "examples"]
SOURCE_EXTS = {".hh", ".cc", ".cpp"}

# Deliberately-broken inputs for the self-tests of lint.py and
# aqsim_analyze; skipped when expanding directories (still lintable
# when named explicitly on the command line).
EXCLUDED_DIRS = [
    "tools/lint/fixtures",
    "tests/analyze_fixtures",
]

# Nondeterminism sources; base/random is the only place allowed to
# touch the underlying generators. std::chrono is deliberately not
# banned: wall-clock timing of *host* execution is measurement, not
# simulation input.
#
# The call patterns are matched against *qualification-normalized*
# code (std:: and global :: prefixes removed first), so std::time(
# and ::time( are caught; the lookbehind then only has to exclude
# member access (.time/->time) and other-namespace qualification,
# both of which are a different function by definition.
BANNED = [
    (re.compile(r"(?<![\w:.>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w:.>])time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    # The std <random> engines fork unmanaged streams: seeding and
    # stream assignment would escape the Rng::fork() discipline that
    # keeps runs reproducible across engines and worker counts.
    (re.compile(r"\bmt19937(_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"),
     "std::default_random_engine"),
    (re.compile(r"\bminstd_rand0?\b"), "std::minstd_rand"),
    (re.compile(r"\branlux(24|48)(_base)?\b"), "std::ranlux"),
    (re.compile(r"\bknuth_b\b"), "std::knuth_b"),
]

SNAKE_CASE = re.compile(r"^[a-z0-9_.]+$")


def findings_for(path: Path, rel: str, text: str):
    lines = text.splitlines()
    out = []

    def finding(lineno, rule, message):
        out.append((rel, lineno, rule, message))

    # --- naming ---
    if not SNAKE_CASE.match(path.name):
        finding(1, "naming", f"file name '{path.name}' is not snake_case")

    is_header = path.suffix == ".hh"
    posix_rel = rel.replace("\\", "/")
    in_base_random = posix_rel.startswith("src/base/random")
    in_sim_kernel = posix_rel.startswith("src/sim/")
    # The incident log is an append-only JSONL diagnostics stream —
    # recovery telemetry, not simulator state — so it writes directly.
    state_serialization_banned = (
        posix_rel.startswith("src/") and
        not posix_rel.startswith("src/ckpt/") and
        posix_rel != "src/supervise/incident_log.cc")
    in_harness = posix_rel.startswith("src/harness/")

    # --- guards ---
    if is_header:
        guard_rel = rel[len("src/"):] if rel.startswith("src/") else rel
        guard = "AQSIM_" + re.sub(r"[^A-Za-z0-9]", "_", guard_rel).upper()
        if f"#ifndef {guard}" not in text:
            finding(1, "guards", f"missing include guard '{guard}'")
        elif f"#define {guard}" not in text:
            finding(1, "guards", f"#ifndef {guard} without matching #define")
        else:
            tail = [ln.strip() for ln in lines if ln.strip()][-1]
            if tail != f"#endif // {guard}":
                finding(len(lines), "guards",
                        f"file must end with '#endif // {guard}'")
        for i, line in enumerate(lines, 1):
            if re.match(r"\s*#\s*pragma\s+once", line):
                finding(i, "guards", "#pragma once (use include guards)")

    # --- hygiene: own header first ---
    if path.suffix in (".cc", ".cpp") and path.with_suffix(".hh").exists():
        own = None
        if rel.startswith("src/"):
            own = rel[len("src/"):].rsplit(".", 1)[0] + ".hh"
        else:
            own = path.name.rsplit(".", 1)[0] + ".hh"
        includes = [ln for ln in lines if ln.lstrip().startswith("#include")]
        if includes and f'"{own}"' not in includes[0]:
            finding(lines.index(includes[0]) + 1, "hygiene",
                    f"first include must be the file's own header "
                    f'("{own}")')

    in_block_comment = False
    for i, line in enumerate(lines, 1):
        # --- hygiene: whitespace ---
        if line != line.rstrip():
            finding(i, "hygiene", "trailing whitespace")
        if line.startswith("\t"):
            finding(i, "hygiene", "tab indentation")

        # Strip comments/strings crudely before token checks so prose
        # mentioning rand()/time() does not trip the determinism rule.
        code = line
        if in_block_comment:
            end = code.find("*/")
            if end < 0:
                continue
            code = code[end + 2:]
            in_block_comment = False
        code = re.sub(r'"(\\.|[^"\\])*"', '""', code)
        start = code.find("/*")
        while start >= 0:
            end = code.find("*/", start + 2)
            if end < 0:
                code = code[:start]
                in_block_comment = True
                break
            code = code[:start] + code[end + 2:]
            start = code.find("/*")
        code = code.split("//", 1)[0]

        # --- naming: using namespace std ---
        if re.search(r"\busing\s+namespace\s+std\b", code):
            finding(i, "naming", "'using namespace std' is banned")

        # --- determinism ---
        if not in_base_random:
            # Normalize away std:: and global :: qualification so
            # qualified calls (std::time(nullptr)) cannot slip past
            # the lookbehinds, which exist to skip *member* access
            # and *other*-namespace qualification only.
            norm = re.sub(r"\bstd\s*::\s*", "", code)
            norm = re.sub(r"(?<![\w>])::\s*", "", norm)
            for pattern, what in BANNED:
                if pattern.search(norm):
                    finding(i, "determinism",
                            f"{what} is banned outside base/random "
                            "(runs must be pure functions of the seed)")
            if re.search(r"#\s*include\s*<random>", line):
                finding(i, "determinism",
                        "<random> is banned outside base/random "
                        "(draw through base/random.hh Rng streams)")

        # --- hotpath: the event kernel must stay allocation-free ---
        if in_sim_kernel:
            if re.search(r"\bstd\s*::\s*function\b", code):
                finding(i, "hotpath",
                        "std::function is banned under src/sim/ "
                        "(use sim::SmallCallback; "
                        "see docs/performance.md)")
            if re.search(r'#\s*include\s*<functional>', line):
                finding(i, "hotpath",
                        "<functional> is banned under src/sim/ "
                        "(the event kernel must not type-erase "
                        "through std::function)")

        # --- engine-seam: the harness drives engines only through the
        # --- run supervisor ---
        if in_harness:
            if re.search(r"\b(SequentialEngine|ThreadedEngine)\b",
                         code):
                finding(i, "engine-seam",
                        "direct engine use is banned under "
                        "src/harness/ (run through "
                        "supervise::RunSupervisor so every run gets "
                        "the recovery lifecycle; see "
                        "docs/supervision.md)")

        # --- persistence: state serialization goes through ckpt_io ---
        if state_serialization_banned:
            if re.search(r"\bf(open|write|read)\s*\(", code) or \
               re.search(r"\b(std\s*::\s*)?[oi]?fstream\b", code):
                finding(i, "persistence",
                        "raw file I/O is banned under src/ outside "
                        "src/ckpt/ (persist state through the "
                        "versioned, CRC-guarded ckpt_io layer; see "
                        "docs/checkpoint-restore.md)")

    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("paths", nargs="*",
                        help=f"files/dirs to lint (default: "
                             f"{' '.join(DEFAULT_DIRS)})")
    args = parser.parse_args()

    root = Path(args.root).resolve()
    targets = args.paths or DEFAULT_DIRS
    files = []
    for target in targets:
        p = (root / target) if not Path(target).is_absolute() \
            else Path(target)
        if p.is_dir():
            excluded = [root / d for d in EXCLUDED_DIRS]
            files.extend(sorted(
                q for q in p.rglob("*")
                if q.suffix in SOURCE_EXTS and
                not any(q.is_relative_to(e) for e in excluded)))
        elif p.is_file():
            files.append(p)
        else:
            print(f"lint: no such path: {target}", file=sys.stderr)
            return 2

    all_findings = []
    for path in files:
        rel = str(path.relative_to(root)) if path.is_relative_to(root) \
            else str(path)
        try:
            text = path.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            all_findings.append((rel, 1, "hygiene", "not valid UTF-8"))
            continue
        all_findings.extend(findings_for(path, rel, text))

    for rel, lineno, rule, message in all_findings:
        print(f"{rel}:{lineno}: [{rule}] {message}")
    print(f"lint: {len(files)} files, {len(all_findings)} findings",
          file=sys.stderr)
    return 1 if all_findings else 0


if __name__ == "__main__":
    sys.exit(main())
