// Deliberately broken: direct engine use from harness code. The
// engine-seam rule only fires when this body is attributed to a
// src/harness/ path (the self-test feeds it as src/harness/bad.cc);
// named directly on the command line it demonstrates the rule's
// comment/string stripping instead.
#include "engine/sequential_engine.hh"
#include "engine/threaded_engine.hh"

void
runDirectly()
{
    // Comment mentioning SequentialEngine must not fire.
    const char *label = "ThreadedEngine"; // nor this string
    aqsim::engine::SequentialEngine sequential({});
    aqsim::engine::ThreadedEngine threaded({});
    (void)label;
    (void)sequential;
    (void)threaded;
}
