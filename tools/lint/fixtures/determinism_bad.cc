// Deliberately broken: every banned nondeterminism spelling the lint
// must catch, including the qualified forms that once slipped past
// the lookbehinds (std::time(nullptr) was never flagged). This file
// lives in an EXCLUDED_DIRS entry, so the repository lint skips it;
// tools/lint/test_lint.py lints it explicitly and asserts the exact
// findings.

#include <ctime>

void
bad()
{
    std::time(nullptr);     // determinism: qualified time()
    ::time(0);              // determinism: global-scope time()
    time(NULL);             // determinism: unqualified time()
    std::rand();            // determinism: qualified rand()
    srand(42);              // determinism: srand()
    std::clock();           // determinism: qualified clock()
}
