// Legitimate spellings the determinism rule must NOT flag: member
// access, other-namespace qualification, identifiers that merely end
// in a banned name, and banned names inside comments or strings.

#include <string>

void
fine(Sim &sim, Clock *clk)
{
    sim.time();                    // member call
    clk->time(nullptr);            // member call through pointer
    hw::clock();                   // other-namespace clock
    runtime(0);                    // identifier suffix match
    std::string s = "time(NULL)";  // inside a string literal
    // prose mentioning rand() and time(nullptr) in a comment
}
