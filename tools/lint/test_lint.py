#!/usr/bin/env python3
"""Self-test for tools/lint/lint.py.

Regression anchor: the determinism rule's lookbehind `(?<![\\w:.])`
excluded ':' to skip other-namespace qualification, which also made
`std::time(nullptr)` invisible — the exact call the rule exists to
catch. These tests pin the fixed behavior (qualification-normalized
matching) for every banned pattern, the non-matches that motivated
the lookbehinds, and the fixture-directory exclusion.

Run directly (registered as the `lint_selftest` ctest).
"""

import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent
sys.path.insert(0, str(HERE))

import lint  # noqa: E402


def determinism(line):
    """Determinism findings for a one-line .cc body."""
    found = lint.findings_for(Path("src/core/x.cc"), "src/core/x.cc",
                              line + "\n")
    return [f for f in found if f[2] == "determinism"]


class QualifiedCallRegression(unittest.TestCase):
    """std::time(nullptr) & friends must be flagged (the old bug)."""

    def test_qualified_time(self):
        self.assertTrue(determinism("std::time(nullptr);"))

    def test_global_scope_time(self):
        self.assertTrue(determinism("::time(0);"))

    def test_unqualified_time(self):
        self.assertTrue(determinism("time(NULL);"))

    def test_qualified_rand(self):
        self.assertTrue(determinism("int x = std::rand();"))

    def test_unqualified_srand(self):
        self.assertTrue(determinism("srand(42);"))

    def test_qualified_clock(self):
        self.assertTrue(determinism("auto c = std::clock();"))

    def test_spaced_qualification(self):
        self.assertTrue(determinism("std :: time ( nullptr );"))


class LookbehindNonMatches(unittest.TestCase):
    """The spellings the lookbehinds exist to skip stay unflagged."""

    def test_member_call(self):
        self.assertFalse(determinism("sim.time();"))

    def test_member_call_through_pointer(self):
        self.assertFalse(determinism("clk->time(nullptr);"))

    def test_other_namespace(self):
        self.assertFalse(determinism("hw::clock();"))

    def test_identifier_suffix(self):
        self.assertFalse(determinism("runtime(0);"))

    def test_steady_clock_now(self):
        self.assertFalse(
            determinism("auto t = std::chrono::steady_clock::now();"))

    def test_comment(self):
        self.assertFalse(determinism("// prose about time(nullptr)"))

    def test_string_literal(self):
        self.assertFalse(determinism('log("time(NULL)");'))


class OtherRules(unittest.TestCase):
    def test_random_device_qualified(self):
        self.assertTrue(determinism("std::random_device rd;"))

    def test_mt19937(self):
        self.assertTrue(determinism("std::mt19937_64 gen(seed);"))

    def test_base_random_exempt(self):
        found = lint.findings_for(Path("src/base/random.cc"),
                                  "src/base/random.cc",
                                  "std::mt19937_64 gen(seed);\n")
        self.assertFalse([f for f in found if f[2] == "determinism"])


def findings(rel, body, rule):
    """Findings of one rule for a file body attributed to rel."""
    found = lint.findings_for(Path(rel), rel, body)
    return [f for f in found if f[2] == rule]


class EngineSeam(unittest.TestCase):
    """src/harness/ must reach engines only through the supervisor."""

    def test_sequential_engine_flagged_in_harness(self):
        self.assertTrue(findings(
            "src/harness/x.cc",
            "engine::SequentialEngine engine(options);\n",
            "engine-seam"))

    def test_threaded_engine_flagged_in_harness(self):
        self.assertTrue(findings(
            "src/harness/x.cc",
            "engine::ThreadedEngine engine(options);\n",
            "engine-seam"))

    def test_comment_and_string_not_flagged(self):
        body = ('// SequentialEngine in prose\n'
                'const char *s = "ThreadedEngine";\n')
        self.assertFalse(findings("src/harness/x.cc", body,
                                  "engine-seam"))

    def test_supervisor_itself_exempt(self):
        self.assertTrue(not findings(
            "src/supervise/run_supervisor.cc",
            "engine::SequentialEngine engine(options);\n",
            "engine-seam"))

    def test_identifier_suffix_not_flagged(self):
        self.assertFalse(findings(
            "src/harness/x.cc",
            "MySequentialEngineView v;\n",
            "engine-seam"))

    def test_fixture_body_fires_when_attributed_to_harness(self):
        body = (HERE / "fixtures" / "engine_seam_bad.cc").read_text()
        found = findings("src/harness/bad.cc", body, "engine-seam")
        self.assertEqual(len(found), 2, found)


class PersistenceExemption(unittest.TestCase):
    """The incident log's JSONL append is diagnostics, not state."""

    def test_incident_log_exempt(self):
        self.assertFalse(findings(
            "src/supervise/incident_log.cc",
            "std::ofstream out(path_, std::ios::app);\n",
            "persistence"))

    def test_other_supervise_files_still_banned(self):
        self.assertTrue(findings(
            "src/supervise/run_supervisor.cc",
            "std::ofstream out(path);\n",
            "persistence"))


class Fixtures(unittest.TestCase):
    """End-to-end over the fixture files via the CLI."""

    def run_lint(self, *paths):
        proc = subprocess.run(
            [sys.executable, str(HERE / "lint.py"),
             "--root", str(ROOT), *paths],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout

    def test_bad_fixture_flags_every_banned_call(self):
        code, out = self.run_lint("tools/lint/fixtures/determinism_bad.cc")
        self.assertEqual(code, 1)
        self.assertEqual(out.count("[determinism]"), 6, out)

    def test_ok_fixture_is_clean(self):
        code, out = self.run_lint("tools/lint/fixtures/determinism_ok.cc")
        self.assertEqual(code, 0, out)

    def test_fixture_dirs_excluded_from_directory_scan(self):
        # Scanning tools/ must skip the deliberately-broken fixtures.
        code, out = self.run_lint("tools")
        self.assertEqual(code, 0, out)
        self.assertNotIn("fixtures", out)


if __name__ == "__main__":
    unittest.main()
