#!/usr/bin/env bash
# Build, test, and regenerate every paper figure/table plus the
# ablations, leaving test_output.txt and bench_output.txt in the repo
# root — the full validation loop for a release.
#
# Usage: scripts/run_all.sh [build-dir] [bench-scale]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
scale="${2:-1.0}"

echo "== configure + build =="
cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir"

echo "== tests =="
ctest --test-dir "$build_dir" 2>&1 | tee "$repo_root/test_output.txt"

echo "== figure and table reproduction =="
{
    echo "### fig6_nas (scale $scale)"
    "$build_dir/bench/fig6_nas" --scale "$scale"
    echo
    echo "### fig7_namd (scale $scale)"
    "$build_dir/bench/fig7_namd" --scale "$scale"
    echo
    echo "### fig8_pareto (scale $scale)"
    "$build_dir/bench/fig8_pareto" --scale "$scale"
    echo
    echo "### fig9_scaleout (scale 0.5)"
    "$build_dir/bench/fig9_scaleout" --scale 0.5
    echo
    echo "### ablation_policy (scale 0.5)"
    "$build_dir/bench/ablation_policy" --scale 0.5
    echo
    echo "### micro_kernel"
    "$build_dir/bench/micro_kernel" --benchmark_min_time=0.05s
    echo
    echo "### micro_sync"
    "$build_dir/bench/micro_sync" --benchmark_min_time=0.05s
} 2>&1 | tee "$repo_root/bench_output.txt"

echo "done: see test_output.txt and bench_output.txt"
