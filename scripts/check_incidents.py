#!/usr/bin/env python3
"""Validate a supervisor incident log (JSONL) against its schema.

The run supervisor (src/supervise/) appends one JSON object per
recovery decision to the file given with --incident-log. CI's
chaos-soak job feeds that file through this checker: every line must
be valid JSON carrying exactly the documented fields with the right
types, outcomes must come from the closed set, and (with
--expect-recovered) the log must tell a complete story — every
failure followed by a retry/escalation and the final record a
recovery. Schema table: docs/supervision.md.

Usage:
    check_incidents.py LOG [--expect-recovered] [--min-incidents N]
    check_incidents.py --self-test
"""

from __future__ import annotations

import argparse
import json
import sys

REQUIRED_FIELDS = {
    "attempt": int,
    "cause": str,
    "quantum": int,
    "backoff_s": (int, float),
    "restore_source": str,
    "outcome": str,
    "detail": str,
}

OUTCOMES = {"retry", "escalate", "abort", "recovered"}

# Causes the engines can raise today; "none" marks the terminal
# recovered record and "peer-recovery" its distributed-engine variant
# (the healed failure was a dead/hung worker process). New causes must
# be added here *and* to the schema table in docs/supervision.md.
CAUSES = {
    "watchdog",
    "panic",
    "fatal",
    "injected",
    "peer-failure",
    "peer-recovery",
    "none",
}

# Causes a terminal recovered record may carry.
RECOVERED_CAUSES = {"none", "peer-recovery"}


def check_record(line_no: int, line: str, errors: list[str]) -> dict | None:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as exc:
        errors.append(f"line {line_no}: not valid JSON: {exc}")
        return None
    if not isinstance(record, dict):
        errors.append(f"line {line_no}: not a JSON object")
        return None

    errors_before = len(errors)
    for field, kind in REQUIRED_FIELDS.items():
        if field not in record:
            errors.append(f"line {line_no}: missing field '{field}'")
        elif not isinstance(record[field], kind) or isinstance(
            record[field], bool
        ):
            errors.append(
                f"line {line_no}: field '{field}' should be "
                f"{kind}, got {type(record[field]).__name__}"
            )
    for field in record:
        if field not in REQUIRED_FIELDS:
            errors.append(f"line {line_no}: unknown field '{field}'")
    if len(errors) > errors_before:
        return record

    if record["outcome"] not in OUTCOMES:
        errors.append(
            f"line {line_no}: outcome '{record['outcome']}' not in "
            f"{sorted(OUTCOMES)}"
        )
    if record["cause"] not in CAUSES:
        errors.append(
            f"line {line_no}: cause '{record['cause']}' not in "
            f"{sorted(CAUSES)}"
        )
    if record["attempt"] < 1:
        errors.append(f"line {line_no}: attempt must be >= 1")
    if record["quantum"] < 0:
        errors.append(f"line {line_no}: quantum must be >= 0")
    if record["backoff_s"] < 0:
        errors.append(f"line {line_no}: backoff_s must be >= 0")
    return record


def check_story(records: list[dict], errors: list[str]) -> None:
    """Cross-record invariants: attempts ascend, the log terminates."""
    for prev, cur in zip(records, records[1:]):
        if cur["attempt"] <= prev["attempt"]:
            errors.append(
                f"attempt {cur['attempt']} does not ascend past "
                f"{prev['attempt']}"
            )
    for record in records[:-1]:
        if record["outcome"] in ("abort", "recovered"):
            errors.append(
                f"terminal outcome '{record['outcome']}' "
                f"(attempt {record['attempt']}) is not the last record"
            )
    last = records[-1]
    if last["outcome"] not in ("abort", "recovered"):
        errors.append(
            f"log ends with non-terminal outcome '{last['outcome']}'"
        )
    if (
        last["outcome"] == "recovered"
        and last["cause"] not in RECOVERED_CAUSES
    ):
        errors.append(
            "recovered record must have cause in "
            f"{sorted(RECOVERED_CAUSES)}"
        )


def validate_lines(
    lines: list[str], expect_recovered: bool, min_incidents: int
) -> tuple[list[dict], list[str]]:
    """Run every check over pre-split JSONL lines."""
    errors: list[str] = []
    records = []
    for line_no, line in enumerate(lines, start=1):
        record = check_record(line_no, line, errors)
        if record is not None:
            records.append(record)

    if len(records) < min_incidents:
        errors.append(
            f"only {len(records)} incident(s), expected at least "
            f"{min_incidents}"
        )
    if records and not errors:
        check_story(records, errors)
    if expect_recovered:
        if not records or records[-1].get("outcome") != "recovered":
            errors.append("final record is not a recovery")
    return records, errors


def _record(**overrides) -> str:
    base = {
        "attempt": 1,
        "cause": "injected",
        "quantum": 5,
        "backoff_s": 0.0,
        "restore_source": "",
        "outcome": "retry",
        "detail": "drill",
    }
    base.update(overrides)
    return json.dumps(base)


# (name, lines, expect_recovered, should_pass) — the checker checking
# itself, so CI notices when schema edits break detection.
SELF_TEST_CASES = [
    (
        "clean recovery story",
        [
            _record(),
            _record(attempt=2, cause="none", outcome="recovered"),
        ],
        True,
        True,
    ),
    (
        "peer failure healed by peer recovery",
        [
            _record(
                cause="peer-failure",
                detail="peer 1 (pid 42) disconnected",
            ),
            _record(
                attempt=2, cause="peer-recovery", outcome="recovered"
            ),
        ],
        True,
        True,
    ),
    (
        "unknown cause rejected",
        [_record(cause="gremlins")],
        False,
        False,
    ),
    (
        "recovered with failure cause rejected",
        [_record(cause="peer-failure", outcome="recovered")],
        False,
        False,
    ),
    (
        "non-terminal tail rejected",
        [_record(), _record(attempt=2)],
        True,
        False,
    ),
    (
        "non-ascending attempts rejected",
        [
            _record(attempt=2),
            _record(attempt=1, cause="none", outcome="recovered"),
        ],
        False,
        False,
    ),
    (
        "malformed json rejected",
        ["{not json"],
        False,
        False,
    ),
    (
        "unknown field rejected",
        [_record()[:-1] + ', "extra": 1}'],
        False,
        False,
    ),
]


def self_test() -> int:
    failures = 0
    for name, lines, expect_recovered, should_pass in SELF_TEST_CASES:
        _, errors = validate_lines(lines, expect_recovered, 1)
        passed = not errors
        if passed != should_pass:
            failures += 1
            print(f"check_incidents: self-test FAILED: {name}")
            for error in errors:
                print(f"    {error}")
    total = len(SELF_TEST_CASES)
    print(
        f"check_incidents: self-test {total - failures}/{total} "
        "case(s) ok"
    )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "log",
        nargs="?",
        help="incident log (JSONL) to validate",
    )
    parser.add_argument(
        "--expect-recovered",
        action="store_true",
        help="fail unless the final record's outcome is 'recovered'",
    )
    parser.add_argument(
        "--min-incidents",
        type=int,
        default=1,
        help="fail if the log holds fewer records (default 1)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="validate the checker against built-in fixtures",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.log is None:
        parser.error("LOG is required unless --self-test is given")

    try:
        with open(args.log, encoding="utf-8") as f:
            lines = [line.rstrip("\n") for line in f if line.strip()]
    except OSError as exc:
        print(f"check_incidents: cannot read {args.log}: {exc}")
        return 1

    records, errors = validate_lines(
        lines, args.expect_recovered, args.min_incidents
    )

    for error in errors:
        print(f"check_incidents: {error}")
    if not errors:
        recoveries = sum(
            1 for r in records if r["outcome"] == "recovered"
        )
        print(
            f"check_incidents: {args.log}: {len(records)} incident(s) "
            f"valid, {recoveries} recovery"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
