#!/usr/bin/env bash
# The full correctness gauntlet: repo lint, a -Werror build, the
# default test suite, and the whole suite again under ASan+UBSan and
# TSan. Every box this script ticks is a precondition for trusting a
# perf PR (see docs/static-analysis.md).
#
# Usage: scripts/check_all.sh [--quick]
#   --quick   lint + werror build + default ctest only (no sanitizers)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

jobs="$(nproc 2>/dev/null || echo 2)"

run_preset() {
    local preset="$1"
    echo "== preset: $preset =="
    cmake --preset "$preset" -S "$repo_root"
    cmake --build --preset "$preset" -j "$jobs"
    ctest --preset "$preset" -j "$jobs"
}

echo "== lint =="
python3 "$repo_root/tools/lint/lint.py" --root "$repo_root"
python3 "$repo_root/tools/lint/test_lint.py"

if command -v clang-format > /dev/null 2>&1; then
    echo "== clang-format (src/check) =="
    clang-format --dry-run --Werror "$repo_root"/src/check/*.hh \
        "$repo_root"/src/check/*.cc
else
    echo "== clang-format not found, skipping format check =="
fi

run_preset werror
run_preset default

echo "== aqsim_analyze (layering + determinism audit) =="
"$repo_root/build/tools/aqsim_analyze" --src "$repo_root/src"

# Clang TSA needs the clang frontend; enforced unconditionally in CI.
if command -v clang++ > /dev/null 2>&1; then
    run_preset tsa
else
    echo "== clang++ not found, skipping thread-safety preset =="
fi

if [[ "$quick" == 1 ]]; then
    echo "check_all: quick mode done (sanitizer presets skipped)"
    exit 0
fi

run_preset asan-ubsan
run_preset tsan

if command -v clang-tidy > /dev/null 2>&1; then
    echo "== clang-tidy (src) =="
    # The default preset always exports compile_commands.json (and
    # symlinks it at the repo root), so no reconfigure is needed.
    mapfile -t tidy_files < <(ls "$repo_root"/src/*/*.cc)
    clang-tidy -p "$repo_root/build" "${tidy_files[@]}"
else
    echo "== clang-tidy not found, skipping =="
fi

echo "check_all: all presets green"
