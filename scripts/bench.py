#!/usr/bin/env python3
"""Run the aqsim performance suite and emit a tracked BENCH_<date>.json.

Runs the google-benchmark microbenchmarks (micro_kernel, micro_sync)
plus a small fig9-style scale-out set through aqsim_cli, and writes a
single JSON snapshot suitable for committing next to the code it
measured.

Usage:
    python3 scripts/bench.py [--build-dir build-rel] [--smoke]
                             [--sweep] [--out F]

--smoke shrinks workload scales and repetitions so the whole suite
finishes in well under a minute (used by CI to keep the benchmarks
compiling and runnable); full runs take a few minutes and produce the
numbers worth tracking.

--sweep additionally runs the 64/256/1024/4096-node scale-out curve
(nas.ep under fixed:10us, sequential and threaded) and records
wall-clock milliseconds per quantum for each point — the scaling
evidence for the sharded event kernel (docs/performance.md).
"""

import argparse
import datetime
import json
import os
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Benchmarks whose names match this regex are recorded from each
# google-benchmark binary. Keep this focused on the hot paths the
# kernel/engine work targets, so the JSON stays reviewable.
KERNEL_FILTER = "BM_EventQueue|BM_CoroutineDelayChain"
SYNC_FILTER = ("BM_WorkerPoolQuantumGate|BM_ThreadedClusterQuantaThroughput"
               "|BM_ClusterQuantaThroughput")


def run_google_benchmark(binary, bench_filter, min_time):
    """Run one google-benchmark binary, return simplified records."""
    cmd = [
        str(binary),
        f"--benchmark_filter={bench_filter}",
        # Bare double (seconds): accepted by both old and new
        # google-benchmark releases (the "0.05x" suffix form is not).
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    out = subprocess.run(cmd, check=True, capture_output=True,
                         text=True).stdout
    data = json.loads(out)
    records = []
    for bench in data.get("benchmarks", []):
        rec = {
            "name": bench["name"],
            "real_time": bench["real_time"],
            "cpu_time": bench["cpu_time"],
            "time_unit": bench["time_unit"],
        }
        if "items_per_second" in bench:
            rec["items_per_second"] = bench["items_per_second"]
        records.append(rec)
    return records


def time_cli(binary, args, reps):
    """Wall-clock an aqsim_cli invocation; return the min of reps."""
    cmd = [str(binary)] + args + ["--quiet"]
    best = None
    for _ in range(reps):
        start = time.monotonic()
        subprocess.run(cmd, check=True, capture_output=True)
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def scaleout_points(smoke):
    """Fig9-style scale-out points: 64-node EP and NAMD runs."""
    ep_scale = "1" if smoke else "16"
    namd_scale = "0.25" if smoke else "4"
    return [
        ("fig9_ep_threaded",
         ["--workload", "nas.ep", "--nodes", "64", "--engine",
          "threaded", "--policy", "fixed:10us", "--scale", ep_scale]),
        ("fig9_namd_threaded",
         ["--workload", "namd", "--nodes", "64", "--engine",
          "threaded", "--policy", "fixed:10us", "--scale",
          namd_scale]),
        ("fig9_ep_sequential",
         ["--workload", "nas.ep", "--nodes", "64", "--engine",
          "sequential", "--policy", "fixed:10us", "--scale",
          ep_scale]),
    ]


SUMMARY_RE = re.compile(r"host=([0-9.]+)s quanta=(\d+)")


def run_cli_summary(binary, args):
    """Run aqsim_cli once; return (wall_seconds, host_s, quanta)."""
    cmd = [str(binary)] + args
    start = time.monotonic()
    out = subprocess.run(cmd, check=True, capture_output=True,
                         text=True).stdout
    wall = time.monotonic() - start
    m = SUMMARY_RE.search(out)
    if not m:
        sys.exit(f"bench.py: no summary line in output of {cmd}")
    return wall, float(m.group(1)), int(m.group(2))


def sweep_points(smoke):
    """64 -> 4096 node scale-out curve for the sharded kernel.

    nas.ep rather than burst: burst's alltoall is O(n^2) packets and
    does not reach 4096 nodes in benchmark time; EP keeps per-node
    work constant so the curve isolates per-quantum engine cost.
    """
    node_counts = [64, 256] if smoke else [64, 256, 1024, 4096]
    return [
        (f"sweep_ep_{engine}/{nodes}", nodes, engine,
         ["--workload", "nas.ep", "--nodes", str(nodes), "--engine",
          engine, "--policy", "fixed:10us", "--scale", "1"])
        for nodes in node_counts
        for engine in ("sequential", "threaded")
    ]


def run_sweep(cli, smoke):
    reps = 1 if smoke else 2
    points = []
    for name, nodes, engine, args in sweep_points(smoke):
        print(f"[bench] {name} (reps={reps})")
        best = None
        for _ in range(reps):
            sample = run_cli_summary(cli, args)
            best = sample if best is None else min(best, sample)
        wall, host_s, quanta = best
        points.append({
            "name": name,
            "nodes": nodes,
            "engine": engine,
            "args": args,
            "reps": reps,
            "seconds_min": round(wall, 4),
            # Sequential host_s is *modeled* host time; threaded
            # host_s is the measured run loop. Wall-clock per quantum
            # is the engine-comparable scaling number.
            "summary_host_s": host_s,
            "quanta": quanta,
            "wall_ms_per_quantum": round(wall * 1e3 / quanta, 4),
        })
    return points


def host_fingerprint():
    """Host facts that make a snapshot comparable to another one.

    os.cpu_count() alone conflates "CPUs in the machine" with "CPUs
    this process may use" (containers/cgroups pin benchmarks to a
    subset), so record both, plus the cpufreq governor and load
    average that explain run-to-run variance.
    """
    host = {
        "system": platform.system(),
        "machine": platform.machine(),
        "cpus_total": os.cpu_count(),
    }
    try:
        host["cpus_available"] = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        host["cpus_available"] = os.cpu_count()
    try:
        load1, load5, _ = os.getloadavg()
        host["loadavg"] = [round(load1, 2), round(load5, 2)]
    except OSError:
        pass
    governor = Path(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor")
    try:
        host["governor"] = governor.read_text().strip()
    except OSError:
        pass
    return host


def git_revision():
    try:
        return subprocess.run(
            ["git", "-C", str(REPO), "rev-parse", "--short", "HEAD"],
            check=True, capture_output=True, text=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-rel",
                        help="CMake build tree with Release binaries")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scales/reps; CI keep-alive mode")
    parser.add_argument("--sweep", action="store_true",
                        help="also run the 64..4096-node scale-out "
                             "curve (nas.ep, sequential + threaded)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<date>.json)")
    opts = parser.parse_args()

    build = (REPO / opts.build_dir).resolve()
    kernel = build / "bench" / "micro_kernel"
    sync = build / "bench" / "micro_sync"
    cli = build / "tools" / "aqsim_cli"
    for binary in (kernel, sync, cli):
        if not binary.exists():
            sys.exit(f"bench.py: missing {binary}; build the "
                     f"'{opts.build_dir}' tree first (Release)")

    min_time = 0.02 if opts.smoke else 0.2
    reps = 1 if opts.smoke else 3

    print(f"[bench] micro_kernel (min_time={min_time}s)")
    micro_kernel = run_google_benchmark(kernel, KERNEL_FILTER,
                                        min_time)
    print(f"[bench] micro_sync (min_time={min_time}s)")
    micro_sync = run_google_benchmark(sync, SYNC_FILTER, min_time)

    scaleout = []
    for name, args in scaleout_points(opts.smoke):
        print(f"[bench] {name} (reps={reps})")
        seconds = time_cli(cli, args, reps)
        scaleout.append({
            "name": name,
            "args": args,
            "reps": reps,
            "seconds_min": round(seconds, 4),
        })

    snapshot = {
        "date": datetime.date.today().isoformat(),
        "git": git_revision(),
        "host": host_fingerprint(),
        "config": {
            "smoke": opts.smoke,
            "build_dir": opts.build_dir,
            "benchmark_min_time": min_time,
        },
        "micro_kernel": micro_kernel,
        "micro_sync": micro_sync,
        "scaleout": scaleout,
    }
    if opts.sweep:
        snapshot["sweep"] = run_sweep(cli, opts.smoke)

    out_path = Path(opts.out) if opts.out else (
        REPO / f"BENCH_{snapshot['date']}.json")
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")


if __name__ == "__main__":
    main()
