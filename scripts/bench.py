#!/usr/bin/env python3
"""Run the aqsim performance suite and emit a tracked BENCH_<date>.json.

Runs the google-benchmark microbenchmarks (micro_kernel, micro_sync)
plus a small fig9-style scale-out set through aqsim_cli, and writes a
single JSON snapshot suitable for committing next to the code it
measured.

Usage:
    python3 scripts/bench.py [--build-dir build-rel] [--smoke]
                             [--sweep] [--out F]

--smoke shrinks workload scales and repetitions so the whole suite
finishes in well under a minute (used by CI to keep the benchmarks
compiling and runnable); full runs take a few minutes and produce the
numbers worth tracking.

--sweep additionally runs the 64/256/1024/4096-node scale-out curve
(nas.ep under fixed:10us, sequential and threaded) and records
wall-clock milliseconds per quantum for each point — the scaling
evidence for the sharded event kernel (docs/performance.md). Sweep
runs pass --phase-stats, so each point also records the engine's
per-phase breakdown (sort / exchange / merge / dispatch) and the
derived merge+dispatch ms per quantum that the K×K exchange work is
gated on (bench_compare.py --sweep-names).

--sweep-only skips the microbenchmark and fig9 sections (fast CI
regression runs); --sweep-nodes 4096 (CSV) restricts the curve to the
listed node counts.
"""

import argparse
import datetime
import json
import os
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Benchmarks whose names match this regex are recorded from each
# google-benchmark binary. Keep this focused on the hot paths the
# kernel/engine work targets, so the JSON stays reviewable.
KERNEL_FILTER = "BM_EventQueue|BM_CoroutineDelayChain"
SYNC_FILTER = ("BM_WorkerPoolQuantumGate|BM_ThreadedClusterQuantaThroughput"
               "|BM_ClusterQuantaThroughput")


def run_google_benchmark(binary, bench_filter, min_time):
    """Run one google-benchmark binary, return simplified records."""
    cmd = [
        str(binary),
        f"--benchmark_filter={bench_filter}",
        # Bare double (seconds): accepted by both old and new
        # google-benchmark releases (the "0.05x" suffix form is not).
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    out = subprocess.run(cmd, check=True, capture_output=True,
                         text=True).stdout
    data = json.loads(out)
    records = []
    for bench in data.get("benchmarks", []):
        rec = {
            "name": bench["name"],
            "real_time": bench["real_time"],
            "cpu_time": bench["cpu_time"],
            "time_unit": bench["time_unit"],
        }
        if "items_per_second" in bench:
            rec["items_per_second"] = bench["items_per_second"]
        records.append(rec)
    return records


def time_cli(binary, args, reps):
    """Wall-clock an aqsim_cli invocation; return the min of reps."""
    cmd = [str(binary)] + args + ["--quiet"]
    best = None
    for _ in range(reps):
        start = time.monotonic()
        subprocess.run(cmd, check=True, capture_output=True)
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def scaleout_points(smoke):
    """Fig9-style scale-out points: 64-node EP and NAMD runs."""
    ep_scale = "1" if smoke else "16"
    namd_scale = "0.25" if smoke else "4"
    return [
        ("fig9_ep_threaded",
         ["--workload", "nas.ep", "--nodes", "64", "--engine",
          "threaded", "--policy", "fixed:10us", "--scale", ep_scale]),
        ("fig9_namd_threaded",
         ["--workload", "namd", "--nodes", "64", "--engine",
          "threaded", "--policy", "fixed:10us", "--scale",
          namd_scale]),
        ("fig9_ep_sequential",
         ["--workload", "nas.ep", "--nodes", "64", "--engine",
          "sequential", "--policy", "fixed:10us", "--scale",
          ep_scale]),
    ]


SUMMARY_RE = re.compile(r"host=([0-9.]+)s quanta=(\d+)")
PHASE_RE = re.compile(r"phase\[sort=([0-9.]+)ms xchg=([0-9.]+)ms "
                      r"merge=([0-9.]+)ms disp=([0-9.]+)ms\]")


def run_cli_summary(binary, args):
    """Run aqsim_cli once; return (wall_s, host_s, quanta, phases).

    phases is the {sort, exchange, merge, dispatch} wall-clock ms dict
    parsed from the summary's phase[...] section, or None when the run
    was not started with --phase-stats.
    """
    cmd = [str(binary)] + args
    start = time.monotonic()
    out = subprocess.run(cmd, check=True, capture_output=True,
                         text=True).stdout
    wall = time.monotonic() - start
    m = SUMMARY_RE.search(out)
    if not m:
        sys.exit(f"bench.py: no summary line in output of {cmd}")
    phases = None
    p = PHASE_RE.search(out)
    if p:
        phases = {
            "sort_ms": float(p.group(1)),
            "exchange_ms": float(p.group(2)),
            "merge_ms": float(p.group(3)),
            "dispatch_ms": float(p.group(4)),
        }
    return wall, float(m.group(1)), int(m.group(2)), phases


def sweep_points(smoke, node_filter=None):
    """64 -> 4096 node scale-out curve for the sharded kernel.

    nas.ep rather than burst: burst's alltoall is O(n^2) packets and
    does not reach 4096 nodes in benchmark time; EP keeps per-node
    work constant so the curve isolates per-quantum engine cost.
    """
    node_counts = [64, 256] if smoke else [64, 256, 1024, 4096]
    if node_filter:
        node_counts = [n for n in node_counts if n in node_filter]
        if not node_counts:
            sys.exit(f"bench.py: --sweep-nodes {sorted(node_filter)} "
                     f"matches no sweep point")
    return [
        (f"sweep_ep_{engine}/{nodes}", nodes, engine,
         ["--workload", "nas.ep", "--nodes", str(nodes), "--engine",
          engine, "--policy", "fixed:10us", "--scale", "1",
          "--phase-stats"])
        for nodes in node_counts
        for engine in ("sequential", "threaded")
    ]


def run_sweep(cli, smoke, node_filter=None):
    reps = 1 if smoke else 2
    points = []
    for name, nodes, engine, args in sweep_points(smoke, node_filter):
        print(f"[bench] {name} (reps={reps})")
        best = None
        for _ in range(reps):
            sample = run_cli_summary(cli, args)
            if best is None or sample[0] < best[0]:
                best = sample
        wall, host_s, quanta, phases = best
        point = {
            "name": name,
            "nodes": nodes,
            "engine": engine,
            "args": args,
            "reps": reps,
            "seconds_min": round(wall, 4),
            # Sequential host_s is *modeled* host time; threaded
            # host_s is the measured run loop. Wall-clock per quantum
            # is the engine-comparable scaling number.
            "summary_host_s": host_s,
            "quanta": quanta,
            "wall_ms_per_quantum": round(wall * 1e3 / quanta, 4),
        }
        if phases:
            # Per-phase wall-clock summed over workers (threaded: the
            # phases run in parallel, so this is CPU-time-like), plus
            # the barrier merge+dispatch cost per quantum the K×K
            # exchange is gated on.
            point["phases_ms"] = phases
            point["merge_dispatch_ms_per_quantum"] = round(
                (phases["merge_ms"] + phases["dispatch_ms"]) / quanta,
                4)
        points.append(point)
    return points


def host_fingerprint():
    """Host facts that make a snapshot comparable to another one.

    os.cpu_count() alone conflates "CPUs in the machine" with "CPUs
    this process may use" (containers/cgroups pin benchmarks to a
    subset), so record both, plus the cpufreq governor and load
    average that explain run-to-run variance.
    """
    host = {
        "system": platform.system(),
        "machine": platform.machine(),
        "cpus_total": os.cpu_count(),
    }
    try:
        host["cpus_available"] = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        host["cpus_available"] = os.cpu_count()
    try:
        load1, load5, _ = os.getloadavg()
        host["loadavg"] = [round(load1, 2), round(load5, 2)]
    except OSError:
        pass
    governor = Path(
        "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor")
    try:
        host["governor"] = governor.read_text().strip()
    except OSError:
        pass
    return host


def git_revision():
    try:
        return subprocess.run(
            ["git", "-C", str(REPO), "rev-parse", "--short", "HEAD"],
            check=True, capture_output=True, text=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-rel",
                        help="CMake build tree with Release binaries")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scales/reps; CI keep-alive mode")
    parser.add_argument("--sweep", action="store_true",
                        help="also run the 64..4096-node scale-out "
                             "curve (nas.ep, sequential + threaded)")
    parser.add_argument("--sweep-only", action="store_true",
                        help="run only the sweep (implies --sweep; "
                             "skips micro and fig9 sections)")
    parser.add_argument("--sweep-nodes", default=None,
                        help="CSV of node counts to keep in the sweep "
                             "(e.g. 4096)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<date>.json, "
                             "suffixed b, c, ... if taken)")
    opts = parser.parse_args()
    if opts.sweep_only:
        opts.sweep = True
    node_filter = None
    if opts.sweep_nodes:
        try:
            node_filter = {int(n) for n in
                           opts.sweep_nodes.split(",") if n}
        except ValueError:
            sys.exit(f"bench.py: bad --sweep-nodes "
                     f"'{opts.sweep_nodes}' (want a CSV of ints)")

    build = (REPO / opts.build_dir).resolve()
    kernel = build / "bench" / "micro_kernel"
    sync = build / "bench" / "micro_sync"
    cli = build / "tools" / "aqsim_cli"
    needed = (cli,) if opts.sweep_only else (kernel, sync, cli)
    for binary in needed:
        if not binary.exists():
            sys.exit(f"bench.py: missing {binary}; build the "
                     f"'{opts.build_dir}' tree first (Release)")

    min_time = 0.02 if opts.smoke else 0.2
    reps = 1 if opts.smoke else 3

    snapshot = {
        "date": datetime.date.today().isoformat(),
        "git": git_revision(),
        "host": host_fingerprint(),
        "config": {
            "smoke": opts.smoke,
            "build_dir": opts.build_dir,
            "benchmark_min_time": min_time,
            "sweep_only": opts.sweep_only,
        },
    }

    if not opts.sweep_only:
        print(f"[bench] micro_kernel (min_time={min_time}s)")
        snapshot["micro_kernel"] = run_google_benchmark(
            kernel, KERNEL_FILTER, min_time)
        print(f"[bench] micro_sync (min_time={min_time}s)")
        snapshot["micro_sync"] = run_google_benchmark(
            sync, SYNC_FILTER, min_time)

        scaleout = []
        for name, args in scaleout_points(opts.smoke):
            print(f"[bench] {name} (reps={reps})")
            seconds = time_cli(cli, args, reps)
            scaleout.append({
                "name": name,
                "args": args,
                "reps": reps,
                "seconds_min": round(seconds, 4),
            })
        snapshot["scaleout"] = scaleout

    if opts.sweep:
        snapshot["sweep"] = run_sweep(cli, opts.smoke, node_filter)

    if opts.out:
        out_path = Path(opts.out)
    else:
        # Never clobber a committed snapshot: suffix b, c, ... so the
        # lexicographically newest BENCH_*.json (what bench_compare.py
        # gates against) is always the latest run of the day.
        out_path = REPO / f"BENCH_{snapshot['date']}.json"
        suffix = ord("b")
        while out_path.exists():
            out_path = REPO / f"BENCH_{snapshot['date']}{chr(suffix)}.json"
            suffix += 1
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")


if __name__ == "__main__":
    main()
