#!/usr/bin/env python3
"""Run the aqsim performance suite and emit a tracked BENCH_<date>.json.

Runs the google-benchmark microbenchmarks (micro_kernel, micro_sync)
plus a small fig9-style scale-out set through aqsim_cli, and writes a
single JSON snapshot suitable for committing next to the code it
measured.

Usage:
    python3 scripts/bench.py [--build-dir build-rel] [--smoke] [--out F]

--smoke shrinks workload scales and repetitions so the whole suite
finishes in well under a minute (used by CI to keep the benchmarks
compiling and runnable); full runs take a few minutes and produce the
numbers worth tracking.
"""

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Benchmarks whose names match this regex are recorded from each
# google-benchmark binary. Keep this focused on the hot paths the
# kernel/engine work targets, so the JSON stays reviewable.
KERNEL_FILTER = "BM_EventQueue|BM_CoroutineDelayChain"
SYNC_FILTER = ("BM_WorkerPoolQuantumGate|BM_ThreadedClusterQuantaThroughput"
               "|BM_ClusterQuantaThroughput")


def run_google_benchmark(binary, bench_filter, min_time):
    """Run one google-benchmark binary, return simplified records."""
    cmd = [
        str(binary),
        f"--benchmark_filter={bench_filter}",
        # Bare double (seconds): accepted by both old and new
        # google-benchmark releases (the "0.05x" suffix form is not).
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    out = subprocess.run(cmd, check=True, capture_output=True,
                         text=True).stdout
    data = json.loads(out)
    records = []
    for bench in data.get("benchmarks", []):
        rec = {
            "name": bench["name"],
            "real_time": bench["real_time"],
            "cpu_time": bench["cpu_time"],
            "time_unit": bench["time_unit"],
        }
        if "items_per_second" in bench:
            rec["items_per_second"] = bench["items_per_second"]
        records.append(rec)
    return records


def time_cli(binary, args, reps):
    """Wall-clock an aqsim_cli invocation; return the min of reps."""
    cmd = [str(binary)] + args + ["--quiet"]
    best = None
    for _ in range(reps):
        start = time.monotonic()
        subprocess.run(cmd, check=True, capture_output=True)
        elapsed = time.monotonic() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def scaleout_points(smoke):
    """Fig9-style scale-out points: 64-node EP and NAMD runs."""
    ep_scale = "1" if smoke else "16"
    namd_scale = "0.25" if smoke else "4"
    return [
        ("fig9_ep_threaded",
         ["--workload", "nas.ep", "--nodes", "64", "--engine",
          "threaded", "--policy", "fixed:10us", "--scale", ep_scale]),
        ("fig9_namd_threaded",
         ["--workload", "namd", "--nodes", "64", "--engine",
          "threaded", "--policy", "fixed:10us", "--scale",
          namd_scale]),
        ("fig9_ep_sequential",
         ["--workload", "nas.ep", "--nodes", "64", "--engine",
          "sequential", "--policy", "fixed:10us", "--scale",
          ep_scale]),
    ]


def git_revision():
    try:
        return subprocess.run(
            ["git", "-C", str(REPO), "rev-parse", "--short", "HEAD"],
            check=True, capture_output=True, text=True).stdout.strip()
    except (subprocess.CalledProcessError, FileNotFoundError):
        return "unknown"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-rel",
                        help="CMake build tree with Release binaries")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scales/reps; CI keep-alive mode")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<date>.json)")
    opts = parser.parse_args()

    build = (REPO / opts.build_dir).resolve()
    kernel = build / "bench" / "micro_kernel"
    sync = build / "bench" / "micro_sync"
    cli = build / "tools" / "aqsim_cli"
    for binary in (kernel, sync, cli):
        if not binary.exists():
            sys.exit(f"bench.py: missing {binary}; build the "
                     f"'{opts.build_dir}' tree first (Release)")

    min_time = 0.02 if opts.smoke else 0.2
    reps = 1 if opts.smoke else 3

    print(f"[bench] micro_kernel (min_time={min_time}s)")
    micro_kernel = run_google_benchmark(kernel, KERNEL_FILTER,
                                        min_time)
    print(f"[bench] micro_sync (min_time={min_time}s)")
    micro_sync = run_google_benchmark(sync, SYNC_FILTER, min_time)

    scaleout = []
    for name, args in scaleout_points(opts.smoke):
        print(f"[bench] {name} (reps={reps})")
        seconds = time_cli(cli, args, reps)
        scaleout.append({
            "name": name,
            "args": args,
            "reps": reps,
            "seconds_min": round(seconds, 4),
        })

    snapshot = {
        "date": datetime.date.today().isoformat(),
        "git": git_revision(),
        "host": {
            "system": platform.system(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "config": {
            "smoke": opts.smoke,
            "build_dir": opts.build_dir,
            "benchmark_min_time": min_time,
        },
        "micro_kernel": micro_kernel,
        "micro_sync": micro_sync,
        "scaleout": scaleout,
    }

    out_path = Path(opts.out) if opts.out else (
        REPO / f"BENCH_{snapshot['date']}.json")
    out_path.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")


if __name__ == "__main__":
    main()
