#!/usr/bin/env python3
"""Gate benchmark throughput against the committed BENCH_*.json.

Compares items_per_second of selected benchmarks (by default the
worker-pool quantum-gate round trip at two worker counts — the
per-quantum synchronization floor of the ThreadedEngine) between a
fresh google-benchmark JSON run and the newest committed snapshot, and
fails when any benchmark regressed by more than the allowed fraction.

Usage (what the bench-regress CI job runs):
    ./build-rel/bench/micro_sync \
        '--benchmark_filter=BM_WorkerPoolQuantumGate/(1|2)$' \
        --benchmark_format=json > current.json
    python3 scripts/bench_compare.py --current current.json

Sweep mode gates the scale-out curve instead: --sweep-names selects
sweep points (e.g. sweep_ep_threaded/4096) from a bench.py --sweep
snapshot and compares wall_ms_per_quantum (lower is better) against
the newest committed BENCH_*.json:
    python3 scripts/bench.py --sweep-only --sweep-nodes 4096 \
        --out sweep-current.json
    python3 scripts/bench_compare.py --current sweep-current.json \
        --sweep-names sweep_ep_threaded/4096

Exit codes: 0 within budget, 1 regression, 2 usage/data error.
"""

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

DEFAULT_NAMES = ["BM_WorkerPoolQuantumGate/1",
                 "BM_WorkerPoolQuantumGate/2"]


def newest_snapshot():
    snapshots = sorted(REPO.glob("BENCH_*.json"))
    if not snapshots:
        sys.exit("bench_compare.py: no committed BENCH_*.json found")
    return snapshots[-1]


def items_per_second(records, name):
    """Best items/s over exact-name matches.

    With --benchmark_repetitions the JSON holds one record per
    repetition (plus _mean/_stddev aggregates, which don't match the
    exact name); gating on the best repetition filters scheduler noise
    out of the regression signal.
    """
    best = None
    for rec in records:
        if rec.get("name") == name and "items_per_second" in rec:
            value = rec["items_per_second"]
            best = value if best is None else max(best, value)
    return best


def sweep_point(snapshot, name):
    for rec in snapshot.get("sweep", []):
        if rec.get("name") == name:
            return rec
    return None


def compare_sweep(baseline, baseline_path, current, opts):
    """Gate wall_ms_per_quantum of named sweep points (lower wins).

    Both sides are bench.py snapshots with a "sweep" section. The
    per-phase breakdown, when both sides carry it, is printed for the
    log but not gated — phase split shifts are design signals, total
    per-quantum wall time is the regression.
    """
    failures = []
    for name in opts.sweep_names.split(","):
        base = sweep_point(baseline, name)
        cur = sweep_point(current, name)
        if base is None:
            sys.exit(f"bench_compare.py: sweep point '{name}' not in "
                     f"baseline {baseline_path.name}")
        if cur is None:
            sys.exit(f"bench_compare.py: sweep point '{name}' not in "
                     f"current run")
        base_ms = base["wall_ms_per_quantum"]
        cur_ms = cur["wall_ms_per_quantum"]
        change = (cur_ms - base_ms) / base_ms
        status = "ok"
        if change > opts.sweep_max_regression:
            status = "REGRESSED"
            failures.append(name)
        print(f"[bench-compare] {name}: {base_ms:.3f} -> {cur_ms:.3f} "
              f"ms/quantum ({change:+.1%}) {status}")
        for side, rec in (("base", base), ("cur ", cur)):
            phases = rec.get("phases_ms")
            if phases:
                print(f"[bench-compare]   {side} phases "
                      f"sort={phases['sort_ms']:.1f}ms "
                      f"xchg={phases['exchange_ms']:.1f}ms "
                      f"merge={phases['merge_ms']:.1f}ms "
                      f"disp={phases['dispatch_ms']:.1f}ms")

    if failures:
        print(f"[bench-compare] FAIL: {', '.join(failures)} slowed "
              f"more than {opts.sweep_max_regression:.0%} vs "
              f"{baseline_path.name}")
        return 1
    print(f"[bench-compare] all gated sweep points within "
          f"{opts.sweep_max_regression:.0%} of {baseline_path.name}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", required=True,
                        help="google-benchmark JSON of the fresh run")
    parser.add_argument("--baseline", default=None,
                        help="committed snapshot (default: newest "
                             "BENCH_*.json in the repo root)")
    parser.add_argument("--names", default=",".join(DEFAULT_NAMES),
                        help="comma-separated benchmark names to gate")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional items/s drop "
                             "(default 0.25)")
    parser.add_argument("--sweep-names", default=None,
                        help="comma-separated sweep point names to "
                             "gate on wall_ms_per_quantum instead of "
                             "the micro benchmarks")
    parser.add_argument("--sweep-max-regression", type=float,
                        default=0.5,
                        help="allowed fractional ms/quantum increase "
                             "for sweep points (default 0.5; wall "
                             "time on shared CI runners is noisy)")
    opts = parser.parse_args()

    baseline_path = (Path(opts.baseline) if opts.baseline
                     else newest_snapshot())
    try:
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(Path(opts.current).read_text())
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_compare.py: {err}")

    if opts.sweep_names:
        return compare_sweep(baseline, baseline_path, current, opts)

    # Baseline: a bench.py snapshot (micro_sync section); current: raw
    # google-benchmark output (benchmarks section). Accept either shape
    # on both sides so local use is forgiving.
    base_records = baseline.get("micro_sync",
                                baseline.get("benchmarks", []))
    cur_records = current.get("benchmarks",
                              current.get("micro_sync", []))

    failures = []
    for name in opts.names.split(","):
        base = items_per_second(base_records, name)
        cur = items_per_second(cur_records, name)
        if base is None:
            sys.exit(f"bench_compare.py: '{name}' not in baseline "
                     f"{baseline_path.name}")
        if cur is None:
            sys.exit(f"bench_compare.py: '{name}' not in current run")
        change = (cur - base) / base
        status = "ok"
        if change < -opts.max_regression:
            status = "REGRESSED"
            failures.append(name)
        print(f"[bench-compare] {name}: {base:.3e} -> {cur:.3e} "
              f"items/s ({change:+.1%}) {status}")

    if failures:
        print(f"[bench-compare] FAIL: {', '.join(failures)} dropped "
              f"more than {opts.max_regression:.0%} vs "
              f"{baseline_path.name}")
        return 1
    print(f"[bench-compare] all gated benchmarks within "
          f"{opts.max_regression:.0%} of {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
