
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/args.cc" "src/CMakeFiles/aqsim.dir/base/args.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/base/args.cc.o.d"
  "/root/repo/src/base/csv.cc" "src/CMakeFiles/aqsim.dir/base/csv.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/base/csv.cc.o.d"
  "/root/repo/src/base/debug.cc" "src/CMakeFiles/aqsim.dir/base/debug.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/base/debug.cc.o.d"
  "/root/repo/src/base/logging.cc" "src/CMakeFiles/aqsim.dir/base/logging.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/base/logging.cc.o.d"
  "/root/repo/src/base/random.cc" "src/CMakeFiles/aqsim.dir/base/random.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/base/random.cc.o.d"
  "/root/repo/src/core/quantum_policy.cc" "src/CMakeFiles/aqsim.dir/core/quantum_policy.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/core/quantum_policy.cc.o.d"
  "/root/repo/src/core/sync_stats.cc" "src/CMakeFiles/aqsim.dir/core/sync_stats.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/core/sync_stats.cc.o.d"
  "/root/repo/src/core/synchronizer.cc" "src/CMakeFiles/aqsim.dir/core/synchronizer.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/core/synchronizer.cc.o.d"
  "/root/repo/src/engine/cluster.cc" "src/CMakeFiles/aqsim.dir/engine/cluster.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/engine/cluster.cc.o.d"
  "/root/repo/src/engine/run_result.cc" "src/CMakeFiles/aqsim.dir/engine/run_result.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/engine/run_result.cc.o.d"
  "/root/repo/src/engine/sequential_engine.cc" "src/CMakeFiles/aqsim.dir/engine/sequential_engine.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/engine/sequential_engine.cc.o.d"
  "/root/repo/src/engine/threaded_engine.cc" "src/CMakeFiles/aqsim.dir/engine/threaded_engine.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/engine/threaded_engine.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/aqsim.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/pareto.cc" "src/CMakeFiles/aqsim.dir/harness/pareto.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/harness/pareto.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/CMakeFiles/aqsim.dir/harness/report.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/harness/report.cc.o.d"
  "/root/repo/src/mpi/collectives.cc" "src/CMakeFiles/aqsim.dir/mpi/collectives.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/mpi/collectives.cc.o.d"
  "/root/repo/src/mpi/communicator.cc" "src/CMakeFiles/aqsim.dir/mpi/communicator.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/mpi/communicator.cc.o.d"
  "/root/repo/src/mpi/message.cc" "src/CMakeFiles/aqsim.dir/mpi/message.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/mpi/message.cc.o.d"
  "/root/repo/src/net/network_controller.cc" "src/CMakeFiles/aqsim.dir/net/network_controller.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/net/network_controller.cc.o.d"
  "/root/repo/src/net/packet.cc" "src/CMakeFiles/aqsim.dir/net/packet.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/net/packet.cc.o.d"
  "/root/repo/src/net/switch_model.cc" "src/CMakeFiles/aqsim.dir/net/switch_model.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/net/switch_model.cc.o.d"
  "/root/repo/src/net/topology.cc" "src/CMakeFiles/aqsim.dir/net/topology.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/net/topology.cc.o.d"
  "/root/repo/src/node/cpu_model.cc" "src/CMakeFiles/aqsim.dir/node/cpu_model.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/node/cpu_model.cc.o.d"
  "/root/repo/src/node/host_cost_model.cc" "src/CMakeFiles/aqsim.dir/node/host_cost_model.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/node/host_cost_model.cc.o.d"
  "/root/repo/src/node/nic_model.cc" "src/CMakeFiles/aqsim.dir/node/nic_model.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/node/nic_model.cc.o.d"
  "/root/repo/src/node/node_simulator.cc" "src/CMakeFiles/aqsim.dir/node/node_simulator.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/node/node_simulator.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/aqsim.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/process.cc" "src/CMakeFiles/aqsim.dir/sim/process.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/sim/process.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/aqsim.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/output.cc" "src/CMakeFiles/aqsim.dir/stats/output.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/stats/output.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/aqsim.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/stats/stats.cc.o.d"
  "/root/repo/src/trace/ascii_plot.cc" "src/CMakeFiles/aqsim.dir/trace/ascii_plot.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/trace/ascii_plot.cc.o.d"
  "/root/repo/src/trace/packet_trace.cc" "src/CMakeFiles/aqsim.dir/trace/packet_trace.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/trace/packet_trace.cc.o.d"
  "/root/repo/src/trace/timeline.cc" "src/CMakeFiles/aqsim.dir/trace/timeline.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/trace/timeline.cc.o.d"
  "/root/repo/src/workloads/namd.cc" "src/CMakeFiles/aqsim.dir/workloads/namd.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/namd.cc.o.d"
  "/root/repo/src/workloads/nas_cg.cc" "src/CMakeFiles/aqsim.dir/workloads/nas_cg.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/nas_cg.cc.o.d"
  "/root/repo/src/workloads/nas_common.cc" "src/CMakeFiles/aqsim.dir/workloads/nas_common.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/nas_common.cc.o.d"
  "/root/repo/src/workloads/nas_ep.cc" "src/CMakeFiles/aqsim.dir/workloads/nas_ep.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/nas_ep.cc.o.d"
  "/root/repo/src/workloads/nas_is.cc" "src/CMakeFiles/aqsim.dir/workloads/nas_is.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/nas_is.cc.o.d"
  "/root/repo/src/workloads/nas_lu.cc" "src/CMakeFiles/aqsim.dir/workloads/nas_lu.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/nas_lu.cc.o.d"
  "/root/repo/src/workloads/nas_mg.cc" "src/CMakeFiles/aqsim.dir/workloads/nas_mg.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/nas_mg.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/aqsim.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/synthetic.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/aqsim.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/aqsim.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
