file(REMOVE_RECURSE
  "libaqsim.a"
)
