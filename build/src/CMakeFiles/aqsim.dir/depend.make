# Empty dependencies file for aqsim.
# This may be replaced when dependencies are built.
