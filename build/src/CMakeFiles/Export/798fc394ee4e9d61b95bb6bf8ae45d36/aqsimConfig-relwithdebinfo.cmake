#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "aqsim::aqsim" for configuration "RelWithDebInfo"
set_property(TARGET aqsim::aqsim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(aqsim::aqsim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libaqsim.a"
  )

list(APPEND _cmake_import_check_targets aqsim::aqsim )
list(APPEND _cmake_import_check_files_for_aqsim::aqsim "${_IMPORT_PREFIX}/lib/libaqsim.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
