file(REMOVE_RECURSE
  "CMakeFiles/nas_cluster.dir/nas_cluster.cpp.o"
  "CMakeFiles/nas_cluster.dir/nas_cluster.cpp.o.d"
  "nas_cluster"
  "nas_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
