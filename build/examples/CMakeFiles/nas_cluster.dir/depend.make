# Empty dependencies file for nas_cluster.
# This may be replaced when dependencies are built.
