file(REMOVE_RECURSE
  "CMakeFiles/namd_cluster.dir/namd_cluster.cpp.o"
  "CMakeFiles/namd_cluster.dir/namd_cluster.cpp.o.d"
  "namd_cluster"
  "namd_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/namd_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
