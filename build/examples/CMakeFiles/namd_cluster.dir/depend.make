# Empty dependencies file for namd_cluster.
# This may be replaced when dependencies are built.
