file(REMOVE_RECURSE
  "CMakeFiles/traffic_viz.dir/traffic_viz.cpp.o"
  "CMakeFiles/traffic_viz.dir/traffic_viz.cpp.o.d"
  "traffic_viz"
  "traffic_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
