# Empty dependencies file for traffic_viz.
# This may be replaced when dependencies are built.
