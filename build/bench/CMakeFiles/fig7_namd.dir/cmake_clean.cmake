file(REMOVE_RECURSE
  "CMakeFiles/fig7_namd.dir/fig7_namd.cc.o"
  "CMakeFiles/fig7_namd.dir/fig7_namd.cc.o.d"
  "fig7_namd"
  "fig7_namd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_namd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
