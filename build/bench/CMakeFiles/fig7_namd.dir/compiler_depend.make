# Empty compiler generated dependencies file for fig7_namd.
# This may be replaced when dependencies are built.
