file(REMOVE_RECURSE
  "CMakeFiles/fig8_pareto.dir/fig8_pareto.cc.o"
  "CMakeFiles/fig8_pareto.dir/fig8_pareto.cc.o.d"
  "fig8_pareto"
  "fig8_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
