# Empty compiler generated dependencies file for fig8_pareto.
# This may be replaced when dependencies are built.
