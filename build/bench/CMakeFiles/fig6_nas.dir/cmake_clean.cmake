file(REMOVE_RECURSE
  "CMakeFiles/fig6_nas.dir/fig6_nas.cc.o"
  "CMakeFiles/fig6_nas.dir/fig6_nas.cc.o.d"
  "fig6_nas"
  "fig6_nas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
