file(REMOVE_RECURSE
  "CMakeFiles/aqsim_cli.dir/aqsim_cli.cc.o"
  "CMakeFiles/aqsim_cli.dir/aqsim_cli.cc.o.d"
  "aqsim_cli"
  "aqsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aqsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
