# Empty compiler generated dependencies file for aqsim_cli.
# This may be replaced when dependencies are built.
