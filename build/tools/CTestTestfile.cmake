# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "/root/repo/build/tools/aqsim_cli" "--workload" "pingpong" "--nodes" "2" "--policy" "fixed:1us" "--scale" "0.2" "--quiet" "--baseline")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_adaptive_with_outputs "/root/repo/build/tools/aqsim_cli" "--workload" "burst" "--nodes" "4" "--policy" "dyn:1.05:0.02:1us:1000us" "--scale" "0.2" "--timeline" "/root/repo/build/tools/t.csv" "--trace" "/root/repo/build/tools/p.csv" "--stats")
set_tests_properties(cli_adaptive_with_outputs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_topology_threaded "/root/repo/build/tools/aqsim_cli" "--workload" "random" "--nodes" "4" "--policy" "fixed:1us" "--scale" "0.1" "--topology" "torus" "--engine" "threaded" "--quiet")
set_tests_properties(cli_topology_threaded PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
