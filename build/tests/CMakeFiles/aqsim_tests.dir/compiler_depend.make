# Empty compiler generated dependencies file for aqsim_tests.
# This may be replaced when dependencies are built.
