
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_args_csv.cc" "tests/CMakeFiles/aqsim_tests.dir/test_args_csv.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_args_csv.cc.o.d"
  "/root/repo/tests/test_cpu_model.cc" "tests/CMakeFiles/aqsim_tests.dir/test_cpu_model.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_cpu_model.cc.o.d"
  "/root/repo/tests/test_debug.cc" "tests/CMakeFiles/aqsim_tests.dir/test_debug.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_debug.cc.o.d"
  "/root/repo/tests/test_engine_scaleout.cc" "tests/CMakeFiles/aqsim_tests.dir/test_engine_scaleout.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_engine_scaleout.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/aqsim_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/aqsim_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_host_cost_model.cc" "tests/CMakeFiles/aqsim_tests.dir/test_host_cost_model.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_host_cost_model.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/aqsim_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_logging.cc" "tests/CMakeFiles/aqsim_tests.dir/test_logging.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_logging.cc.o.d"
  "/root/repo/tests/test_mpi_collectives.cc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_collectives.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_collectives.cc.o.d"
  "/root/repo/tests/test_mpi_endpoint.cc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_endpoint.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_endpoint.cc.o.d"
  "/root/repo/tests/test_mpi_flow_control.cc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_flow_control.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_flow_control.cc.o.d"
  "/root/repo/tests/test_mpi_message.cc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_message.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_message.cc.o.d"
  "/root/repo/tests/test_mpi_requests.cc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_requests.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_mpi_requests.cc.o.d"
  "/root/repo/tests/test_network_controller.cc" "tests/CMakeFiles/aqsim_tests.dir/test_network_controller.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_network_controller.cc.o.d"
  "/root/repo/tests/test_nic_model.cc" "tests/CMakeFiles/aqsim_tests.dir/test_nic_model.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_nic_model.cc.o.d"
  "/root/repo/tests/test_packet_switch.cc" "tests/CMakeFiles/aqsim_tests.dir/test_packet_switch.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_packet_switch.cc.o.d"
  "/root/repo/tests/test_process.cc" "tests/CMakeFiles/aqsim_tests.dir/test_process.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_process.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/aqsim_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_quantum_policy.cc" "tests/CMakeFiles/aqsim_tests.dir/test_quantum_policy.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_quantum_policy.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/aqsim_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_sequential_engine.cc" "tests/CMakeFiles/aqsim_tests.dir/test_sequential_engine.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_sequential_engine.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/aqsim_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_straggler_scenarios.cc" "tests/CMakeFiles/aqsim_tests.dir/test_straggler_scenarios.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_straggler_scenarios.cc.o.d"
  "/root/repo/tests/test_synchronizer.cc" "tests/CMakeFiles/aqsim_tests.dir/test_synchronizer.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_synchronizer.cc.o.d"
  "/root/repo/tests/test_threaded_engine.cc" "tests/CMakeFiles/aqsim_tests.dir/test_threaded_engine.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_threaded_engine.cc.o.d"
  "/root/repo/tests/test_topology.cc" "tests/CMakeFiles/aqsim_tests.dir/test_topology.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_topology.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/aqsim_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/aqsim_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/aqsim_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/aqsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
