/**
 * @file
 * One simulated cluster node.
 *
 * A NodeSimulator bundles what the paper's full-system simulator
 * instance provides to the synchronization layer: a private event
 * queue (simulated clock), a CPU timing model, a NIC bridged to the
 * network controller, and the guest application (a coroutine program
 * installed by the workload).
 */

#ifndef AQSIM_NODE_NODE_SIMULATOR_HH
#define AQSIM_NODE_NODE_SIMULATOR_HH

#include <memory>

#include "base/types.hh"
#include "node/cpu_model.hh"
#include "node/nic_model.hh"
#include "sim/event_queue.hh"
#include "sim/process.hh"
#include "stats/stats.hh"

namespace aqsim::ckpt
{
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::node
{

/** A full simulated node: clock + CPU + NIC + guest program. */
class NodeSimulator
{
  public:
    /**
     * @param id dense node id
     * @param cpu CPU timing model (ownership transferred)
     * @param controller the cluster network controller
     * @param stats_parent cluster stats root; a "nodeN" group is added
     */
    NodeSimulator(NodeId id, std::unique_ptr<CpuModel> cpu,
                  net::NetworkController &controller,
                  stats::Group &stats_parent);

    NodeId id() const { return id_; }
    sim::EventQueue &queue() { return queue_; }
    const sim::EventQueue &queue() const { return queue_; }
    CpuModel &cpu() { return *cpu_; }
    NicModel &nic() { return nic_; }
    stats::Group &statsGroup() { return statsGroup_; }

    /**
     * Install the guest program. The process is started through an
     * event at tick 0, so the first instructions execute inside the
     * node's own event context.
     */
    void setProgram(sim::Process program);

    /** @return true once the guest program ran to completion. */
    bool appDone() const { return appDone_; }

    /** @return tick at which the guest program completed. */
    Tick appFinishTick() const { return appFinishTick_; }

    /**
     * Checkpoint support: persist the node's architectural state
     * (clock + pending-event structure + CPU + NIC + app progress).
     * The guest coroutine frame itself is code, not data; on restore
     * it is reconstructed by deterministic replay and this
     * serialization drives the divergence self-check.
     */
    void serialize(ckpt::Writer &w) const;

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const;

  private:
    NodeId id_;
    stats::Group &statsGroup_;
    sim::EventQueue queue_;
    std::unique_ptr<CpuModel> cpu_;
    NicModel nic_;

    sim::Process program_;
    bool appDone_ = false;
    Tick appFinishTick_ = 0;
};

} // namespace aqsim::node

#endif // AQSIM_NODE_NODE_SIMULATOR_HH
