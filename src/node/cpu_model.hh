/**
 * @file
 * CPU timing models for the simulated nodes.
 *
 * The full-system simulator the paper uses (SimNow + HP timing
 * extensions) is replaced by a timing model that converts abstract work
 * (operations) into simulated time and tracks whether the guest is
 * computing or idling. The busy/idle state matters twice: it shapes the
 * application's simulated time, and it drives the host-cost model (a
 * functional simulator burns far fewer host cycles emulating a halted
 * guest than a computing one).
 *
 * SamplingCpuModel implements the paper's "future work" item: combining
 * quantum adaptation with dynamic sampling of the node simulator
 * (Falcón et al., ISPASS 2007) — alternating detailed and fast-forward
 * timing windows, trading timing fidelity for host speed.
 */

#ifndef AQSIM_NODE_CPU_MODEL_HH
#define AQSIM_NODE_CPU_MODEL_HH

#include <cstdint>
#include <memory>

#include "base/random.hh"
#include "base/types.hh"

namespace aqsim::ckpt
{
class Reader;
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::node
{

/** Static CPU parameters. */
struct CpuParams
{
    /**
     * Sustained operations per nanosecond (clock * IPC); 2.6 matches
     * the paper's 2.6 GHz Opteron hosts at IPC 1.
     */
    double opsPerNs = 2.6;
};

/** Abstract CPU timing model. */
class CpuModel
{
  public:
    virtual ~CpuModel() = default;

    /** @return simulated latency of executing @p ops operations. */
    virtual Tick computeLatency(double ops) = 0;

    /**
     * @return relative host cost of simulating this CPU right now;
     * 1.0 = fully detailed timing. Sampling models return < 1 during
     * fast-forward windows.
     */
    virtual double hostDetailFactor() const { return 1.0; }

    /** Busy/idle tracking (used by the host-cost model). */
    void
    beginCompute()
    {
        ++computeDepth_;
    }

    void endCompute();

    /** @return true while at least one compute burst is in flight. */
    bool busy() const { return computeDepth_ > 0; }

    /** Checkpoint support: persist the timing-model state. */
    virtual void serialize(ckpt::Writer &w) const;

    /** Restore state persisted by serialize(). */
    virtual void deserialize(ckpt::Reader &r);

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const;

  private:
    std::uint32_t computeDepth_ = 0;
};

/** Deterministic fixed-rate timing model. */
class SimpleCpuModel : public CpuModel
{
  public:
    explicit SimpleCpuModel(CpuParams params);

    Tick computeLatency(double ops) override;

    const CpuParams &params() const { return params_; }

  private:
    CpuParams params_;
};

/**
 * Sampling timing model: a fraction of compute windows is simulated in
 * detail; the rest is fast-forwarded using the running average rate
 * observed in detailed windows, perturbed by a configurable relative
 * error. Host cost drops during fast-forward windows.
 */
class SamplingCpuModel : public CpuModel
{
  public:
    struct Params
    {
        CpuParams cpu;
        /** Fraction of compute windows simulated in detail (0,1]. */
        double detailFraction = 0.1;
        /** Host cost of a fast-forwarded window relative to detailed. */
        double fastForwardCost = 0.05;
        /** Relative timing error (std dev) of fast-forwarded windows. */
        double timingNoise = 0.03;
    };

    SamplingCpuModel(Params params, Rng rng);

    Tick computeLatency(double ops) override;
    double hostDetailFactor() const override;
    void serialize(ckpt::Writer &w) const override;
    void deserialize(ckpt::Reader &r) override;

  private:
    Params params_;
    Rng rng_;
    bool inDetail_ = true;
};

} // namespace aqsim::node

#endif // AQSIM_NODE_CPU_MODEL_HH
