/**
 * @file
 * Host execution cost model.
 *
 * The paper measures simulation speed as wall-clock time of N node
 * simulators running in parallel on a physical host. This model is the
 * deterministic substitute (see DESIGN.md §2): it prices how many host
 * nanoseconds a node simulator spends to advance its guest by one
 * simulated nanosecond, and what each synchronization quantum costs in
 * fixed overhead.
 *
 * Components:
 *  - busySlowdownNsPerTick: host-ns to simulate one guest-ns of active
 *    computation (full-system simulators with timing models run two to
 *    three orders of magnitude slower than native).
 *  - idleFactor: emulating a halted/idle guest is much cheaper.
 *  - perEventNs: fixed host cost of dispatching one simulator event.
 *  - perQuantumNs: per-node fixed cost paid every quantum — pipeline
 *    drain/restart of the functional emulator; dynamic-translation
 *    throughput collapses when execution is chopped into tiny quanta.
 *    This term is why a 1 us quantum is ~65x slower than a 1000 us one.
 *  - barrierBaseNs/barrierPerNodeNs: cost of the global barrier
 *    exchange with the controller each quantum.
 *  - noiseSigma/noiseRho: lognormal AR(1) per-quantum speed noise per
 *    node (host load, cache effects). Heterogeneous speeds are what
 *    skews node progress and produces stragglers; "the slowest node
 *    sets the pace" (paper Fig. 5).
 */

#ifndef AQSIM_NODE_HOST_COST_MODEL_HH
#define AQSIM_NODE_HOST_COST_MODEL_HH

#include <cmath>
#include <cstdint>

#include "base/random.hh"
#include "base/types.hh"

namespace aqsim::ckpt
{
class Reader;
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::node
{

/** Cluster-wide host cost parameters. */
struct HostCostParams
{
    double busySlowdownNsPerTick = 90.0;
    double idleFactor = 0.00002;
    double perEventNs = 150.0;
    /*
     * The overhead terms below are calibrated so the fixed-quantum
     * speedup ladder reproduces the paper's reported range on 8-node
     * NAS (Q=10us ~9x, Q=100us ~40x, Q=1000us ~65x over the 1us
     * ground truth); see EXPERIMENTS.md.
     */
    double perQuantumNs = 3.6e6;
    double barrierBaseNs = 2.4e6;
    double barrierPerNodeNs = 8.0e4;
    /** Lognormal sigma of the per-quantum node speed multiplier. */
    double noiseSigma = 0.25;
    /** AR(1) correlation of the multiplier across quanta. */
    double noiseRho = 0.7;
    /**
     * Sim-time granularity (ticks) over which speed noise decorrelates.
     * Long quanta average more independent chunks, so their relative
     * node-to-node imbalance shrinks — the averaging effect real
     * parallel simulators see with coarse synchronization.
     */
    Tick noiseChunkTicks = 100'000;

    /** Host cost of the per-quantum global barrier for @p n nodes. */
    double
    barrierNs(std::size_t n) const
    {
        return barrierBaseNs +
               barrierPerNodeNs * static_cast<double>(n);
    }
};

/**
 * Per-node host speed state (one instance per node, SequentialEngine).
 */
class HostCostModel
{
  public:
    /**
     * @param params shared cost parameters
     * @param rng private noise stream for this node
     */
    HostCostModel(const HostCostParams &params, Rng rng);

    /**
     * Advance to a new quantum of length @p quantum_ticks: draws the
     * node's speed multiplier for the quantum (AR(1) lognormal, with
     * variance shrunk by intra-quantum averaging).
     */
    void newQuantum(Tick quantum_ticks);

    /**
     * @return current host-ns per simulated-ns rate.
     * @param busy guest actively computing vs. idle/blocked
     * @param detail_factor CPU model detail factor (sampling support)
     */
    double rate(bool busy, double detail_factor = 1.0) const;

    /** @return fixed host cost of dispatching one event. */
    double perEventNs() const { return params_.perEventNs; }

    /** @return fixed per-node host cost of entering a quantum. */
    double perQuantumNs() const { return params_.perQuantumNs; }

    /** @return the current speed multiplier (tests/diagnostics). */
    double currentFactor() const { return factor_; }

    const HostCostParams &params() const { return params_; }

    /** Checkpoint support: persist noise stream + AR(1) state. */
    void serialize(ckpt::Writer &w) const;

    /** Restore state persisted by serialize(). */
    void deserialize(ckpt::Reader &r);

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const;

  private:
    HostCostParams params_;
    Rng rng_;
    double factor_ = 1.0;
    /** Latent AR(1) state in log space. */
    double logState_ = 0.0;
};

} // namespace aqsim::node

#endif // AQSIM_NODE_HOST_COST_MODEL_HH
