#include "node/node_simulator.hh"

#include <string>

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::node
{

NodeSimulator::NodeSimulator(NodeId id, std::unique_ptr<CpuModel> cpu,
                             net::NetworkController &controller,
                             stats::Group &stats_parent)
    : id_(id),
      statsGroup_(stats_parent.addGroup("node" + std::to_string(id))),
      cpu_(std::move(cpu)), nic_(id, queue_, controller, statsGroup_)
{
    AQSIM_ASSERT(cpu_ != nullptr);
}

void
NodeSimulator::setProgram(sim::Process program)
{
    AQSIM_ASSERT(program.valid());
    program_ = std::move(program);
    program_.onDone([this] {
        appDone_ = true;
        appFinishTick_ = queue_.now();
    });
    queue_.schedule(0, [this] { program_.start(); });
}

void
NodeSimulator::serialize(ckpt::Writer &w) const
{
    w.u32(id_);
    w.boolean(appDone_);
    w.u64(appFinishTick_);
    queue_.serialize(w);
    cpu_->serialize(w);
    nic_.serialize(w);
}

std::uint64_t
NodeSimulator::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::node
