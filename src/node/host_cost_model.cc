#include "node/host_cost_model.hh"

#include <algorithm>

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::node
{

HostCostModel::HostCostModel(const HostCostParams &params, Rng rng)
    : params_(params), rng_(rng)
{
    AQSIM_ASSERT(params_.busySlowdownNsPerTick > 0.0);
    AQSIM_ASSERT(params_.idleFactor > 0.0 && params_.idleFactor <= 1.0);
    AQSIM_ASSERT(params_.noiseRho >= 0.0 && params_.noiseRho < 1.0);
}

void
HostCostModel::newQuantum(Tick quantum_ticks)
{
    if (params_.noiseSigma <= 0.0) {
        factor_ = 1.0;
        return;
    }
    // Longer quanta average more independent speed chunks, shrinking
    // the effective sigma by sqrt(chunks).
    const double chunks = std::max(
        1.0, static_cast<double>(quantum_ticks) /
                 static_cast<double>(params_.noiseChunkTicks));
    const double sigma_eff = params_.noiseSigma / std::sqrt(chunks);

    // AR(1) in log space, stationary variance sigma_eff^2.
    const double innovation_sd =
        sigma_eff * std::sqrt(1.0 - params_.noiseRho * params_.noiseRho);
    logState_ = params_.noiseRho * logState_ +
                rng_.normal(0.0, innovation_sd);
    // Mean-one multiplier: E[exp(N(mu, s^2))] = 1 for mu = -s^2/2.
    factor_ = std::exp(logState_ - 0.5 * sigma_eff * sigma_eff);
}

double
HostCostModel::rate(bool busy, double detail_factor) const
{
    const double base = params_.busySlowdownNsPerTick *
                        (busy ? 1.0 : params_.idleFactor);
    return std::max(1e-6, base * factor_ * detail_factor);
}

void
HostCostModel::serialize(ckpt::Writer &w) const
{
    ckpt::putRng(w, rng_);
    w.f64(factor_);
    w.f64(logState_);
}

void
HostCostModel::deserialize(ckpt::Reader &r)
{
    ckpt::getRng(r, rng_);
    factor_ = r.f64();
    logState_ = r.f64();
}

std::uint64_t
HostCostModel::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::node
