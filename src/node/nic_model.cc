#include "node/nic_model.hh"

#include <algorithm>

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::node
{

NicModel::NicModel(NodeId id, sim::EventQueue &queue,
                   net::NetworkController &controller,
                   stats::Group &stats_parent)
    : id_(id), queue_(queue), controller_(controller),
      statsGroup_(stats_parent.addGroup("nic")),
      statTxFrames_(statsGroup_.add<stats::Scalar>(
          "txFrames", "frames transmitted")),
      statTxBytes_(statsGroup_.add<stats::Scalar>(
          "txBytes", "bytes transmitted")),
      statRxFrames_(statsGroup_.add<stats::Scalar>(
          "rxFrames", "frames received")),
      statRxBytes_(statsGroup_.add<stats::Scalar>(
          "rxBytes", "bytes received"))
{}

void
NicModel::send(NodeId dst, std::uint32_t bytes, net::PayloadPtr payload)
{
    const net::NicParams &nic = controller_.nicParams();
    AQSIM_ASSERT(bytes > 0 && bytes <= nic.mtu);

    const Tick now = queue_.now();
    auto pkt = net::makePacket(id_, dst, bytes, now, std::move(payload));

    // Frames queue behind the transmitter; serialization is sequential.
    const Tick start =
        std::max(now + nic.txOverhead, txBusyUntil_);
    txBusyUntil_ = start + nic.serialization(bytes);
    pkt->departTick = txBusyUntil_ + nic.txLatency;

    ++statTxFrames_;
    statTxBytes_ += bytes;

    controller_.inject(pkt);
}

void
NicModel::setRxHandler(RxHandler handler)
{
    rxHandler_ = std::move(handler);
}

void
NicModel::deliverAt(net::PacketPtr pkt, Tick when)
{
    AQSIM_ASSERT(pkt->dst == id_);
    queue_.schedule(
        when,
        [this, pkt = std::move(pkt)] {
            ++statRxFrames_;
            statRxBytes_ += pkt->bytes;
            if (rxHandler_)
                rxHandler_(pkt);
        },
        sim::Priority::Delivery);
}

void
NicModel::serialize(ckpt::Writer &w) const
{
    w.u64(txBusyUntil_);
}

void
NicModel::deserialize(ckpt::Reader &r)
{
    txBusyUntil_ = r.u64();
}

std::uint64_t
NicModel::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::node
