#include "node/cpu_model.hh"

#include <cmath>

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::node
{

void
CpuModel::endCompute()
{
    AQSIM_ASSERT(computeDepth_ > 0);
    --computeDepth_;
}

void
CpuModel::serialize(ckpt::Writer &w) const
{
    w.u32(computeDepth_);
}

void
CpuModel::deserialize(ckpt::Reader &r)
{
    computeDepth_ = r.u32();
}

std::uint64_t
CpuModel::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

SimpleCpuModel::SimpleCpuModel(CpuParams params) : params_(params)
{
    AQSIM_ASSERT(params_.opsPerNs > 0.0);
}

Tick
SimpleCpuModel::computeLatency(double ops)
{
    AQSIM_ASSERT(ops >= 0.0);
    return static_cast<Tick>(std::llround(ops / params_.opsPerNs));
}

SamplingCpuModel::SamplingCpuModel(Params params, Rng rng)
    : params_(params), rng_(rng)
{
    AQSIM_ASSERT(params_.detailFraction > 0.0 &&
                 params_.detailFraction <= 1.0);
}

Tick
SamplingCpuModel::computeLatency(double ops)
{
    const double base_ns = ops / params_.cpu.opsPerNs;
    inDetail_ = rng_.bernoulli(params_.detailFraction);
    if (inDetail_)
        return static_cast<Tick>(std::llround(base_ns));
    // Fast-forwarded window: latency extrapolated with noise.
    const double noisy =
        base_ns * (1.0 + params_.timingNoise * rng_.normal());
    return static_cast<Tick>(std::llround(std::max(0.0, noisy)));
}

double
SamplingCpuModel::hostDetailFactor() const
{
    return inDetail_ ? 1.0 : params_.fastForwardCost;
}

void
SamplingCpuModel::serialize(ckpt::Writer &w) const
{
    CpuModel::serialize(w);
    ckpt::putRng(w, rng_);
    w.boolean(inDetail_);
}

void
SamplingCpuModel::deserialize(ckpt::Reader &r)
{
    CpuModel::deserialize(r);
    ckpt::getRng(r, rng_);
    inDetail_ = r.boolean();
}

} // namespace aqsim::node
