/**
 * @file
 * Network interface card model.
 *
 * The NIC lives at the boundary of the simulated node: on the transmit
 * side it serializes frames onto the (simulated) wire and injects them
 * into the network controller; on the receive side it turns deliveries
 * scheduled by the execution engine into events in the node's event
 * queue and hands the frames to the bound upper layer (mpi::Endpoint).
 *
 * This mirrors the paper's structure: "Our NIC timing extensions within
 * each SimNow-simulated node relay packets to the network controller
 * [...]. The destination NIC uses its timing interface to instruct the
 * internal SimNow event scheduling system of the arrival of the network
 * packet at the appropriate time."
 */

#ifndef AQSIM_NODE_NIC_MODEL_HH
#define AQSIM_NODE_NIC_MODEL_HH

#include <functional>

#include "base/types.hh"
#include "net/network_controller.hh"
#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "stats/stats.hh"

namespace aqsim::ckpt
{
class Reader;
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::node
{

/** Callback receiving frames on the rx side. */
using RxHandler = std::function<void(const net::PacketPtr &)>;

/** Transmit/receive model of one node's NIC. */
class NicModel
{
  public:
    /**
     * @param id owning node
     * @param queue the node's event queue
     * @param controller the cluster's network controller
     * @param stats_parent node stats group
     */
    NicModel(NodeId id, sim::EventQueue &queue,
             net::NetworkController &controller,
             stats::Group &stats_parent);

    /**
     * Transmit one frame (<= MTU) to @p dst. The frame queues behind
     * frames already serializing; departTick reflects tx overhead,
     * queueing, serialization and tx latency. Injection into the
     * controller happens immediately (the functional transfer), with
     * the timing carried on the packet — exactly the decoupled
     * functional/timing split the paper describes.
     */
    void send(NodeId dst, std::uint32_t bytes, net::PayloadPtr payload);

    /** Bind the upper-layer receive handler. */
    void setRxHandler(RxHandler handler);

    /**
     * Schedule delivery of @p pkt at @p when in the node's event queue
     * (called by the engine's delivery paths — see engine/shard_exec).
     * By value: callers handing over their last reference (the
     * exchange dispatch, mailbox drains) move it straight into the
     * delivery event with no refcount traffic.
     */
    void deliverAt(net::PacketPtr pkt, Tick when);

    /** Tick until which the transmitter is busy serializing. */
    Tick txBusyUntil() const { return txBusyUntil_; }

    /** Checkpoint support: persist the transmit-side timing state. */
    void serialize(ckpt::Writer &w) const;

    /** Restore state persisted by serialize(). */
    void deserialize(ckpt::Reader &r);

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const;

    /** Shared NIC timing parameters (from the controller config). */
    const net::NicParams &
    params() const
    {
        return controller_.nicParams();
    }

    NodeId id() const { return id_; }

  private:
    NodeId id_;
    sim::EventQueue &queue_;
    net::NetworkController &controller_;
    RxHandler rxHandler_;
    Tick txBusyUntil_ = 0;

    stats::Group &statsGroup_;
    stats::Scalar &statTxFrames_;
    stats::Scalar &statTxBytes_;
    stats::Scalar &statRxFrames_;
    stats::Scalar &statRxBytes_;
};

} // namespace aqsim::node

#endif // AQSIM_NODE_NIC_MODEL_HH
