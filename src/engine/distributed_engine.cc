#include "engine/distributed_engine.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/failure.hh"
#include "base/logging.hh"
#include "base/mutex.hh"
#include "ckpt/checkpoint.hh"
#include "ckpt/ckpt_io.hh"
#include "ckpt/run_checkpointer.hh"
#include "core/synchronizer.hh"
#include "engine/delivery_batch.hh"
#include "engine/shard_exec.hh"
#include "engine/watchdog.hh"
#include "engine/worker_pool.hh"
#include "fault/peer_drill.hh"
#include "mpi/packet_codec.hh"
#include "transport/heartbeat.hh"
#include "transport/socket.hh"

namespace aqsim::engine
{

const char *
peerFailureKindName(PeerFailureKind kind)
{
    switch (kind) {
    case PeerFailureKind::Disconnect:
        return "disconnect";
    case PeerFailureKind::Hang:
        return "hang";
    case PeerFailureKind::Corrupt:
        return "corrupt";
    case PeerFailureKind::Protocol:
        return "protocol";
    }
    return "unknown";
}

std::string
PeerFailure::describe() const
{
    const char *verb = "failed";
    switch (kind) {
    case PeerFailureKind::Disconnect:
        verb = "disconnected";
        break;
    case PeerFailureKind::Hang:
        verb = "hung";
        break;
    case PeerFailureKind::Corrupt:
        verb = "sent a corrupt frame";
        break;
    case PeerFailureKind::Protocol:
        verb = "broke the barrier protocol";
        break;
    }
    char head[192];
    std::snprintf(head, sizeof(head),
                  "peer %zu (pid %ld) %s at %s after %.2fs without a "
                  "frame; peer quarantined, surviving peers torn down",
                  peer, pid, verb, phase.c_str(), frameAge);
    std::string out(head);
    if (!detail.empty()) {
        out += " (";
        out += detail;
        out += ")";
    }
    return out;
}

namespace
{

using SteadyClock = std::chrono::steady_clock;

double
secondsSince(SteadyClock::time_point start)
{
    return std::chrono::duration<double>(SteadyClock::now() - start)
        .count();
}

/* ------------------------------------------------------------------ */
/* Worker-process side                                                */
/* ------------------------------------------------------------------ */

/**
 * Staging-only placement: in a conservative run every delivery's
 * ideal arrival lies at or beyond the quantum boundary, so placement
 * never consults the receiver's live state — which is exactly what
 * makes the partitioned execution exact. A delivery inside the open
 * quantum means the conservative precondition was violated; failing
 * loudly beats silently diverging from the sequential schedule.
 */
class DistScheduler : public net::DeliveryScheduler
{
  public:
    explicit DistScheduler(DeliveryBatch &batch) : batch_(batch) {}

    void setQuantumEnd(Tick qe) { qe_ = qe; }

    Tick
    place(const net::PacketPtr &pkt, net::DeliveryKind &kind) override
    {
        const Tick ideal = pkt->idealArrival;
        if (ideal < qe_)
            fatal("distributed run is not conservative: delivery at "
                  "tick %llu inside the open quantum ending %llu",
                  static_cast<unsigned long long>(ideal),
                  static_cast<unsigned long long>(qe_));
        kind = net::DeliveryKind::OnTime;
        batch_.stage(pkt, ideal, kind);
        return ideal;
    }

  private:
    DeliveryBatch &batch_;
    Tick qe_ = 0;
};

/** Execute any drills registered for this (peer, phase, quantum). */
void
fireDrills(const std::vector<fault::PeerDrill> &drills, std::size_t peer,
           fault::PeerDrillPhase phase, std::uint64_t quantum)
{
    for (const fault::PeerDrill &d : drills) {
        if (d.peer != peer || d.phase != phase)
            continue;
        if (phase != fault::PeerDrillPhase::Hello &&
            d.quantum != quantum)
            continue;
        switch (d.op) {
        case fault::PeerDrillOp::Kill:
            ::kill(::getpid(), SIGKILL);
            break; // unreachable
        case fault::PeerDrillOp::Stop:
            // Frozen until the coordinator's teardown SIGKILL: the
            // socket stays open, heartbeats stop — the Hang case.
            ::raise(SIGSTOP);
            break;
        case fault::PeerDrillOp::Exit:
            ::_exit(0); // no protocol goodbye: the half-open case
        }
    }
}

/** Everything one worker process needs (set up before fork). */
struct PeerSetup
{
    std::size_t index = 0;
    std::size_t numPeers = 1;
    const ClusterParams *params = nullptr;
    workloads::Workload *workload = nullptr;
    const EngineOptions *options = nullptr;
    transport::SocketChannel *channel = nullptr;
};

/**
 * Worker protocol loop. Builds a pristine cluster from the shared
 * parameters, executes its shard of nodes each Quantum frame, ships
 * outbound delivery runs in Exchange frames, adopts inbound runs from
 * Deliver frames, and serializes its state slice on demand.
 *
 * @return process exit code (0 = clean Stop).
 */
int
peerMain(const PeerSetup &p)
{
    Cluster cluster(*p.params, *p.workload);
    const std::size_t n = cluster.numNodes();
    const auto [begin, end] =
        WorkerPool::shardRange(p.index, p.numPeers, n);
    std::vector<NodeMailbox> mailboxes(n);
    DeliveryBatch batch(n, p.numPeers, false);
    DistScheduler scheduler(batch);
    cluster.controller().setScheduler(&scheduler);

    const auto drills = fault::parsePeerDrills(p.options->peerDrillSpec);
    // Healthy peers must outlive coordinator-side failure detection:
    // a peer that gave up first would turn one failed peer into K.
    const double deadline = p.options->peerDeadlineSeconds * 2.0 + 1.0;
    transport::SocketChannel &ch = *p.channel;
    transport::HeartbeatSender heartbeat(ch, p.options->heartbeatSeconds);

    fireDrills(drills, p.index, fault::PeerDrillPhase::Hello, 0);
    {
        transport::Frame hello;
        hello.type = transport::FrameType::Hello;
        ckpt::Writer w;
        w.u32(static_cast<std::uint32_t>(p.index));
        w.u32(static_cast<std::uint32_t>(p.numPeers));
        w.u32(static_cast<std::uint32_t>(n));
        hello.body = w.buffer();
        if (!ch.send(hello))
            return 1;
    }

    net::NetworkController::RemoteDeltas prev;
    std::uint64_t last_quantum = 0;
    for (;;) {
        transport::Frame f;
        if (ch.recv(f, deadline) != transport::RecvStatus::Ok)
            return 1; // coordinator gone or wedged: nothing to save
        switch (f.type) {
        case transport::FrameType::Quantum: {
            ckpt::Reader r(f.body, "quantum");
            r.u64(); // quantum start (implicit: nodes are already there)
            const Tick qe = r.u64();
            const std::uint64_t qi = r.u64();
            if (!r.ok() || qi != last_quantum + 1)
                return 1;
            cluster.controller().beginQuantum();
            prev = cluster.controller().snapshotCounters();
            for (std::size_t s = 0; s < p.numPeers; ++s)
                batch.beginQuantum(s);
            scheduler.setQuantumEnd(qe);
            for (NodeId id = begin; id < end; ++id)
                runNodeQuantum(cluster.node(id), mailboxes[id], qe);
            batch.closeRun(p.index);
            fireDrills(drills, p.index,
                       fault::PeerDrillPhase::Exchange, qi);

            transport::Frame ex;
            ex.type = transport::FrameType::Exchange;
            ckpt::Writer w;
            w.u32(static_cast<std::uint32_t>(p.index));
            w.u64(qi);
            const auto cur = cluster.controller().snapshotCounters();
            w.u64(cur.idsAssigned - prev.idsAssigned);
            w.u64(cur.packetsThisQuantum - prev.packetsThisQuantum);
            w.u64(cur.totalPackets - prev.totalPackets);
            w.u64(cur.totalStragglers - prev.totalStragglers);
            w.u64(cur.totalNextQuantum - prev.totalNextQuantum);
            w.u64(cur.totalLatenessTicks - prev.totalLatenessTicks);
            w.u64(cur.totalDropped - prev.totalDropped);
            w.u64(cur.bytes - prev.bytes);
            w.u32(static_cast<std::uint32_t>(p.numPeers - 1));
            for (std::size_t d = 0; d < p.numPeers; ++d) {
                if (d == p.index)
                    continue;
                const auto items = batch.takeRun(p.index, d);
                ckpt::Writer pw;
                for (const net::PacketPtr &pkt : items)
                    mpi::putPacket(pw, *pkt);
                w.u32(static_cast<std::uint32_t>(d));
                w.u32(static_cast<std::uint32_t>(items.size()));
                w.u64(pw.size());
                w.bytes(pw.buffer().data(), pw.size());
            }
            ex.body = w.buffer();
            if (!ch.send(ex))
                return 1;
            break;
        }
        case transport::FrameType::Deliver: {
            ckpt::Reader r(f.body, "deliver");
            const std::uint64_t qi = r.u64();
            const std::uint32_t num_sections = r.u32();
            if (!r.ok() || qi != last_quantum + 1 ||
                num_sections != p.numPeers - 1)
                return 1;
            for (std::uint32_t i = 0; i < num_sections; ++i) {
                const std::uint32_t u = r.u32();
                const std::uint32_t count = r.u32();
                r.u64(); // byte length (splicing aid; decode is serial)
                if (!r.ok() || u >= p.numPeers || u == p.index)
                    return 1;
                std::vector<net::PacketPtr> items;
                items.reserve(count);
                for (std::uint32_t j = 0; j < count; ++j) {
                    net::PacketPtr pkt = mpi::getPacket(r);
                    if (!pkt)
                        return 1;
                    items.push_back(std::move(pkt));
                }
                batch.injectRun(u, p.index, std::move(items));
            }
            if (!r.ok() || r.remaining() != 0)
                return 1;
            for (std::size_t u = 0; u < p.numPeers; ++u)
                if (u != p.index)
                    batch.closeRun(u);
            fireDrills(drills, p.index, fault::PeerDrillPhase::Ack, qi);
            batch.mergeShard(p.index, cluster);
            last_quantum = qi;

            bool all_done = true;
            bool any_pending = false;
            Tick max_finish = 0;
            for (NodeId id = begin; id < end; ++id) {
                node::NodeSimulator &node = cluster.node(id);
                all_done = all_done && node.appDone();
                any_pending = any_pending || !node.queue().empty();
                max_finish = std::max(max_finish, node.appFinishTick());
            }
            transport::Frame ack;
            ack.type = transport::FrameType::Ack;
            ckpt::Writer w;
            w.u32(static_cast<std::uint32_t>(p.index));
            w.u64(qi);
            w.boolean(all_done);
            w.boolean(any_pending);
            w.u64(max_finish);
            w.u64(batch.totalStaged());
            w.u64(batch.totalMerged());
            ack.body = w.buffer();
            if (!ch.send(ack))
                return 1;
            break;
        }
        case transport::FrameType::StateReq: {
            transport::Frame st;
            st.type = transport::FrameType::State;
            ckpt::Writer w;
            w.u32(static_cast<std::uint32_t>(p.index));
            w.u64(last_quantum);
            const auto slice = [&](auto &&serialize) {
                ckpt::Writer b;
                serialize(b);
                w.u64(b.size());
                w.bytes(b.buffer().data(), b.size());
            };
            slice([&](ckpt::Writer &b) {
                cluster.serializeNodeRange(b, begin, end);
            });
            slice([&](ckpt::Writer &b) {
                cluster.serializeMpiRange(b, begin, end);
            });
            slice([&](ckpt::Writer &b) {
                cluster.serializeWorkloadRange(b, begin, end);
            });
            const fault::FaultInjector *inj = cluster.faultInjector();
            w.boolean(inj != nullptr);
            if (inj) {
                slice([&](ckpt::Writer &b) {
                    inj->serializeLinkRange(b, begin, end);
                });
                w.u64(inj->totalDropped());
                w.u64(inj->totalDuplicated());
                w.u64(inj->totalCorrupted());
                w.u64(inj->totalDelayed());
            }
            w.u32(static_cast<std::uint32_t>(end - begin));
            for (NodeId id = begin; id < end; ++id)
                w.u64(cluster.node(id).appFinishTick());
            w.u64(cluster.totalRetransmits());
            st.body = w.buffer();
            if (!ch.send(st))
                return 1;
            break;
        }
        case transport::FrameType::Stop:
            return 0;
        case transport::FrameType::Abort:
            return 1;
        case transport::FrameType::Heartbeat:
            break; // tolerated, though the coordinator sends none
        default:
            return 1;
        }
    }
}

/**
 * Worker-process entry: run the protocol loop under a FailureTrap so
 * an in-simulation fatal()/panic() becomes an Abort frame the
 * coordinator can attribute, instead of a silent disconnect.
 */
int
peerProcess(const PeerSetup &p)
{
    base::FailureTrap trap;
    try {
        return peerMain(p);
    } catch (const base::RunAbort &abort) {
        transport::Frame f;
        f.type = transport::FrameType::Abort;
        ckpt::Writer w;
        w.str(abort.cause());
        w.str(abort.detail());
        f.body = w.buffer();
        p.channel->send(f); // best effort; the pipe may be gone
        return 1;
    }
}

/* ------------------------------------------------------------------ */
/* Coordinator side                                                   */
/* ------------------------------------------------------------------ */

/**
 * The coordinator's view of its worker processes: channels and pids
 * (protocol-thread-owned), plus a mutex-guarded liveness table the
 * watchdog's dump thread reads, and RAII teardown — on any exit path
 * every child is SIGKILLed (which also reaps SIGSTOPped workers) and
 * reaped, so a failed run never leaks processes.
 */
class PeerGroup
{
  public:
    explicit PeerGroup(std::size_t count)
        : channels(count), pids(count, -1), live_(count)
    {
        const auto now = SteadyClock::now();
        base::MutexLock lock(mutex_);
        for (Liveness &l : live_)
            l.lastFrame = now;
    }

    ~PeerGroup() { teardown(); }

    PeerGroup(const PeerGroup &) = delete;
    PeerGroup &operator=(const PeerGroup &) = delete;

    std::size_t size() const { return channels.size(); }

    void
    setPhase(std::size_t w, const char *phase) AQSIM_EXCLUDES(mutex_)
    {
        base::MutexLock lock(mutex_);
        live_[w].phase = phase;
    }

    void
    touch(std::size_t w) AQSIM_EXCLUDES(mutex_)
    {
        base::MutexLock lock(mutex_);
        live_[w].lastFrame = SteadyClock::now();
    }

    double
    frameAge(std::size_t w) const AQSIM_EXCLUDES(mutex_)
    {
        base::MutexLock lock(mutex_);
        return std::chrono::duration<double>(SteadyClock::now() -
                                             live_[w].lastFrame)
            .count();
    }

    void
    markFailed(std::size_t w) AQSIM_EXCLUDES(mutex_)
    {
        base::MutexLock lock(mutex_);
        live_[w].failed = true;
        live_[w].phase = "failed";
    }

    bool
    failed(std::size_t w) const AQSIM_EXCLUDES(mutex_)
    {
        base::MutexLock lock(mutex_);
        return live_[w].failed;
    }

    /** One line per worker for the watchdog's PanicInfo::peers. */
    std::string
    report() const AQSIM_EXCLUDES(mutex_)
    {
        const auto now = SteadyClock::now();
        base::MutexLock lock(mutex_);
        std::string out;
        for (std::size_t w = 0; w < live_.size(); ++w) {
            const double age = std::chrono::duration<double>(
                                   now - live_[w].lastFrame)
                                   .count();
            char line[128];
            std::snprintf(line, sizeof(line),
                          "  peer %zu: pid %ld phase=%s last-frame "
                          "%.2fs ago\n",
                          w, static_cast<long>(pids[w]),
                          live_[w].phase.c_str(), age);
            out += line;
        }
        return out;
    }

    /**
     * Clean shutdown: Stop frame to every healthy worker, then a
     * bounded reap; whoever fails to exit in time meets teardown()'s
     * SIGKILL.
     */
    void
    stopAll(double deadline_seconds) AQSIM_EXCLUDES(mutex_)
    {
        transport::Frame stop;
        stop.type = transport::FrameType::Stop;
        for (std::size_t w = 0; w < size(); ++w)
            if (pids[w] > 0 && !failed(w) && !reaped(w))
                channels[w]->send(stop);
        const auto start = SteadyClock::now();
        for (std::size_t w = 0; w < size(); ++w) {
            while (pids[w] > 0 && !reaped(w)) {
                int status = 0;
                const pid_t got = ::waitpid(pids[w], &status, WNOHANG);
                if (got == pids[w] || (got < 0 && errno == ECHILD)) {
                    markReaped(w);
                    break;
                }
                if (secondsSince(start) >= deadline_seconds)
                    break;
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
        }
    }

    /**
     * Last-resort teardown (every exit path): best-effort Abort frame
     * so a healthy worker can exit on its own terms, then SIGKILL —
     * which also terminates SIGSTOPped workers — and a blocking reap.
     * Idempotent.
     */
    void
    teardown() AQSIM_EXCLUDES(mutex_)
    {
        for (std::size_t w = 0; w < size(); ++w) {
            if (pids[w] <= 0 || reaped(w))
                continue;
            if (!failed(w) && channels[w]) {
                transport::Frame f;
                f.type = transport::FrameType::Abort;
                ckpt::Writer wr;
                wr.str("coordinator");
                wr.str("run torn down");
                f.body = wr.buffer();
                channels[w]->send(f);
            }
            ::kill(pids[w], SIGKILL);
            ::waitpid(pids[w], nullptr, 0);
            markReaped(w);
        }
    }

    std::vector<std::unique_ptr<transport::SocketChannel>> channels;
    std::vector<pid_t> pids;

  private:
    struct Liveness
    {
        std::string phase = "spawn";
        SteadyClock::time_point lastFrame;
        bool failed = false;
        bool reaped = false;
    };

    bool
    reaped(std::size_t w) const AQSIM_EXCLUDES(mutex_)
    {
        base::MutexLock lock(mutex_);
        return live_[w].reaped;
    }

    void
    markReaped(std::size_t w) AQSIM_EXCLUDES(mutex_)
    {
        base::MutexLock lock(mutex_);
        live_[w].reaped = true;
    }

    mutable base::Mutex mutex_;
    std::vector<Liveness> live_ AQSIM_GUARDED_BY(mutex_);
};

/**
 * Coordinator protocol helpers: deadline-bounded awaits that absorb
 * heartbeats, poll supervised cancellation, and convert every failure
 * mode into a PeerFailure-carrying RunAbort.
 */
class Coordinator
{
  public:
    Coordinator(const EngineOptions &options, PeerGroup &peers,
                base::CancelToken *cancel)
        : options_(options), peers_(peers), cancel_(cancel)
    {}

    /** Completed-quanta count stamped into failures. */
    std::uint64_t quantum = 0;

    void
    sendFrame(std::size_t w, const transport::Frame &frame,
              const char *phase)
    {
        if (!peers_.channels[w]->send(frame))
            fail(w, PeerFailureKind::Disconnect, phase);
    }

    /**
     * Wait for one @p want frame from worker @p w. Any frame resets
     * the liveness window (heartbeats keep a slow peer alive); the
     * deadline elapsing, a closed pipe, wire damage, an unexpected
     * type, or a peer-reported Abort all throw.
     */
    transport::Frame
    await(std::size_t w, transport::FrameType want, const char *phase)
    {
        peers_.setPhase(w, phase);
        transport::SocketChannel &ch = *peers_.channels[w];
        auto window_start = SteadyClock::now();
        for (;;) {
            if (cancel_ && cancel_->cancelled())
                throw base::RunAbort(
                    "watchdog", "run cancelled after watchdog expiry",
                    quantum);
            const double elapsed = secondsSince(window_start);
            if (elapsed >= options_.peerDeadlineSeconds)
                fail(w, PeerFailureKind::Hang, phase);
            // Short slices keep the cancellation poll responsive
            // without giving up any of the peer's deadline.
            const double slice = std::min(
                0.25, options_.peerDeadlineSeconds - elapsed);
            transport::Frame f;
            switch (ch.recv(f, std::max(slice, 0.01))) {
            case transport::RecvStatus::Ok:
                peers_.touch(w);
                window_start = SteadyClock::now();
                if (f.type == transport::FrameType::Heartbeat)
                    continue;
                if (f.type == want)
                    return f;
                if (f.type == transport::FrameType::Abort) {
                    ckpt::Reader r(f.body, "abort");
                    const std::string cause = r.str();
                    const std::string detail = r.str();
                    fail(w, PeerFailureKind::Protocol, phase,
                         "peer aborted itself: " + cause + ": " +
                             detail);
                }
                fail(w, PeerFailureKind::Protocol, phase,
                     std::string("unexpected ") +
                         transport::frameTypeName(f.type) + " frame");
            case transport::RecvStatus::Timeout:
                continue;
            case transport::RecvStatus::Closed:
                fail(w, PeerFailureKind::Disconnect, phase);
            case transport::RecvStatus::Corrupt:
                fail(w, PeerFailureKind::Corrupt, phase);
            }
        }
    }

    /** Quarantine worker @p w and abort the run with its failure. */
    [[noreturn]] void
    fail(std::size_t w, PeerFailureKind kind, const char *phase,
         std::string detail = "")
    {
        PeerFailure failure;
        failure.kind = kind;
        failure.peer = w;
        failure.pid = static_cast<long>(peers_.pids[w]);
        failure.phase = phase;
        failure.frameAge = peers_.frameAge(w);
        failure.detail = std::move(detail);
        peers_.markFailed(w);
        peers_.channels[w]->close();
        throw base::RunAbort("peer-failure", failure.describe(),
                             quantum);
    }

  private:
    const EngineOptions &options_;
    PeerGroup &peers_;
    base::CancelToken *cancel_;
};

/** One raw, already-encoded packet run headed for one destination. */
struct Segment
{
    std::uint32_t count = 0;
    std::vector<std::uint8_t> bytes;
};

/** One worker's serialized state slice (State frame, decoded). */
struct PeerState
{
    std::vector<std::uint8_t> nodes;
    std::vector<std::uint8_t> mpi;
    std::vector<std::uint8_t> workload;
    std::vector<std::uint8_t> faultRows;
    std::uint64_t faultTotals[4] = {0, 0, 0, 0};
    bool hasFault = false;
    std::vector<Tick> finish;
    std::uint64_t retransmits = 0;
};

/** Copy the next @p len raw bytes out of @p body via @p r. */
bool
takeRaw(ckpt::Reader &r, const std::vector<std::uint8_t> &body,
        std::uint64_t len, std::vector<std::uint8_t> &out)
{
    if (!r.ok() || r.remaining() < len)
        return false;
    const std::size_t offset = body.size() - r.remaining();
    out.assign(body.begin() + static_cast<std::ptrdiff_t>(offset),
               body.begin() + static_cast<std::ptrdiff_t>(offset + len));
    r.skip(len);
    return true;
}

/** Request + decode worker @p w's state slice at @p expect_quantum. */
PeerState
fetchPeerState(Coordinator &coord, std::size_t w,
               std::uint64_t expect_quantum, std::size_t expect_owned,
               bool expect_fault)
{
    transport::Frame req;
    req.type = transport::FrameType::StateReq;
    coord.sendFrame(w, req, "state request");
    const transport::Frame f =
        coord.await(w, transport::FrameType::State, "state gather");

    ckpt::Reader r(f.body, "state");
    PeerState st;
    const std::uint32_t index = r.u32();
    const std::uint64_t q = r.u64();
    bool ok = index == w && q == expect_quantum;
    ok = ok && takeRaw(r, f.body, r.u64(), st.nodes);
    ok = ok && takeRaw(r, f.body, r.u64(), st.mpi);
    ok = ok && takeRaw(r, f.body, r.u64(), st.workload);
    st.hasFault = r.boolean();
    ok = ok && st.hasFault == expect_fault;
    if (ok && st.hasFault) {
        ok = takeRaw(r, f.body, r.u64(), st.faultRows);
        for (std::uint64_t &total : st.faultTotals)
            total = r.u64();
    }
    const std::uint32_t owned = r.u32();
    ok = ok && r.ok() && owned == expect_owned;
    if (ok) {
        st.finish.reserve(owned);
        for (std::uint32_t i = 0; i < owned; ++i)
            st.finish.push_back(r.u64());
        st.retransmits = r.u64();
    }
    if (!ok || !r.ok() || r.remaining() != 0)
        coord.fail(w, PeerFailureKind::Protocol, "state gather",
                   "malformed state slice");
    return st;
}

/** All peer slices spliced into whole-cluster section bodies. */
struct GatheredState
{
    std::vector<std::uint8_t> nodesBody;
    std::vector<std::uint8_t> mpiBody;
    std::vector<std::uint8_t> netBody;
    std::vector<std::uint8_t> faultBody;
    std::vector<std::uint8_t> workloadBody;
    std::vector<std::uint8_t> engineBody;
    std::vector<Tick> finishTicks;
    std::uint64_t retransmits = 0;
};

/**
 * Splice the workers' contiguous, node-ordered slices back into the
 * exact whole-cluster section encodings Cluster::serialize* would
 * produce — the coordinator's replica contributes the net section
 * (its controller holds the absorbed global counters; the default
 * PerfectSwitch is stateless, which run() enforced up front).
 */
GatheredState
assembleState(Cluster &cluster, const std::vector<PeerState> &states,
              std::uint64_t staged_total, std::uint64_t merged_total)
{
    const std::size_t n = cluster.numNodes();
    GatheredState g;
    {
        ckpt::Writer w;
        w.u32(static_cast<std::uint32_t>(n));
        for (const PeerState &st : states)
            w.bytes(st.nodes.data(), st.nodes.size());
        g.nodesBody = w.buffer();
    }
    {
        ckpt::Writer w;
        w.u32(static_cast<std::uint32_t>(n));
        for (const PeerState &st : states)
            w.bytes(st.mpi.data(), st.mpi.size());
        g.mpiBody = w.buffer();
    }
    {
        ckpt::Writer w;
        cluster.serializeNet(w);
        g.netBody = w.buffer();
    }
    {
        ckpt::Writer w;
        const bool has = cluster.faultInjector() != nullptr;
        w.boolean(has);
        if (has) {
            w.u32(static_cast<std::uint32_t>(n * n));
            for (const PeerState &st : states)
                w.bytes(st.faultRows.data(), st.faultRows.size());
            for (std::size_t i = 0; i < 4; ++i) {
                std::uint64_t total = 0;
                for (const PeerState &st : states)
                    total += st.faultTotals[i];
                w.u64(total);
            }
        }
        g.faultBody = w.buffer();
    }
    {
        ckpt::Writer w;
        w.u32(static_cast<std::uint32_t>(n));
        for (const PeerState &st : states)
            w.bytes(st.workload.data(), st.workload.size());
        g.workloadBody = w.buffer();
    }
    {
        // Matches DeliveryBatch::serialize at a boundary: pending is
        // always 0 and the lifetime counters sum over the peers
        // (stage and merge each happen exactly once per delivery,
        // just in different processes).
        ckpt::Writer w;
        w.u32(0);
        w.u64(staged_total);
        w.u64(merged_total);
        g.engineBody = w.buffer();
    }
    for (const PeerState &st : states) {
        g.finishTicks.insert(g.finishTicks.end(), st.finish.begin(),
                             st.finish.end());
        g.retransmits += st.retransmits;
    }
    return g;
}

/** Frame the gathered bodies as a checkpoint image (buildImage's
 * section order, with the spliced bodies standing in for the live
 * cluster's). */
ckpt::CheckpointImage
spliceImage(const GatheredState &g, const core::Synchronizer &sync,
            std::uint64_t config_hash)
{
    ckpt::CheckpointImage image;
    image.quantumIndex = sync.numQuanta();
    image.quantumStart = sync.quantumStart();
    image.quantumEnd = sync.quantumEnd();
    image.configHash = config_hash;
    image.engine = "distributed";
    {
        ckpt::Writer w;
        sync.serialize(w);
        image.sections.push_back({ckpt::sectionSync, w.buffer()});
    }
    image.sections.push_back({ckpt::sectionNodes, g.nodesBody});
    image.sections.push_back({ckpt::sectionMpi, g.mpiBody});
    image.sections.push_back({ckpt::sectionNet, g.netBody});
    image.sections.push_back({ckpt::sectionFault, g.faultBody});
    image.sections.push_back({ckpt::sectionWorkload, g.workloadBody});
    image.sections.push_back({ckpt::sectionEngine, g.engineBody});
    image.stateHash = ckpt::sectionsHash(image.sections);
    return image;
}

/** Cluster::stateHash over the spliced section bodies. */
std::uint64_t
splicedStateHash(const GatheredState &g)
{
    ckpt::Writer w;
    w.bytes(g.nodesBody.data(), g.nodesBody.size());
    w.bytes(g.mpiBody.data(), g.mpiBody.size());
    w.bytes(g.netBody.data(), g.netBody.size());
    w.bytes(g.faultBody.data(), g.faultBody.size());
    w.bytes(g.workloadBody.data(), g.workloadBody.size());
    return w.hash();
}

} // namespace

DistributedEngine::DistributedEngine(EngineOptions options)
    : options_(options)
{}

RunResult
DistributedEngine::run(const ClusterParams &params,
                       workloads::Workload &workload,
                       core::QuantumPolicy &policy)
{
    if (params.network.switchModel)
        fatal("distributed engine requires the default PerfectSwitch: "
              "stateful per-port switch occupancy cannot be spliced "
              "from per-peer state slices");

    // Coordinator replica: configuration, the globally absorbed
    // controller counters, and checkpoint assembly. Its nodes never
    // execute an event.
    Cluster cluster(params, workload);
    const std::size_t n = cluster.numNodes();
    core::Synchronizer sync(policy, cluster.controller(),
                            cluster.statsRoot(),
                            options_.recordTimeline);
    if (!sync.conservative())
        fatal("distributed engine requires a conservative fixed "
              "quantum <= the minimum network latency (%llu ticks): "
              "only then is partitioned execution exact",
              static_cast<unsigned long long>(
                  cluster.controller().minNetworkLatency()));

    const std::size_t num_peers =
        WorkerPool::resolveWorkerCount(options_.numWorkers, n);
    const std::uint64_t config_hash = ckpt::configFingerprint(
        params, policy.name(), workload.name());

    // Fork every worker before any coordinator thread exists
    // (watchdog, heartbeat receivers): a post-thread fork could
    // inherit a lock held mid-operation by a non-forked thread.
    PeerGroup peers(num_peers);
    std::vector<std::unique_ptr<transport::SocketChannel>> child_ends(
        num_peers);
    for (std::size_t w = 0; w < num_peers; ++w) {
        auto [coord_end, peer_end] = transport::socketChannelPair();
        peers.channels[w] = std::move(coord_end);
        child_ends[w] = std::move(peer_end);
    }
    for (std::size_t w = 0; w < num_peers; ++w) {
        const pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            // Worker: drop every inherited channel end except our
            // own, so a dead sibling's socket actually reads EOF.
            for (std::size_t u = 0; u < num_peers; ++u) {
                peers.channels[u].reset();
                if (u != w)
                    child_ends[u].reset();
            }
            PeerSetup setup;
            setup.index = w;
            setup.numPeers = num_peers;
            setup.params = &params;
            setup.workload = &workload;
            setup.options = &options_;
            setup.channel = child_ends[w].get();
            ::_exit(peerProcess(setup));
        }
        peers.pids[w] = pid;
    }
    for (std::size_t w = 0; w < num_peers; ++w)
        child_ends[w].reset();

    ckpt::RunCkptOptions ck;
    ck.every = options_.checkpointEvery;
    ck.dir = options_.checkpointDir;
    ck.restorePath = options_.restorePath;
    ck.verifyRestore = options_.verifyRestore;
    ck.keepLast = options_.checkpointKeepLast;
    // No panic stash: a boundary image requires a cross-process state
    // gather, and the peers are by definition unresponsive when the
    // watchdog fires.
    ck.stashForPanic = false;
    std::unique_ptr<ckpt::RunCheckpointer> checkpointer;
    if (ck.enabled()) {
        checkpointer = std::make_unique<ckpt::RunCheckpointer>(
            ck, cluster, sync, config_hash, "distributed");
        checkpointer->begin();
    }

    base::CancelToken *const cancel = options_.cancelToken;
    std::unique_ptr<Watchdog> watchdog_owner;
    Watchdog *watchdog = nullptr;
    if (options_.watchdogSeconds > 0.0) {
        // Run-local (not engine-owned like the in-process engines):
        // the watchdog thread must not exist across this engine's
        // fork calls, and a fresh run forks fresh workers anyway.
        watchdog_owner =
            std::make_unique<Watchdog>(options_.watchdogSeconds);
        Watchdog::PanicFn on_panic;
        if (cancel || options_.onWatchdogPanic) {
            on_panic = [handler = options_.onWatchdogPanic,
                        cancel](const PanicInfo &info) {
                if (handler)
                    handler(info);
                if (cancel)
                    cancel->requestCancel();
            };
        }
        watchdog_owner->arm(
            [&sync, &peers, ckpt = checkpointer.get()] {
                PanicInfo info;
                info.quantumStart = sync.quantumStart();
                info.quantumEnd = sync.quantumEnd();
                // Node state lives in the worker processes; the
                // useful dump here is per-peer liveness.
                info.peers = peers.report();
                if (ckpt)
                    info.note = ckpt->panicNote();
                return info;
            },
            std::move(on_panic));
        watchdog = watchdog_owner.get();
    }

    Coordinator coord(options_, peers, cancel);

    const auto wall_start = SteadyClock::now();
    const std::uint64_t max_quanta =
        options_.maxQuanta ? options_.maxQuanta : 500'000'000ULL;
    const bool has_fault = cluster.faultInjector() != nullptr;

    RunResult result;
    try {
        // Handshake: every worker announces itself with a geometry
        // echo, which catches build/parameter skew before any quantum
        // runs.
        for (std::size_t w = 0; w < num_peers; ++w) {
            const transport::Frame hello =
                coord.await(w, transport::FrameType::Hello, "hello");
            ckpt::Reader r(hello.body, "hello");
            const std::uint32_t index = r.u32();
            const std::uint32_t k = r.u32();
            const std::uint32_t nodes = r.u32();
            if (!r.ok() || index != w || k != num_peers || nodes != n)
                coord.fail(w, PeerFailureKind::Protocol, "hello",
                           "geometry mismatch in hello");
        }

        sync.begin();
        // At quantum 0 the pristine replica *is* the peers' state;
        // afterwards the flags aggregate from the workers' Acks.
        bool all_done = cluster.allDone();
        bool any_pending = cluster.anyEventPending();
        std::uint64_t staged_total = 0;
        std::uint64_t merged_total = 0;
        auto quantum_start_wall = wall_start;

        while (!all_done) {
            if (cancel && cancel->cancelled())
                throw base::RunAbort(
                    "watchdog", "run cancelled after watchdog expiry",
                    sync.numQuanta());
            if (!any_pending)
                panic("cluster deadlock: no pending events but "
                      "applications incomplete (%zu peers)\n%s",
                      num_peers, peers.report().c_str());
            const std::uint64_t qi = sync.numQuanta() + 1;
            coord.quantum = sync.numQuanta();

            transport::Frame quantum;
            quantum.type = transport::FrameType::Quantum;
            {
                ckpt::Writer w;
                w.u64(sync.quantumStart());
                w.u64(sync.quantumEnd());
                w.u64(qi);
                quantum.body = w.buffer();
            }
            for (std::size_t w = 0; w < num_peers; ++w)
                coord.sendFrame(w, quantum, "quantum dispatch");

            // Exchange barrier: collect per-peer counter deltas and
            // the raw per-destination packet runs. The deltas are
            // absorbed into the replica controller *before*
            // completeQuantum() so the policy and stats see the
            // global per-quantum packet count.
            std::vector<std::vector<Segment>> segs(
                num_peers, std::vector<Segment>(num_peers));
            for (std::size_t w = 0; w < num_peers; ++w) {
                const transport::Frame ex = coord.await(
                    w, transport::FrameType::Exchange,
                    "exchange barrier");
                ckpt::Reader r(ex.body, "exchange");
                const std::uint32_t index = r.u32();
                const std::uint64_t q = r.u64();
                net::NetworkController::RemoteDeltas d;
                d.idsAssigned = r.u64();
                d.packetsThisQuantum = r.u64();
                d.totalPackets = r.u64();
                d.totalStragglers = r.u64();
                d.totalNextQuantum = r.u64();
                d.totalLatenessTicks = r.u64();
                d.totalDropped = r.u64();
                d.bytes = r.u64();
                const std::uint32_t num_sections = r.u32();
                bool ok = r.ok() && index == w && q == qi &&
                          num_sections == num_peers - 1;
                for (std::uint32_t i = 0; ok && i < num_sections;
                     ++i) {
                    const std::uint32_t dst = r.u32();
                    const std::uint32_t count = r.u32();
                    const std::uint64_t len = r.u64();
                    ok = r.ok() && dst < num_peers && dst != w;
                    if (ok) {
                        segs[w][dst].count = count;
                        ok = takeRaw(r, ex.body, len,
                                     segs[w][dst].bytes);
                    }
                }
                if (!ok || !r.ok() || r.remaining() != 0)
                    coord.fail(w, PeerFailureKind::Protocol,
                               "exchange barrier",
                               "malformed exchange body");
                cluster.controller().absorbRemoteDeltas(d);
            }

            // Deliver: splice each destination's inbound runs —
            // ascending source order, raw byte segments, no packet
            // re-encoding on the coordinator.
            for (std::size_t d = 0; d < num_peers; ++d) {
                transport::Frame deliver;
                deliver.type = transport::FrameType::Deliver;
                ckpt::Writer w;
                w.u64(qi);
                w.u32(static_cast<std::uint32_t>(num_peers - 1));
                for (std::size_t u = 0; u < num_peers; ++u) {
                    if (u == d)
                        continue;
                    const Segment &seg = segs[u][d];
                    w.u32(static_cast<std::uint32_t>(u));
                    w.u32(seg.count);
                    w.u64(seg.bytes.size());
                    w.bytes(seg.bytes.data(), seg.bytes.size());
                }
                deliver.body = w.buffer();
                coord.sendFrame(d, deliver, "delivery dispatch");
            }

            // Ack barrier: aggregate the workers' local progress.
            all_done = true;
            any_pending = false;
            staged_total = 0;
            merged_total = 0;
            for (std::size_t w = 0; w < num_peers; ++w) {
                const transport::Frame ack = coord.await(
                    w, transport::FrameType::Ack, "ack barrier");
                ckpt::Reader r(ack.body, "ack");
                const std::uint32_t index = r.u32();
                const std::uint64_t q = r.u64();
                const bool done_local = r.boolean();
                const bool pending_local = r.boolean();
                r.u64(); // max local finish tick (final gather wins)
                const std::uint64_t staged = r.u64();
                const std::uint64_t merged = r.u64();
                if (!r.ok() || r.remaining() != 0 || index != w ||
                    q != qi)
                    coord.fail(w, PeerFailureKind::Protocol,
                               "ack barrier", "malformed ack body");
                all_done = all_done && done_local;
                any_pending = any_pending || pending_local;
                staged_total += staged;
                merged_total += merged;
            }

            if (watchdog)
                watchdog->kick();
            const auto now_wall = SteadyClock::now();
            const HostNs quantum_ns =
                std::chrono::duration<double, std::nano>(
                    now_wall - quantum_start_wall)
                    .count();
            quantum_start_wall = now_wall;
            sync.completeQuantum(quantum_ns);
            coord.quantum = sync.numQuanta();

            // Cross-process state gathers are paid only on quanta
            // where an image is actually consumed (periodic write or
            // restore verify).
            if (checkpointer &&
                checkpointer->imageDue(sync.numQuanta())) {
                std::vector<PeerState> states;
                states.reserve(num_peers);
                for (std::size_t w = 0; w < num_peers; ++w) {
                    const auto [sb, se] =
                        WorkerPool::shardRange(w, num_peers, n);
                    states.push_back(fetchPeerState(
                        coord, w, sync.numQuanta(), se - sb,
                        has_fault));
                }
                const GatheredState g = assembleState(
                    cluster, states, staged_total, merged_total);
                checkpointer->onQuantumCompleted(
                    spliceImage(g, sync, config_hash));
            }

            if (options_.injectFailAfterQuantum &&
                sync.numQuanta() == options_.injectFailAfterQuantum) {
                // Deterministic recovery drill; see EngineOptions.
                if (options_.injectWatchdogPanic) {
                    PanicInfo info;
                    info.quantaCompleted = sync.numQuanta();
                    info.quantumStart = sync.quantumStart();
                    info.quantumEnd = sync.quantumEnd();
                    info.peers = peers.report();
                    if (options_.onWatchdogPanic)
                        options_.onWatchdogPanic(info);
                    if (cancel) {
                        cancel->requestCancel();
                        continue; // next poll throws organically
                    }
                }
                throw base::RunAbort(
                    "injected", "injected failure for recovery drill",
                    sync.numQuanta());
            }
            if (sync.numQuanta() > max_quanta)
                fatal("quantum budget exceeded (%llu)",
                      static_cast<unsigned long long>(max_quanta));
            if (options_.maxSimTicks &&
                sync.quantumStart() > options_.maxSimTicks)
                fatal("simulated time budget exceeded");
        }
        if (cancel && cancel->cancelled())
            throw base::RunAbort("watchdog",
                                 "run cancelled after watchdog expiry",
                                 sync.numQuanta());

        // Final gather: finish ticks, retransmit totals, and the
        // spliced state fingerprint that must equal the sequential
        // engine's Cluster::stateHash bit for bit.
        std::vector<PeerState> states;
        states.reserve(num_peers);
        for (std::size_t w = 0; w < num_peers; ++w) {
            const auto [sb, se] =
                WorkerPool::shardRange(w, num_peers, n);
            states.push_back(fetchPeerState(coord, w, sync.numQuanta(),
                                            se - sb, has_fault));
        }
        const GatheredState g = assembleState(
            cluster, states, staged_total, merged_total);
        peers.stopAll(options_.peerDeadlineSeconds);

        const HostNs host_ns =
            std::chrono::duration<double, std::nano>(
                SteadyClock::now() - wall_start)
                .count();
        if (watchdog)
            watchdog->disarm();

        result.workload = workload.name();
        result.policy = policy.name();
        result.engine = "distributed";
        result.numNodes = n;
        result.finishTicks = g.finishTicks;
        result.simTicks = g.finishTicks.empty()
                              ? 0
                              : *std::max_element(
                                    g.finishTicks.begin(),
                                    g.finishTicks.end());
        result.hostNs = host_ns;
        result.metric = workload.metricValue(result.simTicks);
        result.quanta = sync.numQuanta();
        result.packets = cluster.controller().totalPackets();
        result.stragglers = cluster.controller().totalStragglers();
        result.nextQuantumDeliveries =
            cluster.controller().totalNextQuantum();
        result.latenessTicks =
            cluster.controller().totalLatenessTicks();
        result.meanQuantumTicks = sync.stats().meanQuantumLength();
        result.droppedFrames = cluster.controller().totalDropped();
        result.retransmits = g.retransmits;
        result.timeline = sync.stats().timeline();
        result.finalStateHash = splicedStateHash(g);
        if (checkpointer)
            checkpointer->finish(result);
    } catch (...) {
        // A supervised abort must not leave the watchdog armed with a
        // dump capturing this (dying) run's objects; the PeerGroup
        // destructor then tears down every surviving worker.
        if (watchdog)
            watchdog->disarm();
        throw;
    }
    return result;
    // `peers` is destroyed on return: any worker stopAll failed to
    // reap is SIGKILLed and reaped before the replica goes away.
}

} // namespace aqsim::engine
