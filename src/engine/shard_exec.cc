#include "engine/shard_exec.hh"

#include <algorithm>
#include <vector>

#include "base/failure.hh"
#include "engine/worker_pool.hh"
#include "node/node_simulator.hh"

namespace aqsim::engine
{

void
runNodeQuantum(node::NodeSimulator &node, NodeMailbox &mbx, Tick qe,
               const base::CancelToken *cancel)
{
    auto &queue = node.queue();

    // Mid-quantum drain of deliveries placed *inside* the open
    // quantum (the urgent/straggler path). Cross-quantum deliveries
    // never touch the mailbox anymore: they are staged in the source
    // shard's DeliveryBatch run and merged canonically at the barrier.
    // No invariant hook here: the receiver is live, so an on-time
    // parked delivery may benignly trail queue.now() by the placement
    // race the engine already clamps for. The race-free merge check
    // happens in DeliveryBatch::mergeShard.
    auto deliver = [&](std::vector<ParkedDelivery> &batch) {
        for (auto &d : batch) {
            node.nic().deliverAt(std::move(d.pkt),
                                 std::max(d.when, queue.now()));
        }
    };

    mbx.open();
    for (;;) {
        while (queue.nextTick() < qe) {
            // Supervised-run unwedge point: a quantum that spins here
            // forever (e.g. a poll loop waiting on a frame the fault
            // layer blackholed) returns as soon as the watchdog's
            // handler requests cancellation. The run is abandoned, so
            // leaving the node mid-quantum is fine.
            if (cancel && cancel->cancelled())
                return;
            queue.runOne();
            mbx.setCurrentTick(queue.now());
            if (mbx.urgent())
                deliver(mbx.drain());
        }
        // Close the quantum atomically w.r.t. placers, then pick up
        // anything that raced in under the open state.
        if (!mbx.close())
            break;
        deliver(mbx.drain());
        if (queue.nextTick() >= qe)
            break;
        // A raced-in delivery landed inside the quantum: reopen.
        mbx.open();
    }
    queue.fastForwardTo(qe);
    mbx.setCurrentTick(qe);
}

bool
stepNode(node::NodeSimulator &node)
{
    return node.queue().runOne();
}

void
advanceNodeTo(node::NodeSimulator &node, Tick tick)
{
    node.queue().fastForwardTo(tick);
}

void
snapToQuantumEnd(node::NodeSimulator &node, Tick qe)
{
    node.queue().fastForwardTo(qe);
}

void
dispatchDelivery(node::NodeSimulator &node, net::PacketPtr pkt,
                 Tick when)
{
    const Tick at = std::max(when, node.queue().now());
    node.nic().deliverAt(std::move(pkt), at);
}

void
deliverUrgent(node::NodeSimulator &node, const net::PacketPtr &pkt,
              Tick when)
{
    node.nic().deliverAt(pkt, when);
}

} // namespace aqsim::engine
