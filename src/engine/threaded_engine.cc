#include "engine/threaded_engine.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "base/logging.hh"
#include "check/invariants.hh"
#include "core/synchronizer.hh"

namespace aqsim::engine
{

namespace
{

/** A delivery parked in a destination node's mailbox. */
struct ParkedDelivery
{
    net::PacketPtr pkt;
    Tick when;
    /** How the placement was accounted (for the invariant checker). */
    net::DeliveryKind kind;
    /** Canonical merge key: (when, src, departTick) is a total order
     * because departTick strictly increases per source NIC. */
    bool
    operator<(const ParkedDelivery &o) const
    {
        if (when != o.when)
            return when < o.when;
        if (pkt->src != o.pkt->src)
            return pkt->src < o.pkt->src;
        return pkt->departTick < o.pkt->departTick;
    }
};

/** Map the engine's DeliveryKind onto the checker's mirror enum. */
check::DeliveryClass
deliveryClass(net::DeliveryKind kind)
{
    switch (kind) {
      case net::DeliveryKind::Straggler:
        return check::DeliveryClass::Straggler;
      case net::DeliveryKind::NextQuantum:
        return check::DeliveryClass::NextQuantum;
      case net::DeliveryKind::OnTime:
        break;
    }
    return check::DeliveryClass::OnTime;
}

/** Per-node cross-thread state. */
struct NodeShared
{
    std::mutex mailboxMutex;
    std::vector<ParkedDelivery> mailbox;
    bool atBarrier = true;
    std::atomic<Tick> currentTick{0};
    /** Set while the mailbox holds a delivery inside the open quantum. */
    std::atomic<bool> urgent{false};
};

/**
 * Thread-safe placement: park the delivery in the destination mailbox;
 * the destination thread schedules it into its own event queue.
 */
class ThreadedScheduler : public net::DeliveryScheduler
{
  public:
    ThreadedScheduler(std::vector<NodeShared> &shared,
                      core::Synchronizer &sync)
        : shared_(shared), sync_(sync)
    {}

    Tick
    place(const net::PacketPtr &pkt, net::DeliveryKind &kind) override
    {
        NodeShared &dst = shared_[pkt->dst];
        const Tick ideal = pkt->idealArrival;
        const Tick qe = sync_.quantumEnd();

        std::lock_guard<std::mutex> lock(dst.mailboxMutex);
        Tick actual;
        if (ideal >= qe) {
            kind = net::DeliveryKind::OnTime;
            actual = ideal;
        } else if (dst.atBarrier) {
            kind = net::DeliveryKind::NextQuantum;
            actual = qe;
        } else {
            const Tick rnow =
                dst.currentTick.load(std::memory_order_acquire);
            if (ideal >= rnow) {
                kind = net::DeliveryKind::OnTime;
                actual = ideal;
            } else {
                kind = net::DeliveryKind::Straggler;
                actual = std::min(rnow, qe);
            }
            dst.urgent.store(true, std::memory_order_release);
        }
        dst.mailbox.push_back(ParkedDelivery{pkt, actual, kind});
        return actual;
    }

  private:
    std::vector<NodeShared> &shared_;
    core::Synchronizer &sync_;
};

/** Two-phase gate coordinating worker threads and the coordinator. */
class QuantumGate
{
  public:
    explicit QuantumGate(std::size_t workers) : workers_(workers) {}

    /** Worker: announce barrier arrival for the current epoch. */
    void
    arrive()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ++arrived_;
        if (arrived_ == workers_)
            cv_.notify_all();
    }

    /** Coordinator: wait until every worker arrived. */
    void
    waitAllArrived()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return arrived_ == workers_; });
    }

    /** Coordinator: open the next quantum (or stop the run). */
    void
    release(Tick quantum_end, bool stop)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        arrived_ = 0;
        quantumEnd_ = quantum_end;
        stop_ = stop;
        ++epoch_;
        cv_.notify_all();
    }

    /**
     * Worker: wait for the next quantum after @p seen_epoch.
     * @return (quantum_end, stop)
     */
    std::pair<Tick, bool>
    waitRelease(std::uint64_t &seen_epoch)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return epoch_ != seen_epoch; });
        seen_epoch = epoch_;
        return {quantumEnd_, stop_};
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::size_t workers_;
    std::size_t arrived_ = 0;
    std::uint64_t epoch_ = 0;
    Tick quantumEnd_ = 0;
    bool stop_ = false;
};

/** Body of one node's worker thread. */
void
workerLoop(node::NodeSimulator &node, NodeShared &shared,
           QuantumGate &gate)
{
    auto &queue = node.queue();
    std::uint64_t epoch = 0;

    // Mid-quantum drain of deliveries placed *inside* the open
    // quantum (the urgent/straggler path). Cross-quantum deliveries
    // are merged canonically by the coordinator at the barrier.
    auto drain = [&] {
        std::vector<ParkedDelivery> batch;
        {
            std::lock_guard<std::mutex> lock(shared.mailboxMutex);
            batch.swap(shared.mailbox);
            shared.urgent.store(false, std::memory_order_release);
        }
        // No invariant hook here: the receiver is live, so an on-time
        // parked delivery may benignly trail queue.now() by the
        // placement race the engine already clamps for. The race-free
        // merge check happens in coordinatorDrain.
        for (auto &d : batch)
            node.nic().deliverAt(d.pkt,
                                 std::max(d.when, queue.now()));
    };

    for (;;) {
        auto [qe, stop] = gate.waitRelease(epoch);
        if (stop)
            return;

        {
            std::lock_guard<std::mutex> lock(shared.mailboxMutex);
            shared.atBarrier = false;
        }

        for (;;) {
            while (queue.nextTick() < qe) {
                queue.runOne();
                shared.currentTick.store(queue.now(),
                                         std::memory_order_release);
                if (shared.urgent.load(std::memory_order_acquire))
                    drain();
            }
            // Close the quantum atomically w.r.t. placers, then pick
            // up anything that raced in under the old state.
            bool more;
            {
                std::lock_guard<std::mutex> lock(shared.mailboxMutex);
                shared.atBarrier = true;
                more = !shared.mailbox.empty();
            }
            if (!more)
                break;
            drain();
            if (queue.nextTick() >= qe)
                break;
            // A raced-in delivery landed inside the quantum: reopen.
            std::lock_guard<std::mutex> lock(shared.mailboxMutex);
            shared.atBarrier = false;
        }
        queue.fastForwardTo(qe);
        shared.currentTick.store(qe, std::memory_order_release);
        gate.arrive();
    }
}

/**
 * Coordinator-side drain at the barrier: all workers are parked, so
 * touching their queues is race-free. Cross-quantum deliveries are
 * merged in the canonical (tick, src, departTick) order, which makes
 * conservative runs bit-identical to the SequentialEngine regardless
 * of thread interleaving — and keeps parked packets visible to the
 * deadlock check.
 */
void
coordinatorDrain(Cluster &cluster, std::vector<NodeShared> &shared)
{
    for (NodeId id = 0; id < cluster.numNodes(); ++id) {
        std::vector<ParkedDelivery> batch;
        {
            std::lock_guard<std::mutex> lock(shared[id].mailboxMutex);
            batch.swap(shared[id].mailbox);
            shared[id].urgent.store(false, std::memory_order_release);
        }
        std::sort(batch.begin(), batch.end());
        auto &node = cluster.node(id);
        auto &checker = check::InvariantChecker::instance();
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const ParkedDelivery &d = batch[i];
            // Strict order doubles as a key-uniqueness check: equal
            // (when, src, departTick) keys would make the merge
            // dependent on thread interleaving.
            checker.onMailboxMerge(i == 0 || batch[i - 1] < d,
                                   deliveryClass(d.kind), d.when,
                                   node.queue().now());
            node.nic().deliverAt(
                d.pkt, std::max(d.when, node.queue().now()));
        }
    }
}

} // namespace

ThreadedEngine::ThreadedEngine(EngineOptions options)
    : options_(options)
{}

RunResult
ThreadedEngine::run(const ClusterParams &params,
                    workloads::Workload &workload,
                    core::QuantumPolicy &policy)
{
    Cluster cluster(params, workload);
    return run(cluster, policy);
}

RunResult
ThreadedEngine::run(Cluster &cluster, core::QuantumPolicy &policy)
{
    const std::size_t n = cluster.numNodes();
    core::Synchronizer sync(policy, cluster.controller(),
                            cluster.statsRoot(),
                            options_.recordTimeline);

    std::vector<NodeShared> shared(n);
    ThreadedScheduler scheduler(shared, sync);
    cluster.controller().setScheduler(&scheduler);

    QuantumGate gate(n);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (NodeId id = 0; id < n; ++id) {
        threads.emplace_back(workerLoop, std::ref(cluster.node(id)),
                             std::ref(shared[id]), std::ref(gate));
    }

    const auto wall_start = std::chrono::steady_clock::now();
    sync.begin();
    const std::uint64_t max_quanta =
        options_.maxQuanta ? options_.maxQuanta : 500'000'000ULL;

    auto quantum_start_wall = wall_start;
    while (!cluster.allDone()) {
        if (!cluster.anyEventPending()) {
            panic("cluster deadlock: no pending events but "
                  "applications incomplete\n%s",
                  cluster.progressReport().c_str());
        }
        gate.release(sync.quantumEnd(), /*stop=*/false);
        gate.waitAllArrived();
        coordinatorDrain(cluster, shared);
        const auto now_wall = std::chrono::steady_clock::now();
        const HostNs quantum_ns =
            std::chrono::duration<double, std::nano>(
                now_wall - quantum_start_wall)
                .count();
        quantum_start_wall = now_wall;
        sync.completeQuantum(quantum_ns);
        if (sync.numQuanta() > max_quanta)
            fatal("quantum budget exceeded (%llu)",
                  static_cast<unsigned long long>(max_quanta));
        if (options_.maxSimTicks &&
            sync.quantumStart() > options_.maxSimTicks)
            fatal("simulated time budget exceeded");
    }
    gate.release(0, /*stop=*/true);
    for (auto &t : threads)
        t.join();

    const HostNs host_ns = std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() -
                               wall_start)
                               .count();

    RunResult result;
    result.workload = cluster.workload().name();
    result.policy = policy.name();
    result.engine = "threaded";
    result.numNodes = n;
    result.simTicks = cluster.maxFinishTick();
    result.hostNs = host_ns;
    result.metric = cluster.workload().metricValue(result.simTicks);
    result.quanta = sync.numQuanta();
    result.packets = cluster.controller().totalPackets();
    result.stragglers = cluster.controller().totalStragglers();
    result.nextQuantumDeliveries =
        cluster.controller().totalNextQuantum();
    result.latenessTicks = cluster.controller().totalLatenessTicks();
    result.meanQuantumTicks = sync.stats().meanQuantumLength();
    result.finishTicks = cluster.finishTicks();
    result.timeline = sync.stats().timeline();
    return result;
}

} // namespace aqsim::engine
