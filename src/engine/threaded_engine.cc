#include "engine/threaded_engine.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "base/failure.hh"
#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"
#include "ckpt/run_checkpointer.hh"
#include "core/synchronizer.hh"
#include "engine/delivery_batch.hh"
#include "engine/shard_exec.hh"
#include "engine/watchdog.hh"
#include "engine/worker_pool.hh"
#include "stats/phase_timing.hh"

namespace aqsim::engine
{

namespace
{

/**
 * Thread-safe placement. Cross-quantum deliveries — every delivery of
 * a conservative run — take the lock-free path: they are staged into
 * the *source* shard's DeliveryBatch run (this thread is the shard's
 * owning worker, so the append is single-writer) and merged into the
 * destination queues in canonical order at the barrier. Only
 * in-quantum deliveries (stragglers / on-time to a live receiver) go
 * through the destination's NodeMailbox lock.
 */
class ThreadedScheduler : public net::DeliveryScheduler
{
  public:
    ThreadedScheduler(std::vector<NodeMailbox> &mailboxes,
                      DeliveryBatch &batch, core::Synchronizer &sync)
        : mailboxes_(mailboxes), batch_(batch), sync_(sync)
    {}

    Tick
    place(const net::PacketPtr &pkt, net::DeliveryKind &kind) override
    {
        const Tick ideal = pkt->idealArrival;
        // quantumEnd only changes at the barrier, with every worker
        // parked, so this unlocked read is stable for the whole
        // quantum.
        const Tick qe = sync_.quantumEnd();
        if (ideal >= qe) {
            // Arrives in a later quantum: always safely schedulable.
            kind = net::DeliveryKind::OnTime;
            batch_.stage(pkt, ideal, kind);
            return ideal;
        }
        bool parked = false;
        const Tick when =
            mailboxes_[pkt->dst].park(pkt, ideal, qe, kind, parked);
        if (!parked)
            batch_.stage(pkt, when, kind);
        return when;
    }

  private:
    std::vector<NodeMailbox> &mailboxes_;
    DeliveryBatch &batch_;
    core::Synchronizer &sync_;
};

} // namespace

ThreadedEngine::ThreadedEngine(EngineOptions options)
    : options_(options)
{}

ThreadedEngine::~ThreadedEngine() = default;

RunResult
ThreadedEngine::run(const ClusterParams &params,
                    workloads::Workload &workload,
                    core::QuantumPolicy &policy)
{
    Cluster cluster(params, workload);
    return run(cluster, policy);
}

RunResult
ThreadedEngine::run(Cluster &cluster, core::QuantumPolicy &policy)
{
    const std::size_t n = cluster.numNodes();
    core::Synchronizer sync(policy, cluster.controller(),
                            cluster.statsRoot(),
                            options_.recordTimeline);

    // Persistent pool: K workers each own a fixed contiguous shard of
    // ceil(n/K) nodes for the whole run, so large clusters no longer
    // oversubscribe the host with one thread per node.
    const std::size_t workers =
        WorkerPool::resolveWorkerCount(options_.numWorkers, n);

    std::vector<NodeMailbox> mailboxes(n);
    DeliveryBatch batch(n, workers, options_.phaseStats);
    ThreadedScheduler scheduler(mailboxes, batch, sync);
    cluster.controller().setScheduler(&scheduler);

    // K×K exchange, one gate round trip per quantum: each worker
    // executes its shard, sorts its K destination sub-runs, meets the
    // other workers at the exchange barrier, then merges + dispatches
    // the column destined for its *own* shard — so the former
    // coordinator-serial merge wall runs K-wide, with no cross-shard
    // queue mutation (DeliveryBatch documents the ownership protocol).
    // Supervised-run failure plumbing: each worker's quantum runs
    // under a per-thread base::FailureTrap, so a fatal()/panic()
    // raised inside an event callback (e.g. reliable-delivery retry
    // exhaustion) unwinds to the quantum function as a RunAbort. The
    // first failure is latched, cancellation is requested, and the
    // failing worker still honours the exchange barrier so its peers
    // — and the coordinator's gate round trip — are never left
    // waiting on a thread that bailed out.
    base::CancelToken *const cancel = options_.cancelToken;
    base::Mutex fail_mutex;
    std::unique_ptr<base::RunAbort> first_failure;
    auto latchFailure = [&](const base::RunAbort &abort) {
        {
            base::MutexLock lock(fail_mutex);
            if (!first_failure)
                first_failure =
                    std::make_unique<base::RunAbort>(abort);
        }
        if (cancel)
            cancel->requestCancel();
    };

    WorkerBarrier exchange(workers);
    WorkerPool pool(workers, [&](std::size_t w, Tick qe) {
        std::optional<base::FailureTrap> trap;
        if (cancel)
            trap.emplace();
        batch.beginQuantum(w);
        try {
            if (!cancel || !cancel->cancelled()) {
                const auto [begin, end] =
                    WorkerPool::shardRange(w, workers, n);
                for (std::size_t id = begin; id < end; ++id)
                    runNodeQuantum(cluster.node(id), mailboxes[id],
                                   qe, cancel);
            }
        } catch (const base::RunAbort &abort) {
            latchFailure(abort);
        }
        // One sort per shard per quantum: the worker owns its
        // sub-runs, so sorting here parallelizes the exchange's
        // preprocessing.
        batch.closeRun(w);
        exchange.arriveAndWait();
        // A cancellation requested before the exchange barrier is
        // visible to every worker after it, so either all shards
        // merge or none do.
        if (!cancel || !cancel->cancelled()) {
            try {
                batch.mergeShard(w, cluster);
            } catch (const base::RunAbort &abort) {
                latchFailure(abort);
            }
        }
    });

    ckpt::RunCkptOptions ck;
    ck.every = options_.checkpointEvery;
    ck.dir = options_.checkpointDir;
    ck.restorePath = options_.restorePath;
    ck.verifyRestore = options_.verifyRestore;
    ck.keepLast = options_.checkpointKeepLast;
    ck.stashForPanic =
        options_.watchdogSeconds > 0.0 && !ck.dir.empty();
    std::unique_ptr<ckpt::RunCheckpointer> checkpointer;
    if (ck.enabled()) {
        checkpointer = std::make_unique<ckpt::RunCheckpointer>(
            ck, cluster, sync,
            ckpt::configFingerprint(cluster.params(), policy.name(),
                                    cluster.workload().name()),
            "threaded");
        checkpointer->begin();
    }

    // The watchdog catches hangs the deadlock check cannot see:
    // quanta that never finish (wedged worker, runaway coroutine) and
    // lost-progress livelocks where events stay pending forever.
    // Engine-owned and re-armed per run (fresh kick count and dump).
    Watchdog *watchdog = nullptr;
    if (options_.watchdogSeconds > 0.0) {
        if (!watchdog_)
            watchdog_ =
                std::make_unique<Watchdog>(options_.watchdogSeconds);
        Watchdog::PanicFn on_panic;
        if (cancel || options_.onWatchdogPanic) {
            on_panic = [handler = options_.onWatchdogPanic,
                        cancel](const PanicInfo &info) {
                if (handler)
                    handler(info);
                if (cancel)
                    cancel->requestCancel();
            };
        }
        watchdog_->arm(
            [&cluster, &sync, ckpt = checkpointer.get()] {
                PanicInfo info;
                info.quantumStart = sync.quantumStart();
                info.quantumEnd = sync.quantumEnd();
                info.progress = cluster.progressReport();
                if (ckpt)
                    info.note = ckpt->panicNote();
                return info;
            },
            std::move(on_panic));
        watchdog = watchdog_.get();
    }

    // Raised when a supervised run was cancelled: surface the latched
    // worker failure if one exists, else the watchdog cancellation.
    auto throwCancelled = [&]() {
        {
            base::MutexLock lock(fail_mutex);
            if (first_failure)
                throw *first_failure;
        }
        throw base::RunAbort("watchdog",
                             "run cancelled after watchdog expiry",
                             sync.numQuanta());
    };

    const auto wall_start = std::chrono::steady_clock::now();
    sync.begin();
    const std::uint64_t max_quanta =
        options_.maxQuanta ? options_.maxQuanta : 500'000'000ULL;

    auto quantum_start_wall = wall_start;
    try {
        while (!cluster.allDone()) {
            if (cancel && cancel->cancelled())
                throwCancelled();
            if (!cluster.anyEventPending()) {
                panic("cluster deadlock: no pending events but "
                      "applications incomplete\n%s",
                      cluster.progressReport().c_str());
            }
            // The exchange merge happens *inside* the quantum, after
            // the workers' internal barrier: every destination node's
            // staged deliveries flow through its own shard's column
            // merger in canonical (when, src, departTick) order —
            // identical for every worker count — and are already
            // dispatched (visible to the deadlock check) when the gate
            // round trip completes.
            pool.runQuantum(sync.quantumEnd());
            if (cancel && cancel->cancelled())
                throwCancelled();
            if (watchdog)
                watchdog->kick();
            const auto now_wall = std::chrono::steady_clock::now();
            const HostNs quantum_ns =
                std::chrono::duration<double, std::nano>(
                    now_wall - quantum_start_wall)
                    .count();
            quantum_start_wall = now_wall;
            sync.completeQuantum(quantum_ns);
            // Coordinator-only snapshot: all workers are parked at the
            // barrier and the shard runs are merged, so the cut is
            // identical for every worker count. The engine-private
            // section carries only the delivery layer's quiescence
            // proof and deterministic lifetime counters — never
            // measured wall-clock, which must not enter the divergence
            // check.
            if (checkpointer) {
                ckpt::Writer w;
                batch.serialize(w);
                checkpointer->onQuantumCompleted(w.buffer());
            }
            if (options_.injectFailAfterQuantum &&
                sync.numQuanta() == options_.injectFailAfterQuantum) {
                // Deterministic recovery drill; see EngineOptions.
                if (options_.injectWatchdogPanic) {
                    PanicInfo info;
                    info.quantaCompleted = sync.numQuanta();
                    info.quantumStart = sync.quantumStart();
                    info.quantumEnd = sync.quantumEnd();
                    info.progress = cluster.progressReport();
                    if (options_.onWatchdogPanic)
                        options_.onWatchdogPanic(info);
                    if (cancel) {
                        cancel->requestCancel();
                        continue; // next poll throws organically
                    }
                }
                throw base::RunAbort(
                    "injected", "injected failure for recovery drill",
                    sync.numQuanta());
            }
            if (sync.numQuanta() > max_quanta)
                fatal("quantum budget exceeded (%llu)",
                      static_cast<unsigned long long>(max_quanta));
            if (options_.maxSimTicks &&
                sync.quantumStart() > options_.maxSimTicks)
                fatal("simulated time budget exceeded");
        }
        if (cancel && cancel->cancelled())
            throwCancelled();
    } catch (...) {
        // A supervised abort must not leave the reused watchdog armed
        // with a dump capturing this (dying) run's objects.
        if (watchdog)
            watchdog->disarm();
        throw;
    }

    const HostNs host_ns = std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() -
                               wall_start)
                               .count();
    if (watchdog)
        watchdog->disarm();

    RunResult result;
    result.workload = cluster.workload().name();
    result.policy = policy.name();
    result.engine = "threaded";
    result.numNodes = n;
    result.simTicks = cluster.maxFinishTick();
    result.hostNs = host_ns;
    result.metric = cluster.workload().metricValue(result.simTicks);
    result.quanta = sync.numQuanta();
    result.packets = cluster.controller().totalPackets();
    result.stragglers = cluster.controller().totalStragglers();
    result.nextQuantumDeliveries =
        cluster.controller().totalNextQuantum();
    result.latenessTicks = cluster.controller().totalLatenessTicks();
    result.meanQuantumTicks = sync.stats().meanQuantumLength();
    result.droppedFrames = cluster.controller().totalDropped();
    result.retransmits = cluster.totalRetransmits();
    result.finishTicks = cluster.finishTicks();
    result.timeline = sync.stats().timeline();
    result.finalStateHash = cluster.stateHash();
    result.showPhaseStats = options_.phaseStats;
    result.phaseSortNs =
        batch.phases().total(stats::EnginePhase::Sort);
    result.phaseExchangeNs =
        batch.phases().total(stats::EnginePhase::Exchange);
    result.phaseMergeNs =
        batch.phases().total(stats::EnginePhase::Merge);
    result.phaseDispatchNs =
        batch.phases().total(stats::EnginePhase::Dispatch);
    if (checkpointer)
        checkpointer->finish(result);
    return result;
    // `pool` is destroyed on return: a stop epoch is released and the
    // workers join before `mailboxes`/`scheduler` go out of scope.
}

} // namespace aqsim::engine
