#include "engine/threaded_engine.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "check/invariants.hh"
#include "ckpt/run_checkpointer.hh"
#include "core/synchronizer.hh"
#include "engine/watchdog.hh"
#include "engine/worker_pool.hh"

namespace aqsim::engine
{

namespace
{

/** Map the engine's DeliveryKind onto the checker's mirror enum. */
check::DeliveryClass
deliveryClass(net::DeliveryKind kind)
{
    switch (kind) {
      case net::DeliveryKind::Straggler:
        return check::DeliveryClass::Straggler;
      case net::DeliveryKind::NextQuantum:
        return check::DeliveryClass::NextQuantum;
      case net::DeliveryKind::OnTime:
        break;
    }
    return check::DeliveryClass::OnTime;
}

/**
 * Thread-safe placement: park the delivery in the destination mailbox
 * (engine::NodeMailbox, defined alongside the WorkerPool it shards
 * with — see engine/worker_pool.hh);
 * the owning worker (or the coordinator, at the barrier) schedules it
 * into the destination's event queue.
 */
class ThreadedScheduler : public net::DeliveryScheduler
{
  public:
    ThreadedScheduler(std::vector<NodeMailbox> &mailboxes,
                      core::Synchronizer &sync)
        : mailboxes_(mailboxes), sync_(sync)
    {}

    Tick
    place(const net::PacketPtr &pkt, net::DeliveryKind &kind) override
    {
        return mailboxes_[pkt->dst].park(pkt, pkt->idealArrival,
                                         sync_.quantumEnd(), kind);
    }

  private:
    std::vector<NodeMailbox> &mailboxes_;
    core::Synchronizer &sync_;
};

/** Run one node of a worker's shard up to the quantum boundary. */
void
runNodeQuantum(node::NodeSimulator &node, NodeMailbox &mbx, Tick qe)
{
    auto &queue = node.queue();

    // Mid-quantum drain of deliveries placed *inside* the open
    // quantum (the urgent/straggler path). Cross-quantum deliveries
    // are merged canonically by the coordinator at the barrier.
    // No invariant hook here: the receiver is live, so an on-time
    // parked delivery may benignly trail queue.now() by the placement
    // race the engine already clamps for. The race-free merge check
    // happens in coordinatorDrain.
    auto deliver = [&](std::vector<ParkedDelivery> &batch) {
        for (auto &d : batch)
            node.nic().deliverAt(d.pkt, std::max(d.when, queue.now()));
    };

    mbx.open();
    for (;;) {
        while (queue.nextTick() < qe) {
            queue.runOne();
            mbx.setCurrentTick(queue.now());
            if (mbx.urgent())
                deliver(mbx.drain());
        }
        // Close the quantum atomically w.r.t. placers, then pick up
        // anything that raced in under the open state.
        if (!mbx.close())
            break;
        deliver(mbx.drain());
        if (queue.nextTick() >= qe)
            break;
        // A raced-in delivery landed inside the quantum: reopen.
        mbx.open();
    }
    queue.fastForwardTo(qe);
    mbx.setCurrentTick(qe);
}

/**
 * Coordinator-side drain at the barrier: all workers are parked, so
 * touching their queues is race-free. Cross-quantum deliveries are
 * merged in the canonical (tick, src, departTick) order, which makes
 * conservative runs bit-identical to the SequentialEngine regardless
 * of thread interleaving or worker count — and keeps parked packets
 * visible to the deadlock check.
 */
void
coordinatorDrain(Cluster &cluster, std::vector<NodeMailbox> &mailboxes)
{
    auto &checker = check::InvariantChecker::instance();
    for (NodeId id = 0; id < cluster.numNodes(); ++id) {
        auto &batch = mailboxes[id].drain();
        if (batch.empty())
            continue;
        std::sort(batch.begin(), batch.end());
        auto &node = cluster.node(id);
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const ParkedDelivery &d = batch[i];
            // Strict order doubles as a key-uniqueness check: equal
            // (when, src, departTick) keys would make the merge
            // dependent on thread interleaving.
            checker.onMailboxMerge(i == 0 || batch[i - 1] < d,
                                   deliveryClass(d.kind), d.when,
                                   node.queue().now());
            node.nic().deliverAt(
                d.pkt, std::max(d.when, node.queue().now()));
        }
    }
}

} // namespace

ThreadedEngine::ThreadedEngine(EngineOptions options)
    : options_(options)
{}

ThreadedEngine::~ThreadedEngine() = default;

RunResult
ThreadedEngine::run(const ClusterParams &params,
                    workloads::Workload &workload,
                    core::QuantumPolicy &policy)
{
    Cluster cluster(params, workload);
    return run(cluster, policy);
}

RunResult
ThreadedEngine::run(Cluster &cluster, core::QuantumPolicy &policy)
{
    const std::size_t n = cluster.numNodes();
    core::Synchronizer sync(policy, cluster.controller(),
                            cluster.statsRoot(),
                            options_.recordTimeline);

    std::vector<NodeMailbox> mailboxes(n);
    ThreadedScheduler scheduler(mailboxes, sync);
    cluster.controller().setScheduler(&scheduler);

    // Persistent pool: K workers each own a fixed contiguous shard of
    // ceil(n/K) nodes for the whole run, so large clusters no longer
    // oversubscribe the host with one thread per node.
    const std::size_t workers =
        WorkerPool::resolveWorkerCount(options_.numWorkers, n);
    WorkerPool pool(workers, [&](std::size_t w, Tick qe) {
        const auto [begin, end] = WorkerPool::shardRange(w, workers, n);
        for (std::size_t id = begin; id < end; ++id)
            runNodeQuantum(cluster.node(id), mailboxes[id], qe);
    });

    ckpt::RunCkptOptions ck;
    ck.every = options_.checkpointEvery;
    ck.dir = options_.checkpointDir;
    ck.restorePath = options_.restorePath;
    ck.verifyRestore = options_.verifyRestore;
    ck.keepLast = options_.checkpointKeepLast;
    ck.stashForPanic =
        options_.watchdogSeconds > 0.0 && !ck.dir.empty();
    std::unique_ptr<ckpt::RunCheckpointer> checkpointer;
    if (ck.enabled()) {
        checkpointer = std::make_unique<ckpt::RunCheckpointer>(
            ck, cluster, sync,
            ckpt::configFingerprint(cluster.params(), policy.name(),
                                    cluster.workload().name()),
            "threaded");
        checkpointer->begin();
    }

    // The watchdog catches hangs the deadlock check cannot see:
    // quanta that never finish (wedged worker, runaway coroutine) and
    // lost-progress livelocks where events stay pending forever.
    // Engine-owned and re-armed per run (fresh kick count and dump).
    Watchdog *watchdog = nullptr;
    if (options_.watchdogSeconds > 0.0) {
        if (!watchdog_)
            watchdog_ =
                std::make_unique<Watchdog>(options_.watchdogSeconds);
        watchdog_->arm([&cluster, &sync, ckpt = checkpointer.get()] {
            char head[96];
            std::snprintf(head, sizeof(head), "  quantum [%llu,%llu)\n",
                          static_cast<unsigned long long>(
                              sync.quantumStart()),
                          static_cast<unsigned long long>(
                              sync.quantumEnd()));
            std::string out = head + cluster.progressReport();
            if (ckpt)
                out += ckpt->panicNote();
            return out;
        });
        watchdog = watchdog_.get();
    }

    const auto wall_start = std::chrono::steady_clock::now();
    sync.begin();
    const std::uint64_t max_quanta =
        options_.maxQuanta ? options_.maxQuanta : 500'000'000ULL;

    auto quantum_start_wall = wall_start;
    while (!cluster.allDone()) {
        if (!cluster.anyEventPending()) {
            panic("cluster deadlock: no pending events but "
                  "applications incomplete\n%s",
                  cluster.progressReport().c_str());
        }
        pool.runQuantum(sync.quantumEnd());
        coordinatorDrain(cluster, mailboxes);
        if (watchdog)
            watchdog->kick();
        const auto now_wall = std::chrono::steady_clock::now();
        const HostNs quantum_ns =
            std::chrono::duration<double, std::nano>(
                now_wall - quantum_start_wall)
                .count();
        quantum_start_wall = now_wall;
        sync.completeQuantum(quantum_ns);
        // Coordinator-only snapshot: all workers are parked at the
        // barrier and the mailboxes are drained, so the cut is
        // identical for every worker count. No engine-private section:
        // this engine's only extra state is measured wall-clock, which
        // must not enter the divergence check.
        if (checkpointer)
            checkpointer->onQuantumCompleted({});
        if (sync.numQuanta() > max_quanta)
            fatal("quantum budget exceeded (%llu)",
                  static_cast<unsigned long long>(max_quanta));
        if (options_.maxSimTicks &&
            sync.quantumStart() > options_.maxSimTicks)
            fatal("simulated time budget exceeded");
    }

    const HostNs host_ns = std::chrono::duration<double, std::nano>(
                               std::chrono::steady_clock::now() -
                               wall_start)
                               .count();
    if (watchdog)
        watchdog->disarm();

    RunResult result;
    result.workload = cluster.workload().name();
    result.policy = policy.name();
    result.engine = "threaded";
    result.numNodes = n;
    result.simTicks = cluster.maxFinishTick();
    result.hostNs = host_ns;
    result.metric = cluster.workload().metricValue(result.simTicks);
    result.quanta = sync.numQuanta();
    result.packets = cluster.controller().totalPackets();
    result.stragglers = cluster.controller().totalStragglers();
    result.nextQuantumDeliveries =
        cluster.controller().totalNextQuantum();
    result.latenessTicks = cluster.controller().totalLatenessTicks();
    result.meanQuantumTicks = sync.stats().meanQuantumLength();
    result.droppedFrames = cluster.controller().totalDropped();
    result.retransmits = cluster.totalRetransmits();
    result.finishTicks = cluster.finishTicks();
    result.timeline = sync.stats().timeline();
    result.finalStateHash = cluster.stateHash();
    if (checkpointer)
        checkpointer->finish(result);
    return result;
    // `pool` is destroyed on return: a stop epoch is released and the
    // workers join before `mailboxes`/`scheduler` go out of scope.
}

} // namespace aqsim::engine
