/**
 * @file
 * Per-shard staging of cross-quantum deliveries with a barrier-only
 * canonical merge — the engine half of the sharded event kernel
 * (sim/run_merge.hh is the sim half; docs/performance.md describes
 * the design).
 *
 * During a quantum, every delivery that lands at or beyond the quantum
 * boundary — in a conservative run (Q <= T), that is *every* delivery —
 * is staged into the run of the shard that owns the *source* node.
 * Only the worker executing the source transmits, so each run has
 * exactly one writer per quantum and staging is a plain vector append:
 * no per-message locking, no cross-shard synchronization. The old
 * NodeMailbox keeps only the urgent path (stragglers and on-time
 * deliveries inside the open quantum, which must reach a live
 * receiver mid-quantum).
 *
 * At the barrier each worker sorts its own run once (closeRun), and
 * the coordinator k-way merges the sorted runs into the canonical
 * (when, src, departTick) stream, delivering into the destination
 * queues in an order that is a pure function of the run contents —
 * independent of worker count and thread interleaving. Both engines
 * dispatch through this class (the SequentialEngine is the K=1
 * degenerate case), so cross-engine bit-identity falls out of sharing
 * the code path rather than of two implementations agreeing.
 */

#ifndef AQSIM_ENGINE_DELIVERY_BATCH_HH
#define AQSIM_ENGINE_DELIVERY_BATCH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "net/network_controller.hh"
#include "net/packet.hh"
#include "sim/run_merge.hh"

namespace aqsim::ckpt
{
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::engine
{

class Cluster;

/**
 * K staged delivery runs (one per worker shard) merged canonically at
 * quantum barriers.
 *
 * Concurrency contract (gate-protocol ownership, same discipline as
 * NodeMailbox::scratch_): run S is appended to only by the single
 * thread executing shard S's nodes, sorted by that same thread at its
 * quantum close, and read by the coordinator only after every worker
 * arrived at the barrier. No member is locked; the WorkerPool gate's
 * release/acquire pairs publish the writes.
 */
class DeliveryBatch
{
  public:
    /**
     * @param num_nodes cluster size (defines the shard map)
     * @param num_shards worker count K; runs are keyed by the
     *        contiguous ceil(num_nodes/K) shard of the *source* node,
     *        matching WorkerPool::shardRange.
     */
    DeliveryBatch(std::size_t num_nodes, std::size_t num_shards);

    /**
     * Stage a delivery of @p pkt at @p when (>= the quantum boundary)
     * into the source node's shard run. Called by the shard's owning
     * worker only (via the controller's placement path).
     */
    void stage(const net::PacketPtr &pkt, Tick when,
               net::DeliveryKind kind);

    /** Sort shard @p s's run into canonical order; called by the
     * owning worker as the last step of its quantum. */
    void closeRun(std::size_t s);

    /**
     * Coordinator, at the barrier: k-way merge every sorted run in
     * canonical (when, src, departTick) order, delivering each packet
     * into its destination node and reporting the merge order to the
     * invariant checker. Leaves every run empty.
     *
     * @return number of deliveries merged.
     */
    std::size_t mergeInto(Cluster &cluster);

    /** Deliveries staged but not yet merged (0 at every boundary). */
    std::size_t pending() const;

    /** Lifetime counters: deterministic in any run where delivery
     * classification is deterministic, so they may enter checkpoint
     * images (serialize). */
    std::uint64_t totalStaged() const { return totalStaged_; }
    std::uint64_t totalMerged() const { return totalMerged_; }

    std::size_t numShards() const { return runs_.size(); }

    /** Checkpoint section payload: pending count (must be 0 at a
     * boundary) plus the lifetime counters. */
    void serialize(ckpt::Writer &w) const;

  private:
    /** Payload referenced by sim::RunKey::idx; touched on dispatch. */
    struct Staged
    {
        net::PacketPtr pkt;
        net::DeliveryKind kind;
    };

    /** One shard's staging run: SoA keys + cold payload. */
    struct Run
    {
        std::vector<sim::RunKey> keys;
        std::vector<Staged> payload;
        bool sorted = false;
    };

    std::size_t shardOf(NodeId src) const { return src / per_; }

    std::vector<Run> runs_;
    /** Scratch views handed to the merger (reused per quantum). */
    std::vector<sim::RunView> views_;
    sim::RunMerger merger_;
    /** Nodes per shard (ceil division, same map as shardRange). */
    std::size_t per_;
    std::uint64_t totalStaged_ = 0;
    std::uint64_t totalMerged_ = 0;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_DELIVERY_BATCH_HH
