/**
 * @file
 * K×K destination-sharded staging and exchange of cross-quantum
 * deliveries — the engine half of the sharded event kernel
 * (sim/run_merge.hh is the sim half; docs/performance.md describes
 * the design).
 *
 * During a quantum, every delivery that lands at or beyond the quantum
 * boundary — in a conservative run (Q <= T), that is *every* delivery —
 * is staged by the worker that owns the *source* node. Because the
 * destination is known at stage time, the key goes straight into the
 * (source shard, destination shard) sub-run: K sorted sub-runs per
 * source shard, each with exactly one writer per quantum, so staging
 * stays a plain vector append with no per-message locking. The old
 * NodeMailbox keeps only the urgent path (stragglers and on-time
 * deliveries inside the open quantum, which must reach a live
 * receiver mid-quantum).
 *
 * At quantum close each worker sorts its K sub-runs (closeRun); after
 * an all-worker exchange barrier each worker k-way merges the K
 * sub-runs destined for *its own* shard (mergeShard) and dispatches
 * them into its own nodes' queues through the shard_exec seam — in
 * parallel, with no cross-shard queue mutation and no global stream
 * ever materialized. Every delivery for a destination node flows
 * through that node's single column merger in canonical
 * (when, src, departTick) order, so the per-queue schedule — and with
 * it the full RunResult, finalStateHash and checkpoint images — is a
 * pure function of the run contents, independent of worker count and
 * thread interleaving. Both engines dispatch through this class (the
 * SequentialEngine's mergeInto is the K=1 degenerate case), so
 * cross-engine bit-identity falls out of sharing the code path rather
 * than of two implementations agreeing.
 *
 * Sorting each (s, d) sub-run independently emits exactly the order a
 * global sort of shard s's run followed by a stable partition by
 * destination would: the idx tie-break *is* staging order, and
 * duplicate keys share src and dst, hence a sub-run.
 */

#ifndef AQSIM_ENGINE_DELIVERY_BATCH_HH
#define AQSIM_ENGINE_DELIVERY_BATCH_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "net/network_controller.hh"
#include "net/packet.hh"
#include "sim/run_merge.hh"
#include "stats/phase_timing.hh"

namespace aqsim::ckpt
{
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::node
{
class NodeSimulator;
} // namespace aqsim::node

namespace aqsim::engine
{

class Cluster;

/**
 * K×K staged delivery sub-runs exchanged at quantum barriers.
 *
 * Concurrency contract (gate-protocol ownership, same discipline as
 * NodeMailbox::scratch_ — no member is locked):
 *
 *  - Sub-run (s, d) and payload row s are written only by the single
 *    thread executing shard s's nodes (stage/closeRun), and only
 *    between its beginQuantum(s) and the exchange barrier.
 *  - After every worker reached the exchange barrier, column d —
 *    sub-runs (0..K-1, d) and its lane scratch — is read, drained of
 *    its payload elements (each element belongs to exactly one
 *    column), and cleared only by shard d's worker (mergeShard).
 *  - Payload row s is cleared by its owner at the *next*
 *    beginQuantum(s); the gate release/acquire orders that after
 *    every column's merge of the previous quantum.
 *
 * The WorkerPool gate and the exchange WorkerBarrier publish all
 * cross-thread handoffs (release/acquire on their epochs).
 */
class DeliveryBatch
{
  public:
    /**
     * @param num_nodes cluster size (defines the shard map)
     * @param num_shards worker count K; sub-runs are keyed by the
     *        contiguous ceil(num_nodes/K) shards of the source and
     *        destination nodes, matching WorkerPool::shardRange.
     * @param phase_stats measure per-phase wall-clock (phases());
     *        off by default so the hot path makes no clock calls.
     */
    DeliveryBatch(std::size_t num_nodes, std::size_t num_shards,
                  bool phase_stats = false);

    /**
     * Owner of shard @p s = shardOf(pkt->src): reset row s for a new
     * quantum (drops the previous quantum's dispatched payload,
     * keeping capacity). First per-quantum step of the owning worker.
     */
    void beginQuantum(std::size_t s);

    /**
     * Stage a delivery of @p pkt at @p when (>= the quantum boundary)
     * into the (source shard, destination shard) sub-run. Called by
     * the source shard's owning worker only (via the controller's
     * placement path).
     */
    void stage(const net::PacketPtr &pkt, Tick when,
               net::DeliveryKind kind);

    /** Sort shard @p s's K destination sub-runs into canonical order;
     * called by the owning worker as the last step before the
     * exchange barrier. */
    void closeRun(std::size_t s);

    /**
     * Owner of destination shard @p d, after the exchange barrier:
     * k-way merge the K sorted sub-runs destined for shard d in
     * canonical (when, src, departTick) order, dispatch each packet
     * into its destination node through the shard_exec seam, report
     * the merge order to the invariant checker, and clear column d's
     * keys. Runs concurrently with other shards' mergeShard calls.
     *
     * @return number of deliveries merged into shard d.
     */
    std::size_t mergeShard(std::size_t d, Cluster &cluster);

    /**
     * Single-threaded wrapper (SequentialEngine, tests): close any
     * unsorted rows, merge every destination column, reset every row.
     * Equivalent to one full exchange at K=1. Leaves the batch empty.
     *
     * @return number of deliveries merged.
     */
    std::size_t mergeInto(Cluster &cluster);

    /**
     * Distributed-exchange seam: extract sub-run (s, d) as an ordered
     * packet sequence for shipping to another process. The sub-run
     * must be closed (sorted); the keys are dropped — each packet's
     * own (idealArrival, departTick, src) fields reconstruct them
     * exactly on the receiving side, so the wire carries no key
     * material. Conservative runs only (every staged delivery is
     * OnTime at its ideal arrival; DistributedEngine enforces this).
     */
    std::vector<net::PacketPtr> takeRun(std::size_t s, std::size_t d);

    /**
     * Distributed-exchange seam: adopt a remote peer's sub-run
     * (s, d) — packets in canonical (when, src, departTick) order as
     * produced by takeRun — into this batch, re-deriving each key
     * from the packet fields. Does not count toward totalStaged()
     * (the staging peer already did); call closeRun(s) afterwards so
     * mergeShard sees the row as sorted.
     */
    void injectRun(std::size_t s, std::size_t d,
                   std::vector<net::PacketPtr> items);

    /** Deliveries staged but not yet merged (0 at every boundary). */
    std::size_t pending() const;

    /** Lifetime counters: deterministic in any run where delivery
     * classification is deterministic, so they may enter checkpoint
     * images (serialize). Summed over the per-shard slots; call with
     * workers parked. */
    std::uint64_t totalStaged() const;
    std::uint64_t totalMerged() const;

    std::size_t numShards() const { return shards_; }

    /** Keys currently staged from shard @p s to shard @p d (tests). */
    std::size_t
    stagedBetween(std::size_t s, std::size_t d) const
    {
        return subs_[s * shards_ + d].keys.size();
    }

    /** Capacity of sub-run (s, d)'s key buffer — evidence that the
     * steady state reuses buffers instead of reallocating (tests). */
    std::size_t
    subRunCapacity(std::size_t s, std::size_t d) const
    {
        return subs_[s * shards_ + d].keys.capacity();
    }

    /** Checkpoint section payload: pending count (must be 0 at a
     * boundary) plus the lifetime counters. */
    void serialize(ckpt::Writer &w) const;

    /** Accumulated per-phase wall-clock (all-zero unless enabled). */
    const stats::PhaseTimes &phases() const { return phases_; }

  private:
    /** Payload referenced by sim::RunKey::idx; touched on dispatch. */
    struct Staged
    {
        net::PacketPtr pkt;
        net::DeliveryKind kind;
    };

    /** Keys staged from one source shard to one destination shard,
     * padded so adjacent sub-runs' appends never share a line. */
    struct alignas(64) SubRun
    {
        std::vector<sim::RunKey> keys;
    };

    /** One source shard's payload row (single writer per quantum). */
    struct alignas(64) Row
    {
        std::vector<Staged> payload;
        /** Lifetime stage count (this shard's slot of totalStaged). */
        std::uint64_t staged = 0;
        bool sorted = false;
    };

    /** A merged delivery resolved to its destination, staged in the
     * lane scratch so dispatch can prefetch ahead. */
    struct Resolved
    {
        node::NodeSimulator *node;
        net::PacketPtr pkt;
        Tick when;
        net::DeliveryKind kind;
        /** Canonical order vs the previous merged key held. */
        bool strictOk;
    };

    /** One destination shard's merge scratch (single writer per
     * exchange; buffers reused across quanta). */
    struct alignas(64) Lane
    {
        sim::RunMerger merger;
        std::vector<sim::RunView> views;
        std::vector<Resolved> items;
        /** Lifetime merge count (this shard's slot of totalMerged). */
        std::uint64_t merged = 0;
    };

    std::size_t shardOf(NodeId id) const { return id / per_; }

    SubRun &
    subRun(std::size_t s, std::size_t d)
    {
        return subs_[s * shards_ + d];
    }

    /** Nodes per shard (ceil division, same map as shardRange). */
    std::size_t shards_;
    std::size_t per_;
    /** K×K sub-run key store, row-major (source-major). */
    std::vector<SubRun> subs_;
    std::vector<Row> rows_;
    std::vector<Lane> lanes_;
    stats::PhaseTimes phases_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_DELIVERY_BATCH_HH
