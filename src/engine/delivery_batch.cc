#include "engine/delivery_batch.hh"

#include <algorithm>

#include "base/logging.hh"
#include "check/invariants.hh"
#include "ckpt/ckpt_io.hh"
#include "engine/cluster.hh"
#include "node/node_simulator.hh"

namespace aqsim::engine
{

namespace
{

/** Map the engine's DeliveryKind onto the checker's mirror enum. */
check::DeliveryClass
deliveryClass(net::DeliveryKind kind)
{
    switch (kind) {
      case net::DeliveryKind::Straggler:
        return check::DeliveryClass::Straggler;
      case net::DeliveryKind::NextQuantum:
        return check::DeliveryClass::NextQuantum;
      case net::DeliveryKind::OnTime:
        break;
    }
    return check::DeliveryClass::OnTime;
}

} // namespace

DeliveryBatch::DeliveryBatch(std::size_t num_nodes,
                             std::size_t num_shards)
    : runs_(num_shards), views_(num_shards),
      per_((num_nodes + num_shards - 1) / num_shards)
{
    AQSIM_ASSERT(num_nodes > 0 && num_shards > 0);
}

void
DeliveryBatch::stage(const net::PacketPtr &pkt, Tick when,
                     net::DeliveryKind kind)
{
    Run &run = runs_[shardOf(pkt->src)];
    AQSIM_ASSERT(!run.sorted);
    run.keys.push_back(sim::RunKey{
        when, pkt->departTick, pkt->src,
        static_cast<std::uint32_t>(run.payload.size())});
    run.payload.push_back(Staged{pkt, kind});
    ++totalStaged_;
}

void
DeliveryBatch::closeRun(std::size_t s)
{
    Run &run = runs_[s];
    sim::sortRun(run.keys);
    run.sorted = true;
}

std::size_t
DeliveryBatch::mergeInto(Cluster &cluster)
{
    auto &checker = check::InvariantChecker::instance();
    for (std::size_t s = 0; s < runs_.size(); ++s) {
        // The engines close every run before merging; tolerate a
        // missing close (e.g. a shard that staged nothing) here so the
        // merge is self-contained for unit tests.
        if (!runs_[s].sorted)
            closeRun(s);
        views_[s] = sim::RunView{runs_[s].keys.data(),
                                 runs_[s].keys.size()};
    }
    merger_.reset(views_.data(), views_.size());

    std::size_t merged = 0;
    sim::RunKey prev{};
    sim::RunMerger::Item item;
    while (merger_.next(item)) {
        const Staged &d = runs_[item.run].payload[item.key.idx];
        auto &node = cluster.node(d.pkt->dst);
        // Strict order doubles as a key-uniqueness check: equal
        // (when, src, departTick) keys would make delivery order
        // depend on which shard staged which copy.
        checker.onShardMerge(merged == 0 ||
                                 prev.strictlyBefore(item.key),
                             deliveryClass(d.kind), item.key.when,
                             node.queue().now());
        node.nic().deliverAt(d.pkt,
                             std::max(item.key.when,
                                      node.queue().now()));
        prev = item.key;
        ++merged;
    }

    for (Run &run : runs_) {
        run.keys.clear();
        run.payload.clear();
        run.sorted = false;
    }
    totalMerged_ += merged;
    return merged;
}

std::size_t
DeliveryBatch::pending() const
{
    std::size_t n = 0;
    for (const Run &run : runs_)
        n += run.keys.size();
    return n;
}

void
DeliveryBatch::serialize(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(pending()));
    w.u64(totalStaged_);
    w.u64(totalMerged_);
}

} // namespace aqsim::engine
