#include "engine/delivery_batch.hh"

#include <algorithm>

#include "base/logging.hh"
#include "check/invariants.hh"
#include "ckpt/ckpt_io.hh"
#include "engine/cluster.hh"
#include "engine/shard_exec.hh"
#include "node/node_simulator.hh"

namespace aqsim::engine
{

namespace
{

/** Map the engine's DeliveryKind onto the checker's mirror enum. */
check::DeliveryClass
deliveryClass(net::DeliveryKind kind)
{
    switch (kind) {
      case net::DeliveryKind::Straggler:
        return check::DeliveryClass::Straggler;
      case net::DeliveryKind::NextQuantum:
        return check::DeliveryClass::NextQuantum;
      case net::DeliveryKind::OnTime:
        break;
    }
    return check::DeliveryClass::OnTime;
}

/** Dispatch lookahead: far enough to cover the queue-touch latency,
 * near enough that the line is still resident when reached. */
constexpr std::size_t prefetchAhead = 4;

} // namespace

DeliveryBatch::DeliveryBatch(std::size_t num_nodes,
                             std::size_t num_shards, bool phase_stats)
    : shards_(num_shards),
      per_((num_nodes + num_shards - 1) / num_shards),
      subs_(num_shards * num_shards), rows_(num_shards),
      lanes_(num_shards), phases_(num_shards, phase_stats)
{
    AQSIM_ASSERT(num_nodes > 0 && num_shards > 0);
}

void
DeliveryBatch::beginQuantum(std::size_t s)
{
    Row &row = rows_[s];
    // clear() keeps capacity: the steady state reuses the same
    // payload storage every quantum.
    row.payload.clear();
    row.sorted = false;
}

void
DeliveryBatch::stage(const net::PacketPtr &pkt, Tick when,
                     net::DeliveryKind kind)
{
    Row &row = rows_[shardOf(pkt->src)];
    AQSIM_ASSERT(!row.sorted);
    subRun(shardOf(pkt->src), shardOf(pkt->dst))
        .keys.push_back(sim::RunKey{
            when, pkt->departTick, pkt->src,
            static_cast<std::uint32_t>(row.payload.size())});
    row.payload.push_back(Staged{pkt, kind});
    ++row.staged;
}

void
DeliveryBatch::closeRun(std::size_t s)
{
    stats::PhaseTimer timer(phases_, s, stats::EnginePhase::Sort);
    // K independent sorts emit the same per-sub-run order a global
    // sort + stable partition by destination would (see file comment),
    // over strictly smaller inputs.
    for (std::size_t d = 0; d < shards_; ++d)
        sim::sortRun(subRun(s, d).keys);
    rows_[s].sorted = true;
}

std::size_t
DeliveryBatch::mergeShard(std::size_t d, Cluster &cluster)
{
    Lane &lane = lanes_[d];
    {
        stats::PhaseTimer timer(phases_, d,
                                stats::EnginePhase::Exchange);
        lane.views.resize(shards_);
        std::size_t total = 0;
        for (std::size_t s = 0; s < shards_; ++s) {
            AQSIM_ASSERT(rows_[s].sorted);
            const auto &keys = subRun(s, d).keys;
            lane.views[s] = sim::RunView{keys.data(), keys.size()};
            total += keys.size();
        }
        if (total == 0)
            return 0;
        lane.merger.reset(lane.views.data(), lane.views.size());
    }

    {
        stats::PhaseTimer timer(phases_, d, stats::EnginePhase::Merge);
        lane.items.clear();
        sim::RunKey prev{};
        sim::RunMerger::Item item;
        while (lane.merger.next(item)) {
            // Moving the payload element out is the column's exclusive
            // right: every staged element belongs to exactly one
            // destination column, so concurrent lanes touch disjoint
            // elements of the shared rows.
            Staged &staged = rows_[item.run].payload[item.key.idx];
            AQSIM_ASSERT(shardOf(staged.pkt->dst) == d);
            // Strict order doubles as a key-uniqueness check: equal
            // (when, src, departTick) keys would make delivery order
            // depend on which shard staged which copy.
            const bool strict_ok =
                lane.items.empty() || prev.strictlyBefore(item.key);
            prev = item.key;
            lane.items.push_back(
                Resolved{&cluster.node(staged.pkt->dst),
                         std::move(staged.pkt), item.key.when,
                         staged.kind, strict_ok});
        }
    }

    auto &checker = check::InvariantChecker::instance();
    const std::size_t merged = lane.items.size();
    {
        stats::PhaseTimer timer(phases_, d,
                                stats::EnginePhase::Dispatch);
        Resolved *items = lane.items.data();
        for (std::size_t i = 0; i < merged; ++i) {
            // The destination queue is the one cold structure on this
            // path; start its line ahead of the dispatch that needs
            // it. (&queue() is plain member address arithmetic.)
            if (i + prefetchAhead < merged) {
                __builtin_prefetch(
                    &items[i + prefetchAhead].node->queue());
            }
            Resolved &r = items[i];
            checker.onShardMerge(r.strictOk, deliveryClass(r.kind),
                                 r.when, r.node->queue().now());
            dispatchDelivery(*r.node, std::move(r.pkt), r.when);
        }
        lane.items.clear();
        // Column d is consumed: clearing its keys is this lane's
        // single-writer handoff back to the key owners (capacity
        // kept for the next quantum).
        for (std::size_t s = 0; s < shards_; ++s)
            subRun(s, d).keys.clear();
    }
    lane.merged += merged;
    return merged;
}

std::size_t
DeliveryBatch::mergeInto(Cluster &cluster)
{
    // The engines close every run before merging; tolerate a missing
    // close (e.g. a unit test staging directly) so the merge is
    // self-contained.
    for (std::size_t s = 0; s < shards_; ++s) {
        if (!rows_[s].sorted)
            closeRun(s);
    }
    std::size_t merged = 0;
    for (std::size_t d = 0; d < shards_; ++d)
        merged += mergeShard(d, cluster);
    for (std::size_t s = 0; s < shards_; ++s)
        beginQuantum(s);
    return merged;
}

std::vector<net::PacketPtr>
DeliveryBatch::takeRun(std::size_t s, std::size_t d)
{
    AQSIM_ASSERT(rows_[s].sorted);
    SubRun &sub = subRun(s, d);
    std::vector<net::PacketPtr> items;
    items.reserve(sub.keys.size());
    for (const sim::RunKey &key : sub.keys) {
        Staged &staged = rows_[s].payload[key.idx];
        AQSIM_ASSERT(staged.pkt && key.when == staged.pkt->idealArrival);
        items.push_back(std::move(staged.pkt));
    }
    // The column is consumed locally; the receiving process merges it.
    sub.keys.clear();
    return items;
}

void
DeliveryBatch::injectRun(std::size_t s, std::size_t d,
                         std::vector<net::PacketPtr> items)
{
    Row &row = rows_[s];
    AQSIM_ASSERT(!row.sorted);
    SubRun &sub = subRun(s, d);
    for (net::PacketPtr &pkt : items) {
        AQSIM_ASSERT(shardOf(pkt->src) == s && shardOf(pkt->dst) == d);
        sub.keys.push_back(sim::RunKey{
            pkt->idealArrival, pkt->departTick, pkt->src,
            static_cast<std::uint32_t>(row.payload.size())});
        row.payload.push_back(
            Staged{std::move(pkt), net::DeliveryKind::OnTime});
    }
}

std::size_t
DeliveryBatch::pending() const
{
    std::size_t n = 0;
    for (const SubRun &sub : subs_)
        n += sub.keys.size();
    return n;
}

std::uint64_t
DeliveryBatch::totalStaged() const
{
    std::uint64_t n = 0;
    for (const Row &row : rows_)
        n += row.staged;
    return n;
}

std::uint64_t
DeliveryBatch::totalMerged() const
{
    std::uint64_t n = 0;
    for (const Lane &lane : lanes_)
        n += lane.merged;
    return n;
}

void
DeliveryBatch::serialize(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(pending()));
    w.u64(totalStaged());
    w.u64(totalMerged());
}

} // namespace aqsim::engine
