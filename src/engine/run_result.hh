/**
 * @file
 * Result of one cluster-simulation run.
 */

#ifndef AQSIM_ENGINE_RUN_RESULT_HH
#define AQSIM_ENGINE_RUN_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "core/sync_stats.hh"

namespace aqsim::engine
{

/** Everything measured during one run of a workload under a policy. */
struct RunResult
{
    std::string workload;
    std::string policy;
    std::string engine;
    std::size_t numNodes = 0;

    /** Simulated completion time (max over ranks). */
    Tick simTicks = 0;
    /** Modeled (SequentialEngine) or measured (ThreadedEngine) host
     * wall-clock spent simulating. */
    HostNs hostNs = 0.0;
    /** The workload's self-reported metric (MOPS or seconds). */
    double metric = 0.0;

    std::uint64_t quanta = 0;
    std::uint64_t packets = 0;
    std::uint64_t stragglers = 0;
    std::uint64_t nextQuantumDeliveries = 0;
    std::uint64_t latenessTicks = 0;
    double meanQuantumTicks = 0.0;

    /** Frames dropped by the fault layer (0 on a perfect network). */
    std::uint64_t droppedFrames = 0;
    /** Reliable-mode retransmission timeouts across all endpoints. */
    std::uint64_t retransmits = 0;

    /** Checkpoint files written during the run. */
    std::uint64_t checkpointsWritten = 0;
    /** Encoded bytes across those files. */
    std::uint64_t checkpointBytes = 0;
    /** Host wall-clock spent encoding + writing them, in ns. */
    double checkpointWriteNs = 0.0;
    /** Quantum a --restore run was verified against (0 = no restore). */
    std::uint64_t restoredFromQuantum = 0;
    /** FNV-1a fingerprint of the final cluster state (0 = not taken). */
    std::uint64_t finalStateHash = 0;

    /**
     * Supervision outcome (supervise::RunSupervisor): attempts made,
     * failures recovered from, conservative escalations taken. An
     * unsupervised (or first-try clean) run leaves recoveries at 0,
     * which also suppresses the summary section so default summaries
     * stay byte-comparable.
     */
    std::uint64_t superviseAttempts = 0;
    std::uint64_t superviseRecoveries = 0;
    std::uint64_t superviseEscalations = 0;

    /**
     * Wall-clock spent in each exchange phase across all workers
     * (stats/phase_timing.hh), measured only when
     * EngineOptions::phaseStats was on. Nondeterministic by nature:
     * never checkpointed or hashed, and only printed when
     * showPhaseStats is set so default summaries stay byte-comparable
     * across runs.
     */
    std::uint64_t phaseSortNs = 0;
    std::uint64_t phaseExchangeNs = 0;
    std::uint64_t phaseMergeNs = 0;
    std::uint64_t phaseDispatchNs = 0;
    /** Append the phase section to summary(). */
    bool showPhaseStats = false;

    /** Per-rank application completion ticks. */
    std::vector<Tick> finishTicks;
    /** Per-quantum records (only when timeline recording was on). */
    std::vector<core::QuantumRecord> timeline;

    double simSeconds() const { return ticksToSeconds(simTicks); }
    double hostSeconds() const { return hostNs * 1e-9; }

    /** Straggler fraction of all routed packets. */
    double
    stragglerFraction() const
    {
        return packets ? static_cast<double>(stragglers) /
                             static_cast<double>(packets)
                       : 0.0;
    }

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * Relative accuracy error of a run against the ground truth, on the
 * application-reported metric — the paper's accuracy measure.
 */
double accuracyError(const RunResult &run, const RunResult &ground_truth);

/** Host wall-clock speedup of a run over the ground truth. */
double speedup(const RunResult &run, const RunResult &ground_truth);

/** Simulated-execution-time ratio (the paper's IS table metric). */
double simTimeRatio(const RunResult &run, const RunResult &ground_truth);

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_RUN_RESULT_HH
