/**
 * @file
 * Fault-tolerant multi-process engine: forked workers, a quantum
 * barrier over sockets, and structured peer-failure detection.
 *
 * The paper's deployment shape is N node simulators as separate host
 * processes synchronized by a central controller. DistributedEngine
 * reproduces that shape: the coordinator forks K worker processes,
 * each owning a contiguous shard of ceil(N/K) nodes, and drives the
 * same quantum-barrier protocol the in-process engines use — over the
 * transport seam (transport/channel.hh) instead of thread barriers.
 *
 * Conservative runs only (quantum <= minimum network latency): every
 * cross-partition delivery then lands at or beyond the next quantum
 * boundary, so a packet can be executed on a peer that never sees the
 * receiver's mid-quantum state, and the merged per-destination
 * delivery order — hence the full RunResult and finalStateHash — is
 * bit-identical to the SequentialEngine. The coordinator enforces the
 * condition up front and each worker re-checks it per delivery.
 *
 * Robustness is the point of the multi-process shape: a worker can
 * crash (SIGKILL), wedge (SIGSTOP, scheduler hang), or half-open its
 * socket. Every coordinator wait is deadline-bounded and every worker
 * runs a heartbeat beacon, so each of those outcomes maps to a
 * structured PeerFailure — never a stuck barrier — which surfaces as
 * base::RunAbort{cause "peer-failure"} that supervise::RunSupervisor
 * catches, logs as an incident, and recovers from by checkpoint
 * replay with a fresh set of workers (docs/distributed.md).
 */

#ifndef AQSIM_ENGINE_DISTRIBUTED_ENGINE_HH
#define AQSIM_ENGINE_DISTRIBUTED_ENGINE_HH

#include <cstdint>
#include <string>

#include "core/quantum_policy.hh"
#include "engine/cluster.hh"
#include "engine/run_result.hh"
#include "engine/sequential_engine.hh"
#include "workloads/workload.hh"

namespace aqsim::engine
{

/** How a worker process was observed to fail. */
enum class PeerFailureKind
{
    /** Socket closed (EOF/ECONNRESET): the process died or closed
     * its channel without the protocol goodbye. */
    Disconnect,
    /** No frame (not even a heartbeat) within the deadline: the
     * process is alive but frozen or wedged. */
    Hang,
    /** A frame failed CRC/length/type validation: wire damage. */
    Corrupt,
    /** A well-formed frame violated the barrier protocol, or the
     * peer reported its own abort. */
    Protocol,
};

/** @return a stable lowercase name ("disconnect", "hang", ...). */
const char *peerFailureKindName(PeerFailureKind kind);

/**
 * Structured description of one failed worker, captured by the
 * coordinator at the barrier wait that detected it. Rendered into the
 * RunAbort detail (cause "peer-failure") so the supervisor's incident
 * log names the peer, not just the quantum.
 */
struct PeerFailure
{
    PeerFailureKind kind = PeerFailureKind::Disconnect;
    /** Worker index (shard owner). */
    std::size_t peer = 0;
    /** Host pid of the worker process. */
    long pid = 0;
    /** Barrier phase the coordinator was waiting in. */
    std::string phase;
    /** Host seconds since the peer's last frame of any kind. */
    double frameAge = 0.0;
    /** Extra context (peer-reported abort reason, decode error). */
    std::string detail;

    /** One-line human-readable description (the RunAbort detail). */
    std::string describe() const;
};

/**
 * Multi-process distributed engine (coordinator side).
 *
 * Unlike the in-process engines there is no run(Cluster&) overload:
 * every worker process must construct its own pristine Cluster from
 * the parameters, so externally pre-built clusters cannot be
 * partitioned. The coordinator keeps a replica cluster of its own for
 * configuration, absorbed global counters, and checkpoint assembly —
 * its nodes never execute.
 */
class DistributedEngine
{
  public:
    explicit DistributedEngine(EngineOptions options = {});

    /**
     * Run @p workload on a cluster built from @p params under
     * @p policy, partitioned across forked worker processes.
     *
     * @throw base::RunAbort cause "peer-failure" when a worker
     *        crashes, hangs, or corrupts the protocol mid-run (the
     *        surviving workers are torn down first).
     */
    RunResult run(const ClusterParams &params,
                  workloads::Workload &workload,
                  core::QuantumPolicy &policy);

    const EngineOptions &options() const { return options_; }

  private:
    EngineOptions options_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_DISTRIBUTED_ENGINE_HH
