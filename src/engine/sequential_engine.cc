#include "engine/sequential_engine.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <queue>
#include <vector>

#include "base/debug.hh"
#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"
#include "ckpt/run_checkpointer.hh"
#include "core/synchronizer.hh"
#include "engine/delivery_batch.hh"
#include "engine/shard_exec.hh"
#include "engine/watchdog.hh"
#include "stats/phase_timing.hh"

namespace aqsim::engine
{

namespace
{

/**
 * Per-run co-simulation state and the DeliveryScheduler the controller
 * calls back into.
 */
class CoSim : public net::DeliveryScheduler
{
  public:
    CoSim(Cluster &cluster, core::Synchronizer &sync,
          const EngineOptions &options, Watchdog *watchdog,
          ckpt::RunCheckpointer *checkpointer)
        : cluster_(cluster), sync_(sync), options_(options),
          watchdog_(watchdog), checkpointer_(checkpointer),
          batch_(cluster.numNodes(), 1, options.phaseStats)
    {
        Rng host_rng(cluster.params().seed ^ 0x9d5c0fb3ULL);
        const std::size_t n = cluster.numNodes();
        states_.reserve(n);
        for (NodeId id = 0; id < n; ++id) {
            states_.push_back(NodeState{
                &cluster.node(id),
                node::HostCostModel(options.host, host_rng.fork(id)),
            });
        }
        cluster.controller().setScheduler(this);
    }

    /** Execute the whole run; returns total modeled host time. */
    HostNs
    execute()
    {
        const std::size_t n = states_.size();
        const std::uint64_t max_quanta =
            options_.maxQuanta ? options_.maxQuanta : 500'000'000ULL;

        sync_.begin();
        while (!cluster_.allDone()) {
            pollCancel();
            if (!cluster_.anyEventPending()) {
                panic("cluster deadlock: no pending events but "
                      "applications incomplete\n%s",
                      cluster_.progressReport().c_str());
            }
            runQuantum();
            if (watchdog_)
                watchdog_->kick();
            if (sync_.numQuanta() > max_quanta)
                fatal("quantum budget exceeded (%llu); likely "
                      "livelock or mis-sized workload",
                      static_cast<unsigned long long>(max_quanta));
            if (options_.maxSimTicks &&
                sync_.quantumStart() > options_.maxSimTicks)
                fatal("simulated time budget exceeded at %llu ticks",
                      static_cast<unsigned long long>(
                          sync_.quantumStart()));
        }
        // A watchdog drill injected at the final quantum trips the
        // token after allDone() became true; it must still abort.
        pollCancel();
        (void)n;
        return globalHost_;
    }

    net::DeliveryScheduler *scheduler() { return this; }

    /** Accumulated exchange-phase wall-clock (RunResult reporting). */
    const stats::PhaseTimes &phases() const { return batch_.phases(); }

    /** DeliveryScheduler: place a packet into its destination node. */
    Tick
    place(const net::PacketPtr &pkt, net::DeliveryKind &kind) override
    {
        NodeState &dst = states_[pkt->dst];
        const Tick ideal = pkt->idealArrival;
        const Tick qe = sync_.quantumEnd();

        if (ideal >= qe) {
            // Arrives in a later quantum: always safely schedulable.
            // Staged, not delivered: both engines route cross-quantum
            // deliveries through the same canonical barrier merge.
            batch_.stage(pkt, ideal, net::DeliveryKind::OnTime);
            kind = net::DeliveryKind::OnTime;
            return ideal;
        }
        // The receiver's co-sim state is consulted below; an idle
        // (lazy) receiver must first be materialized as if its barrier
        // entry had been in the heap all along.
        if (dst.lazy)
            materialize(pkt->dst);
        if (dst.atBarrier) {
            // Fig. 3d: receiver already finished its quantum; the
            // controller queues the packet to the next boundary.
            batch_.stage(pkt, qe, net::DeliveryKind::NextQuantum);
            kind = net::DeliveryKind::NextQuantum;
            return qe;
        }

        // Where is the receiver's simulator *right now* (in host time)?
        // It has been free-running since its last event; it cannot
        // have passed a still-pending event (that event's heap entry
        // would have popped before the current host time), so the
        // interpolation is clamped to the next pending tick.
        const HostNs host_now = currentHostNs_;
        Tick rpos = dst.simPos;
        if (host_now > dst.hostClock && dst.rate > 0.0) {
            rpos += static_cast<Tick>((host_now - dst.hostClock) /
                                      dst.rate);
        }
        rpos = std::min({rpos, qe, dst.node->queue().nextTick()});

        // Advance the receiver to this host moment: the delivery is
        // *caused* now, so nothing the receiver does afterwards may be
        // stamped earlier than this (host causality).
        if (rpos > dst.simPos) {
            advanceNodeTo(*dst.node, rpos);
            dst.simPos = rpos;
        }
        dst.hostClock = std::max(dst.hostClock, host_now);

        if (ideal >= rpos) {
            // Fig. 3 scenario (2): receiver has not yet reached the
            // arrival time; schedule it exactly (urgent: the receiver
            // is live inside the quantum, so this cannot wait for the
            // exchange merge).
            deliverUrgent(*dst.node, pkt, ideal);
            kind = net::DeliveryKind::OnTime;
            requeue(pkt->dst);
            return ideal;
        }
        if (rpos >= qe) {
            batch_.stage(pkt, qe, net::DeliveryKind::NextQuantum);
            kind = net::DeliveryKind::NextQuantum;
            return qe;
        }
        AQSIM_DPRINTF(Straggler, ideal, "engine",
                      "pkt#%llu %u->%u late: ideal=%llu receiver@%llu",
                      static_cast<unsigned long long>(pkt->id),
                      pkt->src, pkt->dst,
                      static_cast<unsigned long long>(ideal),
                      static_cast<unsigned long long>(rpos));
        if (options_.stragglerPolicy ==
            StragglerPolicy::DeferToNextQuantum) {
            batch_.stage(pkt, qe, net::DeliveryKind::NextQuantum);
            kind = net::DeliveryKind::NextQuantum;
            return qe;
        }
        // Straggler: cannot deliver in the past; deliver "now".
        const Tick actual = std::max(rpos, dst.node->queue().now());
        deliverUrgent(*dst.node, pkt, actual);
        kind = net::DeliveryKind::Straggler;
        requeue(pkt->dst);
        return actual;
    }

  private:
    struct NodeState
    {
        node::NodeSimulator *node;
        node::HostCostModel host;
        /** Host-ns per sim-ns for the segment after the last event. */
        double rate = 1.0;
        /** Sim tick of the last processed event. */
        Tick simPos = 0;
        /** Host time at which the last event finished. */
        HostNs hostClock = 0.0;
        bool atBarrier = false;
        /**
         * Idle fast path: the node has no events this quantum, so its
         * barrier time is the closed form lazyBarrier and it never
         * enters the heap. It is folded in at quantum end, or
         * materialized on demand if a mid-quantum delivery consults
         * it (see materialize()).
         */
        bool lazy = false;
        HostNs lazyBarrier = 0.0;
        std::uint64_t gen = 0;
    };

    struct Entry
    {
        HostNs when;
        NodeId id;
        std::uint64_t gen;
        bool isBarrier;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (id != o.id)
                return id > o.id;
            return gen > o.gen;
        }
    };

    /** Recompute and push a node's next host-time entry. */
    void
    pushEntry(NodeId id)
    {
        NodeState &s = states_[id];
        const Tick qe = sync_.quantumEnd();
        const Tick next = s.node->queue().nextTick();
        s.rate = s.host.rate(s.node->cpu().busy(),
                             s.node->cpu().hostDetailFactor());
        if (next >= qe) {
            const HostNs when =
                s.hostClock +
                static_cast<double>(qe - s.simPos) * s.rate;
            heap_.push(Entry{when, id, s.gen, true});
        } else {
            const HostNs when =
                s.hostClock +
                static_cast<double>(next - s.simPos) * s.rate +
                s.host.perEventNs();
            heap_.push(Entry{when, id, s.gen, false});
        }
    }

    /** Invalidate a node's queued entry and schedule a fresh one. */
    void
    requeue(NodeId id)
    {
        NodeState &s = states_[id];
        if (s.atBarrier)
            return;
        ++s.gen;
        pushEntry(id);
    }

    /**
     * Bring a lazy (idle) node into the co-simulation exactly as if
     * its barrier entry had been in the heap since the quantum began:
     * if that entry would have popped before the entry currently
     * executing, the node is already at its barrier; otherwise it
     * becomes an active heap participant with the same entry key the
     * eager path would have pushed. Heap pops are key-monotone (every
     * push is stamped at or after the frontier), so the comparison
     * against the current entry reproduces the eager schedule bit for
     * bit.
     */
    void
    materialize(NodeId id)
    {
        NodeState &s = states_[id];
        AQSIM_ASSERT(s.lazy && curValid_);
        s.lazy = false;
        const Entry would{s.lazyBarrier, id, s.gen, true};
        if (curEntry_ > would) {
            // Its barrier pop predates the current entry: at that pop
            // the frontier equaled lazyBarrier (monotone pops), which
            // is what hostClock would have captured.
            s.hostClock = s.lazyBarrier;
            snapToQuantumEnd(*s.node, sync_.quantumEnd());
            s.simPos = sync_.quantumEnd();
            s.atBarrier = true;
            maxBarrier_ = std::max(maxBarrier_, s.lazyBarrier);
            ++activeNodes_;
            ++barrierNodes_;
        } else {
            ++activeNodes_;
            pushEntry(id);
        }
    }

    void
    runQuantum()
    {
        const std::size_t n = states_.size();
        const Tick qs = sync_.quantumStart();
        const Tick qe = sync_.quantumEnd();
        const HostNs quantum_begin = globalHost_;

        activeNodes_ = 0;
        barrierNodes_ = 0;
        maxBarrier_ = quantum_begin;
        for (NodeId id = 0; id < n; ++id) {
            NodeState &s = states_[id];
            AQSIM_ASSERT(s.node->queue().now() == qs);
            s.atBarrier = false;
            s.simPos = qs;
            s.hostClock = quantum_begin + s.host.perQuantumNs();
            // Drawn for every node every quantum (idle or not): the
            // cost model's AR(1) noise stream must advance identically
            // on both paths.
            s.host.newQuantum(qe - qs);
            ++s.gen;
            if (s.node->queue().nextTick() >= qe) {
                // Idle fast path: no events this quantum, so the
                // barrier time is a closed form (same expression as
                // pushEntry's barrier case) and the node skips the
                // heap entirely. This is what keeps the per-quantum
                // fixed cost flat as clusters grow: idle nodes cost
                // O(1) with no heap traffic.
                s.rate = s.host.rate(s.node->cpu().busy(),
                                     s.node->cpu().hostDetailFactor());
                s.lazy = true;
                s.lazyBarrier =
                    s.hostClock +
                    static_cast<double>(qe - s.simPos) * s.rate;
            } else {
                pushEntry(id);
                ++activeNodes_;
            }
        }

        while (barrierNodes_ < activeNodes_) {
            pollCancel();
            AQSIM_ASSERT(!heap_.empty());
            const Entry e = heap_.top();
            heap_.pop();
            NodeState &s = states_[e.id];
            if (e.gen != s.gen)
                continue; // stale entry
            // The host frontier is monotone: an entry stamped before
            // the frontier (possible when a causally-later delivery
            // re-stamped the node) executes "now".
            currentHostNs_ = std::max(currentHostNs_, e.when);
            if (e.isBarrier) {
                s.hostClock = currentHostNs_;
                snapToQuantumEnd(*s.node, qe);
                s.simPos = qe;
                s.atBarrier = true;
                ++barrierNodes_;
                maxBarrier_ = std::max(maxBarrier_, currentHostNs_);
                continue;
            }
            // Run exactly one event; its callbacks may transmit
            // packets (delivering into other nodes through place(),
            // which may materialize lazy receivers against curEntry_)
            // or schedule further local events.
            const Tick tick = s.node->queue().nextTick();
            AQSIM_ASSERT(tick < qe);
            s.hostClock = currentHostNs_;
            s.simPos = tick;
            curEntry_ = e;
            curValid_ = true;
            const bool ran = stepNode(*s.node);
            AQSIM_ASSERT(ran);
            curValid_ = false;
            pushEntry(e.id);
        }

        // Fold the nodes that stayed lazy: their barrier times join
        // the frontier and barrier maxima (max is order-independent),
        // and their clocks snap to the boundary.
        for (NodeId id = 0; id < n; ++id) {
            NodeState &s = states_[id];
            if (!s.lazy)
                continue;
            s.lazy = false;
            currentHostNs_ = std::max(currentHostNs_, s.lazyBarrier);
            maxBarrier_ = std::max(maxBarrier_, s.lazyBarrier);
            s.hostClock = s.lazyBarrier;
            snapToQuantumEnd(*s.node, qe);
            s.simPos = qe;
            s.atBarrier = true;
        }

        // Canonical exchange merge, shared with the ThreadedEngine
        // (K=1 here, the degenerate single-column exchange): staged
        // cross-quantum deliveries enter the destination queues in
        // (when, src, departTick) order before the quantum completes,
        // keeping them visible to the deadlock check and inside the
        // checkpoint cut.
        batch_.closeRun(0);
        batch_.mergeInto(cluster_);

        globalHost_ = maxBarrier_ +
                      options_.host.barrierNs(states_.size());
        AQSIM_DPRINTF(Engine, qe, "engine",
                      "quantum [%llu,%llu) took %.0f host-ns",
                      static_cast<unsigned long long>(qs),
                      static_cast<unsigned long long>(qe),
                      globalHost_ - quantum_begin);
        sync_.completeQuantum(globalHost_ - quantum_begin);
        if (checkpointer_)
            checkpointer_->onQuantumCompleted(engineState());
        if (options_.injectFailAfterQuantum &&
            sync_.numQuanta() == options_.injectFailAfterQuantum)
            injectFailure();
    }

    /**
     * Supervised-run poll point: a hung quantum cannot throw on its
     * own (it is wedged inside event callbacks), so the watchdog's
     * panic handler trips the token and the event loops abort here.
     */
    void
    pollCancel() const
    {
        if (options_.cancelToken && options_.cancelToken->cancelled())
            throw base::RunAbort("watchdog",
                                 "run cancelled after watchdog expiry",
                                 sync_.numQuanta());
    }

    /** Deterministic recovery drill; see EngineOptions. */
    void
    injectFailure()
    {
        if (options_.injectWatchdogPanic) {
            PanicInfo info;
            info.quantaCompleted = sync_.numQuanta();
            info.quantumStart = sync_.quantumStart();
            info.quantumEnd = sync_.quantumEnd();
            info.progress = cluster_.progressReport();
            if (options_.onWatchdogPanic)
                options_.onWatchdogPanic(info);
            if (options_.cancelToken) {
                // The next pollCancel() throws through the same path
                // a real watchdog expiry would take.
                options_.cancelToken->requestCancel();
                return;
            }
        }
        throw base::RunAbort("injected",
                             "injected failure for recovery drill",
                             sync_.numQuanta());
    }

    /**
     * Engine-private checkpoint section: the modeled host-time
     * co-simulation state. Everything here is deterministic (modeled
     * host cost, not wall clock), so it participates in the
     * divergence self-check.
     */
    std::vector<std::uint8_t>
    engineState() const
    {
        ckpt::Writer w;
        w.f64(globalHost_);
        w.f64(currentHostNs_);
        w.u32(static_cast<std::uint32_t>(states_.size()));
        for (const NodeState &s : states_) {
            s.host.serialize(w);
            w.f64(s.rate);
            w.u64(s.simPos);
            w.f64(s.hostClock);
        }
        // Delivery-layer quiescence proof + deterministic counters
        // (same section layout as the ThreadedEngine's).
        batch_.serialize(w);
        return w.buffer();
    }

    Cluster &cluster_;
    core::Synchronizer &sync_;
    EngineOptions options_;
    Watchdog *watchdog_;
    ckpt::RunCheckpointer *checkpointer_;
    std::vector<NodeState> states_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    /** Shared barrier-merge path (K=1 degenerate sharding). */
    DeliveryBatch batch_;
    HostNs globalHost_ = 0.0;
    HostNs currentHostNs_ = 0.0;
    /** Entry currently executing (lazy materialization compares
     * against it); valid only while an event callback runs. */
    Entry curEntry_{};
    bool curValid_ = false;
    /** Heap participants this quantum (lazy nodes join on demand). */
    std::size_t activeNodes_ = 0;
    std::size_t barrierNodes_ = 0;
    HostNs maxBarrier_ = 0.0;
};

} // namespace

SequentialEngine::SequentialEngine(EngineOptions options)
    : options_(options)
{}

SequentialEngine::~SequentialEngine() = default;

RunResult
SequentialEngine::run(const ClusterParams &params,
                      workloads::Workload &workload,
                      core::QuantumPolicy &policy)
{
    Cluster cluster(params, workload);
    return run(cluster, policy);
}

RunResult
SequentialEngine::run(Cluster &cluster, core::QuantumPolicy &policy)
{
    core::Synchronizer sync(policy, cluster.controller(),
                            cluster.statsRoot(),
                            options_.recordTimeline);

    ckpt::RunCkptOptions ck;
    ck.every = options_.checkpointEvery;
    ck.dir = options_.checkpointDir;
    ck.restorePath = options_.restorePath;
    ck.verifyRestore = options_.verifyRestore;
    ck.keepLast = options_.checkpointKeepLast;
    ck.stashForPanic =
        options_.watchdogSeconds > 0.0 && !ck.dir.empty();
    std::unique_ptr<ckpt::RunCheckpointer> checkpointer;
    if (ck.enabled()) {
        checkpointer = std::make_unique<ckpt::RunCheckpointer>(
            ck, cluster, sync,
            ckpt::configFingerprint(cluster.params(), policy.name(),
                                    cluster.workload().name()),
            "sequential");
        checkpointer->begin();
    }

    Watchdog *watchdog = nullptr;
    if (options_.watchdogSeconds > 0.0) {
        if (!watchdog_)
            watchdog_ =
                std::make_unique<Watchdog>(options_.watchdogSeconds);
        Watchdog::PanicFn on_panic;
        if (options_.cancelToken || options_.onWatchdogPanic) {
            on_panic = [handler = options_.onWatchdogPanic,
                        cancel = options_.cancelToken](
                           const PanicInfo &info) {
                if (handler)
                    handler(info);
                if (cancel)
                    cancel->requestCancel();
            };
        }
        watchdog_->arm(
            [&cluster, &sync, ckpt = checkpointer.get()] {
                PanicInfo info;
                info.quantumStart = sync.quantumStart();
                info.quantumEnd = sync.quantumEnd();
                info.progress = cluster.progressReport();
                if (ckpt)
                    info.note = ckpt->panicNote();
                return info;
            },
            std::move(on_panic));
        watchdog = watchdog_.get();
    }

    CoSim cosim(cluster, sync, options_, watchdog, checkpointer.get());
    HostNs host_ns = 0.0;
    try {
        host_ns = cosim.execute();
    } catch (...) {
        // A supervised abort must not leave the reused watchdog armed
        // with a dump capturing this (dying) run's objects.
        if (watchdog)
            watchdog->disarm();
        throw;
    }
    if (watchdog)
        watchdog->disarm();

    RunResult result;
    result.workload = cluster.workload().name();
    result.policy = policy.name();
    result.engine = "sequential";
    result.numNodes = cluster.numNodes();
    result.simTicks = cluster.maxFinishTick();
    result.hostNs = host_ns;
    result.metric = cluster.workload().metricValue(result.simTicks);
    result.quanta = sync.numQuanta();
    result.packets = cluster.controller().totalPackets();
    result.stragglers = cluster.controller().totalStragglers();
    result.nextQuantumDeliveries =
        cluster.controller().totalNextQuantum();
    result.latenessTicks = cluster.controller().totalLatenessTicks();
    result.meanQuantumTicks = sync.stats().meanQuantumLength();
    result.droppedFrames = cluster.controller().totalDropped();
    result.retransmits = cluster.totalRetransmits();
    result.finishTicks = cluster.finishTicks();
    result.timeline = sync.stats().timeline();
    result.finalStateHash = cluster.stateHash();
    result.showPhaseStats = options_.phaseStats;
    result.phaseSortNs =
        cosim.phases().total(stats::EnginePhase::Sort);
    result.phaseExchangeNs =
        cosim.phases().total(stats::EnginePhase::Exchange);
    result.phaseMergeNs =
        cosim.phases().total(stats::EnginePhase::Merge);
    result.phaseDispatchNs =
        cosim.phases().total(stats::EnginePhase::Dispatch);
    if (checkpointer)
        checkpointer->finish(result);
    return result;
}

} // namespace aqsim::engine
