#include "engine/run_result.hh"

#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace aqsim::engine
{

std::string
RunResult::summary() const
{
    char buf[448];
    int len = std::snprintf(
        buf, sizeof(buf),
        "%s/%s n=%zu sim=%.3fms host=%.3fs quanta=%llu pkts=%llu "
        "stragglers=%llu metric=%.4g",
        workload.c_str(), policy.c_str(), numNodes,
        static_cast<double>(simTicks) * 1e-6, hostSeconds(),
        static_cast<unsigned long long>(quanta),
        static_cast<unsigned long long>(packets),
        static_cast<unsigned long long>(stragglers), metric);
    if ((droppedFrames || retransmits) && len > 0 &&
        static_cast<std::size_t>(len) < sizeof(buf)) {
        len += std::snprintf(
            buf + len, sizeof(buf) - len,
            " dropped=%llu retransmits=%llu",
            static_cast<unsigned long long>(droppedFrames),
            static_cast<unsigned long long>(retransmits));
    }
    if (checkpointsWritten && len > 0 &&
        static_cast<std::size_t>(len) < sizeof(buf)) {
        len += std::snprintf(
            buf + len, sizeof(buf) - len,
            " ckpts=%llu(%.1fKB,%.2fms)",
            static_cast<unsigned long long>(checkpointsWritten),
            static_cast<double>(checkpointBytes) / 1024.0,
            checkpointWriteNs * 1e-6);
    }
    if (restoredFromQuantum && len > 0 &&
        static_cast<std::size_t>(len) < sizeof(buf)) {
        len += std::snprintf(
            buf + len, sizeof(buf) - len, " restored@q%llu",
            static_cast<unsigned long long>(restoredFromQuantum));
    }
    if (superviseRecoveries && len > 0 &&
        static_cast<std::size_t>(len) < sizeof(buf)) {
        len += std::snprintf(
            buf + len, sizeof(buf) - len,
            " supervised[attempts=%llu recoveries=%llu "
            "escalations=%llu]",
            static_cast<unsigned long long>(superviseAttempts),
            static_cast<unsigned long long>(superviseRecoveries),
            static_cast<unsigned long long>(superviseEscalations));
    }
    if (showPhaseStats && len > 0 &&
        static_cast<std::size_t>(len) < sizeof(buf)) {
        len += std::snprintf(
            buf + len, sizeof(buf) - len,
            " phase[sort=%.2fms xchg=%.2fms merge=%.2fms "
            "disp=%.2fms]",
            static_cast<double>(phaseSortNs) * 1e-6,
            static_cast<double>(phaseExchangeNs) * 1e-6,
            static_cast<double>(phaseMergeNs) * 1e-6,
            static_cast<double>(phaseDispatchNs) * 1e-6);
    }
    return buf;
}

double
accuracyError(const RunResult &run, const RunResult &ground_truth)
{
    AQSIM_ASSERT(ground_truth.metric != 0.0);
    return std::fabs(run.metric - ground_truth.metric) /
           std::fabs(ground_truth.metric);
}

double
speedup(const RunResult &run, const RunResult &ground_truth)
{
    AQSIM_ASSERT(run.hostNs > 0.0);
    return ground_truth.hostNs / run.hostNs;
}

double
simTimeRatio(const RunResult &run, const RunResult &ground_truth)
{
    AQSIM_ASSERT(ground_truth.simTicks > 0);
    return static_cast<double>(run.simTicks) /
           static_cast<double>(ground_truth.simTicks);
}

} // namespace aqsim::engine
