/**
 * @file
 * Persistent quantum-synchronous worker pool for the ThreadedEngine,
 * plus the per-node cross-thread delivery mailbox its shards
 * communicate through.
 *
 * The paper's Fig. 5 observation — per-quantum synchronization
 * overhead dominates parallel cluster simulation — applies to our own
 * host execution too. Two design points follow from it:
 *
 *  - QuantumGate is a sense-reversing (epoch-counted) barrier built on
 *    two atomics with a spin-then-yield wait. Opening and closing a
 *    quantum costs two atomic RMWs per worker instead of four
 *    mutex/condvar transitions, and an uncontended quantum never
 *    enters the kernel.
 *  - WorkerPool spawns a bounded number of threads once per run and
 *    reuses them every quantum, so a 64-node cluster on an 8-core host
 *    runs ceil(64/8) node shards per worker instead of oversubscribing
 *    the machine with 64 threads (see docs/performance.md).
 *
 * Memory-ordering contract: everything the coordinator writes before
 * release() is visible to workers after waitRelease() (release/acquire
 * on the epoch), and everything a worker writes before arrive() is
 * visible to the coordinator after waitAllArrived() (release/acquire
 * on the arrival count). Engines rely on this to touch node state from
 * the coordinator between quanta without extra locks.
 */

#ifndef AQSIM_ENGINE_WORKER_POOL_HH
#define AQSIM_ENGINE_WORKER_POOL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "base/mutex.hh"
#include "base/types.hh"
#include "net/network_controller.hh"
#include "net/packet.hh"

namespace aqsim::engine
{

namespace detail
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

constexpr int spinIterations = 256;

/**
 * Spin briefly for the low-latency common case, then yield so an
 * oversubscribed host (more workers than cores) makes progress
 * instead of burning a timeslice.
 */
template <typename Pred>
inline void
spinUntil(Pred pred)
{
    for (int i = 0; i < spinIterations; ++i) {
        if (pred())
            return;
        cpuRelax();
    }
    while (!pred())
        std::this_thread::yield();
}

} // namespace detail

/**
 * Sense-reversing barrier coordinating one releasing thread (the
 * coordinator) with a fixed set of workers, one epoch per quantum.
 */
class QuantumGate
{
  public:
    explicit QuantumGate(std::size_t workers) : workers_(workers) {}

    QuantumGate(const QuantumGate &) = delete;
    QuantumGate &operator=(const QuantumGate &) = delete;

    /** What a release publishes to every worker. */
    struct Quantum
    {
        Tick end;
        bool stop;
    };

    /** Coordinator: publish the next quantum window and wake workers. */
    void
    release(Tick quantum_end, bool stop)
    {
        quantumEnd_ = quantum_end;
        stop_ = stop;
        arrived_.store(0, std::memory_order_relaxed);
        // The epoch bump is the release fence publishing the window
        // (and all coordinator writes made at the barrier).
        epoch_.fetch_add(1, std::memory_order_release);
    }

    /**
     * Worker: wait for the epoch after @p seen_epoch and read the
     * published window. The coordinator cannot run more than one epoch
     * ahead (it waits for all arrivals first), so the epoch the
     * predicate observes is always seen_epoch + 1.
     */
    Quantum
    waitRelease(std::uint64_t &seen_epoch)
    {
        detail::spinUntil([&] {
            return epoch_.load(std::memory_order_acquire) != seen_epoch;
        });
        ++seen_epoch;
        return Quantum{quantumEnd_, stop_};
    }

    /** Worker: announce this quantum's work is finished. */
    void
    arrive()
    {
        // Release: publishes this worker's queue/mailbox writes to the
        // coordinator's acquire spin in waitAllArrived().
        arrived_.fetch_add(1, std::memory_order_release);
    }

    /** Coordinator: wait until every worker has arrived. */
    void
    waitAllArrived()
    {
        detail::spinUntil([&] {
            return arrived_.load(std::memory_order_acquire) ==
                   workers_;
        });
    }

  private:
    alignas(64) std::atomic<std::uint64_t> epoch_{0};
    alignas(64) std::atomic<std::size_t> arrived_{0};
    /** Published by release(); read by workers after the epoch bump. */
    Tick quantumEnd_ = 0;
    bool stop_ = false;
    const std::size_t workers_;
};

/**
 * All-worker rendezvous *inside* one released quantum, with no
 * coordinator involvement: the ThreadedEngine separates its execute
 * and exchange phases with one of these instead of a second gate
 * round trip, so the two-phase quantum costs no extra coordinator
 * wake-up — and is free at K=1.
 *
 * Everything any worker wrote before its arriveAndWait() is visible
 * to every worker after the call returns (release sequence on the
 * arrival count into the last arriver, release/acquire on the epoch
 * out of it). Reuse across quanta is safe because the enclosing
 * QuantumGate cycle guarantees every worker has left the barrier
 * before any worker can re-enter it.
 */
class WorkerBarrier
{
  public:
    explicit WorkerBarrier(std::size_t workers) : workers_(workers) {}

    WorkerBarrier(const WorkerBarrier &) = delete;
    WorkerBarrier &operator=(const WorkerBarrier &) = delete;

    /** Worker: arrive and block until every worker has arrived. */
    void
    arriveAndWait()
    {
        if (workers_ == 1)
            return;
        const std::uint64_t epoch =
            epoch_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            workers_) {
            // Last arriver: reset the count *before* the epoch bump
            // that lets anyone (and eventually itself) re-enter.
            arrived_.store(0, std::memory_order_relaxed);
            epoch_.fetch_add(1, std::memory_order_release);
            return;
        }
        detail::spinUntil([&] {
            return epoch_.load(std::memory_order_acquire) != epoch;
        });
    }

  private:
    alignas(64) std::atomic<std::uint64_t> epoch_{0};
    alignas(64) std::atomic<std::size_t> arrived_{0};
    const std::size_t workers_;
};

/** A delivery parked in a destination node's mailbox. */
struct ParkedDelivery
{
    net::PacketPtr pkt;
    Tick when;
    /** How the placement was accounted (for the invariant checker). */
    net::DeliveryKind kind;
    /** Canonical merge key: (when, src, departTick) is a total order
     * because departTick strictly increases per source NIC. */
    bool
    operator<(const ParkedDelivery &o) const
    {
        if (when != o.when)
            return when < o.when;
        if (pkt->src != o.pkt->src)
            return pkt->src < o.pkt->src;
        return pkt->departTick < o.pkt->departTick;
    }
};

/**
 * Per-node cross-thread mailbox for *urgent* deliveries only:
 * stragglers and on-time deliveries that land inside the receiver's
 * open quantum, which must reach the live receiver mid-quantum.
 * Cross-quantum deliveries — every delivery of a conservative run —
 * bypass the mailbox entirely and are staged lock-free in the source
 * shard's DeliveryBatch run, so the mailbox lock is off the
 * conservative hot path.
 *
 * Swap-buffer style: producers park deliveries with one short lock
 * acquisition; the consumer drains the whole batch with one lock
 * acquisition into a reusable scratch buffer, so the steady state
 * allocates nothing and never holds the lock while delivering.
 *
 * The owner-side handshake (open/close) is lock-free in the common
 * empty case — across a cluster that is K×N avoided uncontended
 * mutex acquisitions per quantum. It still guarantees the property
 * the canonical exchange merge depends on: a placement that saw the
 * node open has pushed before close() returns, and everything placed
 * after close() is deferred to the quantum boundary. The mechanism is
 * a Dekker-style pairing: a producer increments claims_ (seq_cst)
 * *before* re-reading atBarrier_, and close() stores atBarrier_
 * (seq_cst) *before* reading claims_ — sequential consistency forbids
 * both sides reading the stale value, so close() either sees the
 * claim (and waits for it to resolve into a push or a deferral) or
 * the producer sees the barrier (and defers).
 */
class NodeMailbox
{
  public:
    /**
     * Producer (any worker): decide placement of @p pkt (with
     * in-quantum ideal arrival @p ideal < @p qe) against the open
     * quantum. Urgent placements (receiver still running) are parked
     * here and @p parked is set; barrier placements (receiver already
     * closed) are *not* stored — the caller stages them into its
     * shard's DeliveryBatch run for the canonical barrier merge.
     */
    Tick park(const net::PacketPtr &pkt, Tick ideal, Tick qe,
              net::DeliveryKind &kind, bool &parked)
        AQSIM_EXCLUDES(mutex_);

    /** Owner: open the node's quantum slice (lock-free). */
    void
    open()
    {
        atBarrier_.store(false, std::memory_order_release);
    }

    /**
     * Owner: close the slice atomically w.r.t. producers; lock-free
     * whenever the mailbox is empty and unclaimed (the common case).
     * @return true if deliveries raced in before the close.
     */
    bool close() AQSIM_EXCLUDES(mutex_);

    /**
     * Swap the parked batch out under one lock acquisition. The
     * returned buffer is reused on the next drain; worker (mid-
     * quantum) and coordinator (at the barrier) drains never overlap,
     * so the single scratch buffer is race-free by the gate protocol.
     */
    std::vector<ParkedDelivery> &drain() AQSIM_EXCLUDES(mutex_);

    /** Set while the mailbox holds a delivery inside the open quantum. */
    bool
    urgent() const
    {
        return urgent_.load(std::memory_order_acquire);
    }

    /** Owner: publish the node's simulated position to producers. */
    void
    setCurrentTick(Tick t)
    {
        currentTick_.store(t, std::memory_order_release);
    }

  private:
    base::Mutex mutex_;
    std::vector<ParkedDelivery> incoming_ AQSIM_GUARDED_BY(mutex_);
    /** Consumer-owned by the gate protocol (drains never overlap);
     * deliberately not GUARDED_BY — it is touched outside the lock by
     * whichever single thread owns the drain. */
    std::vector<ParkedDelivery> scratch_;
    /** True between close() and open(); the Dekker partner of
     * claims_ (see class comment). */
    std::atomic<bool> atBarrier_{true};
    /** Producers in flight between their claim and its resolution. */
    std::atomic<std::uint32_t> claims_{0};
    std::atomic<Tick> currentTick_{0};
    /** Maintained under mutex_ as "incoming_ is non-empty": set by
     * the producer after its push, cleared by the drain's swap. */
    std::atomic<bool> urgent_{false};
};

/**
 * A persistent pool of worker threads driven one quantum at a time.
 * Threads are spawned once and parked at the gate between quanta; the
 * destructor releases a stop epoch and joins.
 */
class WorkerPool
{
  public:
    /** Per-quantum work: (worker index, quantum end tick). */
    using QuantumFn = std::function<void(std::size_t, Tick)>;

    WorkerPool(std::size_t workers, QuantumFn fn);
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /** Coordinator: run one quantum on every worker and wait. */
    void
    runQuantum(Tick quantum_end)
    {
        gate_.release(quantum_end, /*stop=*/false);
        gate_.waitAllArrived();
    }

    std::size_t numWorkers() const { return threads_.size(); }

    /**
     * Resolve a requested worker count: 0 means the host's hardware
     * concurrency; the result is clamped to [1, num_tasks] so no
     * worker ever owns an empty shard.
     */
    static std::size_t resolveWorkerCount(std::size_t requested,
                                          std::size_t num_tasks);

    /**
     * Contiguous shard [begin, end) of @p num_tasks owned by
     * @p worker when split across @p workers (ceil division; the last
     * shards may be one element shorter).
     */
    static std::pair<std::size_t, std::size_t>
    shardRange(std::size_t worker, std::size_t workers,
               std::size_t num_tasks);

  private:
    void threadBody(std::size_t worker);

    QuantumGate gate_;
    QuantumFn fn_;
    std::vector<std::thread> threads_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_WORKER_POOL_HH
