/**
 * @file
 * The shard-execution seam: the only engine-layer code allowed to
 * mutate a node's sim::EventQueue directly.
 *
 * Quantum-local execution is the half of the sharded kernel that runs
 * with no cross-shard synchronization (the other half — the barrier
 * merge — is engine/delivery_batch.hh). Concentrating every direct
 * queue mutation (runOne / fastForwardTo) behind these four functions
 * keeps the engines' control flow free of event-kernel details and
 * lets tools/analyze enforce the boundary statically: the
 * "queue-seam" rule bans EventQueue mutators in engine code outside
 * this file, so a future engine cannot quietly bypass the canonical
 * merge by scheduling into another shard's queue (see
 * docs/static-analysis.md).
 */

#ifndef AQSIM_ENGINE_SHARD_EXEC_HH
#define AQSIM_ENGINE_SHARD_EXEC_HH

#include "base/types.hh"

namespace aqsim::node
{
class NodeSimulator;
} // namespace aqsim::node

namespace aqsim::engine
{

class NodeMailbox;

/**
 * Worker-side quantum-local execution: run @p node's events up to the
 * quantum boundary @p qe, draining urgent mid-quantum deliveries from
 * @p mbx under the mailbox open/close handshake, and leave the node
 * fast-forwarded to @p qe with the mailbox closed.
 */
void runNodeQuantum(node::NodeSimulator &node, NodeMailbox &mbx,
                    Tick qe);

/**
 * Execute exactly one pending event (the SequentialEngine's host-time
 * interleave steps nodes one event at a time).
 * @return true if an event ran.
 */
bool stepNode(node::NodeSimulator &node);

/**
 * Advance @p node's clock to @p tick without running events (receiver
 * interpolation; all pending events must lie at or beyond @p tick).
 */
void advanceNodeTo(node::NodeSimulator &node, Tick tick);

/** Snap an event-free node to the quantum boundary @p qe. */
void snapToQuantumEnd(node::NodeSimulator &node, Tick qe);

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_SHARD_EXEC_HH
