/**
 * @file
 * The shard-execution seam: the only engine-layer code allowed to
 * mutate a node's sim::EventQueue directly.
 *
 * Quantum-local execution is the half of the sharded kernel that runs
 * with no cross-shard synchronization (the other half — the K×K
 * exchange — is engine/delivery_batch.hh). Concentrating every direct
 * queue mutation (runOne / fastForwardTo / NIC delivery scheduling)
 * behind these functions keeps the engines' control flow free of
 * event-kernel details and lets tools/analyze enforce the boundary
 * statically: the "queue-seam" rule bans EventQueue mutators *and*
 * NicModel::deliverAt in engine code outside this file, so a future
 * engine cannot quietly bypass the canonical per-destination merge by
 * scheduling or delivering into another shard's queue. Post-exchange
 * dispatch is only legal through dispatchDelivery, called by the
 * worker that owns the destination node's shard (see
 * docs/static-analysis.md).
 */

#ifndef AQSIM_ENGINE_SHARD_EXEC_HH
#define AQSIM_ENGINE_SHARD_EXEC_HH

#include "base/types.hh"
#include "net/packet.hh"

namespace aqsim::base
{
class CancelToken;
} // namespace aqsim::base

namespace aqsim::node
{
class NodeSimulator;
} // namespace aqsim::node

namespace aqsim::engine
{

class NodeMailbox;

/**
 * Worker-side quantum-local execution: run @p node's events up to the
 * quantum boundary @p qe, draining urgent mid-quantum deliveries from
 * @p mbx under the mailbox open/close handshake, and leave the node
 * fast-forwarded to @p qe with the mailbox closed.
 *
 * @p cancel, when non-null, is the supervised-run unwedge seam: the
 * loop polls it and returns early (node left mid-quantum, mailbox
 * open) once cancellation is requested — the run is being abandoned
 * and the cluster discarded, so no boundary invariant needs to hold.
 */
void runNodeQuantum(node::NodeSimulator &node, NodeMailbox &mbx,
                    Tick qe, const base::CancelToken *cancel = nullptr);

/**
 * Execute exactly one pending event (the SequentialEngine's host-time
 * interleave steps nodes one event at a time).
 * @return true if an event ran.
 */
bool stepNode(node::NodeSimulator &node);

/**
 * Advance @p node's clock to @p tick without running events (receiver
 * interpolation; all pending events must lie at or beyond @p tick).
 */
void advanceNodeTo(node::NodeSimulator &node, Tick tick);

/** Snap an event-free node to the quantum boundary @p qe. */
void snapToQuantumEnd(node::NodeSimulator &node, Tick qe);

/**
 * Schedule a merged cross-quantum delivery of @p pkt into @p node at
 * @p when, clamped to the receiver's clock (a restore replay can find
 * the receiver already past a staged tick). Called only by the worker
 * that owns the destination node's shard, from
 * DeliveryBatch::mergeShard. Takes the packet by value: the exchange
 * hands each packet's last reference straight through to the NIC's
 * delivery event, refcount-free.
 */
void dispatchDelivery(node::NodeSimulator &node, net::PacketPtr pkt,
                      Tick when);

/**
 * Deliver @p pkt into a *live* receiver mid-quantum at exactly
 * @p when (the urgent on-time/straggler path: the caller has already
 * resolved the tick against the receiver's position).
 */
void deliverUrgent(node::NodeSimulator &node,
                   const net::PacketPtr &pkt, Tick when);

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_SHARD_EXEC_HH
