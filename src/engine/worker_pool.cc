#include "engine/worker_pool.hh"

#include <algorithm>

#include "base/logging.hh"

namespace aqsim::engine
{

Tick
NodeMailbox::park(const net::PacketPtr &pkt, Tick ideal, Tick qe,
                  net::DeliveryKind &kind, bool &parked)
{
    base::MutexLock lock(mutex_);
    parked = false;
    if (atBarrier_) {
        // Fig. 3d: receiver already closed its quantum slice. Not
        // stored: the caller stages it for the canonical barrier
        // merge (DeliveryBatch).
        kind = net::DeliveryKind::NextQuantum;
        return qe;
    }
    Tick actual;
    const Tick rnow = currentTick_.load(std::memory_order_acquire);
    if (ideal >= rnow) {
        kind = net::DeliveryKind::OnTime;
        actual = ideal;
    } else {
        kind = net::DeliveryKind::Straggler;
        actual = std::min(rnow, qe);
    }
    incoming_.push_back(ParkedDelivery{pkt, actual, kind});
    urgent_.store(true, std::memory_order_release);
    parked = true;
    return actual;
}

void
NodeMailbox::open()
{
    base::MutexLock lock(mutex_);
    atBarrier_ = false;
}

bool
NodeMailbox::close()
{
    base::MutexLock lock(mutex_);
    atBarrier_ = true;
    return !incoming_.empty();
}

std::vector<ParkedDelivery> &
NodeMailbox::drain()
{
    scratch_.clear();
    {
        base::MutexLock lock(mutex_);
        scratch_.swap(incoming_);
        urgent_.store(false, std::memory_order_release);
    }
    return scratch_;
}

WorkerPool::WorkerPool(std::size_t workers, QuantumFn fn)
    : gate_(workers), fn_(std::move(fn))
{
    if (workers == 0)
        fatal("worker pool needs at least one worker "
              "(use resolveWorkerCount to map 0 to the host's "
              "concurrency)");
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads_.emplace_back(&WorkerPool::threadBody, this, w);
}

WorkerPool::~WorkerPool()
{
    // All workers are parked at the gate (every runQuantum waited for
    // every arrival), so a stop release reaches each exactly once.
    gate_.release(0, /*stop=*/true);
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::threadBody(std::size_t worker)
{
    std::uint64_t epoch = 0;
    for (;;) {
        const QuantumGate::Quantum q = gate_.waitRelease(epoch);
        if (q.stop)
            return;
        fn_(worker, q.end);
        gate_.arrive();
    }
}

std::size_t
WorkerPool::resolveWorkerCount(std::size_t requested,
                               std::size_t num_tasks)
{
    std::size_t workers = requested;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    workers = std::min(workers, num_tasks);
    return std::max<std::size_t>(workers, 1);
}

std::pair<std::size_t, std::size_t>
WorkerPool::shardRange(std::size_t worker, std::size_t workers,
                       std::size_t num_tasks)
{
    const std::size_t per = (num_tasks + workers - 1) / workers;
    const std::size_t begin = std::min(worker * per, num_tasks);
    const std::size_t end = std::min(begin + per, num_tasks);
    return {begin, end};
}

} // namespace aqsim::engine
