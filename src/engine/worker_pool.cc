#include "engine/worker_pool.hh"

#include <algorithm>

#include "base/logging.hh"

namespace aqsim::engine
{

Tick
NodeMailbox::park(const net::PacketPtr &pkt, Tick ideal, Tick qe,
                  net::DeliveryKind &kind, bool &parked)
{
    parked = false;
    // Lock-free fast path — Fig. 3d: receiver already closed its
    // quantum slice. Not stored: the caller stages it for the
    // canonical exchange merge (DeliveryBatch).
    if (atBarrier_.load(std::memory_order_seq_cst)) {
        kind = net::DeliveryKind::NextQuantum;
        return qe;
    }
    // Dekker handshake with close(): claim *before* re-reading the
    // barrier flag (both seq_cst; see the class comment). Either the
    // re-read sees the barrier and we defer, or close() sees this
    // claim and waits for it to resolve.
    claims_.fetch_add(1, std::memory_order_seq_cst);
    if (atBarrier_.load(std::memory_order_seq_cst)) {
        claims_.fetch_sub(1, std::memory_order_release);
        kind = net::DeliveryKind::NextQuantum;
        return qe;
    }
    Tick actual;
    {
        base::MutexLock lock(mutex_);
        const Tick rnow =
            currentTick_.load(std::memory_order_acquire);
        if (ideal >= rnow) {
            kind = net::DeliveryKind::OnTime;
            actual = ideal;
        } else {
            kind = net::DeliveryKind::Straggler;
            actual = std::min(rnow, qe);
        }
        incoming_.push_back(ParkedDelivery{pkt, actual, kind});
        urgent_.store(true, std::memory_order_release);
    }
    // The release decrement pairs with close()'s acquire wait: the
    // push above is visible wherever the claim is seen resolved.
    claims_.fetch_sub(1, std::memory_order_release);
    parked = true;
    return actual;
}

bool
NodeMailbox::close()
{
    // Dekker partner of park()'s claim (see the class comment).
    atBarrier_.store(true, std::memory_order_seq_cst);
    if (claims_.load(std::memory_order_seq_cst) != 0) {
        // A producer saw the node open and is parking right now; its
        // push-or-defer resolves in a bounded handful of
        // instructions, so waiting for it keeps the old "saw open =>
        // pushed before close returns" guarantee.
        detail::spinUntil([&] {
            return claims_.load(std::memory_order_acquire) == 0;
        });
    }
    // Quiescent now: claims are drained and any later producer sees
    // the barrier flag, so the empty hint is exact and the common
    // empty case returns without ever touching the mutex.
    return urgent_.load(std::memory_order_acquire);
}

std::vector<ParkedDelivery> &
NodeMailbox::drain()
{
    scratch_.clear();
    {
        base::MutexLock lock(mutex_);
        scratch_.swap(incoming_);
        urgent_.store(false, std::memory_order_release);
    }
    return scratch_;
}

WorkerPool::WorkerPool(std::size_t workers, QuantumFn fn)
    : gate_(workers), fn_(std::move(fn))
{
    if (workers == 0)
        fatal("worker pool needs at least one worker "
              "(use resolveWorkerCount to map 0 to the host's "
              "concurrency)");
    threads_.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads_.emplace_back(&WorkerPool::threadBody, this, w);
}

WorkerPool::~WorkerPool()
{
    // All workers are parked at the gate (every runQuantum waited for
    // every arrival), so a stop release reaches each exactly once.
    gate_.release(0, /*stop=*/true);
    for (auto &t : threads_)
        t.join();
}

void
WorkerPool::threadBody(std::size_t worker)
{
    std::uint64_t epoch = 0;
    for (;;) {
        const QuantumGate::Quantum q = gate_.waitRelease(epoch);
        if (q.stop)
            return;
        fn_(worker, q.end);
        gate_.arrive();
    }
}

std::size_t
WorkerPool::resolveWorkerCount(std::size_t requested,
                               std::size_t num_tasks)
{
    std::size_t workers = requested;
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    workers = std::min(workers, num_tasks);
    return std::max<std::size_t>(workers, 1);
}

std::pair<std::size_t, std::size_t>
WorkerPool::shardRange(std::size_t worker, std::size_t workers,
                       std::size_t num_tasks)
{
    const std::size_t per = (num_tasks + workers - 1) / workers;
    const std::size_t begin = std::min(worker * per, num_tasks);
    const std::size_t end = std::min(begin + per, num_tasks);
    return {begin, end};
}

} // namespace aqsim::engine
