#include "engine/watchdog.hh"

#include <chrono>

#include "base/logging.hh"

namespace aqsim::engine
{

Watchdog::Watchdog(double deadline_seconds, DumpFn dump)
    : deadlineSeconds_(deadline_seconds), dump_(std::move(dump)),
      armed_(true)
{
    AQSIM_ASSERT(deadline_seconds > 0.0);
    thread_ = std::thread([this] { monitor(); });
}

Watchdog::Watchdog(double deadline_seconds)
    : deadlineSeconds_(deadline_seconds)
{
    AQSIM_ASSERT(deadline_seconds > 0.0);
    thread_ = std::thread([this] { monitor(); });
}

Watchdog::~Watchdog()
{
    {
        base::MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
Watchdog::arm(DumpFn dump)
{
    {
        base::MutexLock lock(mutex_);
        dump_ = std::move(dump);
        kickCount_ = 0;
        armed_ = true;
    }
    cv_.notify_all();
}

void
Watchdog::disarm()
{
    {
        base::MutexLock lock(mutex_);
        armed_ = false;
    }
    cv_.notify_all();
}

bool
Watchdog::armed() const
{
    base::MutexLock lock(mutex_);
    return armed_;
}

void
Watchdog::kick()
{
    {
        base::MutexLock lock(mutex_);
        ++kickCount_;
    }
    cv_.notify_all();
}

std::uint64_t
Watchdog::kicks() const
{
    base::MutexLock lock(mutex_);
    return kickCount_;
}

void
Watchdog::monitor()
{
    const auto deadline = std::chrono::duration<double>(deadlineSeconds_);
    base::MutexLock lock(mutex_);
    while (!stop_) {
        if (!armed_) {
            cv_.wait(mutex_, [&]() AQSIM_REQUIRES(mutex_) {
                return stop_ || armed_;
            });
            continue;
        }
        // Wake on every kick (or stop/disarm); declare a hang only
        // when a full deadline passes with the kick counter frozen.
        const std::uint64_t last_seen = kickCount_;
        if (cv_.waitFor(mutex_, deadline, [&]() AQSIM_REQUIRES(mutex_) {
                return stop_ || !armed_ || kickCount_ != last_seen;
            }))
            continue;
        // Timed out with no progress: fail the run loudly. The dump
        // callback reads engine state that is by definition not
        // advancing, so tearing is unlikely; a garbled dump from a
        // truly racing engine is still better than a silent hang.
        const std::string dump = dump_ ? dump_() : std::string();
        panic("watchdog: no quantum completed in %.1f s "
              "(%llu quanta finished); run is hung\n%s",
              deadlineSeconds_,
              static_cast<unsigned long long>(kickCount_),
              dump.c_str());
    }
}

} // namespace aqsim::engine
