#include "engine/watchdog.hh"

#include <chrono>
#include <cstdio>

#include "base/logging.hh"

namespace aqsim::engine
{

std::string
PanicInfo::format() const
{
    char head[96];
    std::snprintf(head, sizeof(head), "  quantum [%llu,%llu)\n",
                  static_cast<unsigned long long>(quantumStart),
                  static_cast<unsigned long long>(quantumEnd));
    std::string out(head);
    out += progress;
    out += peers;
    out += note;
    return out;
}

Watchdog::Watchdog(double deadline_seconds, DumpFn dump)
    : deadlineSeconds_(deadline_seconds), dump_(std::move(dump)),
      armed_(true)
{
    AQSIM_ASSERT(deadline_seconds > 0.0);
    thread_ = std::thread([this] { monitor(); });
}

Watchdog::Watchdog(double deadline_seconds)
    : deadlineSeconds_(deadline_seconds)
{
    AQSIM_ASSERT(deadline_seconds > 0.0);
    thread_ = std::thread([this] { monitor(); });
}

Watchdog::~Watchdog()
{
    {
        base::MutexLock lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
Watchdog::arm(DumpFn dump, PanicFn on_panic)
{
    {
        base::MutexLock lock(mutex_);
        dump_ = std::move(dump);
        onPanic_ = std::move(on_panic);
        kickCount_ = 0;
        handlerFired_ = false;
        armed_ = true;
    }
    cv_.notify_all();
}

void
Watchdog::disarm()
{
    {
        base::MutexLock lock(mutex_);
        armed_ = false;
    }
    cv_.notify_all();
}

bool
Watchdog::armed() const
{
    base::MutexLock lock(mutex_);
    return armed_;
}

void
Watchdog::kick()
{
    {
        base::MutexLock lock(mutex_);
        ++kickCount_;
    }
    cv_.notify_all();
}

std::uint64_t
Watchdog::kicks() const
{
    base::MutexLock lock(mutex_);
    return kickCount_;
}

void
Watchdog::monitor()
{
    const auto deadline = std::chrono::duration<double>(deadlineSeconds_);
    base::MutexLock lock(mutex_);
    while (!stop_) {
        if (!armed_) {
            cv_.wait(mutex_, [&]() AQSIM_REQUIRES(mutex_) {
                return stop_ || armed_;
            });
            continue;
        }
        // Wake on every kick (or stop/disarm); declare a hang only
        // when a full deadline passes with the kick counter frozen.
        const std::uint64_t last_seen = kickCount_;
        if (cv_.waitFor(mutex_, deadline, [&]() AQSIM_REQUIRES(mutex_) {
                return stop_ || !armed_ || kickCount_ != last_seen;
            }))
            continue;
        // Timed out with no progress. The dump callback reads engine
        // state that is by definition not advancing, so tearing is
        // unlikely; a garbled dump from a truly racing engine is
        // still better than a silent hang.
        PanicInfo info = dump_ ? dump_() : PanicInfo{};
        info.deadlineSeconds = deadlineSeconds_;
        info.quantaCompleted = kickCount_;
        if (onPanic_ && !handlerFired_) {
            // Supervised run: hand the structured info to the handler
            // (which is expected to unwedge the engine) and keep
            // watching. If another full deadline passes with no
            // progress the handler failed, and we fall through to the
            // hard panic below — a watchdog with a broken supervisor
            // must never hang silently.
            handlerFired_ = true;
            onPanic_(info);
            continue;
        }
        // Hard failure path. This runs on the watchdog thread, which
        // never arms a base::FailureTrap, so panic() aborts the
        // process here even mid-supervised-run.
        panic("watchdog: no quantum completed in %.1f s "
              "(%llu quanta finished); run is hung\n%s",
              deadlineSeconds_,
              static_cast<unsigned long long>(kickCount_),
              info.format().c_str());
    }
}

} // namespace aqsim::engine
