/**
 * @file
 * Cluster assembly: nodes + endpoints + controller + workload programs.
 *
 * A Cluster wires together everything a run needs, mirroring the
 * paper's Figure 1: N full-system node simulators, each bridged through
 * its NIC to the central network controller, each running one rank of
 * the distributed application.
 */

#ifndef AQSIM_ENGINE_CLUSTER_HH
#define AQSIM_ENGINE_CLUSTER_HH

#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "fault/fault_injector.hh"
#include "mpi/communicator.hh"
#include "net/network_controller.hh"
#include "node/cpu_model.hh"
#include "node/node_simulator.hh"
#include "stats/stats.hh"
#include "workloads/workload.hh"

namespace aqsim::ckpt
{
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::engine
{

/** Static configuration of a simulated cluster. */
struct ClusterParams
{
    std::size_t numNodes = 2;
    net::NetworkParams network;
    node::CpuParams cpu;
    /**
     * Optional per-node CPU speed multipliers (heterogeneous
     * clusters, the paper's "more complex clusters" future work).
     * Empty = homogeneous; otherwise must hold numNodes entries.
     */
    std::vector<double> cpuSpeedFactors;
    mpi::EndpointParams mpiParams;
    /** Use the sampling CPU model (the paper's future-work extension). */
    bool samplingCpu = false;
    node::SamplingCpuModel::Params sampling;
    /**
     * Fault-injection configuration (all-zero = perfect network, no
     * injector is constructed). Fault randomness derives from the
     * master seed, so runs are reproducible across engines.
     */
    fault::FaultParams faults;
    /** Master seed; all run randomness derives from it. */
    std::uint64_t seed = 1;
};

/** A fully wired simulated cluster ready to be driven by an engine. */
class Cluster
{
  public:
    /**
     * Build the cluster and install one rank of @p workload per node.
     * The workload must outlive the cluster.
     */
    Cluster(const ClusterParams &params, workloads::Workload &workload);

    std::size_t numNodes() const { return nodes_.size(); }
    node::NodeSimulator &node(NodeId id) { return *nodes_.at(id); }
    mpi::Endpoint &endpoint(NodeId id) { return *endpoints_.at(id); }
    net::NetworkController &controller() { return *controller_; }
    /** @return the fault injector, or nullptr on a perfect network. */
    fault::FaultInjector *faultInjector() { return faults_.get(); }
    stats::Group &statsRoot() { return statsRoot_; }
    workloads::Workload &workload() { return workload_; }
    const ClusterParams &params() const { return params_; }

    /** @return true once every rank's program has completed. */
    bool allDone() const;

    /** @return max over ranks of the application completion tick. */
    Tick maxFinishTick() const;

    /** @return per-rank completion ticks. */
    std::vector<Tick> finishTicks() const;

    /** @return true if any node has a pending event. */
    bool anyEventPending() const;

    /** @return reliable-mode retransmissions summed over endpoints. */
    std::uint64_t totalRetransmits() const;

    /**
     * Describe per-node progress for deadlock diagnostics (posted
     * receives, pending events, clocks).
     */
    std::string progressReport() const;

    /**
     * Checkpoint support: each method fills one checkpoint section
     * with the corresponding layer's architectural state (see
     * docs/checkpoint-restore.md for the section layout).
     */
    void serializeNodes(ckpt::Writer &w) const;
    void serializeMpi(ckpt::Writer &w) const;
    void serializeNet(ckpt::Writer &w) const;
    void serializeFault(ckpt::Writer &w) const;
    void serializeWorkload(ckpt::Writer &w) const;

    /**
     * Partition-range serialization (DistributedEngine state gather):
     * the body bytes of nodes [begin, end) for each per-node section,
     * *without* the count prefix — the coordinator splices the peers'
     * ranges back together in node order under one u32(numNodes)
     * prefix, reproducing the whole-cluster encodings byte for byte.
     */
    void serializeNodeRange(ckpt::Writer &w, NodeId begin,
                            NodeId end) const;
    void serializeMpiRange(ckpt::Writer &w, NodeId begin,
                           NodeId end) const;
    void serializeWorkloadRange(ckpt::Writer &w, NodeId begin,
                                NodeId end) const;

    /** FNV-1a fingerprint over every serialized section. */
    std::uint64_t stateHash() const;

  private:
    ClusterParams params_;
    workloads::Workload &workload_;
    stats::Group statsRoot_;
    std::unique_ptr<net::NetworkController> controller_;
    std::unique_ptr<fault::FaultInjector> faults_;
    std::vector<std::unique_ptr<node::NodeSimulator>> nodes_;
    std::vector<std::unique_ptr<mpi::Endpoint>> endpoints_;
    std::vector<std::unique_ptr<workloads::AppContext>> contexts_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_CLUSTER_HH
