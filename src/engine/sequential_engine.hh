/**
 * @file
 * Deterministic co-simulation of the parallel simulation host.
 *
 * The paper runs N node simulators as parallel processes and measures
 * wall-clock time. SequentialEngine reproduces that execution
 * deterministically: it interleaves the nodes' events in *host-time*
 * order using each node's host-speed model, so
 *
 *  - wall-clock per quantum = slowest node + barrier cost (Fig. 5),
 *  - whether a packet is a straggler depends on how far the receiver's
 *    simulator happens to have progressed in host time when the packet
 *    reaches the controller — exactly the paper's Fig. 3 scenarios,
 *
 * while remaining a pure function of the configuration (bit-identical
 * reruns).
 */

#ifndef AQSIM_ENGINE_SEQUENTIAL_ENGINE_HH
#define AQSIM_ENGINE_SEQUENTIAL_ENGINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "base/failure.hh"
#include "core/quantum_policy.hh"
#include "engine/cluster.hh"
#include "engine/run_result.hh"
#include "engine/watchdog.hh"
#include "net/network_controller.hh"
#include "node/host_cost_model.hh"

namespace aqsim::engine
{

/**
 * What to do with a straggler (a packet whose receiver has already
 * simulated past its ideal arrival) — the design space the paper's
 * Section 3 discusses.
 */
enum class StragglerPolicy
{
    /**
     * "The only possibility we have is to schedule the packet
     * immediately": deliver at the receiver's current position
     * (the paper's choice; bounded lateness, minimal added latency).
     */
    DeliverNow,
    /**
     * Defer every straggler to the next quantum boundary: simpler
     * controller (no mid-quantum injection into the receiver's past)
     * but every straggler's latency snaps to the quantum (Fig. 3d
     * behaviour for all stragglers).
     */
    DeferToNextQuantum,
};

/** Engine-level run options shared by both engines. */
struct EngineOptions
{
    node::HostCostParams host;
    /** Keep one QuantumRecord per quantum in the result. */
    bool recordTimeline = false;
    /** Abort if simulated time exceeds this (0 = no limit). */
    Tick maxSimTicks = 0;
    /** Abort if quantum count exceeds this (0 = default guard). */
    std::uint64_t maxQuanta = 0;
    /** Straggler handling (paper: DeliverNow). */
    StragglerPolicy stragglerPolicy = StragglerPolicy::DeliverNow;
    /**
     * ThreadedEngine worker threads (ignored by SequentialEngine).
     * 0 = hardware concurrency; always clamped to the node count.
     * Each worker runs a contiguous shard of ceil(N/K) nodes per
     * quantum; conservative runs are bit-identical for any value.
     */
    std::size_t numWorkers = 0;
    /**
     * Watchdog deadline in host seconds: fail the run with a
     * diagnostic dump if a quantum makes no wall-clock progress for
     * this long (lost acknowledgment, barrier deadlock, runaway
     * coroutine). 0 = watchdog disabled.
     */
    double watchdogSeconds = 0.0;

    /**
     * Measure per-phase exchange wall-clock (sort/exchange/merge/
     * dispatch) and append it to summary(). Off by default: the
     * timings are real clock readings — nondeterministic — so they
     * must not appear in summaries that runs byte-compare (ckpt
     * smoke), and a disabled run makes no clock calls on the hot
     * path.
     */
    bool phaseStats = false;

    /**
     * Write a checkpoint after every N completed quanta (0 = never).
     * Requires checkpointDir. See docs/checkpoint-restore.md.
     */
    std::uint64_t checkpointEvery = 0;
    /** Directory for checkpoint files (created if missing). */
    std::string checkpointDir;
    /**
     * Checkpoint file — or directory, newest good file wins — to
     * restore from: the run replays deterministically and is verified
     * against the checkpointed state at its quantum.
     */
    std::string restorePath;
    /**
     * Restore self-check granularity: per-section byte comparison
     * (names the diverging section) instead of hash-only.
     */
    bool verifyRestore = false;
    /** Checkpoint files kept after rotation (0 = unlimited). */
    std::size_t checkpointKeepLast = 2;

    /**
     * Supervision seam (installed by supervise::RunSupervisor; never
     * set by ordinary callers). When non-null, the engines poll this
     * token in their event loops and abort the run with a catchable
     * base::RunAbort when it trips, so a watchdog-detected hang can be
     * unwedged in-process instead of killing the process.
     */
    base::CancelToken *cancelToken = nullptr;
    /**
     * Supervision seam: called (from the watchdog thread) with the
     * structured hang dump on first watchdog expiry instead of
     * panicking; the engine also trips cancelToken afterwards.
     */
    std::function<void(const PanicInfo &)> onWatchdogPanic;
    /**
     * Deterministic recovery drill: fail the run right after this
     * many quanta have completed (0 = never). Used by the supervisor
     * and its tests to rehearse checkpoint-restore recovery at an
     * exact, reproducible point.
     */
    std::uint64_t injectFailAfterQuantum = 0;
    /**
     * Drill flavour: instead of throwing directly, exercise the full
     * watchdog panic path (onWatchdogPanic + cancelToken), so the
     * recovery machinery is rehearsed end to end.
     */
    bool injectWatchdogPanic = false;

    /**
     * DistributedEngine only: how long the coordinator waits on any
     * one peer frame before declaring the peer failed (and how long a
     * peer waits on the coordinator, doubled so healthy peers outlive
     * coordinator-side detection). Every distributed barrier wait is
     * bounded by this deadline — a dead, hung, or half-open peer
     * becomes a structured PeerFailure, never a stuck barrier.
     */
    double peerDeadlineSeconds = 30.0;
    /**
     * DistributedEngine only: peer heartbeat period in host seconds.
     * Heartbeats keep a *slow* peer (long quantum, big state gather)
     * distinguishable from a *hung* one without inflating the
     * failure-detection latency.
     */
    double heartbeatSeconds = 0.2;
    /**
     * DistributedEngine only: peer fault drill spec, e.g.
     * "kill:peer=1,quantum=3,phase=exchange" (see
     * fault::parsePeerDrills). Drills fire inside the named worker
     * process at an exact, reproducible protocol point; the
     * supervisor clears the spec on respawn so the recovery attempt
     * runs clean.
     */
    std::string peerDrillSpec;
};

/** Deterministic host-time co-simulating engine. */
class SequentialEngine
{
  public:
    explicit SequentialEngine(EngineOptions options = {});
    ~SequentialEngine(); // out-of-line: Watchdog is incomplete here

    /**
     * Run @p workload on a cluster built from @p params under
     * @p policy. The policy instance is reset and driven by this run.
     */
    RunResult run(const ClusterParams &params,
                  workloads::Workload &workload,
                  core::QuantumPolicy &policy);

    /**
     * Run on an externally constructed cluster (lets callers attach
     * observers/tracers to the controller before the run starts).
     */
    RunResult run(Cluster &cluster, core::QuantumPolicy &policy);

    const EngineOptions &options() const { return options_; }

    /** Engine-owned watchdog (armed per run; tests). */
    Watchdog *watchdog() { return watchdog_.get(); }

  private:
    EngineOptions options_;
    /**
     * One watchdog thread for the engine's lifetime, re-armed per
     * run() with that run's dump callback (a fresh per-run watchdog
     * would also work, but a reused engine must not carry a stale
     * kick count or a dump capturing dead objects between runs).
     */
    std::unique_ptr<Watchdog> watchdog_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_SEQUENTIAL_ENGINE_HH
