/**
 * @file
 * Real-parallel execution engine: a persistent worker pool running
 * contiguous node shards, synchronized by an atomic quantum barrier.
 *
 * This engine runs the same Cluster, Synchronizer and NetworkController
 * as the SequentialEngine, but with genuine std::thread parallelism and
 * a real barrier per quantum — the execution style of the paper's
 * actual system. EngineOptions::numWorkers workers (default: hardware
 * concurrency, clamped to the node count) each execute ceil(N/K) nodes
 * per quantum, so a 64-node cluster no longer oversubscribes the host
 * with 64 threads. Host time is measured, not modeled, which makes the
 * engine nondeterministic when quanta exceed the network latency
 * (exactly like the paper's system). With conservative quanta (Q <= T)
 * every delivery crosses a quantum boundary and is merged in a
 * canonical order, so results are bit-identical to the SequentialEngine
 * at every worker count — the property the cross-engine tests verify.
 */

#ifndef AQSIM_ENGINE_THREADED_ENGINE_HH
#define AQSIM_ENGINE_THREADED_ENGINE_HH

#include "core/quantum_policy.hh"
#include "engine/cluster.hh"
#include "engine/run_result.hh"
#include "engine/sequential_engine.hh"

namespace aqsim::engine
{

/** Sharded worker-pool parallel engine with measured wall-clock. */
class ThreadedEngine
{
  public:
    explicit ThreadedEngine(EngineOptions options = {});
    ~ThreadedEngine(); // out-of-line: Watchdog is incomplete here

    /** Run @p workload under @p policy on a freshly built cluster. */
    RunResult run(const ClusterParams &params,
                  workloads::Workload &workload,
                  core::QuantumPolicy &policy);

    /** Run on an externally constructed cluster. */
    RunResult run(Cluster &cluster, core::QuantumPolicy &policy);

    const EngineOptions &options() const { return options_; }

    /** Engine-owned watchdog (armed per run; tests). */
    Watchdog *watchdog() { return watchdog_.get(); }

  private:
    EngineOptions options_;
    /** Reused across runs, re-armed per run (see SequentialEngine). */
    std::unique_ptr<Watchdog> watchdog_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_THREADED_ENGINE_HH
