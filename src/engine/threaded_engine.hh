/**
 * @file
 * Real-parallel execution engine: one host thread per simulated node.
 *
 * This engine runs the same Cluster, Synchronizer and NetworkController
 * as the SequentialEngine, but with genuine std::thread parallelism and
 * a real barrier per quantum — the execution style of the paper's
 * actual system. Its host time is measured, not modeled, which makes
 * it nondeterministic when quanta exceed the network latency (exactly
 * like the paper's system). With conservative quanta (Q <= T) every
 * delivery crosses a quantum boundary and is merged in a canonical
 * order, so results are bit-identical to the SequentialEngine — the
 * property the cross-engine integration tests verify.
 */

#ifndef AQSIM_ENGINE_THREADED_ENGINE_HH
#define AQSIM_ENGINE_THREADED_ENGINE_HH

#include "core/quantum_policy.hh"
#include "engine/cluster.hh"
#include "engine/run_result.hh"
#include "engine/sequential_engine.hh"

namespace aqsim::engine
{

/** One-thread-per-node parallel engine with measured wall-clock. */
class ThreadedEngine
{
  public:
    explicit ThreadedEngine(EngineOptions options = {});

    /** Run @p workload under @p policy on a freshly built cluster. */
    RunResult run(const ClusterParams &params,
                  workloads::Workload &workload,
                  core::QuantumPolicy &policy);

    /** Run on an externally constructed cluster. */
    RunResult run(Cluster &cluster, core::QuantumPolicy &policy);

  private:
    EngineOptions options_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_THREADED_ENGINE_HH
