#include "engine/cluster.hh"

#include <cstdio>

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::engine
{

Cluster::Cluster(const ClusterParams &params,
                 workloads::Workload &workload)
    : params_(params), workload_(workload), statsRoot_("cluster")
{
    AQSIM_ASSERT(params.numNodes >= 1);

    controller_ = std::make_unique<net::NetworkController>(
        params.numNodes, params.network, statsRoot_);

    if (params.faults.anyEnabled()) {
        // Fault randomness forks off the master seed (distinct label
        // space from sampling CPUs and app contexts), so the injected
        // fault sequence is a pure function of (seed, traffic).
        Rng fault_master(params.seed);
        faults_ = std::make_unique<fault::FaultInjector>(
            params.numNodes, params.faults,
            fault_master.fork(0xfa000001ULL), statsRoot_);
        controller_->setFaultInjector(faults_.get());
    }

    if (!params.cpuSpeedFactors.empty() &&
        params.cpuSpeedFactors.size() != params.numNodes)
        fatal("cpuSpeedFactors holds %zu entries for %zu nodes",
              params.cpuSpeedFactors.size(), params.numNodes);

    Rng master(params.seed);
    for (NodeId id = 0; id < params.numNodes; ++id) {
        node::CpuParams cpu_params = params.cpu;
        if (!params.cpuSpeedFactors.empty()) {
            AQSIM_ASSERT(params.cpuSpeedFactors[id] > 0.0);
            cpu_params.opsPerNs *= params.cpuSpeedFactors[id];
        }
        std::unique_ptr<node::CpuModel> cpu;
        if (params.samplingCpu) {
            auto sampling = params.sampling;
            sampling.cpu = cpu_params;
            cpu = std::make_unique<node::SamplingCpuModel>(
                sampling, master.fork(0x5a00 + id));
        } else {
            cpu = std::make_unique<node::SimpleCpuModel>(cpu_params);
        }
        nodes_.push_back(std::make_unique<node::NodeSimulator>(
            id, std::move(cpu), *controller_, statsRoot_));
        endpoints_.push_back(std::make_unique<mpi::Endpoint>(
            id, params.numNodes, *nodes_.back(), params.mpiParams));
        contexts_.push_back(std::make_unique<workloads::AppContext>(
            *nodes_.back(), *endpoints_.back(),
            master.fork(0xa110 + id)));
    }

    // Programs are installed after all endpoints exist, so rank 0 can
    // talk to rank N-1 from its very first event.
    for (NodeId id = 0; id < params.numNodes; ++id)
        nodes_[id]->setProgram(workload_.program(*contexts_[id]));
}

bool
Cluster::allDone() const
{
    for (const auto &n : nodes_)
        if (!n->appDone())
            return false;
    return true;
}

Tick
Cluster::maxFinishTick() const
{
    Tick max_tick = 0;
    for (const auto &n : nodes_)
        max_tick = std::max(max_tick, n->appFinishTick());
    return max_tick;
}

std::vector<Tick>
Cluster::finishTicks() const
{
    std::vector<Tick> out;
    out.reserve(nodes_.size());
    for (const auto &n : nodes_)
        out.push_back(n->appFinishTick());
    return out;
}

bool
Cluster::anyEventPending() const
{
    for (const auto &n : nodes_)
        if (!n->queue().empty())
            return true;
    return false;
}

std::uint64_t
Cluster::totalRetransmits() const
{
    std::uint64_t total = 0;
    for (const auto &ep : endpoints_)
        total += ep->retransmits();
    return total;
}

std::string
Cluster::progressReport() const
{
    std::string out;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        char line[192];
        std::snprintf(
            line, sizeof(line),
            "  node%u: now=%llu done=%d pendingEvents=%zu "
            "postedRecvs=%zu unexpected=%zu unacked=%zu "
            "retransmits=%llu\n",
            id,
            static_cast<unsigned long long>(nodes_[id]->queue().now()),
            nodes_[id]->appDone() ? 1 : 0,
            nodes_[id]->queue().pendingCount(),
            endpoints_[id]->postedRecvCount(),
            endpoints_[id]->unexpectedCount(),
            endpoints_[id]->retryBacklog(),
            static_cast<unsigned long long>(
                endpoints_[id]->retransmits()));
        out += line;
    }
    if (faults_) {
        char line[160];
        std::snprintf(
            line, sizeof(line),
            "  faults: dropped=%llu duplicated=%llu corrupted=%llu "
            "delayed=%llu\n",
            static_cast<unsigned long long>(faults_->totalDropped()),
            static_cast<unsigned long long>(faults_->totalDuplicated()),
            static_cast<unsigned long long>(faults_->totalCorrupted()),
            static_cast<unsigned long long>(faults_->totalDelayed()));
        out += line;
    }
    return out;
}

void
Cluster::serializeNodes(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(nodes_.size()));
    for (const auto &n : nodes_)
        n->serialize(w);
}

void
Cluster::serializeMpi(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(endpoints_.size()));
    for (const auto &ep : endpoints_)
        ep->serialize(w);
}

void
Cluster::serializeNet(ckpt::Writer &w) const
{
    controller_->serialize(w);
}

void
Cluster::serializeFault(ckpt::Writer &w) const
{
    w.boolean(faults_ != nullptr);
    if (faults_)
        faults_->serialize(w);
}

void
Cluster::serializeWorkload(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(contexts_.size()));
    for (const auto &ctx : contexts_)
        ckpt::putRng(w, ctx->rng());
}

void
Cluster::serializeNodeRange(ckpt::Writer &w, NodeId begin,
                            NodeId end) const
{
    AQSIM_ASSERT(begin <= end && end <= nodes_.size());
    for (NodeId id = begin; id < end; ++id)
        nodes_[id]->serialize(w);
}

void
Cluster::serializeMpiRange(ckpt::Writer &w, NodeId begin,
                           NodeId end) const
{
    AQSIM_ASSERT(begin <= end && end <= endpoints_.size());
    for (NodeId id = begin; id < end; ++id)
        endpoints_[id]->serialize(w);
}

void
Cluster::serializeWorkloadRange(ckpt::Writer &w, NodeId begin,
                                NodeId end) const
{
    AQSIM_ASSERT(begin <= end && end <= contexts_.size());
    for (NodeId id = begin; id < end; ++id)
        ckpt::putRng(w, contexts_[id]->rng());
}

std::uint64_t
Cluster::stateHash() const
{
    ckpt::Writer w;
    serializeNodes(w);
    serializeMpi(w);
    serializeNet(w);
    serializeFault(w);
    serializeWorkload(w);
    return w.hash();
}

} // namespace aqsim::engine
