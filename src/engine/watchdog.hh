/**
 * @file
 * Wall-clock watchdog for hung simulation runs.
 *
 * A quantum that stops making host-time progress — a lost
 * acknowledgment with no retransmit timer, a barrier deadlock between
 * worker threads, a runaway application coroutine — would otherwise
 * hang the process silently. The watchdog runs on a dedicated host
 * thread; the engine kicks it once per completed quantum, and if no
 * kick arrives within the configured deadline the watchdog fails the
 * run with a diagnostic dump of per-node progress.
 *
 * The dump is a structured PanicInfo, not a pre-formatted string: the
 * quantum window and per-node progress survive as fields whether or
 * not a checkpoint directory (and hence a panic image) is configured,
 * so a supervisor can log *where* the run hung even on checkpoint-less
 * runs.
 *
 * Unsupervised runs panic (process dies with the formatted dump).
 * Supervised runs install a PanicFn: the first expiry hands the
 * PanicInfo to the handler — which is expected to unwedge the engine,
 * e.g. via base::CancelToken — and only a *second* consecutive expiry
 * with no progress hard-panics, so a handler that fails to unwedge the
 * run can never convert a detected hang into a silent one.
 *
 * The watchdog observes only *host* time, never simulated time, so an
 * armed watchdog has zero effect on simulation results.
 */

#ifndef AQSIM_ENGINE_WATCHDOG_HH
#define AQSIM_ENGINE_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "base/mutex.hh"
#include "base/types.hh"

namespace aqsim::engine
{

/**
 * Structured description of a hung run, captured at watchdog expiry
 * and meaningful independent of checkpoint configuration.
 */
struct PanicInfo
{
    /** Deadline that expired, in host seconds. */
    double deadlineSeconds = 0.0;
    /** Quanta completed before progress stopped. */
    std::uint64_t quantaCompleted = 0;
    /** Simulated-tick window of the quantum that hung. */
    Tick quantumStart = 0;
    Tick quantumEnd = 0;
    /** Per-node progress dump (engine::Cluster::progressReport()). */
    std::string progress;
    /**
     * Per-peer liveness when running distributed (one line per worker
     * process: pid, barrier phase, last-heartbeat age), so a hung-peer
     * panic names the peer instead of just the quantum. Empty for
     * single-process engines.
     */
    std::string peers;
    /** Optional annotations (e.g. panic-image path from the ckpt layer). */
    std::string note;

    /** Render the multi-line human-readable dump body. */
    std::string format() const;
};

/**
 * Monitors an engine's quantum loop from a separate host thread and
 * panics with diagnostics when no progress is observed for the
 * deadline. Construction arms it; destruction disarms it.
 */
class Watchdog
{
  public:
    /** Captures the stuck state when the run is hung. */
    using DumpFn = std::function<PanicInfo()>;

    /**
     * Supervised-mode expiry handler; receives the PanicInfo instead
     * of the process dying. Runs on the watchdog thread.
     */
    using PanicFn = std::function<void(const PanicInfo &)>;

    /**
     * Construct armed (watching immediately).
     *
     * @param deadline_seconds max host seconds between kicks
     * @param dump called (from the watchdog thread) to describe the
     *        stuck state; must be safe to invoke while the engine
     *        threads are wedged mid-quantum
     */
    Watchdog(double deadline_seconds, DumpFn dump);

    /**
     * Construct disarmed: the monitor thread idles until arm().
     * This is the engine-owned shape — one watchdog reused across
     * run() calls, re-armed per run with that run's dump callback, so
     * a hang in run N can never fire a dump that captures objects of
     * run N-1 (nor inherit its stale kick count).
     */
    explicit Watchdog(double deadline_seconds);

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Disarm and join the monitor thread. */
    ~Watchdog();

    /**
     * (Re-)arm for a new run: zero the kick count, install this run's
     * dump callback (and optional supervised panic handler), restart
     * the deadline window.
     */
    void arm(DumpFn dump, PanicFn on_panic = nullptr)
        AQSIM_EXCLUDES(mutex_);

    /** Stop watching; kicks still count, but no deadline runs. */
    void disarm() AQSIM_EXCLUDES(mutex_);

    /** @return true while the deadline is being enforced. */
    bool armed() const AQSIM_EXCLUDES(mutex_);

    /** Record progress: one quantum completed. */
    void kick() AQSIM_EXCLUDES(mutex_);

    /** Number of kicks observed since the last arm() (tests). */
    std::uint64_t kicks() const AQSIM_EXCLUDES(mutex_);

  private:
    void monitor() AQSIM_EXCLUDES(mutex_);

    const double deadlineSeconds_;

    mutable base::Mutex mutex_;
    base::CondVar cv_;
    DumpFn dump_ AQSIM_GUARDED_BY(mutex_);
    PanicFn onPanic_ AQSIM_GUARDED_BY(mutex_);
    std::uint64_t kickCount_ AQSIM_GUARDED_BY(mutex_) = 0;
    bool handlerFired_ AQSIM_GUARDED_BY(mutex_) = false;
    bool stop_ AQSIM_GUARDED_BY(mutex_) = false;
    bool armed_ AQSIM_GUARDED_BY(mutex_) = false;

    std::thread thread_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_WATCHDOG_HH
