/**
 * @file
 * Wall-clock watchdog for hung simulation runs.
 *
 * A quantum that stops making host-time progress — a lost
 * acknowledgment with no retransmit timer, a barrier deadlock between
 * worker threads, a runaway application coroutine — would otherwise
 * hang the process silently. The watchdog runs on a dedicated host
 * thread; the engine kicks it once per completed quantum, and if no
 * kick arrives within the configured deadline the watchdog fails the
 * run with a diagnostic dump of per-node progress.
 *
 * The watchdog observes only *host* time, never simulated time, so an
 * armed watchdog has zero effect on simulation results.
 */

#ifndef AQSIM_ENGINE_WATCHDOG_HH
#define AQSIM_ENGINE_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "base/mutex.hh"

namespace aqsim::engine
{

/**
 * Monitors an engine's quantum loop from a separate host thread and
 * panics with diagnostics when no progress is observed for the
 * deadline. Construction arms it; destruction disarms it.
 */
class Watchdog
{
  public:
    /** Produces the diagnostic dump printed when the run is hung. */
    using DumpFn = std::function<std::string()>;

    /**
     * Construct armed (watching immediately).
     *
     * @param deadline_seconds max host seconds between kicks
     * @param dump called (from the watchdog thread) to describe the
     *        stuck state; must be safe to invoke while the engine
     *        threads are wedged mid-quantum
     */
    Watchdog(double deadline_seconds, DumpFn dump);

    /**
     * Construct disarmed: the monitor thread idles until arm().
     * This is the engine-owned shape — one watchdog reused across
     * run() calls, re-armed per run with that run's dump callback, so
     * a hang in run N can never fire a dump that captures objects of
     * run N-1 (nor inherit its stale kick count).
     */
    explicit Watchdog(double deadline_seconds);

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Disarm and join the monitor thread. */
    ~Watchdog();

    /**
     * (Re-)arm for a new run: zero the kick count, install this run's
     * dump callback, restart the deadline window.
     */
    void arm(DumpFn dump) AQSIM_EXCLUDES(mutex_);

    /** Stop watching; kicks still count, but no deadline runs. */
    void disarm() AQSIM_EXCLUDES(mutex_);

    /** @return true while the deadline is being enforced. */
    bool armed() const AQSIM_EXCLUDES(mutex_);

    /** Record progress: one quantum completed. */
    void kick() AQSIM_EXCLUDES(mutex_);

    /** Number of kicks observed since the last arm() (tests). */
    std::uint64_t kicks() const AQSIM_EXCLUDES(mutex_);

  private:
    void monitor() AQSIM_EXCLUDES(mutex_);

    const double deadlineSeconds_;

    mutable base::Mutex mutex_;
    base::CondVar cv_;
    DumpFn dump_ AQSIM_GUARDED_BY(mutex_);
    std::uint64_t kickCount_ AQSIM_GUARDED_BY(mutex_) = 0;
    bool stop_ AQSIM_GUARDED_BY(mutex_) = false;
    bool armed_ AQSIM_GUARDED_BY(mutex_) = false;

    std::thread thread_;
};

} // namespace aqsim::engine

#endif // AQSIM_ENGINE_WATCHDOG_HH
