#include "trace/packet_trace.hh"

#include "base/csv.hh"

namespace aqsim::trace
{

void
PacketTrace::attach(net::NetworkController &controller)
{
    controller.addObserver(
        [this](const net::Packet &pkt, Tick actual) {
            records_.push_back(
                TraceRecord{actual, pkt.src, pkt.dst, pkt.bytes});
        });
}

Tick
PacketTrace::endTime() const
{
    Tick end = 0;
    for (const auto &r : records_)
        end = std::max(end, r.time);
    return end;
}

void
PacketTrace::dumpCsv(std::ostream &out) const
{
    CsvWriter csv(out);
    csv.header({"time", "src", "dst", "bytes"});
    for (const auto &r : records_) {
        csv.row()
            .field(static_cast<std::uint64_t>(r.time))
            .field(static_cast<std::uint64_t>(r.src))
            .field(static_cast<std::uint64_t>(r.dst))
            .field(static_cast<std::uint64_t>(r.bytes));
    }
}

std::vector<std::uint64_t>
PacketTrace::density(Tick window) const
{
    std::vector<std::uint64_t> bins;
    if (window == 0)
        return bins;
    for (const auto &r : records_) {
        const std::size_t bin = static_cast<std::size_t>(r.time / window);
        if (bin >= bins.size())
            bins.resize(bin + 1, 0);
        ++bins[bin];
    }
    return bins;
}

} // namespace aqsim::trace
