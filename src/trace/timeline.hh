/**
 * @file
 * Derived time series from the per-quantum timeline: simulation
 * speedup over time (paper Fig. 9 right charts) and quantum-length
 * evolution.
 */

#ifndef AQSIM_TRACE_TIMELINE_HH
#define AQSIM_TRACE_TIMELINE_HH

#include <vector>

#include "base/types.hh"
#include "core/sync_stats.hh"

namespace aqsim::trace
{

/** One point of a derived time series. */
struct SeriesPoint
{
    /** Window center in simulated time. */
    Tick simTime = 0;
    double value = 0.0;
};

/**
 * Windowed simulation speed relative to a reference rate.
 *
 * For each window of @p window simulated ticks, computes
 * (reference host-ns per tick) / (this run's host-ns per tick), i.e.
 * the instantaneous speedup over the reference (ground-truth) run —
 * the quantity plotted in the paper's Fig. 9 right charts.
 *
 * @param timeline per-quantum records of the run
 * @param ref_ns_per_tick average host-ns per simulated tick of the
 *        reference run (total hostNs / total simTicks)
 * @param window window width in simulated ticks
 */
std::vector<SeriesPoint>
speedupOverTime(const std::vector<core::QuantumRecord> &timeline,
                double ref_ns_per_tick, Tick window);

/** Quantum length (ticks) sampled per window of simulated time. */
std::vector<SeriesPoint>
quantumOverTime(const std::vector<core::QuantumRecord> &timeline,
                Tick window);

/** Packets per window of simulated time, from the quantum records. */
std::vector<SeriesPoint>
trafficOverTime(const std::vector<core::QuantumRecord> &timeline,
                Tick window);

} // namespace aqsim::trace

#endif // AQSIM_TRACE_TIMELINE_HH
