/**
 * @file
 * Terminal renderings of the paper's Figure 9 charts: a traffic map
 * (nodes x time, density-coded) and a log-scale series chart (speedup
 * over time).
 */

#ifndef AQSIM_TRACE_ASCII_PLOT_HH
#define AQSIM_TRACE_ASCII_PLOT_HH

#include <string>
#include <vector>

#include "base/types.hh"
#include "trace/packet_trace.hh"

namespace aqsim::trace
{

/**
 * Render packet traffic as a nodes-by-time character map. Each row is
 * a node; each column a time bin; the glyph encodes how many packets
 * the node sent or received in the bin (' ' none, '.' few ... '#'
 * many). The visual counterpart of Fig. 9's left charts.
 *
 * @param records packet trace
 * @param num_nodes cluster size (rows)
 * @param width number of time columns
 */
std::string renderTrafficMap(const std::vector<TraceRecord> &records,
                             std::size_t num_nodes, std::size_t width);

/**
 * Render a series as a log-y ASCII chart (Fig. 9 right: simulation
 * speedup over time, log scale).
 *
 * @param xs x values (e.g. sim time in ms)
 * @param ys positive y values (log scale)
 * @param width chart columns
 * @param height chart rows
 * @param y_label axis annotation
 */
std::string renderLogSeries(const std::vector<double> &xs,
                            const std::vector<double> &ys,
                            std::size_t width, std::size_t height,
                            const std::string &y_label);

} // namespace aqsim::trace

#endif // AQSIM_TRACE_ASCII_PLOT_HH
