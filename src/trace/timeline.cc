#include "trace/timeline.hh"

#include "base/logging.hh"

namespace aqsim::trace
{

namespace
{

/** Accumulate quantum records into fixed sim-time windows. */
struct WindowAccumulator
{
    Tick window;
    Tick windowStart = 0;
    Tick ticksInWindow = 0;
    double hostNs = 0.0;
    std::uint64_t packets = 0;
    double quantumTickSum = 0.0;
    std::uint64_t quanta = 0;

    bool
    full() const
    {
        return ticksInWindow >= window;
    }

    void
    add(const core::QuantumRecord &rec)
    {
        ticksInWindow += rec.length;
        hostNs += rec.hostNs;
        packets += rec.packets;
        quantumTickSum += static_cast<double>(rec.length);
        ++quanta;
    }

    Tick
    center() const
    {
        return windowStart + ticksInWindow / 2;
    }

    void
    reset()
    {
        windowStart += ticksInWindow;
        ticksInWindow = 0;
        hostNs = 0.0;
        packets = 0;
        quantumTickSum = 0.0;
        quanta = 0;
    }
};

template <typename ValueFn>
std::vector<SeriesPoint>
windowed(const std::vector<core::QuantumRecord> &timeline, Tick window,
         ValueFn value)
{
    AQSIM_ASSERT(window > 0);
    std::vector<SeriesPoint> out;
    WindowAccumulator acc{window};
    for (const auto &rec : timeline) {
        acc.add(rec);
        if (acc.full()) {
            out.push_back(SeriesPoint{acc.center(), value(acc)});
            acc.reset();
        }
    }
    if (acc.quanta > 0)
        out.push_back(SeriesPoint{acc.center(), value(acc)});
    return out;
}

} // namespace

std::vector<SeriesPoint>
speedupOverTime(const std::vector<core::QuantumRecord> &timeline,
                double ref_ns_per_tick, Tick window)
{
    AQSIM_ASSERT(ref_ns_per_tick > 0.0);
    return windowed(timeline, window, [&](const WindowAccumulator &acc) {
        const double ns_per_tick =
            acc.hostNs / static_cast<double>(acc.ticksInWindow);
        return ns_per_tick > 0.0 ? ref_ns_per_tick / ns_per_tick : 0.0;
    });
}

std::vector<SeriesPoint>
quantumOverTime(const std::vector<core::QuantumRecord> &timeline,
                Tick window)
{
    return windowed(timeline, window, [](const WindowAccumulator &acc) {
        return acc.quantumTickSum / static_cast<double>(acc.quanta);
    });
}

std::vector<SeriesPoint>
trafficOverTime(const std::vector<core::QuantumRecord> &timeline,
                Tick window)
{
    return windowed(timeline, window, [](const WindowAccumulator &acc) {
        return static_cast<double>(acc.packets);
    });
}

} // namespace aqsim::trace
