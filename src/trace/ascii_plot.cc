#include "trace/ascii_plot.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/logging.hh"

namespace aqsim::trace
{

std::string
renderTrafficMap(const std::vector<TraceRecord> &records,
                 std::size_t num_nodes, std::size_t width)
{
    AQSIM_ASSERT(num_nodes >= 1 && width >= 1);
    if (records.empty())
        return "(no traffic)\n";

    Tick end = 0;
    for (const auto &r : records)
        end = std::max(end, r.time);
    const Tick window = end / width + 1;

    // counts[node][bin] = packets touching the node in the bin.
    std::vector<std::vector<std::uint64_t>> counts(
        num_nodes, std::vector<std::uint64_t>(width, 0));
    for (const auto &r : records) {
        const auto bin = static_cast<std::size_t>(r.time / window);
        if (r.src < num_nodes)
            ++counts[r.src][std::min(bin, width - 1)];
        if (r.dst < num_nodes)
            ++counts[r.dst][std::min(bin, width - 1)];
    }

    std::uint64_t max_count = 1;
    for (const auto &row : counts)
        for (auto c : row)
            max_count = std::max(max_count, c);

    static const char glyphs[] = " .:-=+*#";
    constexpr std::size_t levels = sizeof(glyphs) - 2;

    std::string out;
    for (std::size_t node = 0; node < num_nodes; ++node) {
        char label[32];
        std::snprintf(label, sizeof(label), "%3zu |", node);
        out += label;
        for (std::size_t bin = 0; bin < width; ++bin) {
            const std::uint64_t c = counts[node][bin];
            std::size_t level = 0;
            if (c > 0) {
                level = 1 + static_cast<std::size_t>(
                                std::log2(static_cast<double>(c) + 1.0) /
                                std::log2(static_cast<double>(max_count) +
                                          1.0) *
                                static_cast<double>(levels - 1));
                level = std::min(level, levels);
            }
            out += glyphs[level];
        }
        out += '\n';
    }
    char footer[96];
    std::snprintf(footer, sizeof(footer),
                  "    +%s\n     time: 0 .. %.3f ms\n",
                  std::string(width, '-').c_str(),
                  static_cast<double>(end) * 1e-6);
    out += footer;
    return out;
}

std::string
renderLogSeries(const std::vector<double> &xs,
                const std::vector<double> &ys, std::size_t width,
                std::size_t height, const std::string &y_label)
{
    AQSIM_ASSERT(xs.size() == ys.size());
    if (xs.empty())
        return "(no data)\n";

    double y_min = 1e300, y_max = -1e300;
    for (double y : ys) {
        if (y <= 0.0)
            continue;
        y_min = std::min(y_min, y);
        y_max = std::max(y_max, y);
    }
    if (y_max < y_min)
        return "(no positive data)\n";
    // Widen degenerate ranges so a flat series still renders.
    if (y_max / y_min < 1.01) {
        y_max *= 2.0;
        y_min /= 2.0;
    }
    const double log_min = std::log10(y_min);
    const double log_max = std::log10(y_max);
    const double x_min = xs.front();
    const double x_max = std::max(xs.back(), x_min + 1e-12);

    std::vector<std::string> rows(height, std::string(width, ' '));
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (ys[i] <= 0.0)
            continue;
        const auto col = static_cast<std::size_t>(
            (xs[i] - x_min) / (x_max - x_min) *
            static_cast<double>(width - 1));
        const double frac =
            (std::log10(ys[i]) - log_min) / (log_max - log_min);
        const auto row_from_bottom = static_cast<std::size_t>(
            frac * static_cast<double>(height - 1) + 0.5);
        rows[height - 1 - std::min(row_from_bottom, height - 1)]
            [std::min(col, width - 1)] = '*';
    }

    std::string out;
    for (std::size_t r = 0; r < height; ++r) {
        const double frac = static_cast<double>(height - 1 - r) /
                            static_cast<double>(height - 1);
        const double y_val =
            std::pow(10.0, log_min + frac * (log_max - log_min));
        char label[32];
        std::snprintf(label, sizeof(label), "%8.2f |", y_val);
        out += label;
        out += rows[r];
        out += '\n';
    }
    char footer[160];
    std::snprintf(footer, sizeof(footer),
                  "         +%s\n          x: %.3f .. %.3f   y: %s "
                  "(log scale)\n",
                  std::string(width, '-').c_str(), x_min, x_max,
                  y_label.c_str());
    out += footer;
    return out;
}

} // namespace aqsim::trace
