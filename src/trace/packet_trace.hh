/**
 * @file
 * Packet trace recording for traffic visualization (paper Fig. 9 left:
 * packet traffic over time, one line per node, a mark per exchanged
 * packet).
 */

#ifndef AQSIM_TRACE_PACKET_TRACE_HH
#define AQSIM_TRACE_PACKET_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "base/types.hh"
#include "net/network_controller.hh"

namespace aqsim::trace
{

/** One routed packet, as observed at the controller. */
struct TraceRecord
{
    Tick time = 0; // actual delivery tick
    NodeId src = 0;
    NodeId dst = 0;
    std::uint32_t bytes = 0;
};

/** Collects every packet routed through a network controller. */
class PacketTrace
{
  public:
    PacketTrace() = default;

    /**
     * Register this trace as an observer on @p controller. Must be
     * called before the run starts; the trace must outlive the run.
     */
    void attach(net::NetworkController &controller);

    const std::vector<TraceRecord> &records() const { return records_; }
    std::size_t size() const { return records_.size(); }
    void clear() { records_.clear(); }

    /** Last delivery tick seen (0 if empty). */
    Tick endTime() const;

    /** Dump as CSV: time,src,dst,bytes. */
    void dumpCsv(std::ostream &out) const;

    /**
     * Packets per time window (for traffic-density series).
     * @param window bin width in ticks
     */
    std::vector<std::uint64_t> density(Tick window) const;

  private:
    std::vector<TraceRecord> records_;
};

} // namespace aqsim::trace

#endif // AQSIM_TRACE_PACKET_TRACE_HH
