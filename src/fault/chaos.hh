/**
 * @file
 * Chaos scenarios: named, composable, seed-deterministic fault
 * campaigns compiled into FaultInjector primitives.
 *
 * Single-knob fault flags (--drop-rate, --link-down A:B:F:T) describe
 * one failure; real cluster incidents are *campaigns* — a rack loses
 * nodes one after another, a cable flaps, a partition opens and heals.
 * A chaos spec names such a campaign:
 *
 *     rolling-crash:count=3,start=50us,dur=100us,stagger=150us
 *
 * and applyChaos() compiles it into the existing scheduled-window /
 * loss-burst primitives on FaultParams. Scenarios compose with '+'
 * ("rolling-crash+loss-burst:rate=0.2"). Everything randomized (which
 * nodes crash, which links flap) draws from a child of the cluster
 * seed, so a chaos run inherits the fault layer's full determinism
 * contract: bit-identical across engines, worker counts, and
 * checkpoint-restore replays.
 *
 * Catalog (see docs/fault-injection.md for parameter tables):
 *  - rolling-crash   staggered node crash windows over a seeded node
 *                    permutation
 *  - cascading-link  link failures accumulating one after another,
 *                    healing together
 *  - partition       a clean bisection (or count= cut) of the cluster
 *                    for a window
 *  - flap            one link going down/up periodically
 *  - loss-burst      a window of elevated random drop on every link
 */

#ifndef AQSIM_FAULT_CHAOS_HH
#define AQSIM_FAULT_CHAOS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "fault/fault_injector.hh"

namespace aqsim::fault
{

/** One parsed scenario: a name plus its k=v parameters. */
struct ChaosSpec
{
    std::string name;
    std::vector<std::pair<std::string, std::string>> params;

    /** Typed lookups with defaults; fatal() on malformed values. */
    Tick tick(const std::string &key, Tick def) const;
    std::uint64_t count(const std::string &key, std::uint64_t def) const;
    double rate(const std::string &key, double def) const;
};

/**
 * Parse a '+'-separated chaos spec string
 * ("name[:k=v,...][+name[:k=v,...]]"). fatal()s on syntax errors;
 * unknown scenario names are rejected later, by applyChaos().
 */
std::vector<ChaosSpec> parseChaosSpec(const std::string &text);

/**
 * Compile @p spec and append the resulting windows/bursts to
 * @p faults. Randomized choices draw from a child of @p seed only —
 * never from any stream the simulation itself consumes.
 */
void applyChaos(FaultParams &faults, const std::string &spec,
                std::size_t num_nodes, std::uint64_t seed);

} // namespace aqsim::fault

#endif // AQSIM_FAULT_CHAOS_HH
