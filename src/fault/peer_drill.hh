/**
 * @file
 * Peer-process fault drills for the distributed engine.
 *
 * Chaos scenarios (chaos.hh) perturb the *simulated* network; peer
 * drills perturb the *host* processes running the simulation. A drill
 * spec names an exact, reproducible protocol point inside one worker
 * process:
 *
 *     kill:peer=1,quantum=3,phase=exchange
 *
 * and the worker executes the operation on itself when it reaches
 * that point — SIGKILL (a crashed peer), SIGSTOP (a hung peer whose
 * socket stays open, the heartbeat-loss case), or _exit before the
 * protocol handshake (the half-open case). Drills compose with ';'.
 * The supervisor clears the spec on respawned attempts so recovery
 * runs clean; tests and the chaos-soak CI use drills to prove every
 * barrier wait is deadline-bounded.
 */

#ifndef AQSIM_FAULT_PEER_DRILL_HH
#define AQSIM_FAULT_PEER_DRILL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace aqsim::fault
{

/** Host-process operation a drill performs on its worker. */
enum class PeerDrillOp
{
    /** raise(SIGKILL): abrupt death, fds closed by the kernel. */
    Kill,
    /** raise(SIGSTOP): alive but frozen — heartbeats stop, the
     * socket stays open (only a liveness deadline can detect it). */
    Stop,
    /** _exit(0) without protocol goodbye: the half-open case. */
    Exit,
};

/** Protocol point at which a drill fires (inside the worker). */
enum class PeerDrillPhase
{
    /** Before sending the Hello handshake frame. */
    Hello,
    /** After running the quantum, before sending Exchange. */
    Exchange,
    /** After merging deliveries, before sending Ack. */
    Ack,
};

/** One parsed drill. */
struct PeerDrill
{
    PeerDrillOp op = PeerDrillOp::Kill;
    /** Worker index the drill fires in. */
    std::size_t peer = 0;
    /** 1-based quantum at which it fires (ignored for phase=hello). */
    std::uint64_t quantum = 1;
    PeerDrillPhase phase = PeerDrillPhase::Exchange;
};

/**
 * Parse a ';'-separated drill spec
 * ("op:peer=P[,quantum=Q][,phase=hello|exchange|ack]").
 * fatal()s on syntax errors or unknown ops/phases. "" parses to {}.
 */
std::vector<PeerDrill> parsePeerDrills(const std::string &text);

} // namespace aqsim::fault

#endif // AQSIM_FAULT_PEER_DRILL_HH
