#include "fault/fault_injector.hh"

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::fault
{

namespace
{

void
validateRate(double rate, const char *what)
{
    if (rate < 0.0 || rate > 1.0)
        fatal("fault %s rate must be in [0,1] (got %g)", what, rate);
}

} // namespace

bool
FaultParams::anyEnabled() const
{
    return dropRate > 0.0 || duplicateRate > 0.0 || corruptRate > 0.0 ||
           (jitterRate > 0.0 && maxJitterTicks > 0) ||
           !linkDown.empty() || !nodeCrash.empty() ||
           !nodePause.empty() || !lossBursts.empty();
}

FaultInjector::FaultInjector(std::size_t num_nodes, FaultParams params,
                             Rng rng, stats::Group &stats_parent)
    : numNodes_(num_nodes), params_(std::move(params)), parentRng_(rng),
      statsGroup_(stats_parent.addGroup("faults")),
      statDropped_(statsGroup_.add<stats::Scalar>(
          "dropped", "frames dropped by the fault model")),
      statDuplicated_(statsGroup_.add<stats::Scalar>(
          "duplicated", "frames delivered twice by the fault model")),
      statCorrupted_(statsGroup_.add<stats::Scalar>(
          "corrupted", "frames delivered with the corrupted flag set")),
      statDelayed_(statsGroup_.add<stats::Scalar>(
          "delayed", "frames delayed by jitter or a pause window"))
{
    AQSIM_ASSERT(num_nodes >= 1);
    validateRate(params_.dropRate, "drop");
    validateRate(params_.duplicateRate, "duplicate");
    validateRate(params_.corruptRate, "corrupt");
    validateRate(params_.jitterRate, "jitter");
    if (params_.jitterRate > 0.0 && params_.maxJitterTicks == 0)
        fatal("fault jitter rate %g needs a positive max jitter",
              params_.jitterRate);
    for (const auto &w : params_.linkDown) {
        if (w.a >= numNodes_ || w.b >= numNodes_ || w.a == w.b)
            fatal("link-down window names invalid link %u-%u", w.a,
                  w.b);
        if (w.from >= w.to)
            fatal("link-down window [%llu,%llu) is empty",
                  static_cast<unsigned long long>(w.from),
                  static_cast<unsigned long long>(w.to));
    }
    for (const auto *list : {&params_.nodeCrash, &params_.nodePause}) {
        for (const auto &w : *list) {
            if (w.node >= numNodes_)
                fatal("fault window names invalid node %u", w.node);
            if (w.from >= w.to)
                fatal("fault window [%llu,%llu) is empty",
                      static_cast<unsigned long long>(w.from),
                      static_cast<unsigned long long>(w.to));
        }
    }
    for (const auto &b : params_.lossBursts) {
        validateRate(b.rate, "loss-burst");
        if (b.from >= b.to)
            fatal("loss-burst window [%llu,%llu) is empty",
                  static_cast<unsigned long long>(b.from),
                  static_cast<unsigned long long>(b.to));
    }
    forkStreams();
}

void
FaultInjector::forkStreams()
{
    Rng parent = parentRng_;
    linkRng_.clear();
    linkRng_.reserve(numNodes_ * numNodes_);
    for (std::size_t l = 0; l < numNodes_ * numNodes_; ++l)
        linkRng_.push_back(parent.fork(0xfa170000ULL + l));
}

void
FaultInjector::reset()
{
    forkStreams();
    totalDropped_ = totalDuplicated_ = 0;
    totalCorrupted_ = totalDelayed_ = 0;
    statsGroup_.resetAll();
}

bool
FaultInjector::outage(NodeId src, NodeId dst, Tick depart_tick) const
{
    for (const auto &w : params_.linkDown) {
        const bool on_link = (w.a == src && w.b == dst) ||
                             (w.a == dst && w.b == src);
        if (on_link && depart_tick >= w.from && depart_tick < w.to)
            return true;
    }
    for (const auto &w : params_.nodeCrash) {
        if ((w.node == src || w.node == dst) &&
            depart_tick >= w.from && depart_tick < w.to)
            return true;
    }
    return false;
}

FaultInjector::Decision
FaultInjector::decide(NodeId src, NodeId dst, Tick depart_tick)
{
    AQSIM_ASSERT(src < numNodes_ && dst < numNodes_);
    Decision d;

    if (outage(src, dst, depart_tick)) {
        d.drop = true;
        ++totalDropped_;
        ++statDropped_;
        return d;
    }

    // Fixed draw order per frame on the link's private stream: the
    // decision sequence depends only on the per-link frame sequence.
    // Burst draws come first and are conditioned on departTick alone
    // (itself part of the frame sequence), so the stream stays pure.
    Rng &rng = linkRng_[linkIndex(src, dst)];
    for (const auto &b : params_.lossBursts) {
        if (depart_tick >= b.from && depart_tick < b.to &&
            rng.bernoulli(b.rate)) {
            d.drop = true;
            ++totalDropped_;
            ++statDropped_;
            return d;
        }
    }
    if (params_.dropRate > 0.0 && rng.bernoulli(params_.dropRate)) {
        d.drop = true;
        ++totalDropped_;
        ++statDropped_;
        return d;
    }
    if (params_.corruptRate > 0.0 &&
        rng.bernoulli(params_.corruptRate)) {
        d.corrupt = true;
        ++totalCorrupted_;
        ++statCorrupted_;
    }
    if (params_.jitterRate > 0.0 && rng.bernoulli(params_.jitterRate)) {
        d.jitter = static_cast<Tick>(
            rng.uniformInt(params_.maxJitterTicks) + 1);
        ++totalDelayed_;
        ++statDelayed_;
    }
    if (params_.duplicateRate > 0.0 &&
        rng.bernoulli(params_.duplicateRate)) {
        d.duplicate = true;
        ++totalDuplicated_;
        ++statDuplicated_;
        if (params_.jitterRate > 0.0 &&
            rng.bernoulli(params_.jitterRate)) {
            d.duplicateJitter = static_cast<Tick>(
                rng.uniformInt(params_.maxJitterTicks) + 1);
        }
    }

    for (const auto &w : params_.nodePause) {
        if ((w.node == src || w.node == dst) &&
            depart_tick >= w.from && depart_tick < w.to &&
            w.to > d.notBefore) {
            d.notBefore = w.to;
            ++totalDelayed_;
            ++statDelayed_;
        }
    }
    return d;
}

void
FaultInjector::serialize(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(linkRng_.size()));
    for (const Rng &rng : linkRng_)
        ckpt::putRng(w, rng);
    w.u64(totalDropped_);
    w.u64(totalDuplicated_);
    w.u64(totalCorrupted_);
    w.u64(totalDelayed_);
}

void
FaultInjector::deserialize(ckpt::Reader &r)
{
    const std::uint32_t n = r.u32();
    if (!r.ok())
        return;
    if (n != linkRng_.size()) {
        r.fail("fault link-stream count mismatch");
        return;
    }
    for (Rng &rng : linkRng_)
        ckpt::getRng(r, rng);
    totalDropped_ = r.u64();
    totalDuplicated_ = r.u64();
    totalCorrupted_ = r.u64();
    totalDelayed_ = r.u64();
}

void
FaultInjector::serializeLinkRange(ckpt::Writer &w, NodeId begin,
                                  NodeId end) const
{
    AQSIM_ASSERT(begin <= end && end <= numNodes_);
    for (std::size_t l = linkIndex(begin, 0); l < linkIndex(end, 0);
         ++l)
        ckpt::putRng(w, linkRng_[l]);
}

std::uint64_t
FaultInjector::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::fault
