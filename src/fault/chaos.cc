#include "fault/chaos.hh"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "base/logging.hh"
#include "base/random.hh"
#include "core/quantum_policy.hh"

namespace aqsim::fault
{

namespace
{

const std::string *
findParam(const ChaosSpec &s, const std::string &key)
{
    for (const auto &[k, v] : s.params)
        if (k == key)
            return &v;
    return nullptr;
}

/**
 * Seeded permutation of the node ids (Fisher-Yates on a private
 * stream): which nodes a scenario picks is random but a pure function
 * of the cluster seed.
 */
std::vector<NodeId>
shuffledNodes(std::size_t n, Rng &rng)
{
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), NodeId{0});
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = rng.uniformInt(std::uint64_t{i});
        std::swap(order[i - 1], order[j]);
    }
    return order;
}

/** Staggered crash windows over a seeded node permutation. */
void
rollingCrash(FaultParams &f, const ChaosSpec &s, std::size_t n,
             Rng &rng)
{
    const std::uint64_t def =
        std::min<std::uint64_t>(3, n > 1 ? n - 1 : 1);
    const std::uint64_t count = s.count("count", def);
    const Tick start = s.tick("start", 50'000);
    const Tick dur = s.tick("dur", 100'000);
    const Tick stagger = s.tick("stagger", 150'000);
    if (count == 0 || count >= n)
        fatal("chaos rolling-crash: count=%llu needs 1..%llu on %llu "
              "nodes (at least one survivor)",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(n - 1),
              static_cast<unsigned long long>(n));
    const std::vector<NodeId> order = shuffledNodes(n, rng);
    for (std::uint64_t i = 0; i < count; ++i) {
        const Tick from = start + i * stagger;
        f.nodeCrash.push_back(NodeWindow{order[i], from, from + dur});
    }
}

/**
 * Link failures accumulating one after another along a seeded ring
 * offset, all healing together — the "one switch port after another
 * browns out" shape.
 */
void
cascadingLink(FaultParams &f, const ChaosSpec &s, std::size_t n,
              Rng &rng)
{
    if (n < 2)
        fatal("chaos cascading-link needs at least 2 nodes");
    const std::uint64_t count =
        s.count("count", std::min<std::uint64_t>(3, n - 1));
    const Tick start = s.tick("start", 50'000);
    const Tick stagger = s.tick("stagger", 100'000);
    const Tick dur = s.tick("dur", 200'000);
    if (count == 0 || count > n - 1)
        fatal("chaos cascading-link: count=%llu needs 1..%llu",
              static_cast<unsigned long long>(count),
              static_cast<unsigned long long>(n - 1));
    const std::uint64_t offset = rng.uniformInt(std::uint64_t{n});
    const Tick heal = start + count * stagger + dur;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto a = static_cast<NodeId>((offset + i) % n);
        const auto b = static_cast<NodeId>((offset + i + 1) % n);
        f.linkDown.push_back(
            LinkWindow{a, b, start + i * stagger, heal});
    }
}

/** A clean bisection (or cut=K split) of the cluster for a window. */
void
partition(FaultParams &f, const ChaosSpec &s, std::size_t n)
{
    if (n < 2)
        fatal("chaos partition needs at least 2 nodes");
    const std::uint64_t cut = s.count("cut", n / 2);
    const Tick from = s.tick("from", 100'000);
    const Tick to = s.tick("to", 300'000);
    if (cut == 0 || cut >= n)
        fatal("chaos partition: cut=%llu needs 1..%llu",
              static_cast<unsigned long long>(cut),
              static_cast<unsigned long long>(n - 1));
    for (std::uint64_t a = 0; a < cut; ++a)
        for (std::uint64_t b = cut; b < n; ++b)
            f.linkDown.push_back(LinkWindow{static_cast<NodeId>(a),
                                            static_cast<NodeId>(b),
                                            from, to});
}

/** One link going down/up periodically. */
void
flap(FaultParams &f, const ChaosSpec &s, std::size_t n)
{
    if (n < 2)
        fatal("chaos flap needs at least 2 nodes");
    const auto a = static_cast<NodeId>(s.count("a", 0));
    const auto b = static_cast<NodeId>(s.count("b", 1));
    const Tick start = s.tick("start", 50'000);
    const Tick period = s.tick("period", 100'000);
    const Tick dur = s.tick("dur", 20'000);
    const std::uint64_t cycles = s.count("count", 5);
    if (dur >= period)
        fatal("chaos flap: dur must be shorter than period");
    for (std::uint64_t i = 0; i < cycles; ++i) {
        const Tick from = start + i * period;
        f.linkDown.push_back(LinkWindow{a, b, from, from + dur});
    }
}

/** A window of elevated random drop on every link. */
void
lossBurst(FaultParams &f, const ChaosSpec &s)
{
    const Tick start = s.tick("start", 50'000);
    const Tick dur = s.tick("dur", 200'000);
    f.lossBursts.push_back(
        LossBurst{start, start + dur, s.rate("rate", 0.3)});
}

} // namespace

Tick
ChaosSpec::tick(const std::string &key, Tick def) const
{
    const std::string *v = findParam(*this, key);
    return v ? core::parseTicks(*v) : def;
}

std::uint64_t
ChaosSpec::count(const std::string &key, std::uint64_t def) const
{
    const std::string *v = findParam(*this, key);
    if (!v)
        return def;
    char *end = nullptr;
    const std::uint64_t parsed = std::strtoull(v->c_str(), &end, 10);
    if (end == v->c_str() || *end != '\0')
        fatal("chaos %s: '%s' is not a count", name.c_str(),
              v->c_str());
    return parsed;
}

double
ChaosSpec::rate(const std::string &key, double def) const
{
    const std::string *v = findParam(*this, key);
    if (!v)
        return def;
    char *end = nullptr;
    const double parsed = std::strtod(v->c_str(), &end);
    if (end == v->c_str() || *end != '\0')
        fatal("chaos %s: '%s' is not a rate", name.c_str(),
              v->c_str());
    return parsed;
}

std::vector<ChaosSpec>
parseChaosSpec(const std::string &text)
{
    std::vector<ChaosSpec> specs;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t next = text.find('+', pos);
        if (next == std::string::npos)
            next = text.size();
        const std::string part = text.substr(pos, next - pos);
        pos = next + 1;

        ChaosSpec spec;
        const std::size_t colon = part.find(':');
        spec.name = part.substr(0, colon);
        if (spec.name.empty())
            fatal("chaos spec '%s': empty scenario name", text.c_str());
        if (colon != std::string::npos) {
            std::size_t p = colon + 1;
            while (p <= part.size()) {
                std::size_t comma = part.find(',', p);
                if (comma == std::string::npos)
                    comma = part.size();
                const std::string kv = part.substr(p, comma - p);
                p = comma + 1;
                const std::size_t eq = kv.find('=');
                if (eq == std::string::npos || eq == 0 ||
                    eq + 1 >= kv.size())
                    fatal("chaos spec '%s': parameter '%s' is not k=v",
                          text.c_str(), kv.c_str());
                spec.params.emplace_back(kv.substr(0, eq),
                                         kv.substr(eq + 1));
            }
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

void
applyChaos(FaultParams &faults, const std::string &spec,
           std::size_t num_nodes, std::uint64_t seed)
{
    // Private child stream: chaos placement randomness must never
    // perturb (or be perturbed by) any stream the simulation draws.
    Rng rng = Rng(seed).fork(0xc4a0500ULL);
    for (const ChaosSpec &s : parseChaosSpec(spec)) {
        if (s.name == "rolling-crash")
            rollingCrash(faults, s, num_nodes, rng);
        else if (s.name == "cascading-link")
            cascadingLink(faults, s, num_nodes, rng);
        else if (s.name == "partition")
            partition(faults, s, num_nodes);
        else if (s.name == "flap")
            flap(faults, s, num_nodes);
        else if (s.name == "loss-burst")
            lossBurst(faults, s);
        else
            fatal("unknown chaos scenario '%s' (catalog: "
                  "rolling-crash, cascading-link, partition, flap, "
                  "loss-burst)",
                  s.name.c_str());
    }
}

} // namespace aqsim::fault
