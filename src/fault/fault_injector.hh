/**
 * @file
 * Deterministic fault injection between the NICs and the switch.
 *
 * The injector sits inside the NetworkController's routing path and
 * perturbs traffic the way a lossy physical network would: per-link
 * probabilistic drop, duplication, corruption (a flag on the Packet,
 * the payload identity is untouched), reordering jitter, plus
 * *scheduled* outages — link-down windows and node crash/pause windows
 * evaluated against the frame's departure tick.
 *
 * Determinism contract: every decision draws from a per-link PRNG
 * stream forked from one seed. A source NIC serializes its frames in
 * departTick order and the controller routes under one mutex, so the
 * per-link decision sequence is a pure function of the per-link frame
 * sequence — independent of engine choice, worker count, or thread
 * interleaving. Conservative runs with faults enabled therefore stay
 * bit-identical across SequentialEngine and WorkerPool at any worker
 * count (see docs/fault-injection.md).
 */

#ifndef AQSIM_FAULT_FAULT_INJECTOR_HH
#define AQSIM_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "stats/stats.hh"

namespace aqsim::ckpt
{
class Reader;
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::fault
{

/** A scheduled outage of the (bidirectional) link between two nodes. */
struct LinkWindow
{
    NodeId a = 0;
    NodeId b = 0;
    /** Frames departing in [from, to) are affected. */
    Tick from = 0;
    Tick to = maxTick;
};

/** A scheduled per-node outage (crash) or stall (pause) window. */
struct NodeWindow
{
    NodeId node = 0;
    /** Frames departing in [from, to) are affected. */
    Tick from = 0;
    Tick to = maxTick;
};

/**
 * A scheduled loss burst: frames (on every link) departing in
 * [from, to) are dropped with an extra probability on top of the
 * steady-state dropRate — a congestion spike or a wobbling cable,
 * scheduled in simulated time. The burst draw happens on the per-link
 * stream, conditioned only on departTick, which is itself part of the
 * per-link frame sequence — so the sequence-purity determinism
 * contract is preserved.
 */
struct LossBurst
{
    /** Frames departing in [from, to) are affected. */
    Tick from = 0;
    Tick to = maxTick;
    /** Drop probability inside the window. */
    double rate = 0.0;
};

/** Configuration of the fault model (all links share the same rates). */
struct FaultParams
{
    /** Probability a frame is silently dropped on the wire. */
    double dropRate = 0.0;
    /** Probability a frame is delivered twice. */
    double duplicateRate = 0.0;
    /** Probability a frame arrives with its corrupted flag set. */
    double corruptRate = 0.0;
    /** Probability a frame is delayed by a random jitter. */
    double jitterRate = 0.0;
    /** Maximum added delay for a jittered frame, in ticks. */
    Tick maxJitterTicks = 0;

    /** Links that are down (frames dropped) during their windows. */
    std::vector<LinkWindow> linkDown;
    /** Crashed nodes: frames to or from them are dropped. */
    std::vector<NodeWindow> nodeCrash;
    /** Paused nodes: frames to or from them are held to window end. */
    std::vector<NodeWindow> nodePause;
    /** Scheduled windows of elevated drop probability. */
    std::vector<LossBurst> lossBursts;

    /** @return true if any fault source is configured. */
    bool anyEnabled() const;
};

/**
 * Per-link deterministic fault decisions; one instance per cluster,
 * owned by the Cluster and consulted by the NetworkController while it
 * holds its injection mutex (so decide() needs no locking of its own).
 */
class FaultInjector
{
  public:
    /** What to do with one frame (and its optional duplicate). */
    struct Decision
    {
        bool drop = false;
        bool corrupt = false;
        bool duplicate = false;
        /** Extra arrival delay of the primary copy. */
        Tick jitter = 0;
        /** Extra arrival delay of the duplicate copy. */
        Tick duplicateJitter = 0;
        /** Earliest permitted arrival tick (node-pause hold). */
        Tick notBefore = 0;
    };

    /**
     * @param num_nodes cluster size (validates window node ids)
     * @param params fault model configuration (validated here)
     * @param rng parent stream; one child is forked per directed link
     * @param stats_parent group under which "faults" registers
     */
    FaultInjector(std::size_t num_nodes, FaultParams params, Rng rng,
                  stats::Group &stats_parent);

    /**
     * Decide the fate of one frame src -> dst departing at
     * @p depart_tick. Consumes randomness from the (src,dst) stream
     * only. Caller must serialize calls (the controller's inject mutex).
     */
    Decision decide(NodeId src, NodeId dst, Tick depart_tick);

    /** Restore the initial stream states so reruns are identical. */
    void reset();

    /**
     * Checkpoint support: persist every per-link PRNG stream position
     * and the fault counters. The scheduled windows live in params_
     * (configuration, covered by the config fingerprint).
     */
    void serialize(ckpt::Writer &w) const;

    /** Restore state persisted by serialize(). */
    void deserialize(ckpt::Reader &r);

    /**
     * Partition-range serialization (DistributedEngine state gather):
     * the stream states of every directed link whose *source* lies in
     * [begin, end) — a contiguous slice of the flat link array, since
     * linkIndex is source-major. Only the source peer ever draws from
     * these streams, so splicing the peers' slices in node order
     * reproduces the whole-injector stream section byte for byte; the
     * four counters are shipped separately and summed.
     */
    void serializeLinkRange(ckpt::Writer &w, NodeId begin,
                            NodeId end) const;

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const;

    const FaultParams &params() const { return params_; }

    /** Lifetime counters. */
    std::uint64_t totalDropped() const { return totalDropped_; }
    std::uint64_t totalDuplicated() const { return totalDuplicated_; }
    std::uint64_t totalCorrupted() const { return totalCorrupted_; }
    std::uint64_t totalDelayed() const { return totalDelayed_; }

  private:
    /** Flat directed-link index. */
    std::size_t
    linkIndex(NodeId src, NodeId dst) const
    {
        return static_cast<std::size_t>(src) * numNodes_ + dst;
    }

    /** Re-fork all per-link streams from the stored parent state. */
    void forkStreams();

    /** @return true if depart_tick falls in a down/crash window. */
    bool outage(NodeId src, NodeId dst, Tick depart_tick) const;

    std::size_t numNodes_;
    FaultParams params_;
    /** Pristine parent copy; forkStreams() always starts from here. */
    const Rng parentRng_;
    std::vector<Rng> linkRng_;

    std::uint64_t totalDropped_ = 0;
    std::uint64_t totalDuplicated_ = 0;
    std::uint64_t totalCorrupted_ = 0;
    std::uint64_t totalDelayed_ = 0;

    stats::Group &statsGroup_;
    stats::Scalar &statDropped_;
    stats::Scalar &statDuplicated_;
    stats::Scalar &statCorrupted_;
    stats::Scalar &statDelayed_;
};

} // namespace aqsim::fault

#endif // AQSIM_FAULT_FAULT_INJECTOR_HH
