#include "fault/peer_drill.hh"

#include <cstdlib>

#include "base/logging.hh"

namespace aqsim::fault
{

namespace
{

std::uint64_t
parseCount(const std::string &text, const std::string &spec)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("peer-drill \"%s\": bad number \"%s\"", spec.c_str(),
              text.c_str());
    return v;
}

PeerDrill
parseOne(const std::string &item)
{
    PeerDrill drill;
    const std::size_t colon = item.find(':');
    const std::string op = item.substr(0, colon);
    if (op == "kill")
        drill.op = PeerDrillOp::Kill;
    else if (op == "stop")
        drill.op = PeerDrillOp::Stop;
    else if (op == "exit")
        drill.op = PeerDrillOp::Exit;
    else
        fatal("peer-drill \"%s\": unknown op \"%s\" "
              "(kill, stop, exit)",
              item.c_str(), op.c_str());

    bool saw_peer = false;
    std::string rest =
        colon == std::string::npos ? "" : item.substr(colon + 1);
    while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        const std::string kv = rest.substr(0, comma);
        rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            fatal("peer-drill \"%s\": expected k=v, got \"%s\"",
                  item.c_str(), kv.c_str());
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "peer") {
            drill.peer =
                static_cast<std::size_t>(parseCount(val, item));
            saw_peer = true;
        } else if (key == "quantum") {
            drill.quantum = parseCount(val, item);
            if (drill.quantum == 0)
                fatal("peer-drill \"%s\": quantum is 1-based",
                      item.c_str());
        } else if (key == "phase") {
            if (val == "hello")
                drill.phase = PeerDrillPhase::Hello;
            else if (val == "exchange")
                drill.phase = PeerDrillPhase::Exchange;
            else if (val == "ack")
                drill.phase = PeerDrillPhase::Ack;
            else
                fatal("peer-drill \"%s\": unknown phase \"%s\" "
                      "(hello, exchange, ack)",
                      item.c_str(), val.c_str());
        } else {
            fatal("peer-drill \"%s\": unknown key \"%s\"",
                  item.c_str(), key.c_str());
        }
    }
    if (!saw_peer)
        fatal("peer-drill \"%s\": peer= is required", item.c_str());
    return drill;
}

} // namespace

std::vector<PeerDrill>
parsePeerDrills(const std::string &text)
{
    std::vector<PeerDrill> drills;
    std::string rest = text;
    while (!rest.empty()) {
        const std::size_t semi = rest.find(';');
        const std::string item = rest.substr(0, semi);
        rest = semi == std::string::npos ? "" : rest.substr(semi + 1);
        if (!item.empty())
            drills.push_back(parseOne(item));
    }
    return drills;
}

} // namespace aqsim::fault
