#include "base/failure.hh"

namespace aqsim::base
{

namespace
{

/** Nesting depth of FailureTraps armed on this thread. */
thread_local int trapDepth = 0;

} // namespace

FailureTrap::FailureTrap()
{
    ++trapDepth;
}

FailureTrap::~FailureTrap()
{
    --trapDepth;
}

bool
failureTrapArmed()
{
    return trapDepth > 0;
}

void
throwIfTrapped(const char *cause, const char *message)
{
    if (trapDepth > 0)
        throw RunAbort(cause, message);
}

} // namespace aqsim::base
