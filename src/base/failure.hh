/**
 * @file
 * In-process failure interception for supervised runs.
 *
 * panic() and fatal() are process-fatal by design: a simulator bug or
 * an unusable configuration should die loudly. A *supervised* run
 * (supervise::RunSupervisor) wants the opposite: the failure must
 * surface as a value the supervisor can catch, log, and recover from
 * — restore the newest checkpoint and retry — without losing the
 * process. The bridge is a FailureTrap: while one is armed on the
 * calling thread, panic()/fatal() throw a RunAbort instead of calling
 * abort()/exit(). The trap is strictly thread-local, so
 *
 *  - default behaviour is bit-for-bit unchanged (no trap, no throw),
 *  - the watchdog's monitor thread never unwinds: a hard panic there
 *    stays a hard panic (the monitor cannot be recovered in place),
 *  - each ThreadedEngine worker arms its own trap for the duration of
 *    a supervised quantum, so a fatal() raised inside an event
 *    callback (e.g. reliable-delivery retry exhaustion) unwinds to
 *    the worker's quantum function, which latches it and still honours
 *    the exchange/gate barrier protocol.
 *
 * CancelToken is the other half of unwedging: a hung quantum cannot
 * throw (it is not running *our* code at the failure point — it is
 * spinning in an event loop), so the watchdog's panic handler sets the
 * token and the engines' event loops poll it and abort cooperatively.
 */

#ifndef AQSIM_BASE_FAILURE_HH
#define AQSIM_BASE_FAILURE_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace aqsim::base
{

/**
 * A failed run, carried as a value: what failed ("watchdog", "panic",
 * "fatal", "injected"), the human-readable detail, and the number of
 * quanta that had completed when the failure was raised (0 when the
 * failure site could not know).
 */
class RunAbort : public std::runtime_error
{
  public:
    RunAbort(std::string cause, std::string detail,
             std::uint64_t quantum = 0)
        : std::runtime_error(cause + ": " + detail),
          cause_(std::move(cause)), detail_(std::move(detail)),
          quantum_(quantum)
    {}

    const std::string &cause() const { return cause_; }
    const std::string &detail() const { return detail_; }
    /** Completed quanta when the failure was raised (0 = unknown). */
    std::uint64_t quantum() const { return quantum_; }

  private:
    std::string cause_;
    std::string detail_;
    std::uint64_t quantum_;
};

/**
 * RAII: while alive, panic()/fatal() on *this thread* throw RunAbort
 * instead of aborting/exiting. Nestable; never shared across threads.
 */
class FailureTrap
{
  public:
    FailureTrap();
    ~FailureTrap();
    FailureTrap(const FailureTrap &) = delete;
    FailureTrap &operator=(const FailureTrap &) = delete;
};

/** @return true if the calling thread has an armed FailureTrap. */
bool failureTrapArmed();

/**
 * panic()/fatal() hook: throw RunAbort{cause, message} if the calling
 * thread has an armed FailureTrap; otherwise return (the caller then
 * dies the classic way).
 */
void throwIfTrapped(const char *cause, const char *message);

/**
 * Cooperative cancellation flag polled by the engines' event loops.
 * requestCancel() is called from the watchdog's panic handler (another
 * thread); the loops observe it and throw RunAbort at the next poll
 * point, which unwedges a hung quantum without killing the process.
 */
class CancelToken
{
  public:
    void
    requestCancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

    /** Re-arm for the next supervised attempt. */
    void
    reset()
    {
        cancelled_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

} // namespace aqsim::base

#endif // AQSIM_BASE_FAILURE_HH
