#include "base/csv.hh"

#include <cinttypes>
#include <cstdio>

namespace aqsim
{

std::string
csvEscape(const std::string &value)
{
    bool needs_quotes = false;
    for (char c : value) {
        if (c == ',' || c == '"' || c == '\n' || c == '\r') {
            needs_quotes = true;
            break;
        }
    }
    if (!needs_quotes)
        return value;
    std::string out = "\"";
    for (char c : value) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

CsvWriter::CsvWriter(std::ostream &out) : out_(out) {}

CsvWriter::~CsvWriter()
{
    endRow();
}

void
CsvWriter::header(const std::vector<std::string> &names)
{
    endRow();
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << csvEscape(names[i]);
    }
    out_ << '\n';
}

CsvWriter &
CsvWriter::row()
{
    endRow();
    rowOpen_ = true;
    return *this;
}

void
CsvWriter::endRow()
{
    if (!rowOpen_)
        return;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << pending_[i];
    }
    out_ << '\n';
    pending_.clear();
    rowOpen_ = false;
}

CsvWriter &
CsvWriter::field(const std::string &value)
{
    pending_.push_back(csvEscape(value));
    return *this;
}

CsvWriter &
CsvWriter::field(const char *value)
{
    return field(std::string(value));
}

CsvWriter &
CsvWriter::field(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    pending_.emplace_back(buf);
    return *this;
}

CsvWriter &
CsvWriter::field(std::int64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    pending_.emplace_back(buf);
    return *this;
}

CsvWriter &
CsvWriter::field(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    pending_.emplace_back(buf);
    return *this;
}

} // namespace aqsim
