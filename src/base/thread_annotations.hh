/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * These macros attach lock-discipline contracts to types, data members
 * and functions so that clang's -Wthread-safety analysis can prove —
 * at compile time — that every access to mutex-guarded state happens
 * with the right mutex held. Under GCC (or any compiler without the
 * attributes) every macro expands to nothing, so annotated code builds
 * identically everywhere; the `tsa` CMake preset (clang,
 * -Werror=thread-safety) is the configuration that actually enforces
 * the contracts (see docs/static-analysis.md).
 *
 * Conventions used across the tree:
 *
 *  - AQSIM_GUARDED_BY(m) on a data member: every read and write must
 *    hold `m`. Use this for the ground truth of what a mutex protects.
 *  - AQSIM_REQUIRES(m) on a function: the *caller* must already hold
 *    `m`. Use this for private helpers invoked from a locked region
 *    instead of re-acquiring (or silently not acquiring) the mutex.
 *  - AQSIM_ACQUIRE/AQSIM_RELEASE on functions that take/drop the
 *    capability themselves (base::Mutex, base::MutexLock).
 *  - AQSIM_EXCLUDES(m) on a function that must NOT be entered with `m`
 *    held (it will acquire `m` itself; self-deadlock otherwise).
 */

#ifndef AQSIM_BASE_THREAD_ANNOTATIONS_HH
#define AQSIM_BASE_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define AQSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define AQSIM_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a type as a lockable capability (e.g. a mutex). */
#define AQSIM_CAPABILITY(x) AQSIM_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type whose lifetime holds a capability. */
#define AQSIM_SCOPED_CAPABILITY AQSIM_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with capability @p x held. */
#define AQSIM_GUARDED_BY(x) AQSIM_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by capability @p x. */
#define AQSIM_PT_GUARDED_BY(x) AQSIM_THREAD_ANNOTATION(pt_guarded_by(x))

/** Declares lock-ordering: this capability before the named ones. */
#define AQSIM_ACQUIRED_BEFORE(...) \
    AQSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** Declares lock-ordering: this capability after the named ones. */
#define AQSIM_ACQUIRED_AFTER(...) \
    AQSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Caller must hold the capability exclusively when calling. */
#define AQSIM_REQUIRES(...) \
    AQSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Caller must hold the capability at least shared when calling. */
#define AQSIM_REQUIRES_SHARED(...) \
    AQSIM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability exclusively and does not release. */
#define AQSIM_ACQUIRE(...) \
    AQSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function acquires the capability shared and does not release. */
#define AQSIM_ACQUIRE_SHARED(...) \
    AQSIM_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases a held capability. */
#define AQSIM_RELEASE(...) \
    AQSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function releases a shared-held capability. */
#define AQSIM_RELEASE_SHARED(...) \
    AQSIM_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/** Function tries to acquire; @p first arg is the success value. */
#define AQSIM_TRY_ACQUIRE(...) \
    AQSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must be entered with the capability NOT held. */
#define AQSIM_EXCLUDES(...) \
    AQSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Asserts (at runtime) that the capability is held; analysis trusts. */
#define AQSIM_ASSERT_CAPABILITY(x) \
    AQSIM_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define AQSIM_RETURN_CAPABILITY(x) AQSIM_THREAD_ANNOTATION(lock_returned(x))

/** Opts a function out of the analysis (document why at the site). */
#define AQSIM_NO_THREAD_SAFETY_ANALYSIS \
    AQSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif // AQSIM_BASE_THREAD_ANNOTATIONS_HH
