/**
 * @file
 * Annotated mutex primitives for Clang Thread Safety Analysis.
 *
 * Every mutex-protected structure in the tree uses these wrappers
 * instead of raw std::mutex so the `tsa` preset can prove lock
 * discipline at compile time (docs/static-analysis.md):
 *
 *  - base::Mutex — std::mutex carrying the AQSIM_CAPABILITY
 *    attribute; fields it protects are declared AQSIM_GUARDED_BY it.
 *  - base::MutexLock — scoped lock (the only idiomatic way to hold a
 *    Mutex; there is deliberately no std::lock_guard interop).
 *  - base::CondVar — condition variable waiting directly on a Mutex
 *    (std::condition_variable_any; a Mutex is BasicLockable).
 *    Predicates passed to wait/waitFor read guarded state, so annotate
 *    them AQSIM_REQUIRES(the mutex) at the call site.
 *
 * On GCC the annotations vanish and these are zero-cost veneers over
 * the std primitives.
 */

#ifndef AQSIM_BASE_MUTEX_HH
#define AQSIM_BASE_MUTEX_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.hh"

namespace aqsim::base
{

/** A std::mutex that participates in thread-safety analysis. */
class AQSIM_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void
    lock() AQSIM_ACQUIRE()
    {
        m_.lock();
    }

    void
    unlock() AQSIM_RELEASE()
    {
        m_.unlock();
    }

    bool
    try_lock() AQSIM_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    std::mutex m_;
};

/** RAII scope holding a Mutex for its lifetime. */
class AQSIM_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) AQSIM_ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() AQSIM_RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable that waits on a base::Mutex directly. The waiting
 * thread must hold the mutex (enforced by the analysis through the
 * AQSIM_REQUIRES annotations); the wait releases and re-acquires it
 * internally, which the analysis cannot see — that is fine, because
 * the capability is held again whenever user code runs.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

    /** Wait until @p pred (annotate the lambda REQUIRES(mutex)). */
    template <typename Pred>
    void
    wait(Mutex &mutex, Pred pred) AQSIM_REQUIRES(mutex)
    {
        cv_.wait(mutex, pred);
    }

    /**
     * Wait until @p pred or @p dur elapses.
     * @return the final value of pred (false = timed out).
     */
    template <typename Rep, typename Period, typename Pred>
    bool
    waitFor(Mutex &mutex, const std::chrono::duration<Rep, Period> &dur,
            Pred pred) AQSIM_REQUIRES(mutex)
    {
        return cv_.wait_for(mutex, dur, pred);
    }

  private:
    std::condition_variable_any cv_;
};

} // namespace aqsim::base

#endif // AQSIM_BASE_MUTEX_HH
