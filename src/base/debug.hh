/**
 * @file
 * gem5-style debug tracing: named flags gate per-component trace
 * output, switchable at runtime (no rebuild).
 *
 *     AQSIM_DPRINTF(Quantum, queue.now(), "sync",
 *                   "quantum %llu ended with %llu packets", n, np);
 *
 * emits "  12345678: sync: quantum 42 ended with 7 packets" on
 * stderr when the Quantum flag is enabled. Enable flags from code
 * (debug::setFlags("Quantum,Straggler")), from the AQSIM_DEBUG
 * environment variable, or via aqsim_cli --debug-flags.
 *
 * Tracing is for humans chasing behaviour; statistics (stats/) are
 * for measurements. Disabled flags cost one branch per site.
 */

#ifndef AQSIM_BASE_DEBUG_HH
#define AQSIM_BASE_DEBUG_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace aqsim::debug
{

/** A named, registered trace flag. */
class Flag
{
  public:
    /** Registers the flag under @p name. */
    Flag(const char *name, const char *desc);

    bool enabled() const { return enabled_; }
    const char *name() const { return name_; }
    const char *desc() const { return desc_; }

    void enable() { enabled_ = true; }
    void disable() { enabled_ = false; }

  private:
    const char *name_;
    const char *desc_;
    bool enabled_ = false;
};

/** The flags aqsim components trace under. */
extern Flag Quantum;   ///< quantum boundaries and policy decisions
extern Flag Straggler; ///< straggler / next-quantum deliveries
extern Flag Packet;    ///< every frame routed by the controller
extern Flag Mpi;       ///< message protocol events (RTS/CTS/ACK/match)
extern Flag Engine;    ///< engine scheduling (host co-simulation)
extern Flag Check;     ///< runtime invariant-checker violations

/**
 * Enable a comma-separated list of flags ("Quantum,Straggler"), or
 * "All". Unknown names are fatal. An empty string is a no-op.
 */
void setFlags(const std::string &csv);

/** Disable every flag. */
void clearFlags();

/** @return names of all registered flags, in registration order. */
std::vector<std::string> listFlags();

/** Apply the AQSIM_DEBUG environment variable, if set. */
void applyEnvironment();

/**
 * Redirect trace output to an accumulating string (tests); nullptr
 * restores stderr.
 */
void captureTo(std::string *sink);

/** Emit one trace line (use AQSIM_DPRINTF instead of calling this). */
void logf(const Flag &flag, Tick tick, const char *component,
          const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace aqsim::debug

/** Trace under @p flag with the component's current tick. */
#define AQSIM_DPRINTF(flag, tick, component, ...)                        \
    do {                                                                  \
        if (::aqsim::debug::flag.enabled())                               \
            ::aqsim::debug::logf(::aqsim::debug::flag, (tick),            \
                                 (component), __VA_ARGS__);               \
    } while (0)

#endif // AQSIM_BASE_DEBUG_HH
