#include "base/random.hh"

#include <cmath>

#include "base/logging.hh"

namespace aqsim
{

namespace
{

/** SplitMix64 step, used for seeding and stream splitting. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    AQSIM_ASSERT(lo <= hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    AQSIM_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    AQSIM_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 in (0, 1] so log() is finite.
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    cachedNormal_ = mag * std::sin(2.0 * M_PI * u2);
    hasCachedNormal_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalMean(double mean, double sigma)
{
    AQSIM_ASSERT(mean > 0.0);
    // If X = exp(mu + sigma Z), then E[X] = exp(mu + sigma^2/2);
    // solve for mu so that E[X] == mean.
    const double mu = std::log(mean) - 0.5 * sigma * sigma;
    return std::exp(mu + sigma * normal());
}

double
Rng::exponential(double mean)
{
    AQSIM_ASSERT(mean > 0.0);
    return -mean * std::log(1.0 - uniform());
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t label)
{
    std::uint64_t s = next() ^ (label * 0xd1342543de82ef95ULL);
    return Rng(splitmix64(s));
}

Rng::State
Rng::state() const
{
    State out;
    for (int i = 0; i < 4; ++i)
        out.s[i] = state_[i];
    out.cachedNormal = cachedNormal_;
    out.hasCachedNormal = hasCachedNormal_;
    return out;
}

void
Rng::setState(const State &state)
{
    for (int i = 0; i < 4; ++i)
        state_[i] = state.s[i];
    cachedNormal_ = state.cachedNormal;
    hasCachedNormal_ = state.hasCachedNormal;
}

} // namespace aqsim
