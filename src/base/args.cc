#include "base/args.hh"

#include <algorithm>
#include <cstdlib>

#include "base/logging.hh"

namespace aqsim
{

Args::Args(int argc, const char *const *argv,
           const std::vector<std::string> &allowed)
{
    program_ = argc > 0 ? argv[0] : "";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::string key, value;
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            key = body.substr(0, eq);
            value = body.substr(eq + 1);
        } else {
            key = body;
            // "--key value" form: consume the next token unless it looks
            // like another option.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (!allowed.empty() &&
            std::find(allowed.begin(), allowed.end(), key) ==
                allowed.end()) {
            fatal("unknown option '--%s'", key.c_str());
        }
        values_[key] = value;
    }
}

bool
Args::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Args::getString(const std::string &name, const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
Args::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --%s expects an integer, got '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

double
Args::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --%s expects a number, got '%s'", name.c_str(),
              it->second.c_str());
    return v;
}

bool
Args::getBool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal("option --%s expects a boolean, got '%s'", name.c_str(),
          v.c_str());
}

} // namespace aqsim
