/**
 * @file
 * Fundamental types shared by every aqsim module.
 *
 * Simulated time is measured in integer ticks of 1 nanosecond. Host
 * (wall-clock) time, whether modeled by the SequentialEngine or measured
 * by the ThreadedEngine, is kept in double-precision host nanoseconds so
 * that fractional per-tick costs accumulate without systematic rounding.
 */

#ifndef AQSIM_BASE_TYPES_HH
#define AQSIM_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace aqsim
{

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Signed tick delta, used for straggler lateness and skew arithmetic. */
using TickDelta = std::int64_t;

/** Modeled or measured host wall-clock time, in nanoseconds. */
using HostNs = double;

/** Identifier of a simulated node within a cluster (dense, 0-based). */
using NodeId = std::uint32_t;

/** Application rank; equal to NodeId in single-process-per-node setups. */
using Rank = std::uint32_t;

/** Sentinel for "no tick" / "infinitely far in the future". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Sentinel node id used for broadcast destinations. */
constexpr NodeId broadcastNode = std::numeric_limits<NodeId>::max();

/** Tick helpers: one tick == one nanosecond. */
constexpr Tick
nanoseconds(std::uint64_t n)
{
    return n;
}

constexpr Tick
microseconds(std::uint64_t us)
{
    return us * 1000ULL;
}

constexpr Tick
milliseconds(std::uint64_t ms)
{
    return ms * 1000ULL * 1000ULL;
}

constexpr Tick
seconds(std::uint64_t s)
{
    return s * 1000ULL * 1000ULL * 1000ULL;
}

/** Convert ticks to floating-point seconds (for metric reporting). */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) * 1e-9;
}

/** Convert ticks to floating-point microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) * 1e-3;
}

namespace literals
{

constexpr Tick operator""_ns(unsigned long long n) { return n; }
constexpr Tick operator""_us(unsigned long long n)
{
    return microseconds(n);
}
constexpr Tick operator""_ms(unsigned long long n)
{
    return milliseconds(n);
}
constexpr Tick operator""_s(unsigned long long n) { return seconds(n); }

} // namespace literals

} // namespace aqsim

#endif // AQSIM_BASE_TYPES_HH
