/**
 * @file
 * Small CSV writer used by the benchmark harnesses and trace dumpers.
 *
 * Values are escaped per RFC 4180 (quotes doubled, fields containing
 * separators/quotes/newlines quoted).
 */

#ifndef AQSIM_BASE_CSV_HH
#define AQSIM_BASE_CSV_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace aqsim
{

/** Streams rows of comma-separated values with proper escaping. */
class CsvWriter
{
  public:
    /** Write to the given stream; the stream must outlive the writer. */
    explicit CsvWriter(std::ostream &out);

    /** Write a header row. */
    void header(const std::vector<std::string> &names);

    /** Begin a new row (flushes the previous one). */
    CsvWriter &row();

    /** Append one field to the current row. */
    CsvWriter &field(const std::string &value);
    CsvWriter &field(const char *value);
    CsvWriter &field(double value);
    CsvWriter &field(std::int64_t value);
    CsvWriter &field(std::uint64_t value);

    /** Flush the pending row, if any. */
    ~CsvWriter();

  private:
    void endRow();

    std::ostream &out_;
    std::vector<std::string> pending_;
    bool rowOpen_ = false;
};

/** Escape a single CSV field per RFC 4180. */
std::string csvEscape(const std::string &value);

} // namespace aqsim

#endif // AQSIM_BASE_CSV_HH
