#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>

#include "base/failure.hh"

namespace aqsim
{

namespace
{

bool verboseFlag = false;
std::string *captureSink = nullptr;

void
emitLine(const char *prefix, const char *line)
{
    if (captureSink) {
        captureSink->append(prefix);
        captureSink->append(line);
        captureSink->push_back('\n');
    } else {
        std::fprintf(stderr, "%s%s\n", prefix, line);
    }
}

void
emit(const char *prefix, const char *fmt, va_list args)
{
    char buf[4096];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    emitLine(prefix, buf);
}

} // namespace

void
Logger::setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
Logger::verbose()
{
    return verboseFlag;
}

void
Logger::captureTo(std::string *sink)
{
    captureSink = sink;
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    char buf[4096];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    // Supervised runs (base::FailureTrap armed on this thread) receive
    // the failure as a catchable RunAbort instead of losing the
    // process; see base/failure.hh.
    base::throwIfTrapped("fatal", buf);
    emitLine("fatal: ", buf);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    char buf[4096];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    base::throwIfTrapped("panic", buf);
    emitLine("panic: ", buf);
    std::abort();
}

} // namespace aqsim
