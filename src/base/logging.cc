#include "base/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace aqsim
{

namespace
{

bool verboseFlag = false;
std::string *captureSink = nullptr;

void
emit(const char *prefix, const char *fmt, va_list args)
{
    char buf[4096];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    if (captureSink) {
        captureSink->append(prefix);
        captureSink->append(buf);
        captureSink->push_back('\n');
    } else {
        std::fprintf(stderr, "%s%s\n", prefix, buf);
    }
}

} // namespace

void
Logger::setVerbose(bool verbose)
{
    verboseFlag = verbose;
}

bool
Logger::verbose()
{
    return verboseFlag;
}

void
Logger::captureTo(std::string *sink)
{
    captureSink = sink;
}

void
inform(const char *fmt, ...)
{
    if (!verboseFlag)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info: ", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("warn: ", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal: ", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic: ", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace aqsim
