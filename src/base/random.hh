/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element of aqsim (host-speed noise, workload jitter,
 * synthetic traffic) draws from an explicitly seeded Rng so that a full
 * experiment is a pure function of its configuration. We implement
 * xoshiro256** seeded through SplitMix64 rather than using <random>
 * engines because the standard distributions are not guaranteed to be
 * bit-identical across library implementations, and reproducibility is
 * part of this library's contract.
 */

#ifndef AQSIM_BASE_RANDOM_HH
#define AQSIM_BASE_RANDOM_HH

#include <cstdint>

#include "base/types.hh"

namespace aqsim
{

/**
 * Deterministic PRNG (xoshiro256**) with simple distribution helpers.
 *
 * Streams can be split: fork(label) derives an independent child
 * generator, so each node/component can own a private stream that does
 * not perturb its siblings when one component draws more numbers.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return standard normal deviate (Box-Muller, cached pair). */
    double normal();

    /** @return normal deviate with the given mean / standard deviation. */
    double normal(double mean, double stddev);

    /**
     * @return lognormal deviate with E[X] = mean.
     *
     * Parameterized by the mean of X itself (not of log X), which is the
     * natural knob for multiplicative host-speed noise: sigma controls
     * spread, the mean stays fixed as sigma varies.
     */
    double lognormalMean(double mean, double sigma);

    /** @return exponential deviate with the given mean. */
    double exponential(double mean);

    /** @return true with probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child generator. The label decorrelates
     * children forked from the same parent state.
     */
    Rng fork(std::uint64_t label);

    /**
     * Complete generator state, exposed as plain data so checkpoints
     * can persist and restore a stream at its exact position.
     */
    struct State
    {
        std::uint64_t s[4] = {0, 0, 0, 0};
        double cachedNormal = 0.0;
        bool hasCachedNormal = false;
    };

    /** @return a snapshot of the full generator state. */
    State state() const;

    /** Restore a snapshot taken with state(). */
    void setState(const State &state);

  private:
    std::uint64_t state_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace aqsim

#endif // AQSIM_BASE_RANDOM_HH
