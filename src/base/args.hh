/**
 * @file
 * Minimal command-line argument parsing for examples and bench harnesses.
 *
 * Supports "--key=value", "--key value" and boolean "--flag" forms.
 * Unknown arguments are a fatal user error so typos do not silently run
 * the default experiment.
 */

#ifndef AQSIM_BASE_ARGS_HH
#define AQSIM_BASE_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aqsim
{

/** Parsed command line with typed accessors and defaults. */
class Args
{
  public:
    /**
     * Parse argv. @param allowed the set of recognized option names
     * (without leading dashes); an empty set accepts anything.
     */
    Args(int argc, const char *const *argv,
         const std::vector<std::string> &allowed = {});

    /** @return true if --name was present. */
    bool has(const std::string &name) const;

    /** @return string value of --name, or fallback. */
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /** @return integer value of --name, or fallback. */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** @return floating-point value of --name, or fallback. */
    double getDouble(const std::string &name, double fallback) const;

    /** @return boolean value: bare flag or explicit true/false/1/0. */
    bool getBool(const std::string &name, bool fallback) const;

    /** @return positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** @return program name (argv[0]). */
    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace aqsim

#endif // AQSIM_BASE_ARGS_HH
