/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * warn()   - something works "well enough" but may surprise the user.
 * inform() - normal operating status messages.
 *
 * All functions accept printf-style formatting. Verbosity of inform()
 * is gated by Logger::setVerbose().
 */

#ifndef AQSIM_BASE_LOGGING_HH
#define AQSIM_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace aqsim
{

/** Global logging configuration and sinks. */
class Logger
{
  public:
    /** Enable or disable inform() output (warnings always print). */
    static void setVerbose(bool verbose);

    /** @return whether inform() output is enabled. */
    static bool verbose();

    /**
     * Redirect all log output to an accumulating string buffer
     * (used by tests); pass nullptr to restore stderr.
     */
    static void captureTo(std::string *sink);
};

/** Print an informational message (suppressed unless verbose). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a simulator bug and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert a simulator invariant; panics with location info on failure.
 * Unlike assert(), stays enabled in release builds: the simulator's
 * correctness argument rests on these invariants.
 */
#define AQSIM_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::aqsim::panic("assertion '%s' failed at %s:%d", #cond,       \
                           __FILE__, __LINE__);                           \
        }                                                                 \
    } while (0)

} // namespace aqsim

#endif // AQSIM_BASE_LOGGING_HH
