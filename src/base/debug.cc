#include "base/debug.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace aqsim::debug
{

namespace
{

/** Registration order; raw pointers to namespace-scope flags. */
std::vector<Flag *> &
registry()
{
    static std::vector<Flag *> flags;
    return flags;
}

std::string *captureSink = nullptr;

} // namespace

Flag::Flag(const char *name, const char *desc)
    : name_(name), desc_(desc)
{
    registry().push_back(this);
}

Flag Quantum("Quantum", "quantum boundaries and policy decisions");
Flag Straggler("Straggler", "straggler / next-quantum deliveries");
Flag Packet("Packet", "every frame routed by the controller");
Flag Mpi("Mpi", "message protocol events (RTS/CTS/ACK/match)");
Flag Engine("Engine", "engine scheduling (host co-simulation)");
Flag Check("Check", "runtime invariant-checker violations");

void
setFlags(const std::string &csv)
{
    std::size_t start = 0;
    while (start <= csv.size()) {
        auto end = csv.find(',', start);
        if (end == std::string::npos)
            end = csv.size();
        const std::string name = csv.substr(start, end - start);
        start = end + 1;
        if (name.empty())
            continue;
        if (name == "All" || name == "all") {
            for (Flag *flag : registry())
                flag->enable();
            continue;
        }
        bool found = false;
        for (Flag *flag : registry()) {
            if (name == flag->name()) {
                flag->enable();
                found = true;
                break;
            }
        }
        if (!found)
            fatal("unknown debug flag '%s' (have: %s)", name.c_str(),
                  [] {
                      std::string all;
                      for (Flag *flag : registry()) {
                          if (!all.empty())
                              all += ",";
                          all += flag->name();
                      }
                      return all;
                  }()
                      .c_str());
    }
}

void
clearFlags()
{
    for (Flag *flag : registry())
        flag->disable();
}

std::vector<std::string>
listFlags()
{
    std::vector<std::string> names;
    for (Flag *flag : registry())
        names.emplace_back(flag->name());
    return names;
}

void
applyEnvironment()
{
    const char *env = std::getenv("AQSIM_DEBUG");
    if (env && *env)
        setFlags(env);
}

void
captureTo(std::string *sink)
{
    captureSink = sink;
}

void
logf(const Flag &flag, Tick tick, const char *component,
     const char *fmt, ...)
{
    char body[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(body, sizeof(body), fmt, args);
    va_end(args);

    char line[1200];
    std::snprintf(line, sizeof(line), "%10llu: %s: %s: %s",
                  static_cast<unsigned long long>(tick),
                  flag.name(), component, body);
    if (captureSink) {
        captureSink->append(line);
        captureSink->push_back('\n');
    } else {
        std::fprintf(stderr, "%s\n", line);
    }
}

} // namespace aqsim::debug
