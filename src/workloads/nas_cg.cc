#include "workloads/nas_cg.hh"

#include "base/logging.hh"

namespace aqsim::workloads
{

namespace
{

/** User tag for the matvec fold exchanges. */
constexpr int tagFold = 7;

} // namespace

NasCg::NasCg(std::size_t num_ranks, double scale)
    : NasCg(num_ranks, scale, Params())
{}

NasCg::NasCg(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 1 && scale > 0.0);
    params_.nnzPerRow *= scale;
}

double
NasCg::totalOps() const
{
    return static_cast<double>(params_.outerIters) *
           static_cast<double>(params_.innerIters) *
           static_cast<double>(params_.rows) * params_.nnzPerRow *
           params_.opsPerNnz;
}

sim::Process
NasCg::program(AppContext &ctx)
{
    const std::size_t n = ctx.numRanks();
    const Rank r = ctx.rank();
    const std::size_t rows_per_rank =
        std::max<std::size_t>(1, params_.rows / n);
    const double matvec_ops = static_cast<double>(params_.rows) *
                              params_.nnzPerRow * params_.opsPerNnz /
                              static_cast<double>(n);

    for (std::size_t outer = 0; outer < params_.outerIters; ++outer) {
        for (std::size_t inner = 0; inner < params_.innerIters;
             ++inner) {
            // Partitioned sparse matvec.
            co_await ctx.compute(
                ctx.jitter(matvec_ops, params_.jitterSigma));

            // Fold partial sums across XOR partners: the vector
            // segment halves each round — irregular long-distance
            // exchanges across the whole machine.
            std::uint64_t seg_bytes = rows_per_rank * 8;
            for (std::size_t k = 1; k < n; k <<= 1) {
                const std::size_t partner = r ^ k;
                if (partner < n) {
                    co_await mpi::sendrecv(
                        ctx.comm(), static_cast<Rank>(partner),
                        static_cast<Rank>(partner), tagFold,
                        std::max<std::uint64_t>(seg_bytes, 64));
                }
                seg_bytes = std::max<std::uint64_t>(seg_bytes / 2, 64);
            }

            // Two dot products per CG step (alpha, rho): tiny,
            // latency-critical global reductions.
            co_await mpi::allreduce(ctx.comm(), 8);
            co_await mpi::allreduce(ctx.comm(), 8);
        }
        // Eigenvalue shift estimate at the end of each outer step.
        co_await mpi::allreduce(ctx.comm(), 16);
    }
}

} // namespace aqsim::workloads
