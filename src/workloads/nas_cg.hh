/**
 * @file
 * NAS CG (Conjugate Gradient) skeleton.
 *
 * "Computes an approximation to the smallest eigenvalue of a large,
 * sparse, symmetric positive definite matrix. Exhibits irregular long
 * distance communication." Each inner CG iteration is a partitioned
 * sparse matrix-vector product whose partial sums are folded across
 * XOR-distance partners (long-distance, irregular), plus two
 * latency-critical scalar dot-product allreduces.
 */

#ifndef AQSIM_WORKLOADS_NAS_CG_HH
#define AQSIM_WORKLOADS_NAS_CG_HH

#include "workloads/workload.hh"

namespace aqsim::workloads
{

/** CG skeleton workload. */
class NasCg : public Workload
{
  public:
    struct Params
    {
        std::size_t rows = 150000;
        double nnzPerRow = 350.0;
        std::size_t outerIters = 2;
        std::size_t innerIters = 12;
        double opsPerNnz = 2.0;
        double jitterSigma = 0.02;
    };

    NasCg(std::size_t num_ranks, double scale);
    NasCg(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "nas.cg"; }
    MetricKind metricKind() const override
    {
        return MetricKind::RateMops;
    }
    double totalOps() const override;
    sim::Process program(AppContext &ctx) override;

  private:
    std::size_t numRanks_;
    Params params_;
};

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_NAS_CG_HH
