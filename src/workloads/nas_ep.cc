#include "workloads/nas_ep.hh"

#include "base/logging.hh"

namespace aqsim::workloads
{

NasEp::NasEp(std::size_t num_ranks, double scale)
    : NasEp(num_ranks, scale, Params())
{}

NasEp::NasEp(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 1 && scale > 0.0);
    params_.totalOps *= scale;
}

sim::Process
NasEp::program(AppContext &ctx)
{
    const double per_rank =
        params_.totalOps / static_cast<double>(numRanks_);
    const double per_block =
        per_rank / static_cast<double>(params_.blocks);

    // Independent pseudorandom-statistics batches: no communication.
    for (std::size_t b = 0; b < params_.blocks; ++b)
        co_await ctx.compute(ctx.jitter(per_block,
                                        params_.jitterSigma));

    // Combine the per-rank tallies: a few tiny allreduces.
    for (std::size_t i = 0; i < params_.reductions; ++i)
        co_await mpi::allreduce(ctx.comm(), params_.reductionBytes);
}

} // namespace aqsim::workloads
