#include "workloads/nas_mg.hh"

#include <vector>

#include "base/logging.hh"
#include "workloads/nas_common.hh"

namespace aqsim::workloads
{

namespace
{

constexpr int tagHalo = 11;

} // namespace

NasMg::NasMg(std::size_t num_ranks, double scale)
    : NasMg(num_ranks, scale, Params())
{}

NasMg::NasMg(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 1 && scale > 0.0);
    AQSIM_ASSERT((params_.gridDim & (params_.gridDim - 1)) == 0);
    params_.opsPerPoint *= scale;
}

double
NasMg::totalOps() const
{
    double ops = 0.0;
    // Down-sweep and up-sweep visit every level once per cycle.
    for (std::size_t dim = params_.gridDim; dim >= params_.coarsestDim;
         dim /= 2) {
        ops += 2.0 * static_cast<double>(dim) * static_cast<double>(dim) *
               static_cast<double>(dim) * params_.opsPerPoint;
    }
    return ops * static_cast<double>(params_.vcycles);
}

sim::Process
NasMg::level(AppContext &ctx, std::size_t dim)
{
    const std::size_t n = ctx.numRanks();
    const auto dims = factor3(n);
    const Rank r = ctx.rank();

    // Smooth the local subgrid.
    const double points =
        static_cast<double>(dim) * static_cast<double>(dim) *
        static_cast<double>(dim) / static_cast<double>(n);
    co_await ctx.compute(
        ctx.jitter(points * params_.opsPerPoint, params_.jitterSigma));

    if (n == 1)
        co_return;

    // Halo exchange with up to six 3-D neighbors. Face sizes shrink
    // with the level; coarse grids exchange tiny latency-bound frames.
    std::vector<sim::Process> sends;
    std::vector<Rank> recv_from;
    for (std::size_t axis = 0; axis < 3; ++axis) {
        // Extent of the local face orthogonal to this axis.
        const double fx = static_cast<double>(dim) /
                          static_cast<double>(dims[(axis + 1) % 3]);
        const double fy = static_cast<double>(dim) /
                          static_cast<double>(dims[(axis + 2) % 3]);
        const auto face_bytes = static_cast<std::uint64_t>(
            std::max(64.0, fx * fy * 8.0));
        for (int dir : {+1, -1}) {
            const std::ptrdiff_t nb = gridNeighbor(r, dims, axis, dir);
            if (nb < 0)
                continue;
            sends.push_back(ctx.comm().send(static_cast<Rank>(nb),
                                            tagHalo, face_bytes));
            sends.back().start();
            recv_from.push_back(static_cast<Rank>(nb));
        }
    }
    for (Rank src : recv_from)
        co_await ctx.comm().recv(static_cast<int>(src), tagHalo);
    for (auto &s : sends)
        co_await std::move(s);
}

sim::Process
NasMg::program(AppContext &ctx)
{
    for (std::size_t cycle = 0; cycle < params_.vcycles; ++cycle) {
        // Down-sweep: restrict to coarser grids.
        for (std::size_t dim = params_.gridDim;
             dim >= params_.coarsestDim; dim /= 2)
            co_await level(ctx, dim);
        // Up-sweep: prolongate back to the fine grid.
        for (std::size_t dim = params_.coarsestDim;
             dim <= params_.gridDim; dim *= 2)
            co_await level(ctx, dim);
        // Residual norm.
        co_await mpi::allreduce(ctx.comm(), 8);
    }
}

} // namespace aqsim::workloads
