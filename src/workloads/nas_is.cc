#include "workloads/nas_is.hh"

#include "base/logging.hh"

namespace aqsim::workloads
{

NasIs::NasIs(std::size_t num_ranks, double scale)
    : NasIs(num_ranks, scale, Params())
{}

NasIs::NasIs(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 1 && scale > 0.0);
    params_.totalKeys = static_cast<std::size_t>(
        static_cast<double>(params_.totalKeys) * scale);
    AQSIM_ASSERT(params_.totalKeys >= num_ranks);
}

double
NasIs::totalOps() const
{
    // NAS IS self-reports keys ranked per second.
    return static_cast<double>(params_.totalKeys) *
           static_cast<double>(params_.iterations);
}

sim::Process
NasIs::program(AppContext &ctx)
{
    const std::size_t n = ctx.numRanks();
    const std::size_t keys_per_rank = params_.totalKeys / n;
    const std::uint64_t key_bytes_per_pair =
        keys_per_rank * params_.bytesPerKey / n;

    for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
        // Local bucket counting.
        co_await ctx.compute(ctx.jitter(
            static_cast<double>(keys_per_rank) * params_.opsPerKey,
            params_.jitterSigma));

        // Exchange bucket sizes (small, latency-bound).
        co_await mpi::alltoall(ctx.comm(),
                               params_.bucketBytesPerPair);

        // Redistribute the keys themselves (bulk).
        co_await mpi::alltoall(ctx.comm(), key_bytes_per_pair);

        // Local ranking of the received keys.
        co_await ctx.compute(ctx.jitter(
            static_cast<double>(keys_per_rank) * 4.0,
            params_.jitterSigma));

        // Partial verification: a tiny global reduction every pass.
        co_await mpi::allreduce(ctx.comm(), 8);
    }

    // Full verification.
    co_await mpi::allreduce(ctx.comm(), 8);
}

} // namespace aqsim::workloads
