/**
 * @file
 * NAS IS (Integer Sort) skeleton.
 *
 * "Performs a sorting operation used frequently in particle method
 * codes. Requires moderate data communication and significant
 * synchronization." Each ranking iteration is: local bucket counting,
 * an alltoall of bucket sizes, an alltoallv redistributing the keys,
 * local re-ranking, and a small verification allreduce.
 *
 * The back-to-back alltoalls create long chains of packet dependences;
 * under a long synchronization quantum every chain hop snaps to a
 * quantum boundary and the *simulated* execution time dilates
 * dramatically — the paper's Section 6 accuracy worst case (150x sim-
 * time ratio at Q=100 us on 64 nodes).
 */

#ifndef AQSIM_WORKLOADS_NAS_IS_HH
#define AQSIM_WORKLOADS_NAS_IS_HH

#include "workloads/workload.hh"

namespace aqsim::workloads
{

/** IS skeleton workload. */
class NasIs : public Workload
{
  public:
    struct Params
    {
        /** Total keys across all ranks at scale 1 (class-A shape). */
        std::size_t totalKeys = 1ULL << 21;
        std::size_t iterations = 10;
        /** Local work per key per iteration (bucket count + rank). */
        double opsPerKey = 100.0;
        /** Bucket-size exchange payload per rank pair. */
        std::uint64_t bucketBytesPerPair = 256;
        std::uint64_t bytesPerKey = 4;
        double jitterSigma = 0.02;
    };

    NasIs(std::size_t num_ranks, double scale);
    NasIs(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "nas.is"; }
    MetricKind metricKind() const override
    {
        return MetricKind::RateMops;
    }
    double totalOps() const override;
    sim::Process program(AppContext &ctx) override;

  private:
    std::size_t numRanks_;
    Params params_;
};

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_NAS_IS_HH
