#include "workloads/namd.hh"

#include <vector>

#include "base/logging.hh"

namespace aqsim::workloads
{

namespace
{

constexpr int tagProxy = 31;

} // namespace

Namd::Namd(std::size_t num_ranks, double scale)
    : Namd(num_ranks, scale, Params())
{}

Namd::Namd(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 1 && scale > 0.0);
    params_.steps = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(params_.steps) * scale));
}

double
Namd::totalOps() const
{
    return static_cast<double>(params_.atoms) * params_.opsPerAtom *
           static_cast<double>(params_.steps);
}

sim::Process
Namd::program(AppContext &ctx)
{
    const std::size_t n = ctx.numRanks();
    const Rank r = ctx.rank();
    const std::size_t k = std::min(params_.patchNeighbors, n - 1);
    const double step_ops = static_cast<double>(params_.atoms) *
                            params_.opsPerAtom /
                            static_cast<double>(n);

    for (std::size_t step = 0; step < params_.steps; ++step) {
        if (k == 0) {
            co_await ctx.compute(
                ctx.jitter(step_ops, params_.jitterSigma));
            continue;
        }

        // Local force computation, then a burst of proxy messages to
        // the patch neighborhood. Per timestep the network sees a
        // traffic burst from every rank; as ranks are added, steps
        // shorten and the bursts merge into the continuous traffic of
        // the paper's Fig. 9c.
        co_await ctx.compute(
            ctx.jitter(step_ops * 0.65, params_.jitterSigma));
        std::vector<sim::Process> sends;
        for (std::size_t i = 0; i < k; ++i) {
            const Rank dst = static_cast<Rank>((r + i + 1) % n);
            sends.push_back(
                ctx.comm().send(dst, tagProxy, params_.msgBytes));
            sends.back().start();
        }

        // Collect the symmetric proxy messages from the neighborhood.
        for (std::size_t i = 0; i < k; ++i) {
            const Rank src = static_cast<Rank>((r + n - i - 1) % n);
            co_await ctx.comm().recv(static_cast<int>(src), tagProxy);
        }
        for (auto &s : sends)
            co_await std::move(s);

        // Integration with the gathered forces.
        co_await ctx.compute(
            ctx.jitter(step_ops * 0.35, params_.jitterSigma));

        if ((step + 1) % params_.energyEvery == 0)
            co_await mpi::allreduce(ctx.comm(), 16);
    }
}

} // namespace aqsim::workloads
