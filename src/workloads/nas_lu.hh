/**
 * @file
 * NAS LU (Lower-Upper solver) skeleton.
 *
 * "A regular-sparse, block (5x5) lower and upper triangular system
 * solution. Exhibits a limited amount of parallelism and is a good
 * indicator of network latency." SSOR iterations sweep a wavefront of
 * k-planes across a 2-D processor grid: each plane waits for small
 * interface messages from the north/west neighbors, computes, and
 * forwards south/east (reversed for the upper sweep). The pipeline of
 * tiny messages makes simulated execution time directly proportional
 * to per-message latency — and therefore to quantum-induced latency
 * inflation.
 */

#ifndef AQSIM_WORKLOADS_NAS_LU_HH
#define AQSIM_WORKLOADS_NAS_LU_HH

#include "workloads/workload.hh"

namespace aqsim::workloads
{

/** LU skeleton workload. */
class NasLu : public Workload
{
  public:
    struct Params
    {
        /** Horizontal grid extent (nx = ny). */
        std::size_t nx = 64;
        /** Number of k-planes per sweep (wavefront depth). */
        std::size_t nz = 24;
        std::size_t iterations = 4;
        /** Block ops per grid point per plane (5x5 block solve). */
        /*
         * Effective operations per point per plane, derived from
         * measured class-A LU wall time on the paper-era hardware
         * (time x clock), not raw flop counts: the SSOR block solve
         * is memory bound, so its time-equivalent op count is high.
         */
        double opsPerPoint = 2400.0;
        double jitterSigma = 0.02;
    };

    NasLu(std::size_t num_ranks, double scale);
    NasLu(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "nas.lu"; }
    MetricKind metricKind() const override
    {
        return MetricKind::RateMops;
    }
    double totalOps() const override;
    sim::Process program(AppContext &ctx) override;

  private:
    std::size_t numRanks_;
    Params params_;
};

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_NAS_LU_HH
