#include "workloads/synthetic.hh"

#include <algorithm>
#include <vector>

#include "base/logging.hh"

namespace aqsim::workloads
{

namespace
{

constexpr int tagPing = 41;
constexpr int tagPong = 42;
constexpr int tagRandom = 43;

} // namespace

PingPong::PingPong(std::size_t num_ranks, double scale)
    : PingPong(num_ranks, scale, Params())
{}

PingPong::PingPong(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 2);
    params_.rounds = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(params_.rounds) * scale));
}

double
PingPong::meanRoundtripTicks() const
{
    const auto count = roundtripCount_.load();
    return count ? static_cast<double>(roundtripSum_.load()) /
                       static_cast<double>(count)
                 : 0.0;
}

sim::Process
PingPong::program(AppContext &ctx)
{
    const Rank r = ctx.rank();
    const bool pinger = (r % 2 == 0);
    const Rank peer = pinger ? r + 1 : r - 1;
    // Odd rank count: the last rank sits out.
    if (peer >= ctx.numRanks())
        co_return;

    for (std::size_t round = 0; round < params_.rounds; ++round) {
        if (pinger) {
            const Tick t0 = ctx.now();
            co_await ctx.comm().send(peer, tagPing, params_.bytes);
            co_await ctx.comm().recv(static_cast<int>(peer), tagPong);
            roundtripSum_ += ctx.now() - t0;
            ++roundtripCount_;
            if (params_.gap)
                co_await ctx.delay(params_.gap);
        } else {
            co_await ctx.comm().recv(static_cast<int>(peer), tagPing);
            co_await ctx.comm().send(peer, tagPong, params_.bytes);
        }
    }
}

BurstCompute::BurstCompute(std::size_t num_ranks, double scale)
    : BurstCompute(num_ranks, scale, Params())
{}

BurstCompute::BurstCompute(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 1);
    params_.computeOpsPerPhase *= scale;
}

double
BurstCompute::totalOps() const
{
    return params_.computeOpsPerPhase *
           static_cast<double>(params_.phases) *
           static_cast<double>(numRanks_);
}

sim::Process
BurstCompute::program(AppContext &ctx)
{
    for (std::size_t phase = 0; phase < params_.phases; ++phase) {
        co_await ctx.compute(ctx.jitter(params_.computeOpsPerPhase,
                                        params_.jitterSigma));
        if (ctx.numRanks() > 1)
            co_await mpi::alltoall(ctx.comm(),
                                   params_.burstBytesPerPair);
    }
}

RandomTraffic::RandomTraffic(std::size_t num_ranks, double scale)
    : RandomTraffic(num_ranks, scale, Params())
{}

RandomTraffic::RandomTraffic(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 2);
    params_.rounds = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(params_.rounds) * scale));
}

sim::Process
RandomTraffic::program(AppContext &ctx)
{
    const std::size_t n = ctx.numRanks();
    const Rank r = ctx.rank();
    // All ranks derive the *same* schedule from the shared seed, so
    // pairings agree without negotiation.
    Rng schedule(params_.scheduleSeed);

    for (std::size_t round = 0; round < params_.rounds; ++round) {
        // Global random permutation pairing for this round.
        std::vector<Rank> perm(n);
        for (Rank i = 0; i < n; ++i)
            perm[i] = i;
        for (std::size_t i = n - 1; i > 0; --i) {
            const auto j = schedule.uniformInt(
                static_cast<std::uint64_t>(i + 1));
            std::swap(perm[i], perm[j]);
        }
        const bool comm_round =
            schedule.bernoulli(params_.commProbability);
        const auto bytes =
            1 + schedule.uniformInt(params_.maxBytes);

        // My position in the permutation decides my partner.
        Rank partner = r;
        for (std::size_t i = 0; i + 1 < n; i += 2) {
            if (perm[i] == r)
                partner = perm[i + 1];
            else if (perm[i + 1] == r)
                partner = perm[i];
        }

        co_await ctx.compute(params_.opsBetweenRounds);
        if (comm_round && partner != r)
            co_await mpi::sendrecv(ctx.comm(), partner, partner,
                                   tagRandom, bytes);
    }
}

} // namespace aqsim::workloads
