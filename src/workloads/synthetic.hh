/**
 * @file
 * Synthetic workloads for tests, examples and ablation benches.
 */

#ifndef AQSIM_WORKLOADS_SYNTHETIC_HH
#define AQSIM_WORKLOADS_SYNTHETIC_HH

#include <atomic>

#include "workloads/workload.hh"

namespace aqsim::workloads
{

/**
 * Classic ping-pong between rank pairs (0<->1, 2<->3, ...). Records
 * the mean measured roundtrip on the even ranks, which is what the
 * paper's Fig. 3 reasons about: with conservative quanta the roundtrip
 * equals the physical latency; with long quanta it inflates toward the
 * quantum length.
 */
class PingPong : public Workload
{
  public:
    struct Params
    {
        std::size_t rounds = 100;
        std::uint64_t bytes = 1024;
        /** Idle gap between rounds (lets adaptive quanta grow). */
        Tick gap = 0;
    };

    PingPong(std::size_t num_ranks, double scale);
    PingPong(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "pingpong"; }
    MetricKind metricKind() const override
    {
        return MetricKind::WallClockSeconds;
    }
    sim::Process program(AppContext &ctx) override;

    /** Mean measured roundtrip (ticks) across pinging ranks. */
    double meanRoundtripTicks() const;

    const Params &params() const { return params_; }

  private:
    std::size_t numRanks_;
    Params params_;
    /** Atomics: pinger coroutines on different ThreadedEngine threads
     * update these concurrently. */
    std::atomic<std::uint64_t> roundtripSum_{0};
    std::atomic<std::uint64_t> roundtripCount_{0};
};

/**
 * Alternating compute/communicate phases — the "speed bump" pattern
 * the paper's adaptive algorithm is designed around: long silent
 * stretches where the quantum should grow, punctuated by alltoall
 * bursts where it must collapse.
 */
class BurstCompute : public Workload
{
  public:
    struct Params
    {
        std::size_t phases = 10;
        double computeOpsPerPhase = 2.0e6;
        std::uint64_t burstBytesPerPair = 2048;
        double jitterSigma = 0.03;
    };

    BurstCompute(std::size_t num_ranks, double scale);
    BurstCompute(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "burst"; }
    MetricKind metricKind() const override
    {
        return MetricKind::RateMops;
    }
    double totalOps() const override;
    sim::Process program(AppContext &ctx) override;

  private:
    std::size_t numRanks_;
    Params params_;
};

/**
 * Deterministic pseudo-random pairwise traffic: every round draws a
 * global random pairing (same seed on all ranks) and each pair
 * exchanges a random-size message; some rounds are compute-only.
 * Exercises matching, reassembly and the straggler machinery with
 * irregular patterns.
 */
class RandomTraffic : public Workload
{
  public:
    struct Params
    {
        std::size_t rounds = 60;
        std::uint64_t maxBytes = 32 * 1024;
        double commProbability = 0.6;
        double opsBetweenRounds = 1.0e5;
        std::uint64_t scheduleSeed = 42;
    };

    RandomTraffic(std::size_t num_ranks, double scale);
    RandomTraffic(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "random"; }
    MetricKind metricKind() const override
    {
        return MetricKind::WallClockSeconds;
    }
    sim::Process program(AppContext &ctx) override;

  private:
    std::size_t numRanks_;
    Params params_;
};

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_SYNTHETIC_HH
