/**
 * @file
 * Shared helpers for the NAS skeleton workloads: processor-grid
 * factorization and neighbor arithmetic.
 */

#ifndef AQSIM_WORKLOADS_NAS_COMMON_HH
#define AQSIM_WORKLOADS_NAS_COMMON_HH

#include <array>
#include <cstdint>

#include "base/types.hh"

namespace aqsim::workloads
{

/**
 * Factor @p n into up to three near-cubic factors (px >= py >= pz),
 * used to lay ranks out on a 3D processor grid (MG) or 2D grid (LU).
 */
std::array<std::size_t, 3> factor3(std::size_t n);

/** Factor @p n into two near-square factors (px >= py). */
std::array<std::size_t, 2> factor2(std::size_t n);

/** Coordinates of @p rank in a (px, py, pz) grid, x fastest. */
std::array<std::size_t, 3> gridCoords(std::size_t rank,
                                      const std::array<std::size_t, 3> &dims);

/** Rank of grid coordinates (inverse of gridCoords). */
std::size_t gridRank(const std::array<std::size_t, 3> &coords,
                     const std::array<std::size_t, 3> &dims);

/**
 * Neighbor of @p rank along @p axis in direction @p dir (+1/-1),
 * or -1 when at the grid boundary (no wraparound).
 */
std::ptrdiff_t gridNeighbor(std::size_t rank,
                            const std::array<std::size_t, 3> &dims,
                            std::size_t axis, int dir);

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_NAS_COMMON_HH
