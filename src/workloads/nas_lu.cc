#include "workloads/nas_lu.hh"

#include "base/logging.hh"
#include "workloads/nas_common.hh"

namespace aqsim::workloads
{

namespace
{

constexpr int tagLower = 21;
constexpr int tagUpper = 22;

} // namespace

NasLu::NasLu(std::size_t num_ranks, double scale)
    : NasLu(num_ranks, scale, Params())
{}

NasLu::NasLu(std::size_t num_ranks, double scale, Params params)
    : numRanks_(num_ranks), params_(params)
{
    AQSIM_ASSERT(num_ranks >= 1 && scale > 0.0);
    params_.opsPerPoint *= scale;
}

double
NasLu::totalOps() const
{
    return static_cast<double>(params_.iterations) * 2.0 *
           static_cast<double>(params_.nz) *
           static_cast<double>(params_.nx) *
           static_cast<double>(params_.nx) * params_.opsPerPoint;
}

sim::Process
NasLu::program(AppContext &ctx)
{
    const std::size_t n = ctx.numRanks();
    const auto pgrid = factor2(n);
    const std::array<std::size_t, 3> dims{pgrid[0], pgrid[1], 1};
    const Rank r = ctx.rank();

    const std::ptrdiff_t west = gridNeighbor(r, dims, 0, -1);
    const std::ptrdiff_t east = gridNeighbor(r, dims, 0, +1);
    const std::ptrdiff_t north = gridNeighbor(r, dims, 1, -1);
    const std::ptrdiff_t south = gridNeighbor(r, dims, 1, +1);

    const double local_nx =
        static_cast<double>(params_.nx) / static_cast<double>(pgrid[0]);
    const double local_ny =
        static_cast<double>(params_.nx) / static_cast<double>(pgrid[1]);
    const double plane_ops = local_nx * local_ny * params_.opsPerPoint;
    // Interface: one row/column of 5x5 double blocks.
    const auto iface_x =
        static_cast<std::uint64_t>(std::max(200.0, local_ny * 200.0));
    const auto iface_y =
        static_cast<std::uint64_t>(std::max(200.0, local_nx * 200.0));

    for (std::size_t iter = 0; iter < params_.iterations; ++iter) {
        // Lower-triangular sweep: wavefront from the north-west.
        for (std::size_t k = 0; k < params_.nz; ++k) {
            if (west >= 0)
                co_await ctx.comm().recv(static_cast<int>(west),
                                         tagLower);
            if (north >= 0)
                co_await ctx.comm().recv(static_cast<int>(north),
                                         tagLower);
            co_await ctx.compute(
                ctx.jitter(plane_ops, params_.jitterSigma));
            if (east >= 0)
                co_await ctx.comm().send(static_cast<Rank>(east),
                                         tagLower, iface_x);
            if (south >= 0)
                co_await ctx.comm().send(static_cast<Rank>(south),
                                         tagLower, iface_y);
        }
        // Upper-triangular sweep: wavefront from the south-east.
        for (std::size_t k = 0; k < params_.nz; ++k) {
            if (east >= 0)
                co_await ctx.comm().recv(static_cast<int>(east),
                                         tagUpper);
            if (south >= 0)
                co_await ctx.comm().recv(static_cast<int>(south),
                                         tagUpper);
            co_await ctx.compute(
                ctx.jitter(plane_ops, params_.jitterSigma));
            if (west >= 0)
                co_await ctx.comm().send(static_cast<Rank>(west),
                                         tagUpper, iface_x);
            if (north >= 0)
                co_await ctx.comm().send(static_cast<Rank>(north),
                                         tagUpper, iface_y);
        }
        // Residual norms.
        co_await mpi::allreduce(ctx.comm(), 40);
    }
}

} // namespace aqsim::workloads
