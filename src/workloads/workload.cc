#include "workloads/workload.hh"

#include "base/logging.hh"
#include "workloads/namd.hh"
#include "workloads/nas_cg.hh"
#include "workloads/nas_ep.hh"
#include "workloads/nas_is.hh"
#include "workloads/nas_lu.hh"
#include "workloads/nas_mg.hh"
#include "workloads/synthetic.hh"

namespace aqsim::workloads
{

double
Workload::metricValue(Tick completion_tick) const
{
    if (completion_tick == 0)
        return 0.0; // degenerate (empty) program
    switch (metricKind()) {
      case MetricKind::RateMops:
        // NAS convention: millions of operations per second.
        return totalOps() / ticksToSeconds(completion_tick) / 1e6;
      case MetricKind::WallClockSeconds:
        return ticksToSeconds(completion_tick);
    }
    panic("unreachable metric kind");
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name, std::size_t num_ranks,
             double scale)
{
    if (name == "nas.ep")
        return std::make_unique<NasEp>(num_ranks, scale);
    if (name == "nas.is")
        return std::make_unique<NasIs>(num_ranks, scale);
    if (name == "nas.cg")
        return std::make_unique<NasCg>(num_ranks, scale);
    if (name == "nas.mg")
        return std::make_unique<NasMg>(num_ranks, scale);
    if (name == "nas.lu")
        return std::make_unique<NasLu>(num_ranks, scale);
    if (name == "namd")
        return std::make_unique<Namd>(num_ranks, scale);
    if (name == "pingpong")
        return std::make_unique<PingPong>(num_ranks, scale);
    if (name == "burst")
        return std::make_unique<BurstCompute>(num_ranks, scale);
    if (name == "random")
        return std::make_unique<RandomTraffic>(num_ranks, scale);
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
workloadNames()
{
    return {"nas.ep", "nas.is", "nas.cg", "nas.mg", "nas.lu",
            "namd",   "pingpong", "burst", "random"};
}

double
scaleForClass(char problem_class)
{
    switch (problem_class) {
      case 'S':
      case 's':
        return 0.05;
      case 'W':
      case 'w':
        return 0.25;
      case 'A':
      case 'a':
        return 1.0;
      case 'B':
      case 'b':
        return 4.0;
      default:
        fatal("unknown problem class '%c' (use S, W, A or B)",
              problem_class);
    }
}

std::vector<std::string>
nasWorkloadNames()
{
    return {"nas.ep", "nas.is", "nas.cg", "nas.mg", "nas.lu"};
}

} // namespace aqsim::workloads
