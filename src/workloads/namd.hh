/**
 * @file
 * NAMD (molecular dynamics) skeleton, apoa1-shaped.
 *
 * "NAMD is a parallel, object-oriented molecular dynamics code" whose
 * benchmark input (apoa1, ~92k atoms) exchanges patch/proxy force data
 * with a neighborhood of ranks every timestep. Its traffic is *dense in
 * time* — the paper's Fig. 9c shows no visible quiet interval — which
 * makes it the worst case for simulation *speed*: the adaptive quantum
 * cannot grow and settles near the best fixed quantum (~10 us).
 *
 * NAMD self-reports wall-clock time, so the accuracy metric here is
 * WallClockSeconds.
 */

#ifndef AQSIM_WORKLOADS_NAMD_HH
#define AQSIM_WORKLOADS_NAMD_HH

#include "workloads/workload.hh"

namespace aqsim::workloads
{

/** NAMD skeleton workload. */
class Namd : public Workload
{
  public:
    struct Params
    {
        std::size_t atoms = 92224;
        std::size_t steps = 15;
        double opsPerAtom = 1300.0;
        /** Patch-neighborhood size (capped at numRanks - 1). */
        std::size_t patchNeighbors = 6;
        /** Proxy/force message payload. */
        std::uint64_t msgBytes = 24 * 1024;
        /** Energy reduction every this many steps. */
        std::size_t energyEvery = 10;
        double jitterSigma = 0.04;
    };

    Namd(std::size_t num_ranks, double scale);
    Namd(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "namd"; }
    MetricKind metricKind() const override
    {
        return MetricKind::WallClockSeconds;
    }
    double totalOps() const override;
    sim::Process program(AppContext &ctx) override;

  private:
    std::size_t numRanks_;
    Params params_;
};

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_NAMD_HH
