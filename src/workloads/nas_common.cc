#include "workloads/nas_common.hh"

#include "base/logging.hh"

namespace aqsim::workloads
{

std::array<std::size_t, 3>
factor3(std::size_t n)
{
    AQSIM_ASSERT(n >= 1);
    std::array<std::size_t, 3> best{n, 1, 1};
    std::size_t best_surface = n + n + 1; // proportional surface metric
    for (std::size_t a = 1; a * a * a <= n; ++a) {
        if (n % a)
            continue;
        const std::size_t rest = n / a;
        for (std::size_t b = a; b * b <= rest; ++b) {
            if (rest % b)
                continue;
            const std::size_t c = rest / b;
            const std::size_t surface = a * b + b * c + a * c;
            if (surface < best_surface) {
                best_surface = surface;
                best = {c, b, a}; // px >= py >= pz
            }
        }
    }
    return best;
}

std::array<std::size_t, 2>
factor2(std::size_t n)
{
    AQSIM_ASSERT(n >= 1);
    std::array<std::size_t, 2> best{n, 1};
    for (std::size_t a = 1; a * a <= n; ++a) {
        if (n % a)
            continue;
        best = {n / a, a};
    }
    return best;
}

std::array<std::size_t, 3>
gridCoords(std::size_t rank, const std::array<std::size_t, 3> &dims)
{
    AQSIM_ASSERT(rank < dims[0] * dims[1] * dims[2]);
    return {rank % dims[0], (rank / dims[0]) % dims[1],
            rank / (dims[0] * dims[1])};
}

std::size_t
gridRank(const std::array<std::size_t, 3> &coords,
         const std::array<std::size_t, 3> &dims)
{
    return coords[0] + dims[0] * (coords[1] + dims[1] * coords[2]);
}

std::ptrdiff_t
gridNeighbor(std::size_t rank, const std::array<std::size_t, 3> &dims,
             std::size_t axis, int dir)
{
    AQSIM_ASSERT(axis < 3 && (dir == 1 || dir == -1));
    auto coords = gridCoords(rank, dims);
    const std::ptrdiff_t next =
        static_cast<std::ptrdiff_t>(coords[axis]) + dir;
    if (next < 0 || next >= static_cast<std::ptrdiff_t>(dims[axis]))
        return -1;
    coords[axis] = static_cast<std::size_t>(next);
    return static_cast<std::ptrdiff_t>(gridRank(coords, dims));
}

} // namespace aqsim::workloads
