/**
 * @file
 * Workload framework: guest application programs.
 *
 * A Workload produces one coroutine program per rank, written against
 * the AppContext facade (compute + message passing). Workloads are
 * communication skeletons of the paper's benchmarks: they reproduce
 * the published compute/communication structure of each application,
 * which is what determines how synchronization error perturbs the
 * application-reported metric (see DESIGN.md §2).
 */

#ifndef AQSIM_WORKLOADS_WORKLOAD_HH
#define AQSIM_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"
#include "mpi/collectives.hh"
#include "mpi/communicator.hh"
#include "node/node_simulator.hh"
#include "sim/process.hh"

namespace aqsim::workloads
{

/**
 * Awaitable modeling a compute burst: marks the CPU busy (which the
 * host-cost model prices at the full simulation slowdown) and resumes
 * after the modeled latency.
 */
class ComputeAwaitable
{
  public:
    ComputeAwaitable(node::NodeSimulator &node, double ops)
        : node_(node), ops_(ops)
    {}

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        const Tick latency = node_.cpu().computeLatency(ops_);
        node_.cpu().beginCompute();
        node_.queue().scheduleIn(latency, [this, h] {
            node_.cpu().endCompute();
            h.resume();
        });
    }

    void await_resume() const noexcept {}

  private:
    node::NodeSimulator &node_;
    double ops_;
};

/** Per-rank execution context handed to workload programs. */
class AppContext
{
  public:
    AppContext(node::NodeSimulator &node, mpi::Endpoint &comm, Rng rng)
        : node_(node), comm_(comm), rng_(rng)
    {}

    Rank rank() const { return comm_.rank(); }
    std::size_t numRanks() const { return comm_.numRanks(); }
    mpi::Endpoint &comm() { return comm_; }
    node::NodeSimulator &node() { return node_; }
    sim::EventQueue &queue() { return node_.queue(); }
    Tick now() const { return node_.queue().now(); }
    Rng &rng() { return rng_; }
    const Rng &rng() const { return rng_; }

    /** Execute @p ops operations on the node CPU. */
    ComputeAwaitable
    compute(double ops)
    {
        return ComputeAwaitable(node_, ops);
    }

    /** Plain simulated delay (sleep; guest counted idle). */
    sim::DelayAwaitable
    delay(Tick ticks)
    {
        return sim::DelayAwaitable(node_.queue(), ticks);
    }

    /**
     * @return ops jittered by a relative normal perturbation; models
     * data-dependent and system-noise variation across ranks and
     * iterations (the load imbalance real benchmarks exhibit).
     */
    double
    jitter(double ops, double rel_sigma)
    {
        return ops * std::max(0.05, 1.0 + rel_sigma * rng_.normal());
    }

  private:
    node::NodeSimulator &node_;
    mpi::Endpoint &comm_;
    Rng rng_;
};

/** A distributed application to run on the simulated cluster. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Benchmark name ("nas.is", "namd", ...). */
    virtual std::string name() const = 0;

    /** How the benchmark reports its own performance. */
    enum class MetricKind
    {
        /** Rate metric: MOPS (NAS); higher is better. */
        RateMops,
        /** Wall-clock seconds (NAMD); lower is better. */
        WallClockSeconds,
    };

    virtual MetricKind metricKind() const = 0;

    /**
     * Total operation count the benchmark self-reports against
     * (meaningful for RateMops workloads).
     */
    virtual double totalOps() const { return 0.0; }

    /** Per-rank guest program. @p ctx outlives the coroutine. */
    virtual sim::Process program(AppContext &ctx) = 0;

    /**
     * The benchmark's self-reported metric given its completion time —
     * how the paper derives accuracy (NAS reports MOPS, NAMD reports
     * wall-clock).
     */
    double metricValue(Tick completion_tick) const;
};

/**
 * Create a workload by name: "nas.ep", "nas.is", "nas.cg", "nas.mg",
 * "nas.lu", "namd", "pingpong", "burst", "random".
 *
 * @param num_ranks cluster size the problem is partitioned across
 * @param scale relative problem scale (1.0 = default benching size)
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       std::size_t num_ranks,
                                       double scale = 1.0);

/** Names accepted by makeWorkload, in canonical order. */
std::vector<std::string> workloadNames();

/**
 * Map a NAS-style problem class to a scale factor for makeWorkload:
 * 'S' (smoke), 'W' (workstation), 'A' (the paper's benching size) or
 * 'B' (4x A). Fatal on unknown classes.
 */
double scaleForClass(char problem_class);

/** The five NAS skeleton names, in the paper's order. */
std::vector<std::string> nasWorkloadNames();

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_WORKLOAD_HH
