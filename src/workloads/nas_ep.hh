/**
 * @file
 * NAS EP (Embarrassingly Parallel) skeleton.
 *
 * "Accumulates statistics from dynamically generated pseudorandom
 * numbers. Requires little interprocessor communication." Long
 * independent compute blocks per rank, followed by a handful of tiny
 * sum-reductions (the Gaussian-pair counts). This is the best case for
 * the adaptive quantum: the network is silent almost throughout, so the
 * quantum grows to its maximum and the accuracy loss is negligible
 * (paper Fig. 9a and the Section 6 EP table).
 */

#ifndef AQSIM_WORKLOADS_NAS_EP_HH
#define AQSIM_WORKLOADS_NAS_EP_HH

#include "workloads/workload.hh"

namespace aqsim::workloads
{

/** EP skeleton workload. */
class NasEp : public Workload
{
  public:
    struct Params
    {
        /** Total operations across all ranks at scale 1. */
        double totalOps = 6.0e8;
        /** Compute blocks per rank (statistics batches). */
        std::size_t blocks = 48;
        /** Number of final scalar reductions (sx, sy, ring counts). */
        std::size_t reductions = 3;
        std::uint64_t reductionBytes = 80;
        double jitterSigma = 0.03;
    };

    NasEp(std::size_t num_ranks, double scale);
    NasEp(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "nas.ep"; }
    MetricKind metricKind() const override
    {
        return MetricKind::RateMops;
    }
    double totalOps() const override { return params_.totalOps; }
    sim::Process program(AppContext &ctx) override;

  private:
    std::size_t numRanks_;
    Params params_;
};

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_NAS_EP_HH
