/**
 * @file
 * NAS MG (Multi-Grid) skeleton.
 *
 * "Solves a 3-D Poisson PDE. Exhibits both short and long distance
 * highly structured communication patterns." V-cycles over a grid
 * hierarchy: smoothing at each level with 3-D halo exchanges whose
 * message sizes shrink with the grid (fine levels: bulk nearest-
 * neighbor faces; coarse levels: tiny latency-bound messages), plus a
 * residual-norm allreduce per cycle.
 */

#ifndef AQSIM_WORKLOADS_NAS_MG_HH
#define AQSIM_WORKLOADS_NAS_MG_HH

#include "workloads/workload.hh"

namespace aqsim::workloads
{

/** MG skeleton workload. */
class NasMg : public Workload
{
  public:
    struct Params
    {
        /** Global grid dimension (must be a power of two). */
        std::size_t gridDim = 256;
        std::size_t vcycles = 3;
        /** Coarsest level grid dimension. */
        std::size_t coarsestDim = 4;
        double opsPerPoint = 10.0;
        double jitterSigma = 0.02;
    };

    NasMg(std::size_t num_ranks, double scale);
    NasMg(std::size_t num_ranks, double scale, Params params);

    std::string name() const override { return "nas.mg"; }
    MetricKind metricKind() const override
    {
        return MetricKind::RateMops;
    }
    double totalOps() const override;
    sim::Process program(AppContext &ctx) override;

  private:
    /** Smooth + halo-exchange at one grid level. */
    sim::Process level(AppContext &ctx, std::size_t dim);

    std::size_t numRanks_;
    Params params_;
};

} // namespace aqsim::workloads

#endif // AQSIM_WORKLOADS_NAS_MG_HH
