#include "check/invariants.hh"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "base/debug.hh"
#include "base/logging.hh"

namespace aqsim::check
{

InvariantChecker &
InvariantChecker::instance()
{
    static InvariantChecker checker;
    return checker;
}

void
InvariantChecker::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
InvariantChecker::setFatal(bool on)
{
    fatal_.store(on, std::memory_order_relaxed);
}

void
InvariantChecker::reset()
{
    for (auto &count : counts_)
        count.store(0, std::memory_order_relaxed);
    checks_.store(0, std::memory_order_relaxed);
    windowStragglers_.store(0, std::memory_order_relaxed);
    haveWindow_ = false;
    windowStart_ = 0;
    windowEnd_ = 0;
}

void
InvariantChecker::applyEnvironment()
{
    const char *env = std::getenv("AQSIM_CHECK");
    if (!env || !*env)
        return;
    const std::string value(env);
    if (value == "0" || value == "off")
        return;
    setEnabled(true);
    if (value == "fatal")
        setFatal(true);
}

void
InvariantChecker::violation(Invariant inv, Tick tick, const char *fmt,
                            ...)
{
    counts_[static_cast<unsigned>(inv)].fetch_add(
        1, std::memory_order_relaxed);

    char body[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(body, sizeof(body), fmt, args);
    va_end(args);

    AQSIM_DPRINTF(Check, tick, "check", "%s violated: %s",
                  invariantName(inv), body);
    if (fatal())
        panic("invariant %s violated: %s", invariantName(inv), body);
}

void
InvariantChecker::runBeginSlow()
{
    haveWindow_ = false;
    windowStart_ = 0;
    windowEnd_ = 0;
    windowStragglers_.store(0, std::memory_order_relaxed);
}

void
InvariantChecker::quantumOpenSlow(Tick start, Tick end,
                                  bool conservative, Tick min_latency)
{
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (end <= start) {
        violation(Invariant::QuantumMonotonic, start,
                  "empty quantum window [%llu,%llu)",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(end));
    }
    if (haveWindow_ && start != windowEnd_) {
        violation(Invariant::QuantumMonotonic, start,
                  "window [%llu,%llu) not contiguous with previous "
                  "end %llu",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(end),
                  static_cast<unsigned long long>(windowEnd_));
    }
    if (conservative && end - start > min_latency) {
        violation(Invariant::QuantumBound, start,
                  "conservative run opened Q=%llu > T=%llu",
                  static_cast<unsigned long long>(end - start),
                  static_cast<unsigned long long>(min_latency));
    }
    haveWindow_ = true;
    windowStart_ = start;
    windowEnd_ = end;
    windowStragglers_.store(0, std::memory_order_relaxed);
}

void
InvariantChecker::quantumCompleteSlow(Tick start, Tick end,
                                      std::uint64_t claimed_stragglers)
{
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (haveWindow_ && (start != windowStart_ || end != windowEnd_)) {
        violation(Invariant::QuantumMonotonic, start,
                  "completed window [%llu,%llu) is not the open "
                  "window [%llu,%llu)",
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(end),
                  static_cast<unsigned long long>(windowStart_),
                  static_cast<unsigned long long>(windowEnd_));
    }
    const std::uint64_t observed =
        windowStragglers_.load(std::memory_order_relaxed);
    if (claimed_stragglers != observed) {
        violation(Invariant::StragglerAccounting, end,
                  "SyncStats claims %llu stragglers this quantum, "
                  "controller delivered %llu displaced frames",
                  static_cast<unsigned long long>(claimed_stragglers),
                  static_cast<unsigned long long>(observed));
    }
}

void
InvariantChecker::eventScheduledSlow(Tick when, Tick now)
{
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (when < now) {
        violation(Invariant::PastEvent, now,
                  "event scheduled at %llu behind queue now %llu",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(now));
    }
}

void
InvariantChecker::tickAdvanceSlow(Tick from, Tick to)
{
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (to < from) {
        violation(Invariant::TickMonotonic, from,
                  "node clock moved backwards %llu -> %llu",
                  static_cast<unsigned long long>(from),
                  static_cast<unsigned long long>(to));
    }
}

void
InvariantChecker::deliverySlow(DeliveryClass cls, Tick actual,
                               Tick ideal)
{
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (cls != DeliveryClass::OnTime)
        windowStragglers_.fetch_add(1, std::memory_order_relaxed);
    if (actual < ideal) {
        violation(Invariant::PastDelivery, actual,
                  "frame delivered at %llu before wire arrival %llu",
                  static_cast<unsigned long long>(actual),
                  static_cast<unsigned long long>(ideal));
    } else if (cls == DeliveryClass::OnTime && actual != ideal) {
        violation(Invariant::PastDelivery, actual,
                  "on-time delivery displaced: actual %llu != ideal "
                  "%llu (unaccounted lateness)",
                  static_cast<unsigned long long>(actual),
                  static_cast<unsigned long long>(ideal));
    }
}

void
InvariantChecker::mailboxMergeSlow(bool strictly_after,
                                   DeliveryClass cls, Tick when,
                                   Tick receiver_now)
{
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (!strictly_after) {
        violation(Invariant::MailboxOrder, when,
                  "merge batch not strictly canonically ordered at "
                  "tick %llu",
                  static_cast<unsigned long long>(when));
    }
    if (when < receiver_now && cls != DeliveryClass::Straggler) {
        violation(Invariant::MailboxOrder, when,
                  "%s delivery at %llu lands behind receiver at %llu",
                  cls == DeliveryClass::OnTime ? "on-time"
                                               : "next-quantum",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(receiver_now));
    }
}

void
InvariantChecker::shardMergeSlow(bool strictly_after,
                                 DeliveryClass cls, Tick when,
                                 Tick receiver_now)
{
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (!strictly_after) {
        violation(Invariant::ShardMergeOrder, when,
                  "shard merge not strictly canonically ordered at "
                  "tick %llu",
                  static_cast<unsigned long long>(when));
    }
    if (when < receiver_now && cls != DeliveryClass::Straggler) {
        violation(Invariant::ShardMergeOrder, when,
                  "%s shard-merged delivery at %llu lands behind "
                  "receiver at %llu",
                  cls == DeliveryClass::OnTime ? "on-time"
                                               : "next-quantum",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(receiver_now));
    }
}

std::uint64_t
InvariantChecker::violations(Invariant inv) const
{
    return counts_[static_cast<unsigned>(inv)].load(
        std::memory_order_relaxed);
}

std::uint64_t
InvariantChecker::totalViolations() const
{
    std::uint64_t total = 0;
    for (const auto &count : counts_)
        total += count.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
InvariantChecker::checksPerformed() const
{
    return checks_.load(std::memory_order_relaxed);
}

} // namespace aqsim::check
