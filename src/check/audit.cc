/**
 * @file
 * Audit reporting for the runtime invariant checker: names,
 * descriptions (with the paper conditions each enforces), and the
 * summary report printed by `aqsim_cli --check`.
 */

#include <sstream>

#include "check/invariants.hh"

namespace aqsim::check
{

namespace
{

constexpr std::size_t numNames = numInvariants;

const char *const names[numNames] = {
    "QuantumMonotonic", "QuantumBound",        "PastEvent",
    "TickMonotonic",    "PastDelivery",        "StragglerAccounting",
    "MailboxOrder",     "ShardMergeOrder",
};

const char *const descriptions[numNames] = {
    "quantum windows are contiguous, non-empty, and advance",
    "Q <= T whenever the run claims conservative mode (paper "
    "Section 3 safety rule)",
    "no event is scheduled behind its queue's current tick",
    "a node's simulated clock never moves backwards",
    "deliveries never precede the wire arrival; on-time means "
    "exactly on time (Fig. 3 semantics)",
    "SyncStats straggler counts equal the deliveries actually "
    "displaced (Fig. 3d accounting)",
    "threaded cross-quantum merge is strictly canonically ordered "
    "and never lands behind the receiver unaccounted",
    "each destination shard's post-exchange merge emits deliveries "
    "in strictly increasing (when, src, departTick) order, never "
    "behind the receiver unaccounted",
};

} // namespace

const char *
invariantName(Invariant inv)
{
    return names[static_cast<unsigned>(inv)];
}

const char *
invariantDescription(Invariant inv)
{
    return descriptions[static_cast<unsigned>(inv)];
}

std::string
InvariantChecker::report() const
{
    std::ostringstream out;
    out << "invariant audit: " << checksPerformed() << " checks, "
        << totalViolations() << " violations\n";
    for (std::size_t i = 0; i < numInvariants; ++i) {
        const auto inv = static_cast<Invariant>(i);
        out << "  " << (violations(inv) ? "FAIL" : "ok  ") << "  "
            << invariantName(inv) << ": " << violations(inv)
            << "  (" << invariantDescription(inv) << ")\n";
    }
    return out.str();
}

} // namespace aqsim::check
