/**
 * @file
 * Runtime invariant checker for the paper's safety conditions.
 *
 * The adaptive-quantum argument is a safety argument: conservative
 * synchronization (Q <= T) is causally exact, and the adaptive policy
 * trades that exactness for speed under *accounted* straggler
 * semantics (Fig. 3). This checker mechanically enforces the
 * conditions that argument rests on, at runtime, in every build:
 *
 *   QuantumMonotonic     quantum windows are contiguous and advance
 *   QuantumBound         Q <= T whenever the run claims conservative
 *   PastEvent            no event scheduled before its queue's now()
 *   TickMonotonic        a node's clock never moves backwards
 *   PastDelivery         deliveries never precede the wire arrival,
 *                        and "on time" means exactly on time
 *   StragglerAccounting  SyncStats straggler counts equal the
 *                        deliveries actually displaced
 *   MailboxOrder         the threaded engine's cross-quantum merge is
 *                        strictly canonically ordered and never lands
 *                        behind the receiver except as a Straggler
 *   ShardMergeOrder      each destination shard's post-exchange merge
 *                        emits its deliveries in strictly increasing
 *                        canonical (when, src, departTick) order and
 *                        never lands behind the receiver except as a
 *                        Straggler (per destination shard: the K×K
 *                        exchange never materializes a global stream)
 *
 * The checker is always compiled and off by default: every hook is a
 * relaxed atomic load and a branch until enabled. Enable it from code
 * (InvariantChecker::instance().setEnabled(true)), from the
 * AQSIM_CHECK environment variable ("1" to count, "fatal" to panic on
 * the first violation), or via aqsim_cli --check. Violations are
 * counted per invariant and traced under the debug::Check flag;
 * audit.cc renders the summary report.
 */

#ifndef AQSIM_CHECK_INVARIANTS_HH
#define AQSIM_CHECK_INVARIANTS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "base/types.hh"

namespace aqsim::check
{

/** The runtime-checked safety conditions (see file comment). */
enum class Invariant : unsigned
{
    QuantumMonotonic,
    QuantumBound,
    PastEvent,
    TickMonotonic,
    PastDelivery,
    StragglerAccounting,
    MailboxOrder,
    ShardMergeOrder,
};

/** Number of distinct invariants (array sizing). */
constexpr std::size_t numInvariants = 8;

/** Short stable identifier, e.g. "QuantumBound". */
const char *invariantName(Invariant inv);

/** One-line human description of the condition. */
const char *invariantDescription(Invariant inv);

/**
 * Mirror of net::DeliveryKind, redeclared here so check/ depends only
 * on base/ (net/ maps its enum when calling the hook).
 */
enum class DeliveryClass
{
    OnTime,
    Straggler,
    NextQuantum,
};

/**
 * Process-wide registry of invariant checks and violations.
 *
 * Thread-safe: hooks are called concurrently from ThreadedEngine
 * worker threads; all counters are atomics. The quantum-window hooks
 * (onQuantumOpen / onQuantumComplete) are only ever called by the
 * coordinating thread, with the workers parked at the barrier.
 */
class InvariantChecker
{
  public:
    /** The process-wide checker. */
    static InvariantChecker &instance();

    /** Turn checking on or off (off: hooks cost one load+branch). */
    void setEnabled(bool on);
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Panic on the first violation instead of counting (debugging). */
    void setFatal(bool on);
    bool fatal() const { return fatal_.load(std::memory_order_relaxed); }

    /** Zero all counters and forget quantum-window state. */
    void reset();

    /**
     * Apply the AQSIM_CHECK environment variable: "1"/"on" enables
     * counting, "fatal" additionally panics on the first violation.
     */
    void applyEnvironment();

    // ----- hook entry points (inline fast path when disabled) -----

    /**
     * A new run started: forget the previous run's quantum window so
     * contiguity is not asserted across runs. Coordinator thread only.
     */
    void
    onRunBegin()
    {
        if (enabled())
            runBeginSlow();
    }

    /**
     * A quantum window [start, end) opened. @p conservative is the
     * policy's claim (Synchronizer::conservative()); @p min_latency is
     * the controller's T. Coordinator thread only.
     */
    void
    onQuantumOpen(Tick start, Tick end, bool conservative,
                  Tick min_latency)
    {
        if (enabled())
            quantumOpenSlow(start, end, conservative, min_latency);
    }

    /**
     * The quantum [start, end) completed with @p claimed_stragglers
     * accounted by the controller since the window opened.
     * Coordinator thread only, workers parked.
     */
    void
    onQuantumComplete(Tick start, Tick end,
                      std::uint64_t claimed_stragglers)
    {
        if (enabled())
            quantumCompleteSlow(start, end, claimed_stragglers);
    }

    /** An event was scheduled at @p when while the queue was at @p now. */
    void
    onEventScheduled(Tick when, Tick now)
    {
        if (enabled())
            eventScheduledSlow(when, now);
    }

    /** A node clock moved from @p from to @p to (runOne/fastForward). */
    void
    onTickAdvance(Tick from, Tick to)
    {
        if (enabled())
            tickAdvanceSlow(from, to);
    }

    /**
     * The controller routed a frame: placed as @p cls, delivered at
     * @p actual, physically arriving at @p ideal.
     */
    void
    onDelivery(DeliveryClass cls, Tick actual, Tick ideal)
    {
        if (enabled())
            deliverySlow(cls, actual, ideal);
    }

    /**
     * The threaded engine merged one parked delivery at the barrier:
     * key order vs the previous delivery in the batch is
     * @p strictly_after; it lands at @p when with the receiver at
     * @p receiver_now, placed as @p cls.
     */
    void
    onMailboxMerge(bool strictly_after, DeliveryClass cls, Tick when,
                   Tick receiver_now)
    {
        if (enabled())
            mailboxMergeSlow(strictly_after, cls, when, receiver_now);
    }

    /**
     * A destination shard's post-exchange k-way merge emitted one
     * staged delivery: canonical key order vs the previous emission
     * in *that shard's* merge is @p strictly_after; it lands at
     * @p when with the receiver at @p receiver_now, placed as @p cls.
     * Called concurrently by every worker merging its own column
     * (both engines share this via DeliveryBatch::mergeShard); the
     * slow path touches only atomics.
     */
    void
    onShardMerge(bool strictly_after, DeliveryClass cls, Tick when,
                 Tick receiver_now)
    {
        if (enabled())
            shardMergeSlow(strictly_after, cls, when, receiver_now);
    }

    // ----- results -----

    std::uint64_t violations(Invariant inv) const;
    std::uint64_t totalViolations() const;
    /** Total hook invocations while enabled (coverage evidence). */
    std::uint64_t checksPerformed() const;

    /** Multi-line audit summary (implemented in audit.cc). */
    std::string report() const;

  private:
    InvariantChecker() = default;

    void runBeginSlow();
    void quantumOpenSlow(Tick start, Tick end, bool conservative,
                         Tick min_latency);
    void quantumCompleteSlow(Tick start, Tick end,
                             std::uint64_t claimed_stragglers);
    void eventScheduledSlow(Tick when, Tick now);
    void tickAdvanceSlow(Tick from, Tick to);
    void deliverySlow(DeliveryClass cls, Tick actual, Tick ideal);
    void mailboxMergeSlow(bool strictly_after, DeliveryClass cls,
                          Tick when, Tick receiver_now);
    void shardMergeSlow(bool strictly_after, DeliveryClass cls,
                        Tick when, Tick receiver_now);

    /** Record one violation: count, trace, optionally panic. */
    void violation(Invariant inv, Tick tick, const char *fmt, ...)
        __attribute__((format(printf, 4, 5)));

    std::atomic<bool> enabled_{false};
    std::atomic<bool> fatal_{false};
    std::array<std::atomic<std::uint64_t>, numInvariants> counts_{};
    std::atomic<std::uint64_t> checks_{0};

    /** Deliveries displaced (non-OnTime) since the window opened. */
    std::atomic<std::uint64_t> windowStragglers_{0};

    // Quantum-window tracking; coordinator thread only.
    bool haveWindow_ = false;
    Tick windowStart_ = 0;
    Tick windowEnd_ = 0;
};

} // namespace aqsim::check

#endif // AQSIM_CHECK_INVARIANTS_HH
