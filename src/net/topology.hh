/**
 * @file
 * Multi-hop network topologies as switch timing models.
 *
 * The paper's evaluation uses a single perfect switch, but notes that
 * "within a network controller, adding a timing component is a
 * straightforward task: we can model any kind of
 * network/switch/router topology by making packets take more or less
 * (simulated) time to reach their endpoints". This module provides
 * that: a TopologySwitch prices each frame by its hop count on a
 * configurable topology (ring, 2-D mesh/torus, two-level tree/fat
 * tree), with per-hop latency and per-link serialization.
 *
 * Because a topology raises the *minimum* network latency T between
 * some node pairs, it directly enlarges the safe quantum — the
 * lookahead observation from conservative PDES. minTraversal()
 * reports the smallest pair latency so the synchronizer's safety rule
 * stays correct.
 */

#ifndef AQSIM_NET_TOPOLOGY_HH
#define AQSIM_NET_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "net/switch_model.hh"

namespace aqsim::net
{

/** Supported topology shapes. */
enum class TopologyKind
{
    /** Single crossbar: every pair is one hop. */
    Star,
    /** Bidirectional ring: hops = ring distance. */
    Ring,
    /** 2-D mesh without wraparound: hops = Manhattan distance. */
    Mesh2D,
    /** 2-D torus: hops = wrapped Manhattan distance. */
    Torus2D,
    /**
     * Two-level tree: nodes attach to leaf switches of
     * `radix` ports; leaf switches attach to one root. Same-leaf
     * pairs take 1 hop, cross-leaf pairs take 3.
     */
    Tree2Level,
};

/** Parse "star", "ring", "mesh", "torus", "tree". */
TopologyKind parseTopology(const std::string &name);

/** Human-readable name of a topology kind. */
std::string topologyName(TopologyKind kind);

/** Configuration of a TopologySwitch. */
struct TopologyParams
{
    TopologyKind kind = TopologyKind::Star;
    /** Latency of each switch-to-switch / node-to-switch hop. */
    Tick hopLatency = 200;
    /** Link bandwidth in bytes per ns (serialization per hop chain
     * is paid once, on the narrowest link). */
    double bytesPerNs = 10.0;
    /** Ports per leaf switch (Tree2Level only). */
    std::size_t radix = 8;
    /** Model per-destination-port contention (output queueing). */
    bool contention = true;
};

/**
 * Hop-count based switch timing model over a fixed topology.
 */
class TopologySwitch : public SwitchModel
{
  public:
    TopologySwitch(std::size_t num_nodes, TopologyParams params);

    Tick egress(NodeId src, NodeId dst, std::uint32_t bytes,
                Tick ingress) override;

    Tick minTraversal() const override;

    void reset() override;

    /** Number of hops between two nodes on this topology. */
    std::size_t hops(NodeId src, NodeId dst) const;

    /** Largest hop count between any pair (network diameter). */
    std::size_t diameter() const;

    const TopologyParams &params() const { return params_; }

  private:
    std::size_t numNodes_;
    TopologyParams params_;
    /** 2-D grid extents (Mesh2D / Torus2D). */
    std::size_t gridX_ = 1;
    std::size_t gridY_ = 1;
    /** Output-port occupancy per destination node. */
    std::vector<Tick> portBusyUntil_;
};

} // namespace aqsim::net

#endif // AQSIM_NET_TOPOLOGY_HH
