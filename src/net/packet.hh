/**
 * @file
 * Network packets exchanged between simulated nodes.
 *
 * A Packet is the unit the network controller routes and times: one
 * link-layer (jumbo Ethernet) frame. Higher layers (mpi/) segment
 * messages into packets and attach an opaque payload for reassembly.
 */

#ifndef AQSIM_NET_PACKET_HH
#define AQSIM_NET_PACKET_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/types.hh"

namespace aqsim::net
{

/** Base class for opaque payloads carried by packets. */
class Payload
{
  public:
    virtual ~Payload() = default;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/** One link-layer frame in flight between two nodes. */
struct Packet
{
    /** Globally unique id (assigned by the controller at injection). */
    std::uint64_t id = 0;

    NodeId src = 0;
    NodeId dst = 0;

    /** Frame size in bytes (headers included), <= MTU. */
    std::uint32_t bytes = 0;

    /** Tick at which the sending application handed data to the NIC. */
    Tick sendTick = 0;

    /**
     * Tick at which the frame left the source NIC: sendTick plus queueing
     * and serialization delay. The originating timestamp the paper tags
     * packets with.
     */
    Tick departTick = 0;

    /**
     * The physically correct arrival tick at the destination:
     * departTick + switch latency + destination NIC latency. Delivery at
     * any later tick is a straggler effect.
     */
    Tick idealArrival = 0;

    /**
     * Set by the fault-injection layer when the frame was damaged on
     * the wire. The payload identity is untouched (we model shape, not
     * content); receivers treat the flag like a failed link-layer CRC
     * and discard the frame.
     */
    bool corrupted = false;

    /** Upper-layer payload (e.g. an MPI message fragment). */
    PayloadPtr payload;

    /** Human-readable one-line summary for debugging. */
    std::string toString() const;
};

using PacketPtr = std::shared_ptr<Packet>;

/** Convenience factory. */
PacketPtr makePacket(NodeId src, NodeId dst, std::uint32_t bytes,
                     Tick send_tick, PayloadPtr payload = nullptr);

} // namespace aqsim::net

#endif // AQSIM_NET_PACKET_HH
