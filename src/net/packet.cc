#include "net/packet.hh"

#include <cstdio>

namespace aqsim::net
{

std::string
Packet::toString() const
{
    char buf[176];
    std::snprintf(buf, sizeof(buf),
                  "pkt#%llu %u->%u %uB send=%llu depart=%llu "
                  "arrive=%llu%s",
                  static_cast<unsigned long long>(id), src, dst, bytes,
                  static_cast<unsigned long long>(sendTick),
                  static_cast<unsigned long long>(departTick),
                  static_cast<unsigned long long>(idealArrival),
                  corrupted ? " CORRUPT" : "");
    return buf;
}

PacketPtr
makePacket(NodeId src, NodeId dst, std::uint32_t bytes, Tick send_tick,
           PayloadPtr payload)
{
    auto pkt = std::make_shared<Packet>();
    pkt->src = src;
    pkt->dst = dst;
    pkt->bytes = bytes;
    pkt->sendTick = send_tick;
    pkt->departTick = send_tick;
    pkt->idealArrival = send_tick;
    pkt->payload = std::move(payload);
    return pkt;
}

} // namespace aqsim::net
