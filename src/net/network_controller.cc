#include "net/network_controller.hh"

#include <cmath>

#include "base/debug.hh"
#include "base/logging.hh"
#include "check/invariants.hh"
#include "ckpt/ckpt_io.hh"
#include "fault/fault_injector.hh"

namespace aqsim::net
{

namespace
{

/** Map the controller's DeliveryKind onto the checker's mirror enum. */
check::DeliveryClass
deliveryClass(DeliveryKind kind)
{
    switch (kind) {
      case DeliveryKind::Straggler:
        return check::DeliveryClass::Straggler;
      case DeliveryKind::NextQuantum:
        return check::DeliveryClass::NextQuantum;
      case DeliveryKind::OnTime:
        break;
    }
    return check::DeliveryClass::OnTime;
}

} // namespace

Tick
NicParams::serialization(std::uint32_t bytes) const
{
    AQSIM_ASSERT(bytesPerNs > 0.0);
    return static_cast<Tick>(
        std::ceil(static_cast<double>(bytes) / bytesPerNs));
}

NetworkController::NetworkController(std::size_t num_nodes,
                                     NetworkParams params,
                                     stats::Group &stats_parent)
    : numNodes_(num_nodes), params_(std::move(params)),
      statsGroup_(stats_parent.addGroup("network")),
      statPackets_(statsGroup_.add<stats::Scalar>(
          "packets", "frames routed through the controller")),
      statBytes_(statsGroup_.add<stats::Scalar>(
          "bytes", "bytes routed through the controller")),
      statStragglers_(statsGroup_.add<stats::Scalar>(
          "stragglers", "frames delivered after their ideal arrival")),
      statNextQuantum_(statsGroup_.add<stats::Scalar>(
          "nextQuantumDeliveries",
          "frames queued to the next quantum boundary (Fig. 3d)")),
      statLateness_(statsGroup_.add<stats::Log2Distribution>(
          "latenessTicks", "straggler lateness (actual - ideal), ticks")),
      statQuantumPackets_(statsGroup_.add<stats::Average>(
          "quantumPackets", "frames observed per quantum"))
{
    AQSIM_ASSERT(num_nodes >= 1);
    switch_ = params_.switchModel
                  ? params_.switchModel
                  : std::make_shared<PerfectSwitch>();
}

void
NetworkController::setScheduler(DeliveryScheduler *scheduler)
{
    base::MutexLock lock(injectMutex_);
    scheduler_ = scheduler;
}

void
NetworkController::setFaultInjector(fault::FaultInjector *faults)
{
    base::MutexLock lock(injectMutex_);
    faults_ = faults;
}

void
NetworkController::addObserver(PacketObserver observer)
{
    base::MutexLock lock(injectMutex_);
    observers_.push_back(std::move(observer));
}

Tick
NetworkController::minNetworkLatency() const
{
    // Locked only for the switch_ pointee read (minTraversal is
    // immutable timing config, but the uniform discipline is cheaper
    // than a special case: this runs once per quantum at most).
    base::MutexLock lock(injectMutex_);
    // Smallest possible frame: assume 64-byte minimum Ethernet frame.
    constexpr std::uint32_t min_frame = 64;
    return params_.nic.txLatency + switch_->minTraversal() +
           params_.nic.rxLatency + params_.nic.serialization(min_frame);
}

void
NetworkController::beginQuantum()
{
    base::MutexLock lock(injectMutex_);
    statQuantumPackets_.sample(
        static_cast<double>(packetsThisQuantum_));
    packetsThisQuantum_ = 0;
}

void
NetworkController::inject(const PacketPtr &pkt)
{
    base::MutexLock lock(injectMutex_);
    AQSIM_ASSERT(scheduler_ != nullptr);
    AQSIM_ASSERT(pkt->src < numNodes_);
    AQSIM_ASSERT(pkt->departTick >= pkt->sendTick);

    if (pkt->dst == broadcastNode) {
        for (NodeId n = 0; n < numNodes_; ++n) {
            if (n == pkt->src)
                continue;
            auto copy = std::make_shared<Packet>(*pkt);
            copy->dst = n;
            routeOne(copy);
        }
        return;
    }
    AQSIM_ASSERT(pkt->dst < numNodes_);
    AQSIM_ASSERT(pkt->dst != pkt->src);
    routeOne(pkt);
}

void
NetworkController::routeOne(const PacketPtr &pkt)
{
    if (!faults_) {
        deliverOne(pkt, 0, 0);
        return;
    }
    const auto d =
        faults_->decide(pkt->src, pkt->dst, pkt->departTick);
    if (d.drop) {
        // The frame transited the controller before dying on the
        // wire, so it still counts as observed traffic for the
        // adaptive quantum signal — but it is never delivered.
        ++packetsThisQuantum_;
        ++totalDropped_;
        AQSIM_DPRINTF(Packet, pkt->departTick, "net", "%s -> DROPPED",
                      pkt->toString().c_str());
        return;
    }
    if (d.corrupt)
        pkt->corrupted = true;
    deliverOne(pkt, d.jitter, d.notBefore);
    if (d.duplicate) {
        auto copy = std::make_shared<Packet>(*pkt);
        deliverOne(copy, d.duplicateJitter, d.notBefore);
    }
}

void
NetworkController::deliverOne(const PacketPtr &pkt, Tick extra_delay,
                              Tick not_before)
{
    pkt->id = nextPacketId_++;
    pkt->idealArrival =
        switch_->egress(pkt->src, pkt->dst, pkt->bytes, pkt->departTick) +
        params_.nic.rxLatency + extra_delay;
    if (pkt->idealArrival < not_before)
        pkt->idealArrival = not_before;

    DeliveryKind kind = DeliveryKind::OnTime;
    const Tick actual = scheduler_->place(pkt, kind);
    check::InvariantChecker::instance().onDelivery(
        deliveryClass(kind), actual, pkt->idealArrival);
    AQSIM_ASSERT(actual >= pkt->idealArrival ||
                 kind == DeliveryKind::OnTime);

    ++packetsThisQuantum_;
    ++totalPackets_;
    ++statPackets_;
    statBytes_ += pkt->bytes;

    if (kind != DeliveryKind::OnTime) {
        const auto lateness =
            static_cast<std::uint64_t>(actual - pkt->idealArrival);
        totalLatenessTicks_ += lateness;
        statLateness_.sample(lateness);
        ++totalStragglers_;
        ++statStragglers_;
        if (kind == DeliveryKind::NextQuantum) {
            ++totalNextQuantum_;
            ++statNextQuantum_;
        }
    }

    AQSIM_DPRINTF(Packet, actual, "net", "%s -> delivered@%llu%s",
                  pkt->toString().c_str(),
                  static_cast<unsigned long long>(actual),
                  kind == DeliveryKind::OnTime
                      ? ""
                      : (kind == DeliveryKind::Straggler
                             ? " STRAGGLER"
                             : " NEXT-QUANTUM"));

    for (const auto &observer : observers_)
        observer(*pkt, actual);
}

NetworkController::RemoteDeltas
NetworkController::snapshotCounters() const
{
    base::MutexLock lock(injectMutex_);
    RemoteDeltas s;
    s.idsAssigned = nextPacketId_;
    s.packetsThisQuantum = packetsThisQuantum_;
    s.totalPackets = totalPackets_;
    s.totalStragglers = totalStragglers_;
    s.totalNextQuantum = totalNextQuantum_;
    s.totalLatenessTicks = totalLatenessTicks_;
    s.totalDropped = totalDropped_;
    s.bytes = static_cast<std::uint64_t>(statBytes_.value());
    return s;
}

void
NetworkController::absorbRemoteDeltas(const RemoteDeltas &d)
{
    base::MutexLock lock(injectMutex_);
    nextPacketId_ += d.idsAssigned;
    packetsThisQuantum_ += d.packetsThisQuantum;
    totalPackets_ += d.totalPackets;
    totalStragglers_ += d.totalStragglers;
    totalNextQuantum_ += d.totalNextQuantum;
    totalLatenessTicks_ += d.totalLatenessTicks;
    totalDropped_ += d.totalDropped;
    statPackets_ += static_cast<double>(d.totalPackets);
    statBytes_ += static_cast<double>(d.bytes);
    statStragglers_ += static_cast<double>(d.totalStragglers);
    statNextQuantum_ += static_cast<double>(d.totalNextQuantum);
}

void
NetworkController::reset()
{
    base::MutexLock lock(injectMutex_);
    // Drop the previous run's scheduler binding: the engine-side
    // scheduler object dies when run() returns, so carrying the
    // pointer across a reset turns the first inject of a re-run
    // without an engine into a dangling call. Each engine installs a
    // fresh scheduler at run start.
    scheduler_ = nullptr;
    switch_->reset();
    nextPacketId_ = 1;
    packetsThisQuantum_ = 0;
    totalPackets_ = totalStragglers_ = totalNextQuantum_ = 0;
    totalLatenessTicks_ = 0;
    totalDropped_ = 0;
    // The registered stats::* objects accumulate alongside the plain
    // counters and must be cleared with them, or repeated runs in one
    // process report stale packet/straggler/lateness numbers.
    statsGroup_.resetAll();
    if (faults_)
        faults_->reset();
}

void
NetworkController::serialize(ckpt::Writer &w) const
{
    base::MutexLock lock(injectMutex_);
    w.u64(nextPacketId_);
    w.u64(packetsThisQuantum_);
    w.u64(totalPackets_);
    w.u64(totalStragglers_);
    w.u64(totalNextQuantum_);
    w.u64(totalLatenessTicks_);
    w.u64(totalDropped_);
    switch_->serialize(w);
}

void
NetworkController::deserialize(ckpt::Reader &r)
{
    base::MutexLock lock(injectMutex_);
    nextPacketId_ = r.u64();
    packetsThisQuantum_ = r.u64();
    totalPackets_ = r.u64();
    totalStragglers_ = r.u64();
    totalNextQuantum_ = r.u64();
    totalLatenessTicks_ = r.u64();
    totalDropped_ = r.u64();
    switch_->deserialize(r);
}

std::uint64_t
NetworkController::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::net
