/**
 * @file
 * The centralized network controller.
 *
 * This is the paper's "network controller": the component every node
 * NIC bridges its simulated packets to, "responsible for routing packets
 * to and from the simulated nodes". It acts as a perfect link-layer
 * switch functionally, adds timing through a pluggable SwitchModel, and
 * is the observation point for the adaptive quantum algorithm (it counts
 * the packets seen in each quantum).
 *
 * Placement of a delivery into the destination node is delegated to a
 * DeliveryScheduler implemented by the execution engine, because only
 * the engine knows how far the receiver has progressed in host time
 * (the straggler question).
 */

#ifndef AQSIM_NET_NETWORK_CONTROLLER_HH
#define AQSIM_NET_NETWORK_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/mutex.hh"
#include "base/types.hh"
#include "net/packet.hh"
#include "net/switch_model.hh"
#include "stats/histogram.hh"
#include "stats/stats.hh"

namespace aqsim::ckpt
{
class Reader;
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::fault
{
class FaultInjector;
} // namespace aqsim::fault

namespace aqsim::net
{

/** How a delivery was placed relative to its ideal arrival tick. */
enum class DeliveryKind
{
    /** Scheduled at the exact ideal arrival tick. */
    OnTime,
    /**
     * The receiver had already simulated past the ideal arrival; the
     * packet was delivered at the receiver's current position
     * (a straggler, paper Fig. 3b/3c discussion).
     */
    Straggler,
    /**
     * The receiver had already finished its quantum; the packet was
     * queued to the next quantum boundary (paper Fig. 3d: "latency
     * snaps to next quantum").
     */
    NextQuantum,
};

/**
 * Engine-side placement of packet deliveries. The controller computes
 * *when* a packet should arrive; the scheduler knows *where the receiver
 * is* and places the corresponding receive event.
 */
class DeliveryScheduler
{
  public:
    virtual ~DeliveryScheduler() = default;

    /**
     * Place the delivery of @p pkt into node pkt->dst. pkt->idealArrival
     * holds the physically correct arrival tick.
     *
     * @param kind (out) how the delivery was placed
     * @return the actual delivery tick (>= any tick the receiver has
     *         already simulated)
     */
    virtual Tick place(const PacketPtr &pkt, DeliveryKind &kind) = 0;
};

/** Observer of routed packets (tracing / visualization). */
using PacketObserver =
    std::function<void(const Packet &, Tick actual_tick)>;

/** Fixed timing parameters of every node NIC (paper section 4). */
struct NicParams
{
    /** Host-to-wire latency of the sending NIC. */
    Tick txLatency = 500;
    /** Wire-to-host latency of the receiving NIC. */
    Tick rxLatency = 500;
    /** Serialization bandwidth in bytes per ns (10.0 = 10 GB/s). */
    double bytesPerNs = 10.0;
    /** Maximum frame size (jumbo Ethernet). */
    std::uint32_t mtu = 9000;
    /** Per-frame software/DMA overhead on the send side. */
    Tick txOverhead = 100;

    /** Serialization delay of a frame of @p bytes. */
    Tick serialization(std::uint32_t bytes) const;
};

/** Configuration of the network controller. */
struct NetworkParams
{
    NicParams nic;
    /** nullptr selects a PerfectSwitch. */
    std::shared_ptr<SwitchModel> switchModel;
};

/**
 * Centralized functional + timing network simulator for the cluster.
 */
class NetworkController
{
  public:
    /**
     * @param num_nodes cluster size
     * @param params NIC + switch timing configuration
     * @param stats_parent group under which controller stats register
     */
    NetworkController(std::size_t num_nodes, NetworkParams params,
                      stats::Group &stats_parent);

    /** Bind the engine's delivery scheduler (required before inject). */
    void setScheduler(DeliveryScheduler *scheduler)
        AQSIM_EXCLUDES(injectMutex_);

    /** Currently bound scheduler (nullptr after reset; tests). */
    DeliveryScheduler *
    scheduler() const AQSIM_EXCLUDES(injectMutex_)
    {
        base::MutexLock lock(injectMutex_);
        return scheduler_;
    }

    /**
     * Interpose a fault injector between the NICs and the switch
     * (nullptr = perfect network). The controller consults it for every
     * unicast route while holding the injection mutex, so the injector
     * needs no locking of its own.
     */
    void setFaultInjector(fault::FaultInjector *faults)
        AQSIM_EXCLUDES(injectMutex_);

    /** Register an observer called for every routed packet. */
    void addObserver(PacketObserver observer)
        AQSIM_EXCLUDES(injectMutex_);

    /**
     * Inject a frame from a source NIC. pkt->departTick must be set by
     * the NIC (send tick + tx overhead + serialization + tx latency).
     * Broadcast destinations are replicated to every other node.
     * Thread-safe: concurrent injections from node threads serialize
     * on an internal mutex (the ThreadedEngine path).
     */
    void inject(const PacketPtr &pkt) AQSIM_EXCLUDES(injectMutex_);

    /**
     * @return the minimum possible end-to-end latency T; quanta
     * Q <= T are safe (straggler-free), per the paper's safety rule.
     */
    Tick minNetworkLatency() const AQSIM_EXCLUDES(injectMutex_);

    /** Start a new quantum: reset the per-quantum packet counter. */
    void beginQuantum() AQSIM_EXCLUDES(injectMutex_);

    /** @return packets routed since the last beginQuantum(). */
    std::uint64_t
    packetsThisQuantum() const AQSIM_EXCLUDES(injectMutex_)
    {
        base::MutexLock lock(injectMutex_);
        return packetsThisQuantum_;
    }

    /** Lifetime counters (for tests and the harness). */
    std::uint64_t
    totalPackets() const AQSIM_EXCLUDES(injectMutex_)
    {
        base::MutexLock lock(injectMutex_);
        return totalPackets_;
    }

    std::uint64_t
    totalStragglers() const AQSIM_EXCLUDES(injectMutex_)
    {
        base::MutexLock lock(injectMutex_);
        return totalStragglers_;
    }

    std::uint64_t
    totalNextQuantum() const AQSIM_EXCLUDES(injectMutex_)
    {
        base::MutexLock lock(injectMutex_);
        return totalNextQuantum_;
    }

    /** Frames dropped by the fault layer (0 on a perfect network). */
    std::uint64_t
    totalDropped() const AQSIM_EXCLUDES(injectMutex_)
    {
        base::MutexLock lock(injectMutex_);
        return totalDropped_;
    }

    /** Sum over stragglers of (actual - ideal) delivery ticks. */
    std::uint64_t
    totalLatenessTicks() const AQSIM_EXCLUDES(injectMutex_)
    {
        base::MutexLock lock(injectMutex_);
        return totalLatenessTicks_;
    }

    std::size_t numNodes() const { return numNodes_; }
    const NicParams &nicParams() const { return params_.nic; }

    /**
     * Cross-process counter aggregation (DistributedEngine): one
     * peer's counter values, snapshotted at a quantum edge. A peer
     * subtracts two snapshots to get its per-quantum advance and
     * ships that with its exchange; the coordinator absorbs it into
     * its replica controller so the adaptive policy and checkpoint
     * images see the global counts. idsAssigned tracks nextPacketId_
     * (the *count* of ids a peer assigned is order-independent even
     * though the ids themselves are not). Straggler fields are zero
     * in any conservative run but carried so the mapping is total.
     */
    struct RemoteDeltas
    {
        std::uint64_t idsAssigned = 0;
        std::uint64_t packetsThisQuantum = 0;
        std::uint64_t totalPackets = 0;
        std::uint64_t totalStragglers = 0;
        std::uint64_t totalNextQuantum = 0;
        std::uint64_t totalLatenessTicks = 0;
        std::uint64_t totalDropped = 0;
        std::uint64_t bytes = 0;
    };

    /** Snapshot every RemoteDeltas counter at its current value. */
    RemoteDeltas snapshotCounters() const AQSIM_EXCLUDES(injectMutex_);

    /**
     * Absorb one peer's per-quantum counter advance (counters and the
     * scalar stats; statLateness_ is a distribution and cannot absorb
     * an aggregate — conservative runs never sample it).
     */
    void absorbRemoteDeltas(const RemoteDeltas &d)
        AQSIM_EXCLUDES(injectMutex_);

    /** Reset all per-run state (switch ports, counters). */
    void reset() AQSIM_EXCLUDES(injectMutex_);

    /**
     * Checkpoint support. Frames are routed to destination event
     * queues at injection time, so at a quantum boundary the
     * controller holds no in-flight frames of its own — only the
     * packet-id counter, routing counters and switch port occupancy.
     */
    void serialize(ckpt::Writer &w) const AQSIM_EXCLUDES(injectMutex_);

    /** Restore state persisted by serialize(). */
    void deserialize(ckpt::Reader &r) AQSIM_EXCLUDES(injectMutex_);

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const AQSIM_EXCLUDES(injectMutex_);

  private:
    /** Route a single unicast frame (fault decisions + delivery). */
    void routeOne(const PacketPtr &pkt) AQSIM_REQUIRES(injectMutex_);

    /** Time and place one delivery (a surviving frame or a copy). */
    void deliverOne(const PacketPtr &pkt, Tick extra_delay,
                    Tick not_before) AQSIM_REQUIRES(injectMutex_);

    std::size_t numNodes_;
    /**
     * Serializes concurrent injections (the ThreadedEngine path) and
     * guards every mutable routing structure below. Coordinator-only
     * phases (reset, quantum boundaries, checkpointing) take it too:
     * uncontended acquisition is cheap and keeps the lock discipline
     * uniform enough for the analysis to prove.
     */
    mutable base::Mutex injectMutex_;
    NetworkParams params_;
    /** Pointer fixed at construction; pointee (port occupancy) is
     * mutated while routing, hence PT_GUARDED. */
    std::shared_ptr<SwitchModel> switch_
        AQSIM_PT_GUARDED_BY(injectMutex_);
    DeliveryScheduler *scheduler_ AQSIM_GUARDED_BY(injectMutex_) =
        nullptr;
    fault::FaultInjector *faults_ AQSIM_GUARDED_BY(injectMutex_) =
        nullptr;
    std::vector<PacketObserver> observers_
        AQSIM_GUARDED_BY(injectMutex_);

    std::uint64_t nextPacketId_ AQSIM_GUARDED_BY(injectMutex_) = 1;
    std::uint64_t packetsThisQuantum_ AQSIM_GUARDED_BY(injectMutex_) = 0;
    std::uint64_t totalPackets_ AQSIM_GUARDED_BY(injectMutex_) = 0;
    std::uint64_t totalStragglers_ AQSIM_GUARDED_BY(injectMutex_) = 0;
    std::uint64_t totalNextQuantum_ AQSIM_GUARDED_BY(injectMutex_) = 0;
    std::uint64_t totalLatenessTicks_ AQSIM_GUARDED_BY(injectMutex_) = 0;
    std::uint64_t totalDropped_ AQSIM_GUARDED_BY(injectMutex_) = 0;

    stats::Group &statsGroup_;
    stats::Scalar &statPackets_;
    stats::Scalar &statBytes_;
    stats::Scalar &statStragglers_;
    stats::Scalar &statNextQuantum_;
    stats::Log2Distribution &statLateness_;
    stats::Average &statQuantumPackets_;
};

} // namespace aqsim::net

#endif // AQSIM_NET_NETWORK_CONTROLLER_HH
