/**
 * @file
 * Timing models for the simulated network switch.
 *
 * The network controller is the paper's centralized functional switch;
 * a SwitchModel adds the timing component ("we can model any kind of
 * network/switch/router topology by making packets take more or less
 * simulated time to reach their endpoints").
 *
 * PerfectSwitch reproduces the paper's evaluation configuration:
 * infinite bandwidth, zero latency — the most aggressive (straggler-
 * heavy) case. StoreAndForwardSwitch adds per-output-port serialization
 * and a fixed traversal latency for ablation studies.
 */

#ifndef AQSIM_NET_SWITCH_MODEL_HH
#define AQSIM_NET_SWITCH_MODEL_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace aqsim::ckpt
{
class Reader;
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::net
{

/** Abstract switch timing model. */
class SwitchModel
{
  public:
    virtual ~SwitchModel() = default;

    /**
     * Compute when a frame that enters the switch at @p ingress
     * becomes available at the destination port.
     *
     * The model may keep per-port state (occupancy), so calls must be
     * made in nondecreasing ingress order per port for contention to be
     * meaningful; the controller guarantees injection order only within
     * a quantum, which is the same fidelity the paper's controller has.
     *
     * @param src source node
     * @param dst destination node
     * @param bytes frame size
     * @param ingress tick the frame enters the switch
     * @return tick the frame exits toward dst
     */
    virtual Tick egress(NodeId src, NodeId dst, std::uint32_t bytes,
                        Tick ingress) = 0;

    /**
     * @return a lower bound on switch traversal time for any frame;
     * contributes to the minimum network latency T that bounds the safe
     * synchronization quantum.
     */
    virtual Tick minTraversal() const = 0;

    /** Reset per-port state between runs. */
    virtual void reset() {}

    /** Checkpoint support: persist per-port timing state (if any). */
    virtual void serialize(ckpt::Writer &) const {}

    /** Restore state persisted by serialize(). */
    virtual void deserialize(ckpt::Reader &) {}
};

/** Zero-latency, infinite-bandwidth switch (the paper's setup). */
class PerfectSwitch : public SwitchModel
{
  public:
    Tick
    egress(NodeId, NodeId, std::uint32_t, Tick ingress) override
    {
        return ingress;
    }

    Tick minTraversal() const override { return 0; }
};

/**
 * Output-queued store-and-forward switch: a frame is fully received,
 * then serialized onto the destination port at the port bandwidth after
 * a fixed traversal latency; frames to the same destination queue up.
 */
class StoreAndForwardSwitch : public SwitchModel
{
  public:
    /**
     * @param num_ports number of nodes attached
     * @param bytes_per_ns port bandwidth (e.g. 10.0 for 10 GB/s)
     * @param traversal fixed switching latency per frame
     */
    StoreAndForwardSwitch(std::size_t num_ports, double bytes_per_ns,
                          Tick traversal);

    Tick egress(NodeId src, NodeId dst, std::uint32_t bytes,
                Tick ingress) override;

    Tick minTraversal() const override { return traversal_; }

    void reset() override;

    void serialize(ckpt::Writer &w) const override;
    void deserialize(ckpt::Reader &r) override;

  private:
    double bytesPerNs_;
    Tick traversal_;
    /** Tick until which each output port is busy serializing. */
    std::vector<Tick> portBusyUntil_;
};

} // namespace aqsim::net

#endif // AQSIM_NET_SWITCH_MODEL_HH
