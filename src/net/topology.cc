#include "net/topology.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace aqsim::net
{

TopologyKind
parseTopology(const std::string &name)
{
    if (name == "star")
        return TopologyKind::Star;
    if (name == "ring")
        return TopologyKind::Ring;
    if (name == "mesh")
        return TopologyKind::Mesh2D;
    if (name == "torus")
        return TopologyKind::Torus2D;
    if (name == "tree")
        return TopologyKind::Tree2Level;
    fatal("unknown topology '%s' (star/ring/mesh/torus/tree)",
          name.c_str());
}

std::string
topologyName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Star:
        return "star";
      case TopologyKind::Ring:
        return "ring";
      case TopologyKind::Mesh2D:
        return "mesh";
      case TopologyKind::Torus2D:
        return "torus";
      case TopologyKind::Tree2Level:
        return "tree";
    }
    panic("unreachable topology kind");
}

TopologySwitch::TopologySwitch(std::size_t num_nodes,
                               TopologyParams params)
    : numNodes_(num_nodes), params_(params),
      portBusyUntil_(num_nodes, 0)
{
    AQSIM_ASSERT(num_nodes >= 1);
    AQSIM_ASSERT(params_.hopLatency > 0);
    AQSIM_ASSERT(params_.bytesPerNs > 0.0);
    if (params_.kind == TopologyKind::Mesh2D ||
        params_.kind == TopologyKind::Torus2D) {
        // Near-square factorization, gridX_ >= gridY_.
        gridY_ = 1;
        for (std::size_t a = 1;
             a * a <= num_nodes; ++a) {
            if (num_nodes % a == 0)
                gridY_ = a;
        }
        gridX_ = num_nodes / gridY_;
    }
    if (params_.kind == TopologyKind::Tree2Level)
        AQSIM_ASSERT(params_.radix >= 1);
}

std::size_t
TopologySwitch::hops(NodeId src, NodeId dst) const
{
    AQSIM_ASSERT(src < numNodes_ && dst < numNodes_);
    if (src == dst)
        return 0;
    switch (params_.kind) {
      case TopologyKind::Star:
        return 1;
      case TopologyKind::Ring: {
        const std::size_t fwd = (dst + numNodes_ - src) % numNodes_;
        return std::min(fwd, numNodes_ - fwd);
      }
      case TopologyKind::Mesh2D: {
        const auto dx = static_cast<std::ptrdiff_t>(src % gridX_) -
                        static_cast<std::ptrdiff_t>(dst % gridX_);
        const auto dy = static_cast<std::ptrdiff_t>(src / gridX_) -
                        static_cast<std::ptrdiff_t>(dst / gridX_);
        return static_cast<std::size_t>(std::abs(dx) + std::abs(dy));
      }
      case TopologyKind::Torus2D: {
        const std::size_t ax =
            (dst % gridX_ + gridX_ - src % gridX_) % gridX_;
        const std::size_t ay =
            (dst / gridX_ + gridY_ - src / gridX_) % gridY_;
        return std::min(ax, gridX_ - ax) + std::min(ay, gridY_ - ay);
      }
      case TopologyKind::Tree2Level:
        return src / params_.radix == dst / params_.radix ? 1 : 3;
    }
    panic("unreachable topology kind");
}

std::size_t
TopologySwitch::diameter() const
{
    std::size_t max_hops = 0;
    for (NodeId a = 0; a < numNodes_; ++a)
        for (NodeId b = 0; b < numNodes_; ++b)
            max_hops = std::max(max_hops, hops(a, b));
    return max_hops;
}

Tick
TopologySwitch::egress(NodeId src, NodeId dst, std::uint32_t bytes,
                       Tick ingress)
{
    const std::size_t hop_count = std::max<std::size_t>(1,
                                                        hops(src, dst));
    const Tick path_latency =
        params_.hopLatency * static_cast<Tick>(hop_count);
    const auto ser = static_cast<Tick>(
        std::ceil(static_cast<double>(bytes) / params_.bytesPerNs));

    if (!params_.contention)
        return ingress + path_latency + ser;

    // Output-queued approximation: the frame occupies the destination
    // port for its serialization time after traversing the path.
    const Tick start = std::max(ingress + path_latency,
                                portBusyUntil_[dst]);
    portBusyUntil_[dst] = start + ser;
    return portBusyUntil_[dst];
}

Tick
TopologySwitch::minTraversal() const
{
    // The closest pair is one hop away on every supported topology.
    return params_.hopLatency;
}

void
TopologySwitch::reset()
{
    std::fill(portBusyUntil_.begin(), portBusyUntil_.end(), 0);
}

} // namespace aqsim::net
