#include "net/switch_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace aqsim::net
{

StoreAndForwardSwitch::StoreAndForwardSwitch(std::size_t num_ports,
                                             double bytes_per_ns,
                                             Tick traversal)
    : bytesPerNs_(bytes_per_ns), traversal_(traversal),
      portBusyUntil_(num_ports, 0)
{
    AQSIM_ASSERT(bytes_per_ns > 0.0);
}

Tick
StoreAndForwardSwitch::egress(NodeId, NodeId dst, std::uint32_t bytes,
                              Tick ingress)
{
    AQSIM_ASSERT(dst < portBusyUntil_.size());
    const Tick start =
        std::max(ingress + traversal_, portBusyUntil_[dst]);
    const auto ser = static_cast<Tick>(
        std::ceil(static_cast<double>(bytes) / bytesPerNs_));
    portBusyUntil_[dst] = start + ser;
    return portBusyUntil_[dst];
}

void
StoreAndForwardSwitch::reset()
{
    std::fill(portBusyUntil_.begin(), portBusyUntil_.end(), 0);
}

} // namespace aqsim::net
