#include "net/switch_model.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::net
{

StoreAndForwardSwitch::StoreAndForwardSwitch(std::size_t num_ports,
                                             double bytes_per_ns,
                                             Tick traversal)
    : bytesPerNs_(bytes_per_ns), traversal_(traversal),
      portBusyUntil_(num_ports, 0)
{
    AQSIM_ASSERT(bytes_per_ns > 0.0);
}

Tick
StoreAndForwardSwitch::egress(NodeId, NodeId dst, std::uint32_t bytes,
                              Tick ingress)
{
    AQSIM_ASSERT(dst < portBusyUntil_.size());
    const Tick start =
        std::max(ingress + traversal_, portBusyUntil_[dst]);
    const auto ser = static_cast<Tick>(
        std::ceil(static_cast<double>(bytes) / bytesPerNs_));
    portBusyUntil_[dst] = start + ser;
    return portBusyUntil_[dst];
}

void
StoreAndForwardSwitch::reset()
{
    std::fill(portBusyUntil_.begin(), portBusyUntil_.end(), 0);
}

void
StoreAndForwardSwitch::serialize(ckpt::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(portBusyUntil_.size()));
    for (Tick t : portBusyUntil_)
        w.u64(t);
}

void
StoreAndForwardSwitch::deserialize(ckpt::Reader &r)
{
    const std::uint32_t n = r.u32();
    if (!r.ok())
        return;
    if (n != portBusyUntil_.size()) {
        r.fail("switch port count mismatch");
        return;
    }
    for (Tick &t : portBusyUntil_)
        t = r.u64();
}

} // namespace aqsim::net
