#include "sim/process.hh"

#include <exception>

namespace aqsim::sim
{

Process
Process::promise_type::get_return_object()
{
    return Process(
        std::coroutine_handle<promise_type>::from_promise(*this));
}

void
Process::promise_type::unhandled_exception()
{
    // Workload coroutines are simulator-internal code; an escaped
    // exception is a bug, not a user configuration error.
    try {
        std::rethrow_exception(std::current_exception());
    } catch (const std::exception &e) {
        panic("unhandled exception in simulated process: %s", e.what());
    } catch (...) {
        panic("unhandled non-standard exception in simulated process");
    }
}

} // namespace aqsim::sim
