/**
 * @file
 * Per-node discrete-event kernel.
 *
 * Each simulated node owns one EventQueue. Events are callbacks ordered
 * by (tick, priority, insertion sequence); the sequence number makes
 * same-tick ordering deterministic, which the reproducibility contract
 * of the library depends on.
 *
 * The queue deliberately exposes single-step execution (runOne) in
 * addition to runUntil: the SequentialEngine interleaves events from
 * many nodes in host-time order, so it must be able to advance a node
 * one event at a time and inspect the next pending tick.
 *
 * Internals are built for throughput (this is the hottest loop in the
 * simulator — see docs/performance.md):
 *
 *  - event records live in a chunked slab with a free list, so
 *    steady-state scheduling performs no allocations; callbacks are
 *    stored in the record via SmallCallback (small-buffer optimized),
 *  - EventId handles carry a slot index plus a generation counter, so
 *    deschedule() is an O(1) slab probe instead of a map lookup,
 *  - ordering uses a 4-ary min-heap in structure-of-arrays layout:
 *    sift comparisons touch only a contiguous array of 24-byte
 *    (tick, priority, seq) keys, while the slab slot/generation pair —
 *    needed only on dispatch and stale-pruning — lives in a parallel
 *    array; cancelled entries are skipped lazily at the head.
 */

#ifndef AQSIM_SIM_EVENT_QUEUE_HH
#define AQSIM_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "base/types.hh"
#include "sim/small_callback.hh"

namespace aqsim::ckpt
{
class Writer;
} // namespace aqsim::ckpt

namespace aqsim::sim
{

/** Scheduling priorities for same-tick ordering (lower runs first). */
enum class Priority : int
{
    /** Packet delivery from the network; runs before app reactions. */
    Delivery = -10,
    /** Default for application and device events. */
    Default = 0,
    /** Bookkeeping that must observe a completed tick. */
    Late = 10,
};

/**
 * A deterministic, cancellable discrete-event queue for one node.
 */
class EventQueue
{
  public:
    /**
     * Opaque handle for cancelling a scheduled event: the record's
     * slab slot in the high 32 bits, its generation in the low 32.
     * Generations start at 1, so no live handle is ever 0.
     */
    using EventId = std::uint64_t;

    /** Sentinel returned when no event is scheduled. */
    static constexpr EventId invalidEvent = 0;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callable at an absolute tick. The callable is
     * constructed directly into a pooled event record; anything up to
     * SmallCallback::inlineCapacity bytes avoids the heap entirely.
     *
     * @param when absolute tick, must be >= now()
     * @param fn callable to run
     * @param prio same-tick ordering class
     * @return handle usable with deschedule()
     */
    template <typename F>
    EventId
    schedule(Tick when, F &&fn, Priority prio = Priority::Default)
    {
        scheduleChecks(when);
        const std::uint32_t slot = allocSlot();
        Record &rec = *recordAt(slot);
        rec.cb.emplace(std::forward<F>(fn));
        pushHeap(HeapKey{when, static_cast<std::int32_t>(prio),
                         nextSeq_++},
                 HeapRef{slot, rec.gen});
        ++numScheduled_;
        ++numLive_;
        return (static_cast<EventId>(slot) << 32) | rec.gen;
    }

    /** Schedule a callable @p delta ticks after now(). */
    template <typename F>
    EventId
    scheduleIn(Tick delta, F &&fn, Priority prio = Priority::Default)
    {
        return schedule(now_ + delta, std::forward<F>(fn), prio);
    }

    /**
     * Cancel a previously scheduled event. O(1): bumps the record's
     * generation (invalidating the handle and the heap entry, which is
     * dropped lazily) and recycles the slot.
     *
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** @return the current simulated time of this node. */
    Tick now() const { return now_; }

    /** @return true if no live events are pending. */
    bool empty() const;

    /** @return tick of the earliest pending event, or maxTick. */
    Tick nextTick() const;

    /**
     * Execute the earliest pending event, advancing now() to its tick.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run every event with tick <= limit, then advance now() to limit.
     * Events scheduled during execution are honored if they fall within
     * the limit.
     *
     * @return the number of events executed.
     */
    std::size_t runUntil(Tick limit);

    /**
     * Fast-forward the clock without running events; used by engines to
     * align a node to a quantum boundary. All pending events must lie at
     * or beyond @p when.
     */
    void fastForwardTo(Tick when);

    /** Lifetime counters for stats and tests. */
    std::uint64_t numScheduled() const { return numScheduled_; }
    std::uint64_t numExecuted() const { return numExecuted_; }
    std::uint64_t numCancelled() const { return numCancelled_; }

    /** @return number of live (non-cancelled) pending events. */
    std::size_t pendingCount() const { return numLive_; }

    /**
     * Checkpoint support: write the queue's architectural state —
     * clock, sequence counter, lifetime counters and every live
     * pending entry as (tick, priority, seq) in deterministic order.
     * Callbacks are code, not data; on restore they are reconstructed
     * by deterministic replay and this serialization is what the
     * divergence checker compares (docs/checkpoint-restore.md).
     */
    void serialize(ckpt::Writer &w) const;

    /** FNV-1a fingerprint of serialize() output. */
    std::uint64_t stateHash() const;

  private:
    /** One pooled event record; records never move once allocated. */
    struct Record
    {
        SmallCallback cb;
        /**
         * Bumped whenever the record is consumed (run or cancelled),
         * so stale EventIds and heap entries are rejected by a single
         * compare. Never 0; wrap-around aliasing would need 2^32
         * reuses of one slot while a stale handle is still held.
         */
        std::uint32_t gen = 1;
        /** Free-list link (slot index) while the record is free. */
        std::uint32_t nextFree = 0;
    };

    /**
     * Structure-of-arrays heap entry: the sort key every sift
     * comparison touches lives in keys_, packed 24 bytes apiece, while
     * the slab reference needed only on dispatch/prune lives in the
     * parallel refs_ array. Both arrays move in lockstep; index i of
     * one always pairs with index i of the other.
     */
    struct HeapKey
    {
        Tick when;
        std::int32_t prio;
        std::uint64_t seq;

        /** Deterministic total order: (when, prio, seq). */
        bool
        before(const HeapKey &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (prio != o.prio)
                return prio < o.prio;
            return seq < o.seq;
        }
    };

    /** Cold half of a heap entry; the callback stays in the slab. */
    struct HeapRef
    {
        std::uint32_t slot;
        std::uint32_t gen;
    };

    static constexpr std::uint32_t chunkShift = 8;
    /** Records per slab chunk; chunks are stable in memory. */
    static constexpr std::uint32_t chunkSize = 1u << chunkShift;
    static constexpr std::uint32_t noFreeSlot = 0xffffffffu;

    Record *
    recordAt(std::uint32_t slot) const
    {
        return &chunks_[slot >> chunkShift][slot & (chunkSize - 1)];
    }

    /** Invariant hook + past-scheduling assert (out of line). */
    void scheduleChecks(Tick when);

    std::uint32_t allocSlot();
    void addChunk();
    void freeSlot(std::uint32_t slot);

    void pushHeap(const HeapKey &key, const HeapRef &ref);
    /** Remove the head entry, restoring the 4-ary heap order. */
    void popHeapTop() const;
    /** Drop cancelled (stale-generation) entries from the head. */
    void pruneStale() const;
    /** Pop the (live) head entry and execute its callback. */
    void fireTop();

    /** Heap storage (SoA); mutable so const peeks can prune lazily. */
    mutable std::vector<HeapKey> keys_;
    mutable std::vector<HeapRef> refs_;
    std::vector<std::unique_ptr<Record[]>> chunks_;
    std::uint32_t capacity_ = 0;
    std::uint32_t freeHead_ = noFreeSlot;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t numLive_ = 0;
    std::uint64_t numScheduled_ = 0;
    std::uint64_t numExecuted_ = 0;
    std::uint64_t numCancelled_ = 0;
};

} // namespace aqsim::sim

#endif // AQSIM_SIM_EVENT_QUEUE_HH
