/**
 * @file
 * Per-node discrete-event kernel.
 *
 * Each simulated node owns one EventQueue. Events are callbacks ordered
 * by (tick, priority, insertion sequence); the sequence number makes
 * same-tick ordering deterministic, which the reproducibility contract
 * of the library depends on.
 *
 * The queue deliberately exposes single-step execution (runOne) in
 * addition to runUntil: the SequentialEngine interleaves events from
 * many nodes in host-time order, so it must be able to advance a node
 * one event at a time and inspect the next pending tick.
 */

#ifndef AQSIM_SIM_EVENT_QUEUE_HH
#define AQSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "base/types.hh"

namespace aqsim::sim
{

/** Callback invoked when an event fires. */
using Callback = std::function<void()>;

/** Scheduling priorities for same-tick ordering (lower runs first). */
enum class Priority : int
{
    /** Packet delivery from the network; runs before app reactions. */
    Delivery = -10,
    /** Default for application and device events. */
    Default = 0,
    /** Bookkeeping that must observe a completed tick. */
    Late = 10,
};

/**
 * A deterministic, cancellable discrete-event queue for one node.
 */
class EventQueue
{
  public:
    /** Opaque handle for cancelling a scheduled event. */
    using EventId = std::uint64_t;

    /** Sentinel returned when no event is scheduled. */
    static constexpr EventId invalidEvent = 0;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when absolute tick, must be >= now()
     * @param cb callback to run
     * @param prio same-tick ordering class
     * @return handle usable with deschedule()
     */
    EventId schedule(Tick when, Callback cb,
                     Priority prio = Priority::Default);

    /** Schedule a callback @p delta ticks after now(). */
    EventId scheduleIn(Tick delta, Callback cb,
                       Priority prio = Priority::Default);

    /**
     * Cancel a previously scheduled event.
     * @return true if the event was pending and is now cancelled.
     */
    bool deschedule(EventId id);

    /** @return the current simulated time of this node. */
    Tick now() const { return now_; }

    /** @return true if no live events are pending. */
    bool empty() const;

    /** @return tick of the earliest pending event, or maxTick. */
    Tick nextTick() const;

    /**
     * Execute the earliest pending event, advancing now() to its tick.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run every event with tick <= limit, then advance now() to limit.
     * Events scheduled during execution are honored if they fall within
     * the limit.
     *
     * @return the number of events executed.
     */
    std::size_t runUntil(Tick limit);

    /**
     * Fast-forward the clock without running events; used by engines to
     * align a node to a quantum boundary. All pending events must lie at
     * or beyond @p when.
     */
    void fastForwardTo(Tick when);

    /** Lifetime counters for stats and tests. */
    std::uint64_t numScheduled() const { return numScheduled_; }
    std::uint64_t numExecuted() const { return numExecuted_; }
    std::uint64_t numCancelled() const { return numCancelled_; }

    /** @return number of live (non-cancelled) pending events. */
    std::size_t pendingCount() const;

  private:
    struct Item
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        EventId id;

        bool
        operator>(const Item &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    /** Drop cancelled items from the head of the heap. */
    void skipCancelled() const;

    mutable std::priority_queue<Item, std::vector<Item>,
                                std::greater<Item>> heap_;
    /** Callbacks by event id; erased on execution/cancellation. */
    std::unordered_map<EventId, Callback> callbacks_;

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t numScheduled_ = 0;
    std::uint64_t numExecuted_ = 0;
    std::uint64_t numCancelled_ = 0;
};

} // namespace aqsim::sim

#endif // AQSIM_SIM_EVENT_QUEUE_HH
