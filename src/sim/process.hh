/**
 * @file
 * Coroutine-based simulated processes.
 *
 * Application programs (the workload skeletons) are written as C++20
 * coroutines returning sim::Process. They interact with simulated time
 * through awaitables:
 *
 *   co_await ctx.delay(ticks);        // advance local time
 *   co_await trigger.wait();          // block on a one-shot condition
 *
 * Every resumption happens *inside* an event of the owning node's
 * EventQueue. This property is what lets the execution engines account
 * host cost per event and interleave nodes deterministically.
 */

#ifndef AQSIM_SIM_PROCESS_HH
#define AQSIM_SIM_PROCESS_HH

#include <coroutine>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "sim/event_queue.hh"
#include "sim/small_callback.hh"

namespace aqsim::sim
{

/**
 * Handle to a simulated process (a coroutine). Owns the coroutine frame;
 * move-only. The coroutine starts suspended and is kicked off with
 * start().
 */
class Process
{
  public:
    struct promise_type
    {
        Process get_return_object();

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                auto &promise = h.promise();
                promise.done = true;
                // Move the callback out first: it may resume a parent
                // coroutine that destroys this frame (and with it the
                // promise and the callable being executed).
                auto cb = std::move(promise.onDone);
                if (cb)
                    cb();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception();

        bool done = false;
        bool started = false;
        /** Invoked exactly once when the coroutine runs to completion. */
        SmallCallback onDone;
    };

    Process() = default;
    explicit Process(std::coroutine_handle<promise_type> handle)
        : handle_(handle)
    {}

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    Process(Process &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Process &
    operator=(Process &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    ~Process() { destroy(); }

    /** Resume the coroutine from its initial suspension point. */
    void
    start()
    {
        AQSIM_ASSERT(handle_ && !handle_.done());
        AQSIM_ASSERT(!handle_.promise().started);
        handle_.promise().started = true;
        handle_.resume();
    }

    /** @return true if start() was called. */
    bool
    started() const
    {
        return handle_ && handle_.promise().started;
    }

    /** @return true if the coroutine ran to completion. */
    bool
    done() const
    {
        return handle_ && handle_.promise().done;
    }

    /** @return true if this handle refers to a live coroutine. */
    bool valid() const { return static_cast<bool>(handle_); }

    /** Register a completion callback (must be set before completion). */
    template <typename F>
    void
    onDone(F &&cb)
    {
        AQSIM_ASSERT(handle_);
        handle_.promise().onDone.emplace(std::forward<F>(cb));
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    friend class ProcessAwaiter;

    std::coroutine_handle<promise_type> handle_;
};

/**
 * Makes Process awaitable: `co_await subTask(...)` runs a child
 * coroutine to completion and then resumes the parent. The child is
 * started lazily if the caller has not started it yet, which supports
 * both the sequential form
 *
 *     co_await mpi::send(...);
 *
 * and the fork/join form
 *
 *     auto req = mpi::send(...);  req.start();   // runs concurrently
 *     ...other work...
 *     co_await std::move(req);                   // join
 */
class ProcessAwaiter
{
  public:
    explicit ProcessAwaiter(Process &&proc) : proc_(std::move(proc)) {}

    bool await_ready() const noexcept { return proc_.done(); }

    bool
    await_suspend(std::coroutine_handle<> parent)
    {
        if (!proc_.started()) {
            proc_.start();
            if (proc_.done())
                return false; // completed synchronously
        }
        proc_.handle_.promise().onDone = [parent] { parent.resume(); };
        return true;
    }

    void await_resume() const noexcept {}

  private:
    Process proc_;
};

inline ProcessAwaiter
operator co_await(Process &&proc)
{
    return ProcessAwaiter(std::move(proc));
}

/**
 * Awaitable that resumes the coroutine after a simulated delay on the
 * given event queue. A zero delay still yields through the queue so the
 * resumption is a distinct event (deterministic ordering, host-cost
 * accounting).
 */
class DelayAwaitable
{
  public:
    DelayAwaitable(EventQueue &queue, Tick delta)
        : queue_(queue), delta_(delta)
    {}

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        queue_.scheduleIn(delta_, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}

  private:
    EventQueue &queue_;
    Tick delta_;
};

/**
 * One-shot condition that coroutines can await and components fire.
 *
 * Waiters are resumed through events scheduled at the firing tick, in
 * the order they began waiting. Awaiting an already-fired trigger does
 * not suspend.
 */
class Trigger
{
  public:
    explicit Trigger(EventQueue &queue) : queue_(&queue) {}

    /** @return true once fire() has been called. */
    bool fired() const { return fired_; }

    /** Fire the trigger, resuming all current waiters. */
    void
    fire()
    {
        AQSIM_ASSERT(!fired_);
        fired_ = true;
        for (auto h : waiters_)
            queue_->scheduleIn(0, [h] { h.resume(); },
                               Priority::Delivery);
        waiters_.clear();
    }

    class Awaitable
    {
      public:
        explicit Awaitable(Trigger &trigger) : trigger_(trigger) {}

        bool await_ready() const noexcept { return trigger_.fired_; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            trigger_.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}

      private:
        Trigger &trigger_;
    };

    /** @return awaitable suspending until the trigger fires. */
    Awaitable wait() { return Awaitable(*this); }

  private:
    friend class Awaitable;

    EventQueue *queue_;
    bool fired_ = false;
    std::vector<std::coroutine_handle<>> waiters_;
};

/**
 * Counting latch: await completes when the count reaches zero. Used by
 * workloads to join groups of asynchronous operations (MPI waitall).
 */
class Latch
{
  public:
    Latch(EventQueue &queue, std::size_t count)
        : queue_(&queue), count_(count)
    {}

    /** Decrement the count; resumes waiters when it reaches zero. */
    void
    countDown()
    {
        AQSIM_ASSERT(count_ > 0);
        if (--count_ == 0) {
            for (auto h : waiters_)
                queue_->scheduleIn(0, [h] { h.resume(); },
                                   Priority::Delivery);
            waiters_.clear();
        }
    }

    /** @return the remaining count. */
    std::size_t count() const { return count_; }

    class Awaitable
    {
      public:
        explicit Awaitable(Latch &latch) : latch_(latch) {}

        bool await_ready() const noexcept { return latch_.count_ == 0; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            latch_.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}

      private:
        Latch &latch_;
    };

    /** @return awaitable suspending until the count reaches zero. */
    Awaitable wait() { return Awaitable(*this); }

  private:
    friend class Awaitable;

    EventQueue *queue_;
    std::size_t count_;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace aqsim::sim

#endif // AQSIM_SIM_PROCESS_HH
