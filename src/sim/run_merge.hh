/**
 * @file
 * SoA key store and deterministic k-way merge for sorted shard runs.
 *
 * The engines batch cross-quantum deliveries into (source shard,
 * destination shard) *sub-runs* during a quantum; after the exchange
 * barrier each destination shard k-way merges the column of sub-runs
 * addressed to it into its own canonical stream (see
 * docs/performance.md, "sharded kernel" and "parallel dispatch").
 * This header is the sim-layer kernel for that: a plain-old-data sort
 * key and a 4-ary-heap merger over already-sorted runs. One RunMerger
 * lives in each destination lane and is reset per quantum, so K
 * mergers run concurrently over disjoint columns.
 *
 * The key is structure-of-arrays on purpose: sorting a run and merging
 * k runs touch only these 24-byte PODs; the payload a key refers to
 * (packet pointer, delivery class — engine-layer data this module
 * never sees) is reached through RunKey::idx only when the merged
 * element is dispatched.
 *
 * Canonical order is (when, src, depart): `depart` strictly increases
 * per source, so the triple is a total order over real deliveries and
 * the merged stream is independent of shard count and thread
 * interleaving — the property the cross-engine bit-identity gate
 * rests on. `idx` breaks ties only for degenerate duplicate keys
 * (e.g. fault-injected duplicate frames), keeping the merge a total
 * order even then; the runtime checker still flags such duplicates
 * (ShardMergeOrder) because they make delivery order depend on which
 * shard staged the copy.
 */

#ifndef AQSIM_SIM_RUN_MERGE_HH
#define AQSIM_SIM_RUN_MERGE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace aqsim::sim
{

/** POD sort/merge key of one staged element of a shard run. */
struct RunKey
{
    /** Delivery tick (primary order). */
    Tick when;
    /** Departure tick at the source (strictly increasing per src). */
    Tick depart;
    /** Source node id. */
    std::uint32_t src;
    /** Position of the payload in the staging run (dispatch handle). */
    std::uint32_t idx;

    /** Canonical (when, src, depart) order; idx as a final tie. */
    bool
    before(const RunKey &o) const
    {
        if (when != o.when)
            return when < o.when;
        if (src != o.src)
            return src < o.src;
        if (depart != o.depart)
            return depart < o.depart;
        return idx < o.idx;
    }

    /** Strict canonical order ignoring the idx tie-break (checker). */
    bool
    strictlyBefore(const RunKey &o) const
    {
        if (when != o.when)
            return when < o.when;
        if (src != o.src)
            return src < o.src;
        return depart < o.depart;
    }
};

/** Sort a staged run into canonical order (one sort per shard per
 * quantum, replacing the old per-receiver sort-on-drain). */
void sortRun(std::vector<RunKey> &keys);

/** Borrowed view of one sorted run. */
struct RunView
{
    const RunKey *keys = nullptr;
    std::size_t count = 0;
};

/**
 * Deterministic k-way merge over sorted runs.
 *
 * A 4-ary min-heap of run cursors keyed on each run's head; equal keys
 * (possible only through the idx tie, i.e. duplicate frames staged in
 * different shards) fall back to run index, so the output order is a
 * pure function of the run contents. reset()/next() reuse the cursor
 * vector, so steady state allocates nothing.
 */
class RunMerger
{
  public:
    /** One merged element: the key plus the run it came from. */
    struct Item
    {
        RunKey key;
        std::uint32_t run;
    };

    /** Begin a merge over @p count runs (empty runs are skipped).
     * The views must stay valid until the merge is drained. */
    void reset(const RunView *runs, std::size_t count);

    /** Pop the next element in canonical order.
     * @return false when every run is exhausted. */
    bool next(Item &out);

    /** Elements remaining across all runs (cheap; for asserts). */
    std::size_t remaining() const { return remaining_; }

  private:
    struct Cursor
    {
        const RunKey *cur;
        const RunKey *end;
        std::uint32_t run;
    };

    static bool
    cursorBefore(const Cursor &a, const Cursor &b)
    {
        if (a.cur->before(*b.cur))
            return true;
        if (b.cur->before(*a.cur))
            return false;
        return a.run < b.run;
    }

    void siftDown(std::size_t i);

    std::vector<Cursor> heap_;
    std::size_t remaining_ = 0;
};

} // namespace aqsim::sim

#endif // AQSIM_SIM_RUN_MERGE_HH
