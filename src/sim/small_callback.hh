/**
 * @file
 * Move-only type-erased `void()` callable with small-buffer storage.
 *
 * The simulation hot path schedules millions of short-lived callbacks;
 * std::function's conservative small-object threshold (16 bytes on
 * common ABIs) pushes most capturing lambdas onto the heap and drags in
 * exception plumbing the kernel never uses. SmallCallback stores any
 * callable of up to inlineCapacity bytes directly in the object and
 * only falls back to the heap beyond that, so the event kernel is
 * allocation-free in steady state (see docs/performance.md).
 */

#ifndef AQSIM_SIM_SMALL_CALLBACK_HH
#define AQSIM_SIM_SMALL_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace aqsim::sim
{

/** Move-only type-erased `void()` callable with inline storage. */
class SmallCallback
{
  public:
    /**
     * Bytes of inline storage: sized to hold every callback the
     * kernel's own users create (a coroutine handle plus a few
     * captured pointers) with room to spare. Larger callables are
     * heap-allocated transparently.
     */
    static constexpr std::size_t inlineCapacity = 48;

    SmallCallback() = default;

    /** Wrap any callable (implicit, like std::function). */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallCallback>>>
    SmallCallback(F &&fn)
    {
        emplace(std::forward<F>(fn));
    }

    SmallCallback(SmallCallback &&other) noexcept { moveFrom(other); }

    SmallCallback &
    operator=(SmallCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallCallback(const SmallCallback &) = delete;
    SmallCallback &operator=(const SmallCallback &) = delete;

    ~SmallCallback() { reset(); }

    /** Construct a callable in place, replacing any current one. */
    template <typename F>
    void
    emplace(F &&fn)
    {
        using Fn = std::decay_t<F>;
        reset();
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(fn));
            ops_ = &inlineOps<Fn>;
        } else {
            heap_ = new Fn(std::forward<F>(fn));
            ops_ = &heapOps<Fn>;
        }
    }

    /** Destroy the held callable (no-op when empty). */
    void
    reset()
    {
        if (ops_) {
            const Ops *ops = std::exchange(ops_, nullptr);
            ops->destroy(*this);
        }
    }

    /** @return true if a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the held callable; must be non-empty. */
    void
    operator()()
    {
        ops_->invoke(*this);
    }

  private:
    struct Ops
    {
        void (*invoke)(SmallCallback &);
        /** Move the callable out of @p from into @p to's raw storage. */
        void (*relocate)(SmallCallback &to, SmallCallback &from);
        void (*destroy)(SmallCallback &);
    };

    /**
     * Inline storage requires a nothrow move so relocation between
     * buffers (the move constructor) can be noexcept.
     */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineCapacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    Fn *
    inlinePtr()
    {
        return std::launder(reinterpret_cast<Fn *>(buf_));
    }

    void
    moveFrom(SmallCallback &other)
    {
        if (other.ops_) {
            const Ops *ops = std::exchange(other.ops_, nullptr);
            ops->relocate(*this, other);
            ops_ = ops;
        }
    }

    template <typename Fn>
    static const Ops inlineOps;
    template <typename Fn>
    static const Ops heapOps;

    const Ops *ops_ = nullptr;
    void *heap_ = nullptr;
    alignas(std::max_align_t) std::byte buf_[inlineCapacity];
};

template <typename Fn>
const SmallCallback::Ops SmallCallback::inlineOps = {
    [](SmallCallback &self) { (*self.inlinePtr<Fn>())(); },
    [](SmallCallback &to, SmallCallback &from) {
        ::new (static_cast<void *>(to.buf_))
            Fn(std::move(*from.inlinePtr<Fn>()));
        from.inlinePtr<Fn>()->~Fn();
    },
    [](SmallCallback &self) { self.inlinePtr<Fn>()->~Fn(); },
};

template <typename Fn>
const SmallCallback::Ops SmallCallback::heapOps = {
    [](SmallCallback &self) { (*static_cast<Fn *>(self.heap_))(); },
    [](SmallCallback &to, SmallCallback &from) {
        to.heap_ = std::exchange(from.heap_, nullptr);
    },
    [](SmallCallback &self) { delete static_cast<Fn *>(self.heap_); },
};

} // namespace aqsim::sim

#endif // AQSIM_SIM_SMALL_CALLBACK_HH
