#include "sim/event_queue.hh"

#include <unordered_map>

#include "base/logging.hh"
#include "check/invariants.hh"

namespace aqsim::sim
{

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb, Priority prio)
{
    check::InvariantChecker::instance().onEventScheduled(when, now_);
    AQSIM_ASSERT(when >= now_);
    AQSIM_ASSERT(cb != nullptr);
    EventId id = nextId_++;
    heap_.push(Item{when, static_cast<int>(prio), nextSeq_++, id});
    callbacks_.emplace(id, std::move(cb));
    ++numScheduled_;
    return id;
}

EventQueue::EventId
EventQueue::scheduleIn(Tick delta, Callback cb, Priority prio)
{
    return schedule(now_ + delta, std::move(cb), prio);
}

bool
EventQueue::deschedule(EventId id)
{
    auto it = callbacks_.find(id);
    if (it == callbacks_.end())
        return false;
    // Lazy cancellation: the heap entry stays and is skipped when it
    // reaches the head.
    callbacks_.erase(it);
    ++numCancelled_;
    return true;
}

void
EventQueue::skipCancelled() const
{
    while (!heap_.empty() &&
           callbacks_.find(heap_.top().id) == callbacks_.end()) {
        heap_.pop();
    }
}

bool
EventQueue::empty() const
{
    skipCancelled();
    return heap_.empty();
}

Tick
EventQueue::nextTick() const
{
    skipCancelled();
    return heap_.empty() ? maxTick : heap_.top().when;
}

std::size_t
EventQueue::pendingCount() const
{
    return callbacks_.size();
}

bool
EventQueue::runOne()
{
    skipCancelled();
    if (heap_.empty())
        return false;
    Item item = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(item.id);
    AQSIM_ASSERT(it != callbacks_.end());
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    check::InvariantChecker::instance().onTickAdvance(now_, item.when);
    AQSIM_ASSERT(item.when >= now_);
    now_ = item.when;
    ++numExecuted_;
    cb();
    return true;
}

std::size_t
EventQueue::runUntil(Tick limit)
{
    AQSIM_ASSERT(limit >= now_);
    std::size_t executed = 0;
    while (nextTick() <= limit) {
        runOne();
        ++executed;
    }
    now_ = limit;
    return executed;
}

void
EventQueue::fastForwardTo(Tick when)
{
    check::InvariantChecker::instance().onTickAdvance(now_, when);
    AQSIM_ASSERT(when >= now_);
    AQSIM_ASSERT(nextTick() >= when);
    now_ = when;
}

} // namespace aqsim::sim
