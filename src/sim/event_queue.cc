#include "sim/event_queue.hh"

#include <algorithm>

#include "base/logging.hh"
#include "check/invariants.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::sim
{

void
EventQueue::scheduleChecks(Tick when)
{
    check::InvariantChecker::instance().onEventScheduled(when, now_);
    AQSIM_ASSERT(when >= now_);
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ == noFreeSlot)
        addChunk();
    const std::uint32_t slot = freeHead_;
    freeHead_ = recordAt(slot)->nextFree;
    return slot;
}

void
EventQueue::addChunk()
{
    const std::uint32_t base = capacity_;
    chunks_.push_back(std::make_unique<Record[]>(chunkSize));
    capacity_ += chunkSize;
    // Thread the fresh records onto the free list low-slot-first.
    for (std::uint32_t i = chunkSize; i-- > 0;) {
        recordAt(base + i)->nextFree = freeHead_;
        freeHead_ = base + i;
    }
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Record &rec = *recordAt(slot);
    // Invalidate every outstanding handle/heap entry; skip 0 on wrap
    // so no live generation ever equals the invalidEvent encoding.
    if (++rec.gen == 0)
        rec.gen = 1;
    recordAt(slot)->nextFree = freeHead_;
    freeHead_ = slot;
}

bool
EventQueue::deschedule(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<std::uint32_t>(id);
    if (slot >= capacity_)
        return false;
    Record &rec = *recordAt(slot);
    if (rec.gen != gen || !rec.cb)
        return false;
    // Lazy cancellation: the heap entry stays and is dropped when it
    // reaches the head (its generation no longer matches).
    rec.cb.reset();
    freeSlot(slot);
    --numLive_;
    ++numCancelled_;
    return true;
}

void
EventQueue::pushHeap(const HeapKey &key, const HeapRef &ref)
{
    // 4-ary sift-up with a hole (no swaps): parent of i is (i-1)/4.
    // Only keys_ is compared; refs_ just mirrors the moves.
    keys_.push_back(key);
    refs_.push_back(ref);
    std::size_t i = keys_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!key.before(keys_[parent]))
            break;
        keys_[i] = keys_[parent];
        refs_[i] = refs_[parent];
        i = parent;
    }
    keys_[i] = key;
    refs_[i] = ref;
}

void
EventQueue::popHeapTop() const
{
    const HeapKey last_key = keys_.back();
    const HeapRef last_ref = refs_.back();
    keys_.pop_back();
    refs_.pop_back();
    const std::size_t n = keys_.size();
    if (n == 0)
        return;
    // 4-ary sift-down of the former tail: children of i start at 4i+1.
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t end = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < end; ++c) {
            if (keys_[c].before(keys_[best]))
                best = c;
        }
        if (!keys_[best].before(last_key))
            break;
        keys_[i] = keys_[best];
        refs_[i] = refs_[best];
        i = best;
    }
    keys_[i] = last_key;
    refs_[i] = last_ref;
}

void
EventQueue::pruneStale() const
{
    while (!refs_.empty() &&
           recordAt(refs_.front().slot)->gen != refs_.front().gen) {
        popHeapTop();
    }
}

bool
EventQueue::empty() const
{
    pruneStale();
    return keys_.empty();
}

Tick
EventQueue::nextTick() const
{
    pruneStale();
    return keys_.empty() ? maxTick : keys_.front().when;
}

void
EventQueue::fireTop()
{
    const HeapKey top = keys_.front();
    const HeapRef top_ref = refs_.front();
    popHeapTop();
    Record &rec = *recordAt(top_ref.slot);
    check::InvariantChecker::instance().onTickAdvance(now_, top.when);
    AQSIM_ASSERT(top.when >= now_);
    now_ = top.when;
    ++numExecuted_;
    --numLive_;
    // The handle dies before the callback runs (a self-deschedule must
    // return false), but the slot is recycled only afterwards: the
    // callback may schedule new events, and records never move, so
    // invoking in place is safe.
    if (++rec.gen == 0)
        rec.gen = 1;
    rec.cb();
    rec.cb.reset();
    recordAt(top_ref.slot)->nextFree = freeHead_;
    freeHead_ = top_ref.slot;
}

bool
EventQueue::runOne()
{
    pruneStale();
    if (keys_.empty())
        return false;
    fireTop();
    return true;
}

std::size_t
EventQueue::runUntil(Tick limit)
{
    AQSIM_ASSERT(limit >= now_);
    std::size_t executed = 0;
    // One heap peek per event: pruneStale() leaves a live head, whose
    // tick decides both "is there work" and "is it within the limit".
    for (;;) {
        pruneStale();
        if (keys_.empty() || keys_.front().when > limit)
            break;
        fireTop();
        ++executed;
    }
    now_ = limit;
    return executed;
}

void
EventQueue::fastForwardTo(Tick when)
{
    check::InvariantChecker::instance().onTickAdvance(now_, when);
    AQSIM_ASSERT(when >= now_);
    AQSIM_ASSERT(nextTick() >= when);
    now_ = when;
}

void
EventQueue::serialize(ckpt::Writer &w) const
{
    w.u64(now_);
    w.u64(nextSeq_);
    w.u64(numScheduled_);
    w.u64(numExecuted_);
    w.u64(numCancelled_);

    // Live entries only, in the queue's own deterministic execution
    // order; the heap array layout is an implementation artifact and
    // must not leak into the fingerprint.
    std::vector<HeapKey> live;
    live.reserve(numLive_);
    for (std::size_t i = 0; i < keys_.size(); ++i)
        if (recordAt(refs_[i].slot)->gen == refs_[i].gen)
            live.push_back(keys_[i]);
    std::sort(live.begin(), live.end(),
              [](const HeapKey &a, const HeapKey &b) {
                  return a.before(b);
              });
    w.u32(static_cast<std::uint32_t>(live.size()));
    for (const HeapKey &e : live) {
        w.u64(e.when);
        w.i32(e.prio);
        w.u64(e.seq);
    }
}

std::uint64_t
EventQueue::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::sim
