#include "sim/event_queue.hh"

#include <algorithm>

#include "base/logging.hh"
#include "check/invariants.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::sim
{

void
EventQueue::scheduleChecks(Tick when)
{
    check::InvariantChecker::instance().onEventScheduled(when, now_);
    AQSIM_ASSERT(when >= now_);
}

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead_ == noFreeSlot)
        addChunk();
    const std::uint32_t slot = freeHead_;
    freeHead_ = recordAt(slot)->nextFree;
    return slot;
}

void
EventQueue::addChunk()
{
    const std::uint32_t base = capacity_;
    chunks_.push_back(std::make_unique<Record[]>(chunkSize));
    capacity_ += chunkSize;
    // Thread the fresh records onto the free list low-slot-first.
    for (std::uint32_t i = chunkSize; i-- > 0;) {
        recordAt(base + i)->nextFree = freeHead_;
        freeHead_ = base + i;
    }
}

void
EventQueue::freeSlot(std::uint32_t slot)
{
    Record &rec = *recordAt(slot);
    // Invalidate every outstanding handle/heap entry; skip 0 on wrap
    // so no live generation ever equals the invalidEvent encoding.
    if (++rec.gen == 0)
        rec.gen = 1;
    recordAt(slot)->nextFree = freeHead_;
    freeHead_ = slot;
}

bool
EventQueue::deschedule(EventId id)
{
    const auto slot = static_cast<std::uint32_t>(id >> 32);
    const auto gen = static_cast<std::uint32_t>(id);
    if (slot >= capacity_)
        return false;
    Record &rec = *recordAt(slot);
    if (rec.gen != gen || !rec.cb)
        return false;
    // Lazy cancellation: the heap entry stays and is dropped when it
    // reaches the head (its generation no longer matches).
    rec.cb.reset();
    freeSlot(slot);
    --numLive_;
    ++numCancelled_;
    return true;
}

void
EventQueue::pushHeap(const HeapEntry &entry)
{
    // 4-ary sift-up with a hole (no swaps): parent of i is (i-1)/4.
    heap_.push_back(entry);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) >> 2;
        if (!entry.before(heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = entry;
}

void
EventQueue::popHeapTop() const
{
    const HeapEntry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0)
        return;
    // 4-ary sift-down of the former tail: children of i start at 4i+1.
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t end = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < end; ++c) {
            if (heap_[c].before(heap_[best]))
                best = c;
        }
        if (!heap_[best].before(last))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = last;
}

void
EventQueue::pruneStale() const
{
    while (!heap_.empty() &&
           recordAt(heap_.front().slot)->gen != heap_.front().gen) {
        popHeapTop();
    }
}

bool
EventQueue::empty() const
{
    pruneStale();
    return heap_.empty();
}

Tick
EventQueue::nextTick() const
{
    pruneStale();
    return heap_.empty() ? maxTick : heap_.front().when;
}

void
EventQueue::fireTop()
{
    const HeapEntry top = heap_.front();
    popHeapTop();
    Record &rec = *recordAt(top.slot);
    check::InvariantChecker::instance().onTickAdvance(now_, top.when);
    AQSIM_ASSERT(top.when >= now_);
    now_ = top.when;
    ++numExecuted_;
    --numLive_;
    // The handle dies before the callback runs (a self-deschedule must
    // return false), but the slot is recycled only afterwards: the
    // callback may schedule new events, and records never move, so
    // invoking in place is safe.
    if (++rec.gen == 0)
        rec.gen = 1;
    rec.cb();
    rec.cb.reset();
    recordAt(top.slot)->nextFree = freeHead_;
    freeHead_ = top.slot;
}

bool
EventQueue::runOne()
{
    pruneStale();
    if (heap_.empty())
        return false;
    fireTop();
    return true;
}

std::size_t
EventQueue::runUntil(Tick limit)
{
    AQSIM_ASSERT(limit >= now_);
    std::size_t executed = 0;
    // One heap peek per event: pruneStale() leaves a live head, whose
    // tick decides both "is there work" and "is it within the limit".
    for (;;) {
        pruneStale();
        if (heap_.empty() || heap_.front().when > limit)
            break;
        fireTop();
        ++executed;
    }
    now_ = limit;
    return executed;
}

void
EventQueue::fastForwardTo(Tick when)
{
    check::InvariantChecker::instance().onTickAdvance(now_, when);
    AQSIM_ASSERT(when >= now_);
    AQSIM_ASSERT(nextTick() >= when);
    now_ = when;
}

void
EventQueue::serialize(ckpt::Writer &w) const
{
    w.u64(now_);
    w.u64(nextSeq_);
    w.u64(numScheduled_);
    w.u64(numExecuted_);
    w.u64(numCancelled_);

    // Live entries only, in the queue's own deterministic execution
    // order; the heap array layout is an implementation artifact and
    // must not leak into the fingerprint.
    std::vector<HeapEntry> live;
    live.reserve(numLive_);
    for (const HeapEntry &e : heap_)
        if (recordAt(e.slot)->gen == e.gen)
            live.push_back(e);
    std::sort(live.begin(), live.end(),
              [](const HeapEntry &a, const HeapEntry &b) {
                  return a.before(b);
              });
    w.u32(static_cast<std::uint32_t>(live.size()));
    for (const HeapEntry &e : live) {
        w.u64(e.when);
        w.i32(e.prio);
        w.u64(e.seq);
    }
}

std::uint64_t
EventQueue::stateHash() const
{
    ckpt::Writer w;
    serialize(w);
    return w.hash();
}

} // namespace aqsim::sim
