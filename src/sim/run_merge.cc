#include "sim/run_merge.hh"

#include <algorithm>

#include "base/logging.hh"

namespace aqsim::sim
{

void
sortRun(std::vector<RunKey> &keys)
{
    std::sort(keys.begin(), keys.end(),
              [](const RunKey &a, const RunKey &b) {
                  return a.before(b);
              });
}

void
RunMerger::reset(const RunView *runs, std::size_t count)
{
    heap_.clear();
    remaining_ = 0;
    for (std::size_t r = 0; r < count; ++r) {
        if (runs[r].count == 0)
            continue;
        heap_.push_back(Cursor{runs[r].keys, runs[r].keys + runs[r].count,
                               static_cast<std::uint32_t>(r)});
        remaining_ += runs[r].count;
    }
    // Bottom-up 4-ary heapify: children of i start at 4i+1.
    for (std::size_t i = heap_.size(); i-- > 0;)
        siftDown(i);
}

void
RunMerger::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    const Cursor moving = heap_[i];
    for (;;) {
        const std::size_t first = (i << 2) + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t end = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < end; ++c) {
            if (cursorBefore(heap_[c], heap_[best]))
                best = c;
        }
        if (!cursorBefore(heap_[best], moving))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = moving;
}

bool
RunMerger::next(Item &out)
{
    if (heap_.empty())
        return false;
    Cursor &top = heap_[0];
    out.key = *top.cur;
    out.run = top.run;
    --remaining_;
    if (++top.cur == top.end) {
        heap_[0] = heap_.back();
        heap_.pop_back();
        if (heap_.empty())
            return true;
    }
    siftDown(0);
    return true;
}

} // namespace aqsim::sim
