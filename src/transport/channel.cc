#include "transport/channel.hh"

#include <chrono>
#include <deque>

#include "base/mutex.hh"

namespace aqsim::transport
{

namespace
{

/**
 * Shared state of one loopback pair: two frame queues (one per
 * direction) under a single mutex. Endpoint A sends into queue 0 and
 * receives from queue 1; endpoint B the reverse.
 */
struct LoopbackCore
{
    base::Mutex mutex;
    base::CondVar cv;
    std::deque<Frame> queues[2] AQSIM_GUARDED_BY(mutex);
    bool closed AQSIM_GUARDED_BY(mutex) = false;
};

class LoopbackChannel : public Channel
{
  public:
    LoopbackChannel(std::shared_ptr<LoopbackCore> core, int send_queue)
        : core_(std::move(core)), sendQueue_(send_queue)
    {}

    ~LoopbackChannel() override { close(); }

    bool
    send(const Frame &frame) override
    {
        {
            base::MutexLock lock(core_->mutex);
            if (core_->closed)
                return false;
            core_->queues[sendQueue_].push_back(frame);
        }
        core_->cv.notify_all();
        return true;
    }

    RecvStatus
    recv(Frame &frame, double deadline_seconds) override
    {
        const auto deadline =
            std::chrono::duration<double>(deadline_seconds);
        std::deque<Frame> &queue = core_->queues[1 - sendQueue_];
        base::MutexLock lock(core_->mutex);
        const bool ready = core_->cv.waitFor(
            core_->mutex, deadline,
            [&]() AQSIM_REQUIRES(core_->mutex) {
                return core_->closed || !queue.empty();
            });
        // Drain queued frames even after close: a Stop sent just
        // before teardown must still be readable, like socket EOF
        // semantics where buffered bytes survive the close.
        if (!queue.empty()) {
            frame = std::move(queue.front());
            queue.pop_front();
            return RecvStatus::Ok;
        }
        if (core_->closed)
            return RecvStatus::Closed;
        return ready ? RecvStatus::Closed : RecvStatus::Timeout;
    }

    void
    close() override
    {
        {
            base::MutexLock lock(core_->mutex);
            core_->closed = true;
        }
        core_->cv.notify_all();
    }

  private:
    std::shared_ptr<LoopbackCore> core_;
    const int sendQueue_;
};

} // namespace

std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
loopbackChannelPair()
{
    auto core = std::make_shared<LoopbackCore>();
    return {std::make_unique<LoopbackChannel>(core, 0),
            std::make_unique<LoopbackChannel>(core, 1)};
}

} // namespace aqsim::transport
