#include "transport/heartbeat.hh"

#include <chrono>

#include "ckpt/ckpt_io.hh"

namespace aqsim::transport
{

HeartbeatSender::HeartbeatSender(Channel &channel, double period_seconds)
    : channel_(channel), periodSeconds_(period_seconds)
{
    thread_ = std::thread([this] { loop(); });
}

HeartbeatSender::~HeartbeatSender()
{
    stop();
}

void
HeartbeatSender::stop()
{
    {
        base::MutexLock lock(mutex_);
        if (stop_) {
            // Already stopped; the thread may even be joined.
        }
        stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
HeartbeatSender::loop()
{
    const auto period = std::chrono::duration<double>(periodSeconds_);
    std::uint64_t seq = 0;
    for (;;) {
        {
            base::MutexLock lock(mutex_);
            if (cv_.waitFor(mutex_, period,
                            [this]() AQSIM_REQUIRES(mutex_) {
                                return stop_;
                            }))
                return;
        }
        Frame beat;
        beat.type = FrameType::Heartbeat;
        ckpt::Writer w;
        w.u64(seq++);
        beat.body = w.buffer();
        if (!channel_.send(beat))
            return; // pipe is gone; the protocol thread will notice
    }
}

} // namespace aqsim::transport
