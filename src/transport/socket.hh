/**
 * @file
 * Socket-backed Channel: frames over a Unix or TCP stream.
 *
 * The production transport for multi-process runs. One SocketChannel
 * wraps one connected stream fd; frames travel as the wire encoding
 * from frame.hh. Failure semantics are the whole point:
 *
 *  - recv() is sliced into short poll(2) waits, so every wait is
 *    deadline-bounded and a SIGSTOPped or wedged peer surfaces as
 *    RecvStatus::Timeout, never a hang;
 *  - EOF and ECONNRESET surface as Closed (a SIGKILLed peer's kernel
 *    closes its fds, so a dead peer is detected without any timeout);
 *  - a CRC mismatch or an absurd length prefix surfaces as Corrupt;
 *  - send() uses MSG_NOSIGNAL, so writing into a half-open pipe
 *    returns false instead of raising SIGPIPE.
 *
 * socketChannelPair() (socketpair(2)) is the fork-model transport:
 * the coordinator creates one pair per worker before forking, each
 * side keeps one end. tcpListen/tcpConnect exist for tests that need
 * a connection whose far side can vanish between connect and first
 * frame (the half-open case).
 */

#ifndef AQSIM_TRANSPORT_SOCKET_HH
#define AQSIM_TRANSPORT_SOCKET_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

#include "base/mutex.hh"
#include "transport/channel.hh"

namespace aqsim::transport
{

/** Channel over one connected stream socket (owns the fd). */
class SocketChannel : public Channel
{
  public:
    /** Take ownership of connected stream fd @p fd. */
    explicit SocketChannel(int fd);
    ~SocketChannel() override;

    SocketChannel(const SocketChannel &) = delete;
    SocketChannel &operator=(const SocketChannel &) = delete;

    bool send(const Frame &frame) override AQSIM_EXCLUDES(sendMutex_);
    RecvStatus recv(Frame &frame, double deadline_seconds) override;

    /**
     * shutdown(2) both directions; the fd itself is closed by the
     * destructor. A peer blocked in recv() observes Closed.
     */
    void close() override;

    /** Raw fd (fork plumbing: children close siblings' fds). */
    int fd() const { return fd_; }

  private:
    /**
     * Read exactly @p size bytes before @p deadline. Partial data at
     * the deadline is Timeout (a wedged sender mid-frame must not
     * hang the reader); EOF mid-buffer is Closed.
     */
    RecvStatus readFully(std::uint8_t *data, std::size_t size,
                         std::chrono::steady_clock::time_point deadline);

    const int fd_;
    /** Serializes writers (protocol thread + heartbeat thread). */
    base::Mutex sendMutex_;
};

/**
 * Connected AF_UNIX stream pair (socketpair(2)). First is
 * conventionally the coordinator end, second the worker end.
 */
std::pair<std::unique_ptr<SocketChannel>, std::unique_ptr<SocketChannel>>
socketChannelPair();

/**
 * Listen on 127.0.0.1:@p port (0 = ephemeral). @return listening fd,
 * with the bound port stored in @p bound_port. Fatal on error.
 */
int tcpListen(std::uint16_t port, std::uint16_t &bound_port);

/** Connect to 127.0.0.1:@p port. @return connected fd; -1 on error. */
int tcpConnect(std::uint16_t port);

/**
 * Accept one connection on @p listen_fd, waiting at most
 * @p deadline_seconds. @return connected fd; -1 on timeout/error.
 */
int tcpAccept(int listen_fd, double deadline_seconds);

} // namespace aqsim::transport

#endif // AQSIM_TRANSPORT_SOCKET_HH
