/**
 * @file
 * Transport seam for the distributed engine.
 *
 * A Channel is one bidirectional, ordered, reliable frame pipe between
 * the coordinator and a single worker. The DistributedEngine speaks
 * only this interface, so the barrier protocol is testable against the
 * in-process loopback backend (deterministic, no kernel involvement)
 * and deployed over the socket backend (socket.hh) without a line of
 * engine code changing — the same seam discipline GHEX-style
 * communicators use to swap fabrics under a fixed protocol layer.
 *
 * Every receive is deadline-bounded by construction: there is no
 * blocking recv in the interface. That single property is what turns
 * a crashed, hung, or half-open peer into a structured RecvStatus the
 * caller can convert into a PeerFailure, instead of a stuck barrier.
 *
 * Thread safety: send() and recv() are each internally serialized, so
 * one thread may send (e.g. a heartbeat thread) while another
 * receives. Multiple concurrent receivers are not supported.
 */

#ifndef AQSIM_TRANSPORT_CHANNEL_HH
#define AQSIM_TRANSPORT_CHANNEL_HH

#include <memory>
#include <utility>

#include "transport/frame.hh"

namespace aqsim::transport
{

/** One reliable, ordered frame pipe between two endpoints. */
class Channel
{
  public:
    virtual ~Channel() = default;

    /**
     * Enqueue @p frame toward the peer.
     *
     * @return false if the pipe is closed (peer gone); the caller maps
     *         this to a Disconnect-kind peer failure.
     */
    virtual bool send(const Frame &frame) = 0;

    /**
     * Wait up to @p deadline_seconds for one complete frame.
     *
     * Never blocks past the deadline: a silent peer yields Timeout, a
     * closed pipe yields Closed, and damaged bytes yield Corrupt.
     */
    virtual RecvStatus recv(Frame &frame, double deadline_seconds) = 0;

    /**
     * Close both directions. Idempotent; a blocked recv() on either
     * end completes promptly with Closed.
     */
    virtual void close() = 0;
};

/**
 * Build a connected in-process pair: frames sent on one endpoint are
 * received on the other, in order, with no encoding round-trip.
 * Backs single-process protocol tests and doubles as the reference
 * semantics for the socket backend.
 */
std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>
loopbackChannelPair();

} // namespace aqsim::transport

#endif // AQSIM_TRANSPORT_CHANNEL_HH
