/**
 * @file
 * Wire frames for the distributed-engine control channel.
 *
 * Every message between the DistributedEngine coordinator and its
 * worker processes is one length-prefixed, CRC-guarded frame:
 *
 *   frame := bodyLen(u32) type(u32) bodyCrc(u32) body
 *
 * The 12-byte header is fixed; the body is a ckpt::Writer buffer
 * decoded with ckpt::Reader, so the distributed protocol reuses the
 * same self-checking encoding discipline as the checkpoint container
 * (docs/checkpoint-restore.md). A torn, truncated, or bit-flipped
 * frame decodes to RecvStatus::Corrupt — a structured peer failure —
 * never to silently wrong simulation state.
 *
 * Frames are transport-agnostic: the in-process loopback backend
 * passes Frame structs directly, the socket backend moves the encoded
 * bytes. See channel.hh for the Channel seam.
 */

#ifndef AQSIM_TRANSPORT_FRAME_HH
#define AQSIM_TRANSPORT_FRAME_HH

#include <cstdint>
#include <vector>

namespace aqsim::transport
{

/** Distributed barrier-protocol message types (see docs/distributed.md). */
enum class FrameType : std::uint32_t
{
    /** Peer -> coordinator: worker is alive and speaks the protocol. */
    Hello = 1,
    /** Coordinator -> peer: run one quantum [qs, qe). */
    Quantum,
    /** Peer -> coordinator: counter deltas + outbound delivery runs. */
    Exchange,
    /** Coordinator -> peer: the delivery runs destined to this peer. */
    Deliver,
    /** Peer -> coordinator: quantum done; local progress summary. */
    Ack,
    /** Coordinator -> peer: serialize your state slice. */
    StateReq,
    /** Peer -> coordinator: the requested state slice. */
    State,
    /** Peer -> coordinator: liveness beacon between protocol frames. */
    Heartbeat,
    /** Coordinator -> peer: run complete, exit cleanly. */
    Stop,
    /** Either direction: sender is failing; body carries the reason. */
    Abort,
};

/** @return a stable lowercase name for diagnostics ("exchange"...). */
const char *frameTypeName(FrameType type);

/** One decoded protocol message. */
struct Frame
{
    FrameType type = FrameType::Hello;
    /** Body bytes (a ckpt::Writer buffer; may be empty). */
    std::vector<std::uint8_t> body;
};

/** Outcome of one bounded receive attempt. */
enum class RecvStatus
{
    /** A well-formed frame was decoded into the out-param. */
    Ok,
    /** Deadline elapsed with no complete frame (peer hung or slow). */
    Timeout,
    /** Orderly or abortive close (EOF / ECONNRESET): peer is gone. */
    Closed,
    /** CRC mismatch, oversize body, or unknown type: protocol damage. */
    Corrupt,
};

/** @return a stable lowercase name for diagnostics ("timeout"...). */
const char *recvStatusName(RecvStatus status);

/**
 * Largest accepted frame body. State frames carry whole per-peer
 * cluster slices, so the cap is generous; anything larger is protocol
 * damage (a corrupt length prefix), not a real message.
 */
constexpr std::uint32_t maxFrameBody = 256u * 1024u * 1024u;

/** Fixed wire-header size: bodyLen + type + bodyCrc. */
constexpr std::size_t frameHeaderBytes = 12;

/** Encode @p frame into the wire form (header + body). */
std::vector<std::uint8_t> encodeFrame(const Frame &frame);

/**
 * Validate a received header triple and CRC-check the body.
 *
 * @return Ok and fills @p frame, or Corrupt (length/type/CRC damage).
 */
RecvStatus decodeFrame(std::uint32_t body_len, std::uint32_t type,
                       std::uint32_t body_crc,
                       std::vector<std::uint8_t> body, Frame &frame);

} // namespace aqsim::transport

#endif // AQSIM_TRANSPORT_FRAME_HH
