#include "transport/frame.hh"

#include <cstring>

#include "ckpt/ckpt_io.hh"

namespace aqsim::transport
{

const char *
frameTypeName(FrameType type)
{
    switch (type) {
    case FrameType::Hello:
        return "hello";
    case FrameType::Quantum:
        return "quantum";
    case FrameType::Exchange:
        return "exchange";
    case FrameType::Deliver:
        return "deliver";
    case FrameType::Ack:
        return "ack";
    case FrameType::StateReq:
        return "state-req";
    case FrameType::State:
        return "state";
    case FrameType::Heartbeat:
        return "heartbeat";
    case FrameType::Stop:
        return "stop";
    case FrameType::Abort:
        return "abort";
    }
    return "unknown";
}

const char *
recvStatusName(RecvStatus status)
{
    switch (status) {
    case RecvStatus::Ok:
        return "ok";
    case RecvStatus::Timeout:
        return "timeout";
    case RecvStatus::Closed:
        return "closed";
    case RecvStatus::Corrupt:
        return "corrupt";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encodeFrame(const Frame &frame)
{
    std::vector<std::uint8_t> wire(frameHeaderBytes + frame.body.size());
    const std::uint32_t body_len =
        static_cast<std::uint32_t>(frame.body.size());
    const std::uint32_t type = static_cast<std::uint32_t>(frame.type);
    const std::uint32_t crc =
        ckpt::crc32(frame.body.data(), frame.body.size());
    std::memcpy(wire.data(), &body_len, 4);
    std::memcpy(wire.data() + 4, &type, 4);
    std::memcpy(wire.data() + 8, &crc, 4);
    std::memcpy(wire.data() + frameHeaderBytes, frame.body.data(),
                frame.body.size());
    return wire;
}

RecvStatus
decodeFrame(std::uint32_t body_len, std::uint32_t type,
            std::uint32_t body_crc, std::vector<std::uint8_t> body,
            Frame &frame)
{
    if (body.size() != body_len || body_len > maxFrameBody)
        return RecvStatus::Corrupt;
    if (type < static_cast<std::uint32_t>(FrameType::Hello) ||
        type > static_cast<std::uint32_t>(FrameType::Abort))
        return RecvStatus::Corrupt;
    if (ckpt::crc32(body.data(), body.size()) != body_crc)
        return RecvStatus::Corrupt;
    frame.type = static_cast<FrameType>(type);
    frame.body = std::move(body);
    return RecvStatus::Ok;
}

} // namespace aqsim::transport
