#include "transport/socket.hh"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "base/logging.hh"

namespace aqsim::transport
{

namespace
{

/** Poll slice: every blocking wait re-checks its deadline this often. */
constexpr int pollSliceMs = 100;

int
remainingMs(std::chrono::steady_clock::time_point deadline)
{
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0)
        return 0;
    return static_cast<int>(
        std::min<long long>(left.count(), pollSliceMs));
}

} // namespace

SocketChannel::SocketChannel(int fd) : fd_(fd)
{
    AQSIM_ASSERT(fd >= 0);
}

SocketChannel::~SocketChannel()
{
    ::close(fd_);
}

bool
SocketChannel::send(const Frame &frame)
{
    const std::vector<std::uint8_t> wire = encodeFrame(frame);
    base::MutexLock lock(sendMutex_);
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n = ::send(fd_, wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            // EPIPE/ECONNRESET: peer is gone. The caller maps this
            // to a structured disconnect failure.
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

RecvStatus
SocketChannel::readFully(std::uint8_t *data, std::size_t size,
                         std::chrono::steady_clock::time_point deadline)
{
    std::size_t got = 0;
    while (got < size) {
        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ms = remainingMs(deadline);
        if (ms == 0 &&
            std::chrono::steady_clock::now() >= deadline)
            return RecvStatus::Timeout;
        const int pr = ::poll(&pfd, 1, ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::Closed;
        }
        if (pr == 0)
            continue; // slice elapsed; loop re-checks the deadline
        const ssize_t n = ::recv(fd_, data + got, size - got, 0);
        if (n == 0)
            return RecvStatus::Closed; // orderly EOF (peer dead)
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return RecvStatus::Closed; // ECONNRESET and friends
        }
        got += static_cast<std::size_t>(n);
    }
    return RecvStatus::Ok;
}

RecvStatus
SocketChannel::recv(Frame &frame, double deadline_seconds)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(deadline_seconds));

    std::uint8_t header[frameHeaderBytes];
    RecvStatus status = readFully(header, sizeof(header), deadline);
    if (status != RecvStatus::Ok)
        return status;

    std::uint32_t body_len = 0, type = 0, body_crc = 0;
    std::memcpy(&body_len, header, 4);
    std::memcpy(&type, header + 4, 4);
    std::memcpy(&body_crc, header + 8, 4);
    if (body_len > maxFrameBody)
        return RecvStatus::Corrupt;

    std::vector<std::uint8_t> body(body_len);
    if (body_len > 0) {
        status = readFully(body.data(), body.size(), deadline);
        if (status != RecvStatus::Ok)
            return status;
    }
    return decodeFrame(body_len, type, body_crc, std::move(body), frame);
}

void
SocketChannel::close()
{
    ::shutdown(fd_, SHUT_RDWR);
}

std::pair<std::unique_ptr<SocketChannel>, std::unique_ptr<SocketChannel>>
socketChannelPair()
{
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
        fatal("socketpair failed: %s", std::strerror(errno));
    return {std::make_unique<SocketChannel>(fds[0]),
            std::make_unique<SocketChannel>(fds[1])};
}

int
tcpListen(std::uint16_t port, std::uint16_t &bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal("socket failed: %s", std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0)
        fatal("bind failed: %s", std::strerror(errno));
    if (::listen(fd, 8) != 0)
        fatal("listen failed: %s", std::strerror(errno));
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      &len) != 0)
        fatal("getsockname failed: %s", std::strerror(errno));
    bound_port = ntohs(addr.sin_port);
    return fd;
}

int
tcpConnect(std::uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
tcpAccept(int listen_fd, double deadline_seconds)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(deadline_seconds));
    for (;;) {
        struct pollfd pfd;
        pfd.fd = listen_fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int ms = remainingMs(deadline);
        if (ms == 0 && std::chrono::steady_clock::now() >= deadline)
            return -1;
        const int pr = ::poll(&pfd, 1, ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (pr == 0)
            continue;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0)
            return fd;
        if (errno == EINTR)
            continue;
        return -1;
    }
}

} // namespace aqsim::transport
