/**
 * @file
 * Peer liveness beacon for the distributed barrier protocol.
 *
 * A worker that is merely *slow* (a long quantum, a large state
 * gather) must stay distinguishable from one that is *hung* — and the
 * coordinator must learn the difference without inflating its frame
 * deadlines to cover the worst honest case. Each worker therefore
 * runs one HeartbeatSender thread that emits a small Heartbeat frame
 * at a fixed period; the coordinator's receive loop absorbs
 * heartbeats while waiting for the frame it actually expects and
 * resets the peer's liveness clock on every frame of any type. A peer
 * whose heartbeats stop (SIGSTOP, scheduler wedge) ages past the
 * deadline and becomes a Hang-kind PeerFailure; one whose socket dies
 * becomes a Disconnect without waiting for any timer.
 */

#ifndef AQSIM_TRANSPORT_HEARTBEAT_HH
#define AQSIM_TRANSPORT_HEARTBEAT_HH

#include <cstdint>
#include <thread>

#include "base/mutex.hh"
#include "transport/channel.hh"

namespace aqsim::transport
{

/**
 * Emits Heartbeat frames on a channel at a fixed period from a
 * dedicated thread. Construction starts the beacon; stop() (or the
 * destructor) ends it. The beacon also stops on its own when a send
 * fails — a dead pipe needs no further beacons.
 */
class HeartbeatSender
{
  public:
    /**
     * @param channel outbound pipe (must outlive this object; the
     *        channel's send() is thread-safe against the protocol
     *        thread by the Channel contract)
     * @param period_seconds beacon period in host seconds
     */
    HeartbeatSender(Channel &channel, double period_seconds);
    ~HeartbeatSender();

    HeartbeatSender(const HeartbeatSender &) = delete;
    HeartbeatSender &operator=(const HeartbeatSender &) = delete;

    /** Stop the beacon and join the thread. Idempotent. */
    void stop() AQSIM_EXCLUDES(mutex_);

  private:
    void loop() AQSIM_EXCLUDES(mutex_);

    Channel &channel_;
    const double periodSeconds_;

    base::Mutex mutex_;
    base::CondVar cv_;
    bool stop_ AQSIM_GUARDED_BY(mutex_) = false;

    std::thread thread_;
};

} // namespace aqsim::transport

#endif // AQSIM_TRANSPORT_HEARTBEAT_HH
