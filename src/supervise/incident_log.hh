/**
 * @file
 * Machine-readable recovery incident log.
 *
 * Every supervisor decision — retry after a failure, escalation to
 * the conservative guard, final abort, successful recovery — becomes
 * one Incident, appended to an in-memory list and (when a path is
 * configured) one JSON line in a JSONL file. The schema is stable and
 * validated by scripts/check_incidents.py in CI; see
 * docs/supervision.md for the field table.
 */

#ifndef AQSIM_SUPERVISE_INCIDENT_LOG_HH
#define AQSIM_SUPERVISE_INCIDENT_LOG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace aqsim::supervise
{

/** One supervisor decision, serializable as a JSONL record. */
struct Incident
{
    /** 1-based attempt the decision concluded. */
    std::uint64_t attempt = 0;
    /** Failure cause ("watchdog", "panic", "fatal", "injected") or
     * "none" for the terminal recovered record. */
    std::string cause;
    /** Quanta completed when the attempt ended (0 = unknown). */
    std::uint64_t quantum = 0;
    /** Checkpoint file the attempt restored from ("" = cold start). */
    std::string restoreSource;
    /** Sleep before the next attempt, in host seconds. */
    double backoffSeconds = 0.0;
    /** "retry", "escalate", "abort" or "recovered". */
    std::string outcome;
    /** Human-readable failure detail. */
    std::string detail;

    /** One-line JSON object (the JSONL record). */
    std::string toJson() const;
};

/** Append-only incident list, optionally mirrored to a JSONL file. */
class IncidentLog
{
  public:
    /** @param path JSONL file to append to ("" = memory only). */
    explicit IncidentLog(std::string path = "");

    /** Record @p incident (and append its JSON line to the file). */
    void append(Incident incident);

    const std::vector<Incident> &incidents() const { return incidents_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::vector<Incident> incidents_;
};

} // namespace aqsim::supervise

#endif // AQSIM_SUPERVISE_INCIDENT_LOG_HH
