#include "supervise/escalation.hh"

#include <algorithm>

#include "base/logging.hh"
#include "ckpt/ckpt_io.hh"

namespace aqsim::supervise
{

ConservativeWindowPolicy::ConservativeWindowPolicy(
    std::unique_ptr<core::QuantumPolicy> inner, Tick safe_quantum,
    std::uint64_t fail_quantum, std::uint64_t window_quanta)
    : inner_(std::move(inner)), safe_(safe_quantum),
      failQuantum_(fail_quantum), window_(window_quanta)
{
    AQSIM_ASSERT(inner_ != nullptr);
    AQSIM_ASSERT(safe_ > 0);
}

bool
ConservativeWindowPolicy::guarded(std::uint64_t index) const
{
    const std::uint64_t lo =
        failQuantum_ > window_ ? failQuantum_ - window_ : 0;
    return index >= lo && index <= failQuantum_ + window_;
}

Tick
ConservativeWindowPolicy::initialQuantum() const
{
    const Tick q = inner_->initialQuantum();
    return guarded(0) ? std::min(q, safe_) : q;
}

Tick
ConservativeWindowPolicy::next(std::uint64_t packets_last_quantum)
{
    // Always drive the inner policy so its adaptation state tracks
    // the traffic it would have seen unguarded; exiting the window
    // then resumes the adaptive schedule instead of restarting it.
    const Tick q = inner_->next(packets_last_quantum);
    ++index_;
    return guarded(index_) ? std::min(q, safe_) : q;
}

void
ConservativeWindowPolicy::reset()
{
    inner_->reset();
    index_ = 0;
}

std::string
ConservativeWindowPolicy::name() const
{
    return "guard:" + inner_->name();
}

std::unique_ptr<core::QuantumPolicy>
ConservativeWindowPolicy::clone() const
{
    auto copy = std::make_unique<ConservativeWindowPolicy>(
        inner_->clone(), safe_, failQuantum_, window_);
    copy->index_ = index_;
    return copy;
}

void
ConservativeWindowPolicy::serialize(ckpt::Writer &w) const
{
    w.u64(index_);
    inner_->serialize(w);
}

void
ConservativeWindowPolicy::deserialize(ckpt::Reader &r)
{
    index_ = r.u64();
    inner_->deserialize(r);
}

} // namespace aqsim::supervise
